#!/usr/bin/env python3
"""Render the figure benches' --csv output to standalone SVG files.

Dependency-free (standard library only), so the paper's figures can be
regenerated anywhere the benches run:

    mkdir -p out && for b in build/bench/bench_fig*; do $b --csv out; done
    python3 scripts/plot_figures.py out

Produces fig8a.svg, fig8b.svg, fig8c.svg, fig10a.svg, fig10b.svg and
fig10c.svg inside the same directory.
"""
import csv
import os
import sys

W, H = 640, 400
ML, MR, MT, MB = 60, 20, 30, 45  # margins
PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#e377c2", "#7f7f7f", "#17becf", "#bcbd22"]


def read_csv(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def scale(v, lo, hi, a, b):
    if hi == lo:
        return (a + b) / 2
    return a + (v - lo) * (b - a) / (hi - lo)


def nice_ticks(lo, hi, n=5):
    if hi <= lo:
        hi = lo + 1
    span = (hi - lo) / n
    mag = 10 ** int(f"{span:e}".split("e")[1])
    for step in (1, 2, 5, 10):
        if span <= step * mag:
            span = step * mag
            break
    start = int(lo / span) * span
    ticks = []
    t = start
    while t <= hi + 1e-9:
        if t >= lo - 1e-9:
            ticks.append(t)
        t += span
    return ticks


class Svg:
    def __init__(self, title, xlabel, ylabel):
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" '
            f'height="{H}" font-family="sans-serif" font-size="11">',
            f'<rect width="{W}" height="{H}" fill="white"/>',
            f'<text x="{W/2}" y="18" text-anchor="middle" '
            f'font-size="14">{title}</text>',
            f'<text x="{W/2}" y="{H-8}" text-anchor="middle">{xlabel}</text>',
            f'<text x="14" y="{H/2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {H/2})">{ylabel}</text>',
        ]

    def axes(self, xlo, xhi, ylo, yhi):
        self.xlo, self.xhi, self.ylo, self.yhi = xlo, xhi, ylo, yhi
        self.parts.append(
            f'<rect x="{ML}" y="{MT}" width="{W-ML-MR}" '
            f'height="{H-MT-MB}" fill="none" stroke="#999"/>')
        for t in nice_ticks(xlo, xhi):
            x = scale(t, xlo, xhi, ML, W - MR)
            self.parts.append(
                f'<line x1="{x:.1f}" y1="{H-MB}" x2="{x:.1f}" '
                f'y2="{H-MB+4}" stroke="#666"/>')
            self.parts.append(
                f'<text x="{x:.1f}" y="{H-MB+16}" '
                f'text-anchor="middle">{t:g}</text>')
        for t in nice_ticks(ylo, yhi):
            y = scale(t, ylo, yhi, H - MB, MT)
            self.parts.append(
                f'<line x1="{ML-4}" y1="{y:.1f}" x2="{ML}" y2="{y:.1f}" '
                f'stroke="#666"/>')
            self.parts.append(
                f'<text x="{ML-7}" y="{y+3:.1f}" '
                f'text-anchor="end">{t:g}</text>')

    def line(self, xs, ys, color, label=None, dash=False):
        pts = " ".join(
            f"{scale(x, self.xlo, self.xhi, ML, W-MR):.1f},"
            f"{scale(y, self.ylo, self.yhi, H-MB, MT):.1f}"
            for x, y in zip(xs, ys))
        dash_attr = ' stroke-dasharray="6,3"' if dash else ""
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"{dash_attr}/>')

    def bar(self, i, n, group, value, color):
        # n bars per group, groups indexed from 0.
        gw = (W - ML - MR) / (self.xhi + 1)
        bw = gw / (n + 1)
        x = ML + group * gw + (i + 0.5) * bw
        y = scale(value, self.ylo, self.yhi, H - MB, MT)
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bw:.1f}" '
            f'height="{H-MB-y:.1f}" fill="{color}"/>')

    def legend(self, labels_colors):
        x, y = ML + 10, MT + 14
        for label, color in labels_colors:
            self.parts.append(
                f'<line x1="{x}" y1="{y-4}" x2="{x+18}" y2="{y-4}" '
                f'stroke="{color}" stroke-width="2"/>')
            self.parts.append(f'<text x="{x+22}" y="{y}">{label}</text>')
            y += 14

    def save(self, path):
        self.parts.append("</svg>")
        with open(path, "w") as f:
            f.write("\n".join(self.parts))
        print(f"wrote {path}")


def plot_series_csv(path, out, title, xlabel, ylabel, dash_cols=()):
    header, rows = read_csv(path)
    xs = [float(r[0]) for r in rows]
    svg = Svg(title, xlabel, ylabel)
    cols = list(range(1, len(header)))
    ymax = max(float(r[c]) for r in rows for c in cols)
    svg.axes(min(xs), max(xs), 0, ymax * 1.05)
    legend = []
    for i, c in enumerate(cols):
        color = PALETTE[i % len(PALETTE)]
        svg.line(xs, [float(r[c]) for r in rows], color,
                 dash=header[c] in dash_cols)
        legend.append((header[c], color))
    svg.legend(legend)
    svg.save(out)


def plot_fig8a(path, out):
    header, rows = read_csv(path)
    ops = sorted({r[0] for r in rows}, key=lambda o: [r[0] for r in rows].index(o))
    svg = Svg("Fig 8a: protocol operation timing", "operation", "seconds")
    svg.xhi = len(ops) - 1
    ymax = max(float(r[2]) for r in rows)
    svg.axes(0, len(ops) - 1, 0, ymax * 1.15)
    # Override x tick labels with operation names.
    for g, op in enumerate(ops):
        gw = (W - ML - MR) / len(ops)
        svg.parts.append(
            f'<text x="{ML + (g+0.5)*gw:.1f}" y="{H-MB+16}" '
            f'text-anchor="middle" font-size="9">{op}</text>')
    for g, op in enumerate(ops):
        for i, env in enumerate(("testbed", "internet")):
            for r in rows:
                if r[0] == op and r[1] == env:
                    svg.bar(i, 2, g, float(r[2]), PALETTE[i])
    svg.legend([("testbed", PALETTE[0]), ("internet", PALETTE[1])])
    svg.save(out)


def plot_fig10(path, out_a, out_b):
    header, rows = read_csv(path)
    sizes = sorted({int(r[0]) for r in rows})
    for out, column, title in ((out_a, "server_total",
                                "Fig 10a: server-processed packets"),
                               (out_b, "network_total",
                                "Fig 10b: total network packets")):
        idx = header.index(column)
        svg = Svg(title, "upload payload (bytes)", "packets")
        ymax = max(float(r[idx]) for r in rows)
        svg.axes(0, len(sizes) - 1, 0, ymax * 1.1)
        for g, size in enumerate(sizes):
            gw = (W - ML - MR) / len(sizes)
            svg.parts.append(
                f'<text x="{ML + (g+0.5)*gw:.1f}" y="{H-MB+16}" '
                f'text-anchor="middle">{size} B</text>')
            for i, with_edge in enumerate(("0", "1")):
                for r in rows:
                    if int(r[0]) == size and r[1] == with_edge:
                        svg.bar(i, 2, g, float(r[idx]), PALETTE[i])
        svg.legend([("without edge", PALETTE[0]), ("with edge", PALETTE[1])])
        svg.save(out)


def plot_fig8b(path, out):
    header, rows = read_csv(path)
    svg = Svg("Fig 8b: response time during heavy use", "population",
              "seconds")
    ymax = max(float(r[3]) for r in rows)  # p95 column
    svg.axes(0, len(rows) - 1, 0, ymax * 1.2)
    for g, r in enumerate(rows):
        gw = (W - ML - MR) / len(rows)
        svg.parts.append(
            f'<text x="{ML + (g+0.5)*gw:.1f}" y="{H-MB+16}" '
            f'text-anchor="middle" font-size="9">{r[0]}</text>')
        svg.bar(0, 2, g, float(r[1]), PALETTE[0])  # mean
        svg.bar(1, 2, g, float(r[3]), PALETTE[1])  # p95
    svg.legend([("mean", PALETTE[0]), ("p95", PALETTE[1])])
    svg.save(out)


def main():
    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    jobs = [
        ("fig8a_protocol_timing.csv", lambda p: plot_fig8a(
            p, os.path.join(directory, "fig8a.svg"))),
        ("fig8b_heavy_use.csv", lambda p: plot_fig8b(
            p, os.path.join(directory, "fig8b.svg"))),
        ("fig8c_usage_score.csv", lambda p: plot_series_csv(
            p, os.path.join(directory, "fig8c.svg"),
            "Fig 8c: usage score over time", "time (s)", "usage score",
            dash_cols=("threshold",))),
        ("fig10ab_edge_offload.csv", lambda p: plot_fig10(
            p, os.path.join(directory, "fig10a.svg"),
            os.path.join(directory, "fig10b.svg"))),
        ("fig10c_penalty.csv", lambda p: plot_series_csv(
            p, os.path.join(directory, "fig10c.svg"),
            "Fig 10c: user penalty over time", "time (s)", "penalty")),
    ]
    any_found = False
    for name, fn in jobs:
        path = os.path.join(directory, name)
        if os.path.exists(path):
            fn(path)
            any_found = True
        else:
            print(f"skipping {name} (not found)")
    if not any_found:
        print("no CSVs found; run the figure benches with --csv first",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
