// Sim-time + wall-time scoped profiler.
//
// CADET_PROFILE_SCOPE("name") opens a RAII scope that charges elapsed
// *wall* time to a call-tree node keyed by the dynamic nesting of scopes
// (sim.run -> edge -> crypto.seal -> ...); CADET_PROFILE_ADD_SIM(dt)
// additionally charges *simulated* time to the innermost open scope (the
// testbed knows how much sim-time a handler consumed — its modeled CPU
// busy interval — but that never shows up on any wall clock). The tree
// dumps as a human-readable table (inclusive/exclusive, both clocks) or as
// folded-stack lines ("sim.run;edge;crypto.seal 123") ready for
// flamegraph.pl / speedscope.
//
// The profiler holds wall-clock calls, which the cadet_lint sim-purity
// rule bans from src/{sim,cadet,entropy}; those trees only ever see the
// CADET_PROFILE_* macros (no chrono tokens at the call site) and this
// header lives in src/obs, which is exempt. Everything compiles out under
// CADET_OBS=OFF.
//
// Single-threaded by design, like the tracer: one world per thread, and
// multi-world tools (cadet_sweep -j) leave the profiler disabled. The
// enabled check is one predictable branch per scope.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // for CADET_OBS_ENABLED
#include "util/time.h"

namespace cadet::obs {

class Profiler {
 public:
  struct Node {
    const char* name = "";        // string literal
    std::uint32_t parent = 0;     // index into nodes() (root parents itself)
    std::uint64_t calls = 0;
    std::uint64_t wall_ns = 0;    // inclusive wall time
    std::uint64_t sim_ns = 0;     // exclusive (self) sim time
    std::vector<std::uint32_t> children;
  };

  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept {
#if CADET_OBS_ENABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Enter a child scope of the current node (found by name or created).
  /// Returns the previous current-node index for the matching pop().
  std::uint32_t push(const char* name);

  /// Leave the current scope: charge `wall_ns` + one call to it and make
  /// `prev` current again.
  void pop(std::uint32_t prev, std::uint64_t wall_ns);

  /// Charge simulated time to the innermost open scope.
  void add_sim(util::SimTime dt) {
    if (enabled() && dt > 0) {
      nodes_[current_].sim_ns += static_cast<std::uint64_t>(dt);
    }
  }

  /// Call tree, index 0 = synthetic root (never charged directly).
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Folded-stack lines, one per tree node with nonzero exclusive time:
  /// "a;b;c <microseconds>\n". Wall time by default, sim time on request.
  std::string folded(bool sim_time = false) const;

  /// Human-readable table: per node, calls + inclusive/exclusive wall and
  /// sim time, indented by tree depth.
  std::string report() const;

  /// Drop the whole tree and return to the root scope.
  void reset();

  static Profiler& global();

 private:
  Profiler() { reset(); }

  bool enabled_ = false;
  std::uint32_t current_ = 0;
  std::vector<Node> nodes_;
};

/// RAII wall-clock scope; no-op (one branch) when the profiler is off.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
#if CADET_OBS_ENABLED
    Profiler& profiler = Profiler::global();
    if (!profiler.enabled()) return;
    active_ = true;
    prev_ = profiler.push(name);
    start_ = std::chrono::steady_clock::now();
#else
    (void)name;
#endif
  }

  ~ProfileScope() {
#if CADET_OBS_ENABLED
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::global().pop(
        prev_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
#endif
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
#if CADET_OBS_ENABLED
  bool active_ = false;
  std::uint32_t prev_ = 0;
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace cadet::obs

// Call-site macros: no chrono tokens at the expansion site, so profiled
// code in the sim-pure trees stays lint-clean; empty under CADET_OBS=OFF.
#if CADET_OBS_ENABLED
#define CADET_PROFILE_CONCAT2(a, b) a##b
#define CADET_PROFILE_CONCAT(a, b) CADET_PROFILE_CONCAT2(a, b)
#define CADET_PROFILE_SCOPE(name)                                     \
  ::cadet::obs::ProfileScope CADET_PROFILE_CONCAT(cadet_profile_scope_, \
                                                  __LINE__)(name)
#define CADET_PROFILE_ADD_SIM(dt) ::cadet::obs::Profiler::global().add_sim(dt)
#else
#define CADET_PROFILE_SCOPE(name) ((void)0)
#define CADET_PROFILE_ADD_SIM(dt) ((void)(dt))
#endif
