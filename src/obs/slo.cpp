#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/hdr.h"
#include "obs/sharded.h"
#include "obs/trace.h"

namespace cadet::obs {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(text.substr(pos));
      return out;
    }
    out.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

// Aggregated live readings for one metric family (every label set summed).
struct FamilyReading {
  double counter = 0.0;    // counters + sharded counters
  double gauge = 0.0;
  double hdr_count = 0.0;  // HDR observation count
  double hdr_above = 0.0;  // HDR observations above the rule threshold
  bool found = false;
};

FamilyReading read_family(const Registry& registry, const std::string& name,
                          double threshold_s) {
  FamilyReading reading;
  for (const auto& entry : registry.entries()) {
    if (entry.name != name) continue;
    reading.found = true;
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        reading.counter += static_cast<double>(entry.counter->value());
        break;
      case Registry::Kind::kShardedCounter:
        reading.counter += static_cast<double>(entry.sharded->value());
        break;
      case Registry::Kind::kGauge:
        reading.gauge += static_cast<double>(entry.gauge->value());
        break;
      case Registry::Kind::kHistogram:
        reading.hdr_count += static_cast<double>(entry.histogram->count());
        break;
      case Registry::Kind::kHdr:
        reading.hdr_count += static_cast<double>(entry.hdr->count());
        reading.hdr_above +=
            static_cast<double>(entry.hdr->count_above(threshold_s));
        break;
    }
  }
  return reading;
}

const char* kind_token(SloRule::Kind kind) {
  switch (kind) {
    case SloRule::Kind::kLatencyBurn: return "burn";
    case SloRule::Kind::kRatio: return "ratio";
    case SloRule::Kind::kGaugeAbove: return "gauge";
    case SloRule::Kind::kCounterRate: return "rate";
  }
  return "?";
}

void append_json_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::optional<SloRule> parse_slo_rule(const std::string& text) {
  const std::vector<std::string> parts = split(text, ':');
  if (parts.size() < 5 || parts.size() > 6) return std::nullopt;
  SloRule rule;
  if (parts[0] == "burn") {
    rule.kind = SloRule::Kind::kLatencyBurn;
  } else if (parts[0] == "ratio") {
    rule.kind = SloRule::Kind::kRatio;
  } else if (parts[0] == "gauge") {
    rule.kind = SloRule::Kind::kGaugeAbove;
  } else if (parts[0] == "rate") {
    rule.kind = SloRule::Kind::kCounterRate;
  } else {
    return std::nullopt;
  }
  rule.name = parts[1];
  rule.metric = parts[2];
  if (rule.kind == SloRule::Kind::kRatio) {
    const std::size_t slash = rule.metric.find('/');
    if (slash == std::string::npos) return std::nullopt;
    rule.denom = rule.metric.substr(slash + 1);
    rule.metric.resize(slash);
  }
  if (rule.name.empty() || rule.metric.empty()) return std::nullopt;
  if (!parse_double(parts[3], rule.threshold_s)) return std::nullopt;
  if (!parse_double(parts[4], rule.limit)) return std::nullopt;
  if (parts.size() == 6) {
    double ticks = 0.0;
    if (!parse_double(parts[5], ticks) || ticks < 1.0) return std::nullopt;
    rule.for_ticks = static_cast<int>(ticks);
  }
  return rule;
}

std::vector<SloRule> default_slo_rules() {
  std::vector<SloRule> rules;
  // Fulfillment-latency burn rate: >10% of new fulfillments slower than
  // 500 ms, sustained for two ticks.
  rules.push_back(*parse_slo_rule(
      "burn:slow_fulfillment:cadet_fulfillment_seconds:0.5:0.1:2"));
  // Refill failure ratio: edge refill retries vs. requests received.
  rules.push_back(*parse_slo_rule(
      "ratio:refill_churn:"
      "cadet_edge_refill_retries/cadet_edge_requests_received:0:0.5:2"));
  // Pending-queue stall: in-flight fulfillments piling up.
  rules.push_back(*parse_slo_rule(
      "gauge:pending_stall:cadet_fulfillment_inflight:0:1000:3"));
  // Penalty-table spike: sustained policing drops per second.
  rules.push_back(*parse_slo_rule(
      "rate:penalty_spike:cadet_server_uploads_dropped_penalty:0:100:1"));
  return rules;
}

void SloEngine::add_rule(const SloRule& rule) {
  util::MutexLock lock(mu_);
  RuleState state;
  state.rule = rule;
  states_.push_back(std::move(state));
}

std::size_t SloEngine::rule_count() const {
  util::MutexLock lock(mu_);
  return states_.size();
}

void SloEngine::set_alert_hook(std::function<void(const Alert&)> hook) {
  util::MutexLock lock(mu_);
  hook_ = std::move(hook);
}

double SloEngine::read_value(RuleState& state, double dt_s) {
  const SloRule& rule = state.rule;
  switch (rule.kind) {
    case SloRule::Kind::kLatencyBurn: {
      const FamilyReading now =
          read_family(*registry_, rule.metric, rule.threshold_s);
      const double d_count =
          state.has_prev ? now.hdr_count - state.prev_count : now.hdr_count;
      const double d_above =
          state.has_prev ? now.hdr_above - state.prev_above : now.hdr_above;
      state.prev_count = now.hdr_count;
      state.prev_above = now.hdr_above;
      return d_count > 0.0 ? d_above / d_count : 0.0;
    }
    case SloRule::Kind::kRatio: {
      const FamilyReading num = read_family(*registry_, rule.metric, 0.0);
      const FamilyReading den = read_family(*registry_, rule.denom, 0.0);
      const double d_num =
          state.has_prev ? num.counter - state.prev_count : num.counter;
      const double d_den =
          state.has_prev ? den.counter - state.prev_denom : den.counter;
      state.prev_count = num.counter;
      state.prev_denom = den.counter;
      return d_den > 0.0 ? d_num / d_den : 0.0;
    }
    case SloRule::Kind::kGaugeAbove: {
      const FamilyReading now = read_family(*registry_, rule.metric, 0.0);
      return now.gauge;
    }
    case SloRule::Kind::kCounterRate: {
      const FamilyReading now = read_family(*registry_, rule.metric, 0.0);
      const double delta =
          state.has_prev ? now.counter - state.prev_count : 0.0;
      state.prev_count = now.counter;
      return state.has_prev && dt_s > 0.0 ? delta / dt_s : 0.0;
    }
  }
  return 0.0;
}

std::vector<SloEngine::Alert> SloEngine::tick(double now_s) {
  std::vector<Alert> transitions;
  std::vector<std::size_t> transition_rules;  // rule index per transition
  std::function<void(const Alert&)> hook;
  {
    util::MutexLock lock(mu_);
    const double dt_s = has_last_tick_ ? now_s - last_tick_s_ : 0.0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      RuleState& state = states_[i];
      const double value = read_value(state, dt_s);
      state.last_value = value;
      const bool breach = value > state.rule.limit;
      state.has_prev = true;
      state.breach_ticks = breach ? state.breach_ticks + 1 : 0;

      const bool should_fire = state.breach_ticks >= state.rule.for_ticks;
      if (should_fire != state.firing) {
        state.firing = should_fire;
        if (should_fire) ++state.fires;
        Alert alert;
        alert.rule = state.rule.name;
        alert.value = value;
        alert.limit = state.rule.limit;
        alert.at_s = now_s;
        alert.firing = should_fire;
        transition_rules.push_back(i);
        transitions.push_back(std::move(alert));
      }
    }
    last_tick_s_ = now_s;
    has_last_tick_ = true;
    ++ticks_;
    hook = hook_;
  }
  // Emit + hook outside the lock: the hook (flight-recorder dump) and the
  // trace sink are free to call back into any_firing()/healthz_json().
  for (std::size_t t = 0; t < transitions.size(); ++t) {
    const Alert& alert = transitions[t];
    const std::size_t i = transition_rules[t];
    // Structured alert record: rides the trace stream (and the flight
    // recorder) so cadet_report can build an alert timeline. The rule is
    // identified by its index (attrs are numeric); /healthz carries the
    // index -> name mapping.
    emit(static_cast<util::SimTime>(now_s * 1e9),
         alert.firing ? "slo_alert" : "slo_clear", "health", i,
         {{"rule", static_cast<double>(i)},
          {"value", alert.value},
          {"limit", alert.limit}});
    if (hook) hook(alert);
  }
  return transitions;
}

bool SloEngine::any_firing_locked() const {
  for (const RuleState& state : states_) {
    if (state.firing) return true;
  }
  return false;
}

bool SloEngine::any_firing() const {
  util::MutexLock lock(mu_);
  return any_firing_locked();
}

std::uint64_t SloEngine::total_fires() const {
  util::MutexLock lock(mu_);
  std::uint64_t fires = 0;
  for (const RuleState& state : states_) fires += state.fires;
  return fires;
}

std::uint64_t SloEngine::ticks() const {
  util::MutexLock lock(mu_);
  return ticks_;
}

std::string SloEngine::healthz_json() const {
  util::MutexLock lock(mu_);
  std::string out = "{\"status\":\"";
  out += any_firing_locked() ? "alerting" : "ok";
  out += "\",\"ticks\":" + std::to_string(ticks_) + ",\"rules\":[";
  bool first = true;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const RuleState& state = states_[i];
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(i) + ",\"name\":\"";
    append_json_escaped(out, state.rule.name);
    out += "\",\"kind\":\"";
    out += kind_token(state.rule.kind);
    out += "\",\"metric\":\"";
    append_json_escaped(out, state.rule.metric);
    if (!state.rule.denom.empty()) {
      out += '/';
      append_json_escaped(out, state.rule.denom);
    }
    out += "\",\"firing\":";
    out += state.firing ? "true" : "false";
    out += ",\"value\":" + json_number(state.last_value);
    out += ",\"limit\":" + json_number(state.rule.limit);
    out += ",\"fires\":" + std::to_string(state.fires) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace cadet::obs
