#include "obs/trace.h"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace cadet::obs {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  // %.17g keeps doubles round-trippable; integers print without a point.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

}  // namespace

std::string to_json(const TraceEvent& event) {
  std::string out;
  out.reserve(96);
  char ts[48];
  std::snprintf(ts, sizeof(ts), "%.9f", util::to_seconds(event.ts));
  out += "{\"ts\":";
  out += ts;
  out += ",\"ev\":\"";
  append_escaped(out, event.name);
  out += "\",\"tier\":\"";
  append_escaped(out, event.tier);
  out += "\",\"node\":";
  char node[24];
  std::snprintf(node, sizeof(node), "%" PRIu64, event.node);
  out += node;
  if (event.trace != 0) {
    char ids[96];
    std::snprintf(ids, sizeof(ids), ",\"trace\":%" PRIu64 ",\"span\":%" PRIu64,
                  event.trace, event.span);
    out += ids;
    if (event.parent != 0) {
      std::snprintf(ids, sizeof(ids), ",\"parent\":%" PRIu64, event.parent);
      out += ids;
    }
  }
  if (event.phase != 0) {
    out += ",\"ph\":\"";
    out += event.phase;
    out += '"';
  }
  for (std::uint8_t i = 0; i < event.num_attrs; ++i) {
    out += ",\"";
    append_escaped(out, event.attrs[i].key);
    out += "\":";
    append_number(out, event.attrs[i].value);
  }
  out += '}';
  return out;
}

// ------------------------------------------------------------------ sinks

FileSink::FileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open trace file %s\n",
                 path.c_str());
  }
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(const TraceEvent& event) {
  if (file_ == nullptr) return;
  const std::string line = to_json(event);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

// ----------------------------------------------------------------- Tracer

Tracer::Tracer(std::size_t capacity) { set_capacity(capacity); }

void Tracer::set_capacity(std::size_t capacity) {
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  count_ = 0;
}

void Tracer::record(const TraceEvent& event) noexcept {
  if (!enabled_) return;
  ++recorded_;
  if (count_ == ring_.size()) {
    if (sink_ != nullptr) {
      flush();
    } else {
      // Flight-recorder mode: overwrite the oldest.
      ring_[head_] = event;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
      return;
    }
  }
  ring_[(head_ + count_) % ring_.size()] = event;
  ++count_;
}

std::size_t Tracer::flush() {
  const std::size_t drained = count_;
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < count_; ++i) {
      sink_->write(ring_[(head_ + i) % ring_.size()]);
    }
  }
  head_ = 0;
  count_ = 0;
  return drained;
}

std::vector<TraceEvent> Tracer::buffered() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  recorded_ = 0;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

// ----------------------------------------------------------- trace reading

namespace {

void skip_spaces(std::string_view s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

/// Parses a JSON number. `out` gets the double value; `out_u64` gets the
/// EXACT integer when the token is a plain unsigned decimal — 64-bit
/// trace/span ids (the scale path packs tag bits into the top bits) do not
/// survive a double round trip, so id fields must read from `out_u64`.
bool parse_number(std::string_view s, std::size_t& i, double& out,
                  std::uint64_t& out_u64) {
  char* end = nullptr;
  // strtod needs a NUL-terminated buffer; numbers are short.
  char buf[64];
  std::size_t n = 0;
  bool integral = true;
  while (i + n < s.size() && n + 1 < sizeof(buf) &&
         (std::isdigit(static_cast<unsigned char>(s[i + n])) ||
          s[i + n] == '-' || s[i + n] == '+' || s[i + n] == '.' ||
          s[i + n] == 'e' || s[i + n] == 'E')) {
    if (!std::isdigit(static_cast<unsigned char>(s[i + n]))) {
      integral = false;
    }
    buf[n] = s[i + n];
    ++n;
  }
  if (n == 0) return false;
  buf[n] = '\0';
  out = std::strtod(buf, &end);
  if (end == buf) return false;
  out_u64 = integral ? std::strtoull(buf, nullptr, 10)
                     : static_cast<std::uint64_t>(out);
  i += static_cast<std::size_t>(end - buf);
  return true;
}

}  // namespace

std::optional<ParsedEvent> parse_json_line(std::string_view line) {
  std::size_t i = 0;
  skip_spaces(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;

  ParsedEvent event;
  bool saw_ts = false;
  bool saw_name = false;
  bool first = true;
  while (true) {
    skip_spaces(line, i);
    if (i < line.size() && line[i] == '}') {
      ++i;
      break;
    }
    if (!first) {
      if (i >= line.size() || line[i] != ',') return std::nullopt;
      ++i;
      skip_spaces(line, i);
    }
    first = false;

    std::string key;
    if (!parse_string(line, i, key)) return std::nullopt;
    skip_spaces(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_spaces(line, i);

    if (i < line.size() && line[i] == '"') {
      std::string value;
      if (!parse_string(line, i, value)) return std::nullopt;
      if (key == "ev") {
        event.name = std::move(value);
        saw_name = true;
      } else if (key == "tier") {
        event.tier = std::move(value);
      } else if (key == "ph") {
        event.phase = value.empty() ? 0 : value[0];
      }
      // Unknown string keys are tolerated (schema may grow).
    } else {
      double value = 0.0;
      std::uint64_t exact = 0;
      if (!parse_number(line, i, value, exact)) return std::nullopt;
      if (key == "ts") {
        event.ts_s = value;
        saw_ts = true;
      } else if (key == "node") {
        event.node = exact;
      } else if (key == "trace") {
        event.trace = exact;
      } else if (key == "span") {
        event.span = exact;
      } else if (key == "parent") {
        event.parent = exact;
      } else {
        event.attrs.emplace_back(std::move(key), value);
      }
    }
  }
  skip_spaces(line, i);
  if (i != line.size()) return std::nullopt;
  if (!saw_ts || !saw_name) return std::nullopt;
  return event;
}

}  // namespace cadet::obs
