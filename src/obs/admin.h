// Minimal blocking HTTP/1.0 admin listener: the live scrape/health surface.
//
//   GET /metrics   Prometheus exposition of the wired Registry
//   GET /healthz   SLO engine state as JSON (503 while any rule fires)
//   GET /flight    flight-recorder dump as JSONL
//
// One acceptor thread, one request per connection, Connection: close —
// deliberately the dumbest server that a curl/Prometheus scraper is happy
// with. It binds 127.0.0.1 by default and speaks plaintext with no
// authentication: NEVER expose the port beyond the host (see
// docs/OBSERVABILITY.md for the security caveats). Off unless explicitly
// started, so deterministic sim tests never see it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cadet::obs {

class FlightRecorder;
class SloEngine;

class AdminServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;  // 0 = ephemeral (port() reports the bound one)
  };

  /// `slo` and `flight` may be null; their endpoints then report 404.
  AdminServer(Registry* registry, SloEngine* slo, FlightRecorder* flight)
      : registry_(registry), slo_(slo), flight_(flight) {}
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Register an extra GET endpoint (e.g. "/shards" live scale progress).
  /// The callback runs on the acceptor thread per request, so it must be
  /// thread-safe with respect to whatever it snapshots. Register before
  /// start(); the path must begin with '/'.
  void add_source(std::string path, std::string content_type,
                  std::function<std::string()> render) {
    sources_.push_back({std::move(path), std::move(content_type),
                        std::move(render)});
  }

  /// Bind + listen + spawn the acceptor thread. False on socket errors
  /// (message on stderr).
  bool start(const Options& options);
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  int port() const noexcept { return port_; }
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Source {
    std::string path;
    std::string content_type;
    std::function<std::string()> render;
  };

  void serve_loop();
  void handle_connection(int client_fd);

  std::vector<Source> sources_;
  Registry* registry_;
  SloEngine* slo_;
  FlightRecorder* flight_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace cadet::obs
