// Always-on flight recorder: last-N-events forensics at near-zero cost.
//
// A fixed-size lock-free MPSC ring of binary TraceEvent records. Unlike the
// Tracer (single-threaded, off unless a run asks for a trace), the flight
// recorder is meant to stay armed in production: every obs::emit() lands
// here too, the ring silently overwrites the oldest records, and when
// something goes wrong — a watchdog trip, a chaos fault, SIGTERM, a crash
// handler — the last few thousand events are dumped as JSONL for post-hoc
// reconstruction.
//
// Concurrency: writers claim a slot by ticket (one fetch_add), CAS the
// slot's sequence word from its previous-generation value to "ticket in
// progress" (a writer that lost a full lap drops its record instead of
// tearing a slot two generations newer), copy the payload as relaxed
// word-sized atomic stores, then release-publish the sequence. Readers are
// per-slot seqlocks: a slot whose sequence changed mid-copy is skipped, so
// dumps never block writers and never contain torn records.
//
// dump_to_fd() is the signal path: no allocation, no stdio, just
// hand-formatted JSONL pushed through write(2).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cadet::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  // ~512 KiB

  /// Capacity is rounded up to a power of two.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  std::size_t capacity() const noexcept { return capacity_; }

  /// Total records accepted (appended minus conflict drops).
  std::uint64_t appended() const noexcept;
  /// Records dropped on a wrap-around writer collision (a writer lapped a
  /// stalled one). Overwritten-but-complete old records are NOT drops —
  /// overwriting is the ring's job.
  std::uint64_t dropped() const noexcept;

  void append(const TraceEvent& event) noexcept;

  /// Consistent copies of every live record, oldest first. Never blocks
  /// writers; records mid-write during the copy are skipped.
  std::vector<TraceEvent> dump() const;
  /// dump() rendered through to_json, one line per record.
  std::string dump_jsonl() const;
  /// Async-signal-safe best-effort JSONL dump: no allocation, no locks, no
  /// stdio — safe from a fatal-signal handler. Returns records written.
  std::size_t dump_to_fd(int fd) const noexcept;

  /// Reset to empty (test helper; not safe concurrent with writers).
  void clear() noexcept;

  /// The recorder obs::emit() feeds when armed.
  static FlightRecorder& global();

 private:
  struct Slot;
  std::size_t capacity_ = 0;
  Slot* slots_ = nullptr;
#if CADET_OBS_ENABLED
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
#else
  std::uint64_t head_ = 0;
#endif
};

/// Arm/disarm the global recorder's emit() hook. Off by default so the
/// deterministic sim suite is byte-identical with and without the plane;
/// cadet_sim and UdpRunner arm it at startup.
void arm_flight_recorder(bool on = true) noexcept;
bool flight_recorder_armed() noexcept;

}  // namespace cadet::obs
