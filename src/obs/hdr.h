// HDR-style log-linear latency histogram.
//
// The PR-1 Histogram's 10 fixed buckets bound a quantile only to within a
// 3x bucket edge — good enough for dashboards, useless for "p999 moved
// from 80 us to 120 us". HdrHistogram covers sub-microsecond .. minutes in
// log-linear cells: values are kept in integer nanoseconds, each power-of-
// two range ("octave") is split into 2^sub_bucket_bits linear sub-buckets,
// so every recorded value is representable to a relative error of at most
// 2^-(sub_bucket_bits-1) and a quantile read back from the cells is exact
// to that precision. record() is O(1) (one bit-scan, one relaxed add),
// allocation-free, and noexcept — hot-path safe.
//
// Threading: by default one cell array (the deterministic sim writes from
// one thread). With HdrConfig::striped the cells are replicated across
// obs::kShardStripes per-thread stripes (same discipline as
// ShardedCounter), so concurrent recorders never share a cache line;
// snapshot() merges stripes under the scrape epoch.
//
// Snapshots are mergeable: two snapshots with the same layout add
// cell-wise, so per-shard or per-run histograms combine without losing
// quantile fidelity (the error bound is a property of the layout, not of
// the population).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"  // for CADET_OBS_ENABLED
#include "obs/sharded.h"

namespace cadet::obs {

struct HdrConfig {
  /// Linear sub-buckets per octave as a power of two. 6 => 64 sub-buckets
  /// => relative quantile error <= 2^-5 ~= 3.1% (midpoint readout halves
  /// it). Clamped to [1, 12].
  int sub_bucket_bits = 6;
  /// Highest trackable value in seconds; larger observations clamp into
  /// the top cell (saturations() counts them). Default spans the latency
  /// range of interest: 1 ns .. ~8.5 minutes.
  double max_value_s = 512.0;
  /// Replicate cells across per-thread stripes for concurrent recorders.
  bool striped = false;
};

/// Cell-layout maths shared by the live histogram and its snapshots.
/// Cell i covers integer nanosecond values [value_lo(i), value_hi(i));
/// cells in the first two half-rows are exact (width 1 ns).
struct HdrLayout {
  int sub_bucket_bits = 0;
  std::uint64_t max_value_ns = 0;

  std::size_t cell_count() const noexcept;
  std::size_t index_of(std::uint64_t value_ns) const noexcept;
  std::uint64_t value_lo(std::size_t index) const noexcept;
  std::uint64_t value_hi(std::size_t index) const noexcept;  // exclusive
  /// Midpoint readout value for a quantile that lands in cell `index`.
  double value_mid_s(std::size_t index) const noexcept;

  bool operator==(const HdrLayout&) const = default;
};

/// An immutable, mergeable copy of the cell counts.
struct HdrSnapshot {
  HdrLayout layout;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum_s = 0.0;
  std::uint64_t saturated = 0;
  std::uint64_t epoch = 0;  // scrape epoch this snapshot was taken under

  /// Quantile estimate, exact to the layout's precision, clamped into the
  /// highest populated cell (never extrapolates past max_value_s).
  double quantile(double q) const noexcept;
  /// Observations recorded at or above `seconds` (to cell precision).
  std::uint64_t count_above(double seconds) const noexcept;
  /// Cell-wise add. False (and no-op) when layouts differ.
  bool merge(const HdrSnapshot& other);
  /// Cell-wise subtract of an EARLIER snapshot of the same histogram,
  /// leaving the delta recorded between the two. False (and no-op) when
  /// layouts differ or `earlier` is not cell-wise <= this one.
  bool subtract(const HdrSnapshot& earlier);
};

class HdrHistogram {
 public:
  explicit HdrHistogram(const HdrConfig& config = {});

  /// Record one observation in seconds. Negative values clamp to 0,
  /// values beyond max_value_s clamp into the top cell.
  void record(double seconds) noexcept;
  /// Histogram-API-compatible alias for call sites migrating from
  /// Histogram::observe.
  void observe(double seconds) noexcept { record(seconds); }

  const HdrLayout& layout() const noexcept { return layout_; }
  bool striped() const noexcept { return stripes_ > 1; }

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  std::uint64_t saturations() const noexcept;
  /// Merged cell count at `index` (across stripes).
  std::uint64_t cell(std::size_t index) const noexcept;

  /// Live quantile (takes an implicit snapshot of the counts).
  double quantile(double q) const noexcept;
  std::uint64_t count_above(double seconds) const noexcept;

  /// Epoch-stamped mergeable copy of the counts. Monotone: a later
  /// snapshot's count/cells are >= an earlier one's.
  HdrSnapshot snapshot() const;

  /// Fold a (delta) snapshot's cells into this live histogram. The sharded
  /// worlds use this to publish per-shard histograms into a registry-owned
  /// instrument: integer cell adds commute, so absorbing shard deltas in
  /// shard-index order yields the same counts as recording directly.
  /// False (and no-op) when the layouts differ.
  bool absorb(const HdrSnapshot& delta);

 private:
#if CADET_OBS_ENABLED
  using Cell = std::atomic<std::uint64_t>;
#else
  using Cell = std::uint64_t;
#endif

  std::uint64_t cell_value(std::size_t flat_index) const noexcept;
  void cell_add(std::size_t flat_index, std::uint64_t n) noexcept;
  std::size_t stripe_base() const noexcept;

  HdrLayout layout_;
  std::size_t stripes_ = 1;
  std::size_t cells_per_stripe_ = 0;
  // [stripe][cell] flattened; trailing per-stripe slots hold sum (in ns)
  // and the saturation count so they shard like the cells do.
  std::vector<Cell> cells_;
  std::vector<Cell> sum_ns_;     // one per stripe
  std::vector<Cell> saturated_;  // one per stripe
};

}  // namespace cadet::obs
