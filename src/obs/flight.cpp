#include "obs/flight.h"

#include <algorithm>
#include <cstring>

#if CADET_OBS_ENABLED
#include <atomic>
#endif

#ifdef _WIN32
#include <io.h>
#define CADET_WRITE _write
#else
#include <unistd.h>
#define CADET_WRITE ::write
#endif

namespace cadet::obs {

#if CADET_OBS_ENABLED

namespace detail {
std::atomic<bool> g_flight_armed{false};

void flight_append(const TraceEvent& event) noexcept {
  FlightRecorder::global().append(event);
}
}  // namespace detail

namespace {

constexpr std::size_t kPayloadWords =
    (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Sequence-word protocol: 0 = never written, odd = write in progress,
// 2*(ticket+1) = record for `ticket` is complete.
constexpr std::uint64_t seq_done(std::uint64_t ticket) {
  return 2 * (ticket + 1);
}
constexpr std::uint64_t seq_busy(std::uint64_t ticket) {
  return 2 * ticket + 1;
}

// ---- async-signal-safe formatting helpers (no allocation, no stdio) ----

std::size_t put_str(char* buf, std::size_t cap, std::size_t at,
                    const char* s) noexcept {
  if (s == nullptr) return at;
  while (*s != '\0' && at < cap) buf[at++] = *s++;
  return at;
}

std::size_t put_u64(char* buf, std::size_t cap, std::size_t at,
                    std::uint64_t v) noexcept {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && at < cap) buf[at++] = digits[--n];
  return at;
}

// Nanosecond SimTime as fixed-point seconds ("1.234567890"), matching the
// tracer's %.9f rendering.
std::size_t put_ts(char* buf, std::size_t cap, std::size_t at,
                   std::int64_t ts_ns) noexcept {
  if (ts_ns < 0) {
    at = put_str(buf, cap, at, "-");
    ts_ns = -ts_ns;
  }
  const std::uint64_t ns = static_cast<std::uint64_t>(ts_ns);
  at = put_u64(buf, cap, at, ns / 1000000000u);
  if (at < cap) buf[at++] = '.';
  std::uint64_t frac = ns % 1000000000u;
  for (std::uint64_t div = 100000000u; div > 0 && at < cap; div /= 10) {
    buf[at++] = static_cast<char>('0' + frac / div);
    frac %= div;
  }
  return at;
}

// Attribute doubles as fixed-point with 6 fractional digits — covers the
// counts/bytes/durations the engines attach; precision loss past ~9e12 is
// an acceptable trade for signal safety.
std::size_t put_double(char* buf, std::size_t cap, std::size_t at,
                       double v) noexcept {
  if (v < 0) {
    at = put_str(buf, cap, at, "-");
    v = -v;
  }
  if (!(v < 9.2e12)) return put_str(buf, cap, at, "9.2e12");
  const std::uint64_t micro =
      static_cast<std::uint64_t>(v * 1e6 + 0.5);
  at = put_u64(buf, cap, at, micro / 1000000u);
  if (at < cap) buf[at++] = '.';
  std::uint64_t frac = micro % 1000000u;
  for (std::uint64_t div = 100000u; div > 0 && at < cap; div /= 10) {
    buf[at++] = static_cast<char>('0' + frac / div);
    frac %= div;
  }
  return at;
}

std::size_t format_record(const TraceEvent& ev, char* buf,
                          std::size_t cap) noexcept {
  std::size_t at = 0;
  at = put_str(buf, cap, at, "{\"ts\":");
  at = put_ts(buf, cap, at, ev.ts);
  at = put_str(buf, cap, at, ",\"ev\":\"");
  at = put_str(buf, cap, at, ev.name);
  at = put_str(buf, cap, at, "\",\"tier\":\"");
  at = put_str(buf, cap, at, ev.tier);
  at = put_str(buf, cap, at, "\",\"node\":");
  at = put_u64(buf, cap, at, ev.node);
  if (ev.trace != 0) {
    at = put_str(buf, cap, at, ",\"trace\":");
    at = put_u64(buf, cap, at, ev.trace);
  }
  if (ev.span != 0) {
    at = put_str(buf, cap, at, ",\"span\":");
    at = put_u64(buf, cap, at, ev.span);
  }
  if (ev.parent != 0) {
    at = put_str(buf, cap, at, ",\"parent\":");
    at = put_u64(buf, cap, at, ev.parent);
  }
  if (ev.phase != 0 && at + 10 < cap) {
    at = put_str(buf, cap, at, ",\"ph\":\"");
    buf[at++] = ev.phase;
    at = put_str(buf, cap, at, "\"");
  }
  const std::uint8_t n =
      std::min<std::uint8_t>(ev.num_attrs,
                             static_cast<std::uint8_t>(ev.attrs.size()));
  for (std::uint8_t i = 0; i < n; ++i) {
    if (ev.attrs[i].key == nullptr) continue;
    at = put_str(buf, cap, at, ",\"");
    at = put_str(buf, cap, at, ev.attrs[i].key);
    at = put_str(buf, cap, at, "\":");
    at = put_double(buf, cap, at, ev.attrs[i].value);
  }
  at = put_str(buf, cap, at, "}");
  if (at < cap) buf[at++] = '\n';
  return at;
}

}  // namespace

struct FlightRecorder::Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> words[kPayloadWords];
};

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(std::max<std::size_t>(capacity, 2))) {
  slots_ = new Slot[capacity_]();
}

FlightRecorder::~FlightRecorder() { delete[] slots_; }

std::uint64_t FlightRecorder::appended() const noexcept {
  return head_.load(std::memory_order_relaxed) -
         dropped_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void FlightRecorder::append(const TraceEvent& event) noexcept {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // The slot must still hold the record from exactly one lap ago (or be
  // virgin). If not, a writer stalled long enough to be lapped — drop this
  // record rather than tear a newer one.
  std::uint64_t expected =
      ticket >= capacity_ ? seq_done(ticket - capacity_) : 0;
  if (!slot.seq.compare_exchange_strong(expected, seq_busy(ticket),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t tmp[kPayloadWords] = {};
  std::memcpy(tmp, &event, sizeof(event));
  for (std::size_t w = 0; w < kPayloadWords; ++w) {
    slot.words[w].store(tmp[w], std::memory_order_relaxed);
  }
  slot.seq.store(seq_done(ticket), std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::dump() const {
  std::vector<TraceEvent> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t oldest = head >= capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - oldest));
  for (std::uint64_t t = oldest; t < head; ++t) {
    const Slot& slot = slots_[t & (capacity_ - 1)];
    if (slot.seq.load(std::memory_order_acquire) != seq_done(t)) continue;
    std::uint64_t tmp[kPayloadWords];
    for (std::size_t w = 0; w < kPayloadWords; ++w) {
      tmp[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_done(t)) continue;
    TraceEvent ev;
    std::memcpy(&ev, tmp, sizeof(ev));
    out.push_back(ev);
  }
  return out;
}

std::string FlightRecorder::dump_jsonl() const {
  std::string out;
  for (const TraceEvent& ev : dump()) {
    out += to_json(ev);
    out += '\n';
  }
  return out;
}

std::size_t FlightRecorder::dump_to_fd(int fd) const noexcept {
  std::size_t written = 0;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t oldest = head >= capacity_ ? head - capacity_ : 0;
  for (std::uint64_t t = oldest; t < head; ++t) {
    const Slot& slot = slots_[t & (capacity_ - 1)];
    if (slot.seq.load(std::memory_order_acquire) != seq_done(t)) continue;
    std::uint64_t tmp[kPayloadWords];
    for (std::size_t w = 0; w < kPayloadWords; ++w) {
      tmp[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_done(t)) continue;
    TraceEvent ev;
    std::memcpy(&ev, tmp, sizeof(ev));
    char line[768];
    const std::size_t n = format_record(ev, line, sizeof(line));
    if (CADET_WRITE(fd, line, static_cast<unsigned>(n)) < 0) break;
    ++written;
  }
  return written;
}

void FlightRecorder::clear() noexcept {
  for (std::size_t i = 0; i < capacity_; ++i) {
    for (std::size_t w = 0; w < kPayloadWords; ++w) {
      slots_[i].words[w].store(0, std::memory_order_relaxed);
    }
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

void arm_flight_recorder(bool on) noexcept {
  detail::g_flight_armed.store(on, std::memory_order_relaxed);
}

bool flight_recorder_armed() noexcept {
  return detail::g_flight_armed.load(std::memory_order_relaxed);
}

#else  // !CADET_OBS_ENABLED

struct FlightRecorder::Slot {};

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity) {}
FlightRecorder::~FlightRecorder() = default;
std::uint64_t FlightRecorder::appended() const noexcept { return 0; }
std::uint64_t FlightRecorder::dropped() const noexcept { return 0; }
void FlightRecorder::append(const TraceEvent&) noexcept {}
std::vector<TraceEvent> FlightRecorder::dump() const { return {}; }
std::string FlightRecorder::dump_jsonl() const { return {}; }
std::size_t FlightRecorder::dump_to_fd(int) const noexcept { return 0; }
void FlightRecorder::clear() noexcept {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void arm_flight_recorder(bool) noexcept {}
bool flight_recorder_armed() noexcept { return false; }

#endif  // CADET_OBS_ENABLED

}  // namespace cadet::obs
