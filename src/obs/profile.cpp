#include "obs/profile.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace cadet::obs {

namespace {

/// Inclusive sim time = self + subtree (wall is stored inclusive already;
/// sim is charged to the innermost scope only).
std::uint64_t inclusive_sim(const std::vector<Profiler::Node>& nodes,
                            std::uint32_t index) {
  std::uint64_t total = nodes[index].sim_ns;
  for (const std::uint32_t child : nodes[index].children) {
    total += inclusive_sim(nodes, child);
  }
  return total;
}

std::uint64_t children_wall(const std::vector<Profiler::Node>& nodes,
                            std::uint32_t index) {
  std::uint64_t total = 0;
  for (const std::uint32_t child : nodes[index].children) {
    total += nodes[child].wall_ns;
  }
  return total;
}

void append_stack(const std::vector<Profiler::Node>& nodes,
                  std::uint32_t index, std::string& out) {
  if (index == 0) return;
  append_stack(nodes, nodes[index].parent, out);
  if (nodes[index].parent != 0) out += ';';
  out += nodes[index].name;
}

void folded_walk(const std::vector<Profiler::Node>& nodes,
                 std::uint32_t index, bool sim_time, std::string& out) {
  if (index != 0) {
    const std::uint64_t child_wall = children_wall(nodes, index);
    const std::uint64_t self_ns =
        sim_time ? nodes[index].sim_ns
                 : (nodes[index].wall_ns > child_wall
                        ? nodes[index].wall_ns - child_wall
                        : 0);
    const std::uint64_t self_us = self_ns / 1000;
    if (self_us > 0) {
      append_stack(nodes, index, out);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", self_us);
      out += buf;
    }
  }
  for (const std::uint32_t child : nodes[index].children) {
    folded_walk(nodes, child, sim_time, out);
  }
}

void report_walk(const std::vector<Profiler::Node>& nodes,
                 std::uint32_t index, int depth, std::string& out) {
  if (index != 0) {
    const std::uint64_t child_wall = children_wall(nodes, index);
    const std::uint64_t excl_wall =
        nodes[index].wall_ns > child_wall ? nodes[index].wall_ns - child_wall
                                          : 0;
    const std::uint64_t incl_sim = inclusive_sim(nodes, index);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%*s%-*s %10" PRIu64 "  wall %9.3f/%9.3f ms"
                  "  sim %9.3f/%9.3f ms\n",
                  depth * 2, "", 28 - depth * 2, nodes[index].name,
                  nodes[index].calls, nodes[index].wall_ns / 1e6,
                  excl_wall / 1e6, incl_sim / 1e6,
                  nodes[index].sim_ns / 1e6);
    out += line;
  }
  for (const std::uint32_t child : nodes[index].children) {
    report_walk(nodes, child, depth + (index != 0 ? 1 : 0), out);
  }
}

}  // namespace

std::uint32_t Profiler::push(const char* name) {
  const std::uint32_t prev = current_;
  for (const std::uint32_t child : nodes_[prev].children) {
    // Compare by content: the same literal may have distinct addresses
    // across translation units.
    if (nodes_[child].name == name ||
        std::strcmp(nodes_[child].name, name) == 0) {
      current_ = child;
      return prev;
    }
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.name = name;
  node.parent = prev;
  nodes_.push_back(std::move(node));
  nodes_[prev].children.push_back(index);
  current_ = index;
  return prev;
}

void Profiler::pop(std::uint32_t prev, std::uint64_t wall_ns) {
  Node& node = nodes_[current_];
  node.calls += 1;
  node.wall_ns += wall_ns;
  current_ = prev;
}

std::string Profiler::folded(bool sim_time) const {
  std::string out;
  folded_walk(nodes_, 0, sim_time, out);
  return out;
}

std::string Profiler::report() const {
  std::string out;
  out +=
      "scope                             calls  wall incl/excl        "
      "sim incl/excl\n";
  report_walk(nodes_, 0, 0, out);
  return out;
}

void Profiler::reset() {
  nodes_.clear();
  Node root;
  root.name = "(root)";
  nodes_.push_back(std::move(root));
  current_ = 0;
}

Profiler& Profiler::global() {
  static Profiler* instance = new Profiler();  // never destroyed
  return *instance;
}

}  // namespace cadet::obs
