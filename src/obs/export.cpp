#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>

#include "obs/csv.h"
#include "obs/hdr.h"
#include "obs/sharded.h"

namespace cadet::obs {

namespace {

// Label-value escaping per the exposition spec: backslash, double-quote,
// and newline must be escaped inside the quoted value.
void append_escaped_label(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped_label(out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped_label(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

void append_json_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

const char* kind_name(Registry::Kind kind) {
  switch (kind) {
    // The sharded/HDR health-plane instruments export as the plain
    // Prometheus types they are semantically — scrapers need no new
    // machinery.
    case Registry::Kind::kCounter:
    case Registry::Kind::kShardedCounter: return "counter";
    case Registry::Kind::kGauge: return "gauge";
    case Registry::Kind::kHistogram:
    case Registry::Kind::kHdr: return "histogram";
  }
  return "?";
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  std::string last_name;
  for (const auto& entry : registry.entries()) {
    if (entry.name != last_name) {
      out += "# TYPE " + entry.name + ' ' + kind_name(entry.kind) + '\n';
      last_name = entry.name;
    }
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        out += entry.name + "_total" + label_block(entry.labels) + ' ' +
               std::to_string(entry.counter->value()) + '\n';
        break;
      case Registry::Kind::kGauge:
        out += entry.name + label_block(entry.labels) + ' ' +
               std::to_string(entry.gauge->value()) + '\n';
        break;
      case Registry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket(i);
          out += entry.name + "_bucket" +
                 label_block(entry.labels, "le",
                             format_double(h.upper_bound(i))) +
                 ' ' + std::to_string(cumulative) + '\n';
        }
        out += entry.name + "_sum" + label_block(entry.labels) + ' ' +
               format_double(h.sum()) + '\n';
        out += entry.name + "_count" + label_block(entry.labels) + ' ' +
               std::to_string(h.count()) + '\n';
        break;
      }
      case Registry::Kind::kShardedCounter:
        out += entry.name + "_total" + label_block(entry.labels) + ' ' +
               std::to_string(entry.sharded->value()) + '\n';
        break;
      case Registry::Kind::kHdr: {
        // Only populated cells become buckets: an HDR histogram has ~1k
        // cells and a typical run touches a few dozen, so the exposition
        // stays compact while keeping full cell precision (le is the
        // cell's exclusive upper edge in seconds).
        const HdrSnapshot snap = entry.hdr->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          if (snap.counts[i] == 0) continue;
          cumulative += snap.counts[i];
          out += entry.name + "_bucket" +
                 label_block(
                     entry.labels, "le",
                     format_double(static_cast<double>(
                                       snap.layout.value_hi(i)) *
                                   1e-9)) +
                 ' ' + std::to_string(cumulative) + '\n';
        }
        out += entry.name + "_bucket" +
               label_block(entry.labels, "le", "+Inf") + ' ' +
               std::to_string(snap.count) + '\n';
        out += entry.name + "_sum" + label_block(entry.labels) + ' ' +
               format_double(snap.sum_s) + '\n';
        out += entry.name + "_count" + label_block(entry.labels) + ' ' +
               std::to_string(snap.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& entry : registry.entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + entry.name + "\",\"kind\":\"" +
           kind_name(entry.kind) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : entry.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"' + key + "\":\"";
      append_json_escaped(out, value);
      out += '"';
    }
    out += '}';
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        out += ",\"value\":" + std::to_string(entry.counter->value());
        break;
      case Registry::Kind::kGauge:
        out += ",\"value\":" + std::to_string(entry.gauge->value());
        break;
      case Registry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += ",\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + format_double(h.sum()) + ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (i) out += ',';
          out += "{\"le\":";
          out += std::isinf(h.upper_bound(i))
                     ? "null"
                     : format_double(h.upper_bound(i));
          out += ",\"count\":" + std::to_string(h.bucket(i)) + '}';
        }
        out += ']';
        break;
      }
      case Registry::Kind::kShardedCounter:
        out += ",\"value\":" + std::to_string(entry.sharded->value());
        break;
      case Registry::Kind::kHdr: {
        const HdrSnapshot snap = entry.hdr->snapshot();
        out += ",\"count\":" + std::to_string(snap.count) +
               ",\"sum\":" + format_double(snap.sum_s) + ",\"buckets\":[";
        bool first_cell = true;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          if (snap.counts[i] == 0) continue;
          if (!first_cell) out += ',';
          first_cell = false;
          out += "{\"le\":" +
                 format_double(
                     static_cast<double>(snap.layout.value_hi(i)) * 1e-9) +
                 ",\"count\":" + std::to_string(snap.counts[i]) + '}';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void write_csv(const Registry& registry, std::ostream& out) {
  out << csv_join({"name", "labels", "kind", "value"}) << '\n';
  for (const auto& entry : registry.entries()) {
    std::string labels;
    for (const auto& [key, value] : entry.labels) {
      if (!labels.empty()) labels += ';';
      labels += key + '=' + value;
    }
    std::string value;
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        value = std::to_string(entry.counter->value());
        break;
      case Registry::Kind::kGauge:
        value = std::to_string(entry.gauge->value());
        break;
      case Registry::Kind::kHistogram:
        value = std::to_string(entry.histogram->count()) + " obs, sum " +
                format_double(entry.histogram->sum());
        break;
      case Registry::Kind::kShardedCounter:
        value = std::to_string(entry.sharded->value());
        break;
      case Registry::Kind::kHdr:
        value = std::to_string(entry.hdr->count()) + " obs, sum " +
                format_double(entry.hdr->sum());
        break;
    }
    out << csv_join({entry.name, labels, kind_name(entry.kind), value})
        << '\n';
  }
}

PromParse parse_prometheus(std::string_view text) {
  PromParse result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only "# TYPE <family> <type>" comments carry structure.
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) == kType) {
        const std::string_view rest = line.substr(kType.size());
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          result.errors.emplace_back(line);
        } else {
          result.types.emplace_back(std::string(rest.substr(0, space)),
                                    std::string(rest.substr(space + 1)));
        }
      }
      continue;
    }

    PromSample sample;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0 || i == line.size()) {
      result.errors.emplace_back(line);
      continue;
    }
    sample.name = std::string(line.substr(0, i));

    bool bad = false;
    if (line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          bad = true;
          break;
        }
        std::string key(line.substr(i, eq - i));
        std::string value;
        std::size_t j = eq + 2;  // past the opening quote
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < line.size()) {
            const char esc = line[j + 1];
            value += esc == 'n' ? '\n' : esc;
            j += 2;
          } else {
            value += line[j++];
          }
        }
        if (j >= line.size()) {  // unterminated value
          bad = true;
          break;
        }
        sample.labels.emplace_back(std::move(key), std::move(value));
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (bad || i >= line.size()) {
        result.errors.emplace_back(line);
        continue;
      }
      ++i;  // past '}'
    }

    if (i >= line.size() || line[i] != ' ') {
      result.errors.emplace_back(line);
      continue;
    }
    const std::string value_text(line.substr(i + 1));
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
      sample.value = -std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        result.errors.emplace_back(line);
        continue;
      }
    }
    result.samples.push_back(std::move(sample));
  }
  return result;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace cadet::obs
