#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/csv.h"

namespace cadet::obs {

namespace {

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

const char* kind_name(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter: return "counter";
    case Registry::Kind::kGauge: return "gauge";
    case Registry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  std::string last_name;
  for (const auto& entry : registry.entries()) {
    if (entry.name != last_name) {
      out += "# TYPE " + entry.name + ' ' + kind_name(entry.kind) + '\n';
      last_name = entry.name;
    }
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        out += entry.name + "_total" + label_block(entry.labels) + ' ' +
               std::to_string(entry.counter->value()) + '\n';
        break;
      case Registry::Kind::kGauge:
        out += entry.name + label_block(entry.labels) + ' ' +
               std::to_string(entry.gauge->value()) + '\n';
        break;
      case Registry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket(i);
          out += entry.name + "_bucket" +
                 label_block(entry.labels, "le",
                             format_double(h.upper_bound(i))) +
                 ' ' + std::to_string(cumulative) + '\n';
        }
        out += entry.name + "_sum" + label_block(entry.labels) + ' ' +
               format_double(h.sum()) + '\n';
        out += entry.name + "_count" + label_block(entry.labels) + ' ' +
               std::to_string(h.count()) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& entry : registry.entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + entry.name + "\",\"kind\":\"" +
           kind_name(entry.kind) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : entry.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"' + key + "\":\"" + value + '"';
    }
    out += '}';
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        out += ",\"value\":" + std::to_string(entry.counter->value());
        break;
      case Registry::Kind::kGauge:
        out += ",\"value\":" + std::to_string(entry.gauge->value());
        break;
      case Registry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += ",\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + format_double(h.sum()) + ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (i) out += ',';
          out += "{\"le\":";
          out += std::isinf(h.upper_bound(i))
                     ? "null"
                     : format_double(h.upper_bound(i));
          out += ",\"count\":" + std::to_string(h.bucket(i)) + '}';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void write_csv(const Registry& registry, std::ostream& out) {
  out << csv_join({"name", "labels", "kind", "value"}) << '\n';
  for (const auto& entry : registry.entries()) {
    std::string labels;
    for (const auto& [key, value] : entry.labels) {
      if (!labels.empty()) labels += ';';
      labels += key + '=' + value;
    }
    std::string value;
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        value = std::to_string(entry.counter->value());
        break;
      case Registry::Kind::kGauge:
        value = std::to_string(entry.gauge->value());
        break;
      case Registry::Kind::kHistogram:
        value = std::to_string(entry.histogram->count()) + " obs, sum " +
                format_double(entry.histogram->sum());
        break;
    }
    out << csv_join({entry.name, labels, kind_name(entry.kind), value})
        << '\n';
  }
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace cadet::obs
