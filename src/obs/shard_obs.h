// Per-shard observability plane for the sharded deterministic worlds.
//
// The per-node engines emit straight into the process-global Tracer and
// Registry; at a million clients the sharded world (testbed/scale.h) runs
// its sub-worlds concurrently on a thread pool, so a shared tracer would
// serialize the hot path AND interleave events in worker order — breaking
// the any-`-j` byte-identical export guarantee the scale path is built on.
//
// ShardObsPlane solves both with the same discipline as the MergeQueue:
// one delta buffer per stream (one stream per edge shard, one for the
// server shard, one for the window barrier itself), written lock-free by
// its single owner during a window, and folded by ONE thread at the window
// barrier in {ts, seq, shard} order. The fold is watermark-gated: only
// events timestamped before the merged watermark move to the sink, so an
// event recorded "in the future" (a boundary crossing scheduled up to two
// windows ahead) is held until every stream has advanced past its
// timestamp. By induction over barriers the folded sequence is a pure
// function of the simulation state — the same argument, and the same
// witness structure, as the per-shard FNV trace checksums.
//
// Latency observations ride per-stream HdrHistograms; integer cells add
// commutatively, so merging the per-shard histograms in shard-index order
// yields counts independent of which worker ran which shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/hdr.h"
#include "obs/trace.h"
#include "util/time.h"

namespace cadet::obs {

/// One stream's delta state: a trace-event buffer with a private sequence
/// counter plus a latency histogram. Exactly one owner writes during a
/// window (the shard that owns the stream); the plane folds at barriers.
class ShardObs {
 public:
  ShardObs(std::uint32_t shard, const HdrConfig& latency_config)
      : shard_(shard), latency_(latency_config) {}

  std::uint32_t shard() const noexcept { return shard_; }

  /// Buffer one trace event, stamping `shard` and `seq` attributes (the
  /// merge keys cadet_trace validates). No-op while the plane's tracing
  /// gate is off; compiled out entirely under CADET_OBS=OFF.
  void emit(const TraceEvent& event) noexcept;

  /// Record one latency observation into the stream's histogram. No-op
  /// while the plane's collection gate is off.
  void record(double seconds) noexcept {
    if (collecting_) latency_.record(seconds);
  }

  const HdrHistogram& latency() const noexcept { return latency_; }
  /// Events buffered by this stream so far (== the next seq stamp).
  std::uint64_t emitted() const noexcept { return seq_; }
  /// Events still held in the buffer (not yet folded past the watermark).
  std::size_t buffered() const noexcept { return buffer_.size(); }

  std::size_t memory_bytes() const noexcept;

  /// A buffered event with its fold keys (public so the fold comparator
  /// and the plane's scratch vector can name it).
  struct Buffered {
    TraceEvent event;
    std::uint64_t seq = 0;
    std::uint32_t shard = 0;
  };

 private:
  friend class ShardObsPlane;

  std::uint32_t shard_ = 0;
  bool tracing_ = false;
  bool collecting_ = true;
  std::uint64_t seq_ = 0;
  HdrHistogram latency_;
  std::vector<Buffered> buffer_;
};

class ShardObsPlane {
 public:
  /// `num_edges` edge streams + one server stream + one boundary stream.
  /// `latency_config` sizes every stream's histogram (fulfillment
  /// latencies live well under its 16 s default ceiling).
  explicit ShardObsPlane(std::size_t num_edges,
                         const HdrConfig& latency_config = scale_latency());

  /// Histogram layouts tuned for the scale path: tighter ceilings than
  /// the registry default keep ~1000 per-shard instruments small.
  static HdrConfig scale_latency() noexcept;    // 1 ns .. 16 s
  static HdrConfig boundary_crossing() noexcept;  // 1 ns .. 1 s
  static HdrConfig boundary_batch() noexcept;   // counts in integer cells

  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t num_streams() const noexcept { return streams_.size(); }

  ShardObs& edge(std::size_t s) noexcept { return streams_[s]; }
  const ShardObs& edge(std::size_t s) const noexcept { return streams_[s]; }
  ShardObs& server() noexcept { return streams_[num_edges_]; }
  ShardObs& boundary() noexcept { return streams_[num_edges_ + 1]; }
  const ShardObs& boundary() const noexcept {
    return streams_[num_edges_ + 1];
  }

  /// Tracing gate: while off, emit() is a flag test and the fold is free.
  /// Compiles to a no-op under CADET_OBS=OFF so call sites guarded by
  /// tracing() drop out entirely.
  void enable_tracing(bool on) noexcept;
  bool tracing() const noexcept { return tracing_; }

  /// Collection gate for the always-on instruments (latency + boundary
  /// histograms). On by default; the bench disables it to measure the
  /// plane's cost against a dark world.
  void set_enabled(bool on) noexcept;
  bool enabled() const noexcept { return enabled_; }

  /// Boundary instruments, written single-threaded at the barrier:
  /// crossing latency (delivery time minus emission time) and batch
  /// occupancy (events per drain, kept in the histogram's integer cells
  /// as n nanoseconds — exact to the layout's cell precision).
  void record_crossing(double seconds) noexcept {
    if (enabled_) crossing_.record(seconds);
  }
  void record_batch(std::uint64_t events) noexcept {
    if (enabled_) occupancy_.record(static_cast<double>(events) * 1e-9);
  }
  const HdrHistogram& crossing() const noexcept { return crossing_; }
  const HdrHistogram& occupancy() const noexcept { return occupancy_; }

  /// Fold every stream's buffered events with ts < `watermark` into
  /// `tracer` (may be null to discard), ordered by {ts, seq, shard}.
  /// Events at or past the watermark stay buffered for a later barrier.
  /// Single-threaded: call only from the window barrier. Returns the
  /// number of events folded.
  std::size_t fold_window(Tracer* tracer, util::SimTime watermark);
  /// Final fold with an unbounded watermark (end of run).
  std::size_t fold_all(Tracer* tracer);

  std::uint64_t events_folded() const noexcept { return folded_; }

  /// Per-edge latency histograms merged in shard-index order — the
  /// deterministic aggregate the registry publication absorbs.
  HdrSnapshot merged_latency() const;

  std::size_t memory_bytes() const noexcept;

 private:
  std::size_t num_edges_ = 0;
  bool tracing_ = false;
  bool enabled_ = true;
  std::uint64_t folded_ = 0;
  std::vector<ShardObs> streams_;
  HdrHistogram crossing_;
  HdrHistogram occupancy_;
  std::vector<ShardObs::Buffered> scratch_;  // fold workspace, reused
};

}  // namespace cadet::obs
