// Causal span tracing over the JSONL event tracer.
//
// A *trace* is one client-initiated operation (entropy request or upload);
// a *span* is one unit of work inside it (the client-side request lifetime,
// an edge serve decision, a server pool draw, an e2e relay). Span records
// ride the existing TraceEvent stream as phase 'B'/'E'/'X' records carrying
// {trace, span, parent} ids, so one request's full story — retries, dedup
// drops, cache hit vs. server refill, fallback — reconstructs from the
// trace alone (tools/cadet_report, cadet_trace --spans). Span ids ride the
// *existing* protocol events: with spans enabled the "request" record
// becomes the root's 'B', the terminal "reply"/"fallback"/"request_expired"
// record its 'E', and serve decisions become zero-length 'X' spans — the
// trace gains id fields, not extra lines.
//
// Propagation: the engines are sans-IO and share no call stack across the
// wire, so context rides the PR-3 per-sender wire seq instead of a new
// wire field — the sender binds (sender node, seq) -> context in the
// process-global SpanTracker at wire() time, and the receiver's handler
// adopts the binding keyed by the packet header it just parsed. Zero bytes
// of wire-format growth; retransmissions reuse the same seq and therefore
// the same binding.
//
// Nesting discipline (what makes the acceptance check hold): only trace
// roots have duration — the client request span (closes at fulfilled /
// fallback / expired) and the edge refill span (closes at server data or
// declared loss). Every downstream span is zero-length (a single
// phase-'X' record) and parents directly on the root it rides, so child
// sim-timestamps nest inside the parent interval by causality.
//
// Determinism: ids are sequential from a single tracker; engines run
// single-threaded per world, so same seed => byte-identical span trace.
// Multi-world runs (cadet_sweep -j) keep spans disabled. reset() re-zeroes
// the counters so a same-seed rerun reproduces identical ids.
//
// Everything here compiles out under CADET_OBS=OFF.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <unordered_map>

#include "obs/metrics.h"  // for CADET_OBS_ENABLED
#include "obs/trace.h"
#include "util/time.h"

namespace cadet::obs {

struct SpanContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  bool valid() const noexcept { return trace != 0; }
};

/// Process-global id allocator + wire-seq correlation table.
class SpanTracker {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept {
#if CADET_OBS_ENABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Allocate a fresh trace with its root span.
  SpanContext start_trace() {
    if (!enabled()) return {};
    return {++next_trace_, ++next_span_};
  }

  /// Allocate a child span id (caller supplies the trace it belongs to).
  std::uint64_t new_span() { return enabled() ? ++next_span_ : 0; }

  /// Bind an outgoing packet's (sender, seq) to the context downstream
  /// spans should parent on. Overwrites: the u16 seq wraps, and the newest
  /// in-flight binding is the one a receiver can observe.
  void bind_seq(std::uint64_t sender, std::uint16_t seq, SpanContext ctx) {
    if (!enabled()) return;
    seq_map_[key(sender, seq)] = ctx;
  }

  /// Context bound to an incoming packet's (sender, seq); invalid context
  /// if the sender never bound it (e.g. spans were off when it was sent).
  SpanContext lookup_seq(std::uint64_t sender, std::uint16_t seq) const {
    if (!enabled()) return {};
    const auto it = seq_map_.find(key(sender, seq));
    return it == seq_map_.end() ? SpanContext{} : it->second;
  }

  /// Forget everything: id counters restart from 1 and the seq table
  /// empties, so a same-seed rerun emits a byte-identical span trace.
  void reset() {
    next_trace_ = 0;
    next_span_ = 0;
    seq_map_.clear();
  }

  static SpanTracker& global();

 private:
  static std::uint64_t key(std::uint64_t sender, std::uint16_t seq) noexcept {
    return (sender << 16) | seq;
  }

  bool enabled_ = false;
  std::uint64_t next_trace_ = 0;
  std::uint64_t next_span_ = 0;
  // Bounded: at most 65536 live keys per sender (seq wraps and overwrites).
  std::unordered_map<std::uint64_t, SpanContext> seq_map_;
};

namespace detail {
#if CADET_OBS_ENABLED
inline void emit_span(util::SimTime ts, const char* name, const char* tier,
                      std::uint64_t node, SpanContext ctx,
                      std::uint64_t parent, char phase,
                      std::initializer_list<TraceEvent::Attr> attrs) noexcept {
  Tracer& tracer = Tracer::global();
  const bool traced = tracer.enabled();
  const bool flight = g_flight_armed.load(std::memory_order_relaxed);
  if (!traced && !flight) return;
  TraceEvent event;
  event.ts = ts;
  event.name = name;
  event.tier = tier;
  event.node = node;
  if (ctx.valid()) {
    event.trace = ctx.trace;
    event.span = ctx.span;
    event.parent = parent;
    event.phase = phase;
  }
  // else: span tracking is off (or the sender never bound a context) — the
  // record degrades to the plain untagged event PR-1 emitted, so trace
  // cardinality and every existing consumer are unchanged.
  for (const auto& attr : attrs) {
    if (event.num_attrs >= event.attrs.size()) break;
    event.attrs[event.num_attrs++] = attr;
  }
  if (flight) flight_append(event);
  if (traced) tracer.record(event);
}
#endif
}  // namespace detail

/// Open span ctx.span (parent 0 for a trace root).
inline void span_begin(util::SimTime ts, const char* name, const char* tier,
                       std::uint64_t node, SpanContext ctx,
                       std::uint64_t parent = 0,
                       std::initializer_list<TraceEvent::Attr> attrs = {}) noexcept {
#if CADET_OBS_ENABLED
  detail::emit_span(ts, name, tier, node, ctx, parent, 'B', attrs);
#else
  (void)ts; (void)name; (void)tier; (void)node; (void)ctx; (void)parent;
  (void)attrs;
#endif
}

/// Close span ctx.span.
inline void span_end(util::SimTime ts, const char* name, const char* tier,
                     std::uint64_t node, SpanContext ctx,
                     std::initializer_list<TraceEvent::Attr> attrs = {}) noexcept {
#if CADET_OBS_ENABLED
  detail::emit_span(ts, name, tier, node, ctx, 0, 'E', attrs);
#else
  (void)ts; (void)name; (void)tier; (void)node; (void)ctx; (void)attrs;
#endif
}

/// Zero-length span: opened and closed at `ts` in one record (phase 'X').
/// Every non-root span uses this — only the client request root and the
/// edge refill root have duration, which is what keeps child timestamps
/// nested inside their parent interval.
inline void span_complete(util::SimTime ts, const char* name,
                          const char* tier, std::uint64_t node,
                          SpanContext ctx, std::uint64_t parent,
                          std::initializer_list<TraceEvent::Attr> attrs = {}) noexcept {
#if CADET_OBS_ENABLED
  detail::emit_span(ts, name, tier, node, ctx, parent, 'X', attrs);
#else
  (void)ts; (void)name; (void)tier; (void)node; (void)ctx; (void)parent;
  (void)attrs;
#endif
}

/// Instant event tagged with the trace/span it occurred under (no phase).
inline void span_event(util::SimTime ts, const char* name, const char* tier,
                       std::uint64_t node, SpanContext ctx,
                       std::initializer_list<TraceEvent::Attr> attrs = {}) noexcept {
#if CADET_OBS_ENABLED
  detail::emit_span(ts, name, tier, node, ctx, 0, 0, attrs);
#else
  (void)ts; (void)name; (void)tier; (void)node; (void)ctx; (void)attrs;
#endif
}

}  // namespace cadet::obs
