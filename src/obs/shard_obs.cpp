#include "obs/shard_obs.h"

#include <algorithm>
#include <limits>

namespace cadet::obs {

namespace {

/// Fold order: delivery/record time, then the per-stream emission
/// sequence, then the owning stream's shard index — the same total order
/// the MergeQueue drains boundary events in, for the same reason: it is a
/// pure function of simulation state, never of worker scheduling.
inline bool fold_before(const ShardObs::Buffered& x,
                        const ShardObs::Buffered& y) noexcept {
  if (x.event.ts != y.event.ts) return x.event.ts < y.event.ts;
  if (x.seq != y.seq) return x.seq < y.seq;
  return x.shard < y.shard;
}

}  // namespace

void ShardObs::emit(const TraceEvent& event) noexcept {
#if CADET_OBS_ENABLED
  if (!tracing_) return;
  Buffered entry;
  entry.event = event;
  entry.seq = seq_++;
  entry.shard = shard_;
  // Stamp the merge keys as attributes so the exported artifact carries
  // the order proof cadet_trace re-validates offline.
  if (entry.event.num_attrs + 2 <= static_cast<int>(entry.event.attrs.size())) {
    entry.event.attrs[entry.event.num_attrs++] = {
        "shard", static_cast<double>(shard_)};
    entry.event.attrs[entry.event.num_attrs++] = {
        "seq", static_cast<double>(entry.seq)};
  }
  buffer_.push_back(entry);
#else
  (void)event;
#endif
}

std::size_t ShardObs::memory_bytes() const noexcept {
  return buffer_.capacity() * sizeof(Buffered) +
         latency_.layout().cell_count() * sizeof(std::uint64_t);
}

ShardObsPlane::ShardObsPlane(std::size_t num_edges,
                             const HdrConfig& latency_config)
    : num_edges_(num_edges),
      crossing_(boundary_crossing()),
      occupancy_(boundary_batch()) {
  streams_.reserve(num_edges_ + 2);
  for (std::size_t k = 0; k < num_edges_ + 2; ++k) {
    streams_.emplace_back(static_cast<std::uint32_t>(k), latency_config);
  }
}

HdrConfig ShardObsPlane::scale_latency() noexcept {
  // Fulfillment rides two LAN hops + retries: everything of interest sits
  // under seconds. 16 s / 32 sub-buckets keeps a stream's cells ~4 KB, so
  // a thousand shards cost single-digit MB — a few bytes per client.
  HdrConfig config;
  config.sub_bucket_bits = 5;
  config.max_value_s = 16.0;
  return config;
}

HdrConfig ShardObsPlane::boundary_crossing() noexcept {
  HdrConfig config;
  config.sub_bucket_bits = 6;
  config.max_value_s = 1.0;  // crossings are window + jitter: ~8-18 ms
  return config;
}

HdrConfig ShardObsPlane::boundary_batch() noexcept {
  HdrConfig config;
  config.sub_bucket_bits = 6;
  config.max_value_s = 0.0167;  // batch sizes up to ~16.7M events, exact
                                // to the layout's 1/64 cell width
  return config;
}

void ShardObsPlane::enable_tracing(bool on) noexcept {
#if CADET_OBS_ENABLED
  tracing_ = on;
  for (ShardObs& stream : streams_) stream.tracing_ = on;
#else
  (void)on;  // trace buffering is compiled out; the gate stays closed
#endif
}

void ShardObsPlane::set_enabled(bool on) noexcept {
  enabled_ = on;
  for (ShardObs& stream : streams_) stream.collecting_ = on;
}

std::size_t ShardObsPlane::fold_window(Tracer* tracer,
                                       util::SimTime watermark) {
#if CADET_OBS_ENABLED
  if (!tracing_) return 0;
  scratch_.clear();
  for (ShardObs& stream : streams_) {
    std::size_t keep = 0;
    for (ShardObs::Buffered& entry : stream.buffer_) {
      if (entry.event.ts < watermark) {
        scratch_.push_back(entry);
      } else {
        stream.buffer_[keep++] = entry;  // held: timestamped in a future
                                         // window (boundary lookahead)
      }
    }
    stream.buffer_.resize(keep);
  }
  std::sort(scratch_.begin(), scratch_.end(), fold_before);
  if (tracer != nullptr) {
    for (const ShardObs::Buffered& entry : scratch_) {
      tracer->record(entry.event);
    }
  }
  folded_ += scratch_.size();
  return scratch_.size();
#else
  (void)tracer;
  (void)watermark;
  return 0;
#endif
}

std::size_t ShardObsPlane::fold_all(Tracer* tracer) {
  return fold_window(tracer, std::numeric_limits<util::SimTime>::max());
}

HdrSnapshot ShardObsPlane::merged_latency() const {
  HdrSnapshot merged = streams_.empty()
                           ? HdrSnapshot{}
                           : streams_[0].latency_.snapshot();
  for (std::size_t k = 1; k < streams_.size(); ++k) {
    merged.merge(streams_[k].latency_.snapshot());
  }
  return merged;
}

std::size_t ShardObsPlane::memory_bytes() const noexcept {
  std::size_t total = scratch_.capacity() * sizeof(ShardObs::Buffered) +
                      (crossing_.layout().cell_count() +
                       occupancy_.layout().cell_count()) *
                          sizeof(std::uint64_t);
  for (const ShardObs& stream : streams_) total += stream.memory_bytes();
  return total;
}

}  // namespace cadet::obs
