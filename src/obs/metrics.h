// Unified metrics registry shared by all three CADET tiers, the simulator,
// and the transports.
//
// Three instrument kinds, named and labeled Prometheus-style:
//   Counter   monotonically increasing u64 (uploads, cache hits, drops)
//   Gauge     signed instantaneous value (pool fill, queue depth)
//   Histogram fixed upper-bound buckets + sum + count (latencies)
//
// Registration (Registry::counter/gauge/histogram) takes a mutex and may
// allocate; it happens once per node at construction. The returned
// references have stable addresses for the registry's lifetime, and the
// increment/set/observe hot paths are lock-free: with CADET_OBS enabled
// they are relaxed atomics (safe for the threaded UDP path), with
// CADET_OBS=OFF they compile down to plain integer arithmetic — the exact
// cost of the ad-hoc `++stats_.field` counters they replaced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

#ifndef CADET_OBS_ENABLED
#define CADET_OBS_ENABLED 1
#endif

#if CADET_OBS_ENABLED
#include <atomic>
#endif

namespace cadet::obs {

class HdrHistogram;   // obs/hdr.h
struct HdrConfig;     // obs/hdr.h
class ShardedCounter; // obs/sharded.h

/// Metric labels: sorted key=value pairs (tier, node, ...).
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#if CADET_OBS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    value_ += n;
#endif
  }
  std::uint64_t value() const noexcept {
#if CADET_OBS_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return value_;
#endif
  }

 private:
#if CADET_OBS_ENABLED
  std::atomic<std::uint64_t> value_{0};
#else
  std::uint64_t value_ = 0;
#endif
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if CADET_OBS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    value_ = v;
#endif
  }
  void add(std::int64_t n) noexcept {
#if CADET_OBS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    value_ += n;
#endif
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  std::int64_t value() const noexcept {
#if CADET_OBS_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return value_;
#endif
  }

 private:
#if CADET_OBS_ENABLED
  std::atomic<std::int64_t> value_{0};
#else
  std::int64_t value_ = 0;
#endif
};

/// Cumulative histogram with fixed upper bounds (an implicit +Inf bucket is
/// always appended). observe() is lock-free; the sum is kept in fixed-point
/// nanounits so it needs no floating-point atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Upper bound of bucket i; the last bucket's bound is +infinity.
  double upper_bound(std::size_t i) const noexcept;
  /// Non-cumulative count of bucket i.
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].value();
  }
  std::uint64_t count() const noexcept { return count_.value(); }
  double sum() const noexcept {
    return static_cast<double>(
               static_cast<std::int64_t>(sum_nano_.value())) /
           1e9;
  }
  /// Linear-interpolated quantile estimate from the bucket counts.
  double quantile(double q) const noexcept;

  /// 10 exponential latency buckets from 100 us to ~3 s, suiting both LAN
  /// and WAN round trips.
  static std::vector<double> latency_seconds_bounds();

 private:
  std::vector<double> bounds_;  // finite upper bounds, ascending
  std::deque<Counter> buckets_;  // bounds_.size() + 1 (the +Inf bucket)
  Counter count_;
  Counter sum_nano_;  // sum in 1e-9 units, as a u64 two's-complement
};

/// Named + labeled instruments. One Registry is typically shared by a whole
/// deployment (testbed::World owns one); nodes constructed standalone fall
/// back to a private registry so unit tests stay isolated.
class Registry {
 public:
  Registry() = default;
  ~Registry();  // out of line: Slot holds unique_ptrs to forward-declared
                // health-plane instruments
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Same (name, labels) returns the same instrument.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name,
                       const Labels& labels = {},
                       std::vector<double> upper_bounds = {});
  /// Health-plane instruments (obs/sharded.h, obs/hdr.h): cache-line-
  /// sharded counter for threaded hot paths, and a log-linear HDR
  /// histogram for precise tail latencies. Both export under the plain
  /// counter/histogram Prometheus types.
  ShardedCounter& sharded_counter(const std::string& name,
                                  const Labels& labels = {});
  HdrHistogram& hdr(const std::string& name, const Labels& labels = {});
  HdrHistogram& hdr(const std::string& name, const Labels& labels,
                    const HdrConfig& config);

  enum class Kind { kCounter, kGauge, kHistogram, kShardedCounter, kHdr };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    const ShardedCounter* sharded = nullptr;
    const HdrHistogram* hdr = nullptr;
  };
  /// Stable snapshot of every registered instrument, sorted by (name,
  /// labels) so exports are deterministic.
  std::vector<Entry> entries() const;

  std::size_t size() const;

  /// Process-wide default registry (used when no explicit registry is
  /// wired; lives forever).
  static Registry& global();

 private:
  struct Slot {
    Slot();   // out of line: the unique_ptrs point at forward-declared
    ~Slot();  // health-plane instruments
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    std::string name;
    Labels labels;
    Kind kind;
    // Exactly one is engaged, matching `kind`. deque gives the instruments
    // stable addresses as the registry grows.
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<ShardedCounter> sharded;
    std::unique_ptr<HdrHistogram> hdr;
  };

  Slot& find_or_create(const std::string& name, const Labels& labels,
                       Kind kind, std::vector<double> bounds,
                       const HdrConfig* hdr_config = nullptr);

  mutable util::Mutex mu_;
  std::deque<Slot> slots_ CADET_GUARDED_BY(mu_);
  std::map<std::pair<std::string, Labels>, Slot*> index_
      CADET_GUARDED_BY(mu_);
};

/// Convenience label builders for the fixed tier taxonomy.
Labels tier_labels(const char* tier, std::uint64_t node);

}  // namespace cadet::obs
