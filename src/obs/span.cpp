#include "obs/span.h"

namespace cadet::obs {

SpanTracker& SpanTracker::global() {
  static SpanTracker* instance = new SpanTracker();  // never destroyed
  return *instance;
}

}  // namespace cadet::obs
