// Single CSV emitter shared by the figure benches, the metrics exporters,
// and the tools — replacing the per-bench hand-rolled writers. Header-only
// so the benches can use it without linking cadet_obs.
//
// Escaping follows RFC 4180 (what scripts/plot_figures.py's csv.reader
// expects): fields containing a comma, quote, CR, or LF are double-quoted
// with embedded quotes doubled; everything else is written verbatim.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cadet::obs {

/// Quote `field` if (and only if) CSV requires it.
inline std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Join cells into one CSV record (no trailing newline).
inline std::string csv_join(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(cells[i]);
  }
  return out;
}

/// Split one CSV record back into cells, undoing csv_escape. Assumes a
/// complete record (no embedded unescaped newlines split across lines).
inline std::vector<std::string> csv_split(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

/// Buffered CSV file, one row per call. Failure to open warns once and
/// turns writes into no-ops, so benches keep printing their tables.
class CsvFile {
 public:
  CsvFile(const std::string& dir, const std::string& name)
      : CsvFile(dir + "/" + name) {}

  explicit CsvFile(const std::string& path) : out_(path) {
    if (!out_) {
      std::fprintf(stderr, "warning: cannot open %s for writing\n",
                   path.c_str());
    }
  }

  void row(const std::vector<std::string>& cells) {
    if (!out_) return;
    out_ << csv_join(cells) << '\n';
  }

  /// printf-style escape hatch for numeric rows; the formatted line is
  /// written verbatim (callers supply the commas, no escaping applied).
  template <typename... Args>
  void rowf(const char* format, Args... args) {
    if (!out_) return;
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out_ << buffer << '\n';
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
};

}  // namespace cadet::obs
