#include "obs/admin.h"

#include <cstdio>
#include <cstring>

#include "obs/export.h"
#include "obs/flight.h"
#include "obs/slo.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cadet::obs {

#ifndef _WIN32

namespace {

void send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, 0);
    if (n <= 0) return;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  char header[256];
  const int n = std::snprintf(
      header, sizeof(header),
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, content_type, body.size());
  send_all(fd, header, static_cast<std::size_t>(n));
  send_all(fd, body.data(), body.size());
}

}  // namespace

AdminServer::~AdminServer() { stop(); }

bool AdminServer::start(const Options& options) {
  if (running()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("admin: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    std::fprintf(stderr, "admin: bad bind address %s\n",
                 options.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    std::perror("admin: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void AdminServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Shutting the listen socket down unblocks the accept() in serve_loop.
  // The fd must stay valid (and listen_fd_ unwritten) until the acceptor
  // thread has joined: closing it here would race the accept() read and
  // could hand a recycled fd number to the loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    handle_connection(client);
    ::close(client);
  }
}

void AdminServer::handle_connection(int client_fd) {
  char request[1024];
  const ssize_t n = ::recv(client_fd, request, sizeof(request) - 1, 0);
  if (n <= 0) return;
  request[n] = '\0';
  requests_.fetch_add(1, std::memory_order_relaxed);

  // "GET <path> HTTP/1.x" — we only care about the path.
  char method[8] = {};
  char path[256] = {};
  if (std::sscanf(request, "%7s %255s", method, path) != 2 ||
      std::strcmp(method, "GET") != 0) {
    send_response(client_fd, "405 Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }

  if (std::strcmp(path, "/metrics") == 0) {
    send_response(client_fd, "200 OK", "text/plain; version=0.0.4",
                  to_prometheus(*registry_));
  } else if (std::strcmp(path, "/healthz") == 0) {
    if (slo_ == nullptr) {
      send_response(client_fd, "404 Not Found", "text/plain",
                    "no SLO engine wired\n");
      return;
    }
    send_response(client_fd,
                  slo_->any_firing() ? "503 Service Unavailable" : "200 OK",
                  "application/json", slo_->healthz_json());
  } else if (std::strcmp(path, "/flight") == 0) {
    if (flight_ == nullptr) {
      send_response(client_fd, "404 Not Found", "text/plain",
                    "no flight recorder wired\n");
      return;
    }
    send_response(client_fd, "200 OK", "application/x-ndjson",
                  flight_->dump_jsonl());
  } else {
    for (const Source& source : sources_) {
      if (source.path == path) {
        send_response(client_fd, "200 OK", source.content_type.c_str(),
                      source.render ? source.render() : std::string());
        return;
      }
    }
    std::string paths = "paths: /metrics /healthz /flight";
    for (const Source& source : sources_) {
      paths += ' ';
      paths += source.path;
    }
    paths += '\n';
    send_response(client_fd, "404 Not Found", "text/plain", paths);
  }
}

#else  // _WIN32: the admin plane is POSIX-only; start() reports failure.

AdminServer::~AdminServer() { stop(); }
bool AdminServer::start(const Options&) {
  std::fprintf(stderr, "admin: not supported on this platform\n");
  return false;
}
void AdminServer::stop() {}
void AdminServer::serve_loop() {}
void AdminServer::handle_connection(int) {}

#endif

}  // namespace cadet::obs
