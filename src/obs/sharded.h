// Sharded hot-path cells for the wall-clock (threaded) tiers.
//
// The PR-1 registry's instruments are single shared atomics: correct under
// threads, but every increment from every thread lands on the same cache
// line, so an 8-thread UDP loop serialises on the coherence protocol. The
// sharded instruments here split the value across kShardStripes
// cache-line-aligned cells; each thread is pinned to one stripe (TLS,
// round-robin at first touch), so steady-state increments are relaxed RMWs
// on a line no other core writes — within noise of a plain store.
//
// Aggregation is epoch-based: readers never stop writers. aggregate() (and
// every snapshot taken through it) bumps a global scrape epoch, then sums
// the stripes with relaxed loads. Each stripe is monotone, so the sum of
// per-stripe reads is monotone across scrapes — a later snapshot can never
// report less than an earlier one, and no concurrent increment is ever
// lost (it lands in this scrape or the next).
//
// With CADET_OBS=OFF the stripes collapse to one plain integer, the exact
// cost of the field they shadow.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"  // for CADET_OBS_ENABLED

#if CADET_OBS_ENABLED
#include <atomic>
#endif

namespace cadet::obs {

/// Stripe count: enough that 8-16 worker threads land on distinct lines,
/// small enough that a sharded counter stays ~1 KiB. Power of two.
inline constexpr std::size_t kShardStripes = 16;

#if CADET_OBS_ENABLED

namespace detail {
/// Monotone scrape-epoch counter (one per process, shared by every sharded
/// instrument). Defined in metrics.cpp.
std::uint64_t next_scrape_epoch() noexcept;

/// Stripe index of the calling thread: assigned round-robin on first
/// touch, stable for the thread's lifetime. More than kShardStripes
/// threads share stripes (the cells are atomic, so sharing is only a
/// throughput matter, never a correctness one).
std::size_t shard_stripe() noexcept;
}  // namespace detail

/// One cache line per stripe so no two stripes ever share one.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

/// Monotone counter sharded across per-thread stripes. API-compatible with
/// Counter (inc/value), plus an epoch-tagged aggregate for scrapers.
class ShardedCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    cells_[detail::shard_stripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Relaxed sum of every stripe. Monotone across calls.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const ShardCell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  struct Snapshot {
    std::uint64_t value = 0;
    std::uint64_t epoch = 0;
  };

  /// Epoch-stamped scrape: later epochs never report smaller values.
  Snapshot aggregate() const noexcept {
    Snapshot snap;
    snap.epoch = detail::next_scrape_epoch();
    snap.value = value();
    return snap;
  }

 private:
  ShardCell cells_[kShardStripes];
};

#else  // !CADET_OBS_ENABLED

class ShardedCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

  struct Snapshot {
    std::uint64_t value = 0;
    std::uint64_t epoch = 0;
  };
  Snapshot aggregate() const noexcept { return Snapshot{value_, 0}; }

 private:
  std::uint64_t value_ = 0;
};

#endif  // CADET_OBS_ENABLED

}  // namespace cadet::obs
