// Registry exporters: Prometheus text exposition, JSON snapshot, CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cadet::obs {

/// Prometheus text exposition format (counters get a _total suffix,
/// histograms expand to _bucket/_sum/_count series). Label values are
/// escaped per the exposition spec (backslash, double-quote, newline).
std::string to_prometheus(const Registry& registry);

/// One sample line parsed back from the text exposition: the series name
/// as exposed (including _total/_bucket/_sum/_count suffixes), the
/// unescaped label set, and the value.
struct PromSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

/// Result of parsing a text exposition. `types` holds (family, type) pairs
/// from "# TYPE" comments in exposition order; malformed lines land in
/// `errors` instead of being silently dropped.
struct PromParse {
  std::vector<PromSample> samples;
  std::vector<std::pair<std::string, std::string>> types;
  std::vector<std::string> errors;
};

/// Parse Prometheus text exposition (the inverse of to_prometheus, used by
/// the exporter round-trip tests and tools/cadet_report).
PromParse parse_prometheus(std::string_view text);

/// One JSON object: {"metrics":[{"name":...,"labels":{...},...}]}.
std::string to_json(const Registry& registry);

/// CSV with one row per series: name,labels,kind,value.
void write_csv(const Registry& registry, std::ostream& out);

/// Write `text` to `path` (helper for --metrics-out). Returns false and
/// warns on failure.
bool write_file(const std::string& path, const std::string& text);

}  // namespace cadet::obs
