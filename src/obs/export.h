// Registry exporters: Prometheus text exposition, JSON snapshot, CSV.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace cadet::obs {

/// Prometheus text exposition format (counters get a _total suffix,
/// histograms expand to _bucket/_sum/_count series).
std::string to_prometheus(const Registry& registry);

/// One JSON object: {"metrics":[{"name":...,"labels":{...},...}]}.
std::string to_json(const Registry& registry);

/// CSV with one row per series: name,labels,kind,value.
void write_csv(const Registry& registry, std::ostream& out);

/// Write `text` to `path` (helper for --metrics-out). Returns false and
/// warns on failure.
bool write_file(const std::string& path, const std::string& text);

}  // namespace cadet::obs
