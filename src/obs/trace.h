// Sim-time event tracer: structured protocol events (request / reply /
// upload / penalty / cache-hit / refill / mix / ...) stamped with simulator
// time, buffered in a fixed-capacity ring and drained to pluggable sinks as
// JSONL.
//
// Hot-path contract: record() is a no-op unless the tracer is enabled, and
// with CADET_OBS=OFF the emit helpers compile away entirely. Events are
// small PODs — names and attribute keys must be string literals (static
// storage), so recording never allocates.
//
// One JSONL line per event:
//   {"ts":1.234567,"ev":"cache_hit","tier":"edge","node":100,"bytes":64}
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"  // for CADET_OBS_ENABLED
#include "util/time.h"

namespace cadet::obs {

struct TraceEvent {
  struct Attr {
    const char* key = nullptr;  // string literal
    double value = 0.0;
  };

  util::SimTime ts = 0;
  const char* name = "";  // string literal (event kind)
  const char* tier = "";  // "client" | "edge" | "server" | "net" | "sim"
  std::uint64_t node = 0;
  // Causal span context (0 = not part of any trace). `phase` marks span
  // boundary records: 'B' opens span `span` (with `parent` naming the
  // enclosing span, 0 for a trace root), 'E' closes it, 'X' is a
  // zero-length span (opened and closed at ts). phase == 0 is a plain
  // event, optionally tagged with the trace/span it occurred under.
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  char phase = 0;
  std::array<Attr, 4> attrs{};
  std::uint8_t num_attrs = 0;
};

/// Serialize one event as a single JSON object (no trailing newline).
std::string to_json(const TraceEvent& event);

/// Where drained events go.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
};

/// JSONL file sink. Opens with fopen; silently discards if opening failed
/// (ok() reports it).
class FileSink final : public TraceSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(const TraceEvent& event) override;
  bool ok() const noexcept { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// In-memory sink for tests.
class MemorySink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Ring-buffer tracer. Disabled (and free) by default; enable() turns
/// recording on. When the ring fills: with a sink attached the buffered
/// events are flushed through first (lossless file tracing), without one
/// the oldest event is overwritten (bounded-memory flight recorder).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void set_capacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return ring_.size(); }

  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Attach a sink (not owned). Pass nullptr to detach.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }

  void record(const TraceEvent& event) noexcept;

  /// Drain every buffered event, oldest first, to the sink (if any) and
  /// clear the ring. Returns the number of events drained.
  std::size_t flush();

  /// Copy out the buffered events, oldest first, without clearing.
  std::vector<TraceEvent> buffered() const;

  std::size_t buffered_count() const noexcept { return count_; }
  /// Events overwritten because the ring was full and no sink was attached.
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t recorded() const noexcept { return recorded_; }

  void clear();

  /// Process-wide tracer the protocol engines emit to.
  static Tracer& global();

 private:
  bool enabled_ = false;
  TraceSink* sink_ = nullptr;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest buffered event
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
};

#if CADET_OBS_ENABLED
namespace detail {
/// Flight-recorder hooks (defined in flight.cpp; declared here so emit()
/// can feed the recorder without trace.h depending on flight.h). The armed
/// flag is a single relaxed load on the hot path.
extern std::atomic<bool> g_flight_armed;
void flight_append(const TraceEvent& event) noexcept;
}  // namespace detail
#endif

/// Emit helper used by the engines: compiled out with CADET_OBS=OFF, and a
/// single predictable branch when both tracing and the flight recorder are
/// off at runtime.
inline void emit(util::SimTime ts, const char* name, const char* tier,
                 std::uint64_t node,
                 std::initializer_list<TraceEvent::Attr> attrs = {}) noexcept {
#if CADET_OBS_ENABLED
  Tracer& tracer = Tracer::global();
  const bool traced = tracer.enabled();
  const bool flight =
      detail::g_flight_armed.load(std::memory_order_relaxed);
  if (!traced && !flight) return;
  TraceEvent event;
  event.ts = ts;
  event.name = name;
  event.tier = tier;
  event.node = node;
  for (const auto& attr : attrs) {
    if (event.num_attrs >= event.attrs.size()) break;
    event.attrs[event.num_attrs++] = attr;
  }
  if (flight) detail::flight_append(event);
  if (traced) tracer.record(event);
#else
  (void)ts; (void)name; (void)tier; (void)node; (void)attrs;
#endif
}

// ---- trace reading (cadet_trace, tests) ----

/// One parsed JSONL trace line.
struct ParsedEvent {
  double ts_s = 0.0;
  std::string name;
  std::string tier;
  std::uint64_t node = 0;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  char phase = 0;  // 'B' | 'E' | 'X' | 0
  std::vector<std::pair<std::string, double>> attrs;

  /// Attribute lookup; returns `fallback` when the key is absent.
  double attr(std::string_view key, double fallback = 0.0) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// Parse one line of the tracer's JSONL output. Returns nullopt on
/// malformed input. (A purpose-built parser for the flat objects to_json
/// emits — not a general JSON parser.)
std::optional<ParsedEvent> parse_json_line(std::string_view line);

}  // namespace cadet::obs
