// Watchdog / SLO engine: declarative health rules evaluated on ticks.
//
// A rule names an instrument (by metric family — all label sets matching
// the name are aggregated), a condition kind, and thresholds; the engine
// evaluates every rule against the live Registry each tick (sim-time ticks
// from cadet_sim, wall-clock ticks from UdpRunner), tracks consecutive
// breaches, and on the firing transition emits a structured "slo_alert"
// trace event (which also lands in the flight recorder) and invokes the
// alert hook — cadet_sim uses the hook to dump the flight recorder, so the
// events *leading up to* the breach are preserved.
//
// Four condition kinds cover the protocol's failure modes:
//   kLatencyBurn   fraction of *new* HDR observations above threshold_s
//                  exceeds `limit` (fulfillment-latency burn rate)
//   kRatio         delta(numerator)/delta(denominator) exceeds `limit`
//                  (refill failure ratio)
//   kGaugeAbove    gauge stays above `limit` (pending-queue stall)
//   kCounterRate   counter increase per second exceeds `limit`
//                  (penalty-table spike)
//
// Rules parse from a compact CLI syntax (see parse_slo_rule):
//   burn:slow_fulfillment:cadet_fulfillment_seconds:0.5:0.1:2
//   ratio:refill_churn:cadet_edge_refill_retries/cadet_edge_requests_received:0:0.5:2
//   gauge:pending_stall:cadet_fulfillment_inflight:0:1000:3
//   rate:penalty_spike:cadet_server_uploads_dropped_penalty:0:100:1
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace cadet::obs {

struct SloRule {
  enum class Kind { kLatencyBurn, kRatio, kGaugeAbove, kCounterRate };

  std::string name;    // rule id, shown in /healthz and alert events
  Kind kind = Kind::kCounterRate;
  std::string metric;  // instrument family (numerator for kRatio)
  std::string denom;   // kRatio only: denominator family
  double threshold_s = 0.0;  // kLatencyBurn only: latency cutoff
  double limit = 0.0;        // breach when value > limit
  int for_ticks = 1;         // consecutive breaching ticks before firing
};

/// Parse "kind:name:metric[/denom]:threshold:limit[:for_ticks]" where kind
/// is burn|ratio|gauge|rate. Returns nullopt on malformed input.
std::optional<SloRule> parse_slo_rule(const std::string& text);

/// The four default rules wired by cadet_sim and the UDP demo (tuned for
/// the testbed workloads; override with explicit rules for production).
std::vector<SloRule> default_slo_rules();

class SloEngine {
 public:
  struct Alert {
    std::string rule;
    double value = 0.0;
    double limit = 0.0;
    double at_s = 0.0;
    bool firing = false;  // false = recovery ("slo_clear")
  };

  struct RuleState {
    SloRule rule;
    bool firing = false;
    int breach_ticks = 0;
    double last_value = 0.0;
    std::uint64_t fires = 0;
    // previous-tick raw readings for delta-based kinds
    double prev_count = 0.0;
    double prev_above = 0.0;
    double prev_denom = 0.0;
    bool has_prev = false;
  };

  explicit SloEngine(Registry* registry) : registry_(registry) {}

  void add_rule(const SloRule& rule);
  std::size_t rule_count() const;

  /// Snapshot view for tests and end-of-run reports. The reference is NOT
  /// synchronized against tick(): callers must own the ticking thread (the
  /// single-threaded sim path) or call only after the poll loop stopped.
  const std::deque<RuleState>& states() const
      CADET_NO_THREAD_SAFETY_ANALYSIS {
    return states_;
  }

  /// Called on every firing/recovery transition (after the trace event is
  /// emitted). cadet_sim hooks the flight-recorder dump here. Set before
  /// ticking starts; the hook runs outside the engine lock, so it may call
  /// back into any_firing()/healthz_json() without deadlocking.
  void set_alert_hook(std::function<void(const Alert&)> hook);

  /// Evaluate every rule at `now_s` (sim seconds or wall seconds — the
  /// engine only needs the clock to be monotone). Returns the transitions
  /// that happened this tick. Thread-safe against the const readers below:
  /// the UDP poll thread ticks while the admin acceptor serves /healthz.
  std::vector<Alert> tick(double now_s);

  bool any_firing() const;
  std::uint64_t total_fires() const;
  std::uint64_t ticks() const;

  /// /healthz body: {"status":"ok"|"alerting","rules":[...]}.
  std::string healthz_json() const;

 private:
  double read_value(RuleState& state, double dt_s) CADET_REQUIRES(mu_);
  bool any_firing_locked() const CADET_REQUIRES(mu_);

  Registry* registry_;
  // The engine is ticked from the owning loop (sim main thread or UDP poll
  // thread) while the AdminServer acceptor thread reads /healthz — every
  // piece of rule state is guarded, and clang's -Wthread-safety proves the
  // discipline (this lock is what fixed a real tick-vs-healthz race).
  mutable util::Mutex mu_;
  std::deque<RuleState> states_ CADET_GUARDED_BY(mu_);  // stable addresses
  std::function<void(const Alert&)> hook_ CADET_GUARDED_BY(mu_);
  double last_tick_s_ CADET_GUARDED_BY(mu_) = 0.0;
  bool has_last_tick_ CADET_GUARDED_BY(mu_) = false;
  std::uint64_t ticks_ CADET_GUARDED_BY(mu_) = 0;
};

}  // namespace cadet::obs
