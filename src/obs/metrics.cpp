#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/hdr.h"
#include "obs/sharded.h"

namespace cadet::obs {

#if CADET_OBS_ENABLED
namespace detail {

std::uint64_t next_scrape_epoch() noexcept {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::size_t shard_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kShardStripes;
  return stripe;
}

}  // namespace detail
#endif  // CADET_OBS_ENABLED

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.resize(bounds_.size() + 1);  // trailing +Inf bucket
}

void Histogram::observe(double v) noexcept {
  // Inclusive upper bounds (Prometheus `le`): bucket i is the first whose
  // bound is >= v; values beyond every bound land in the +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].inc();
  count_.inc();
  sum_nano_.inc(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(v * 1e9)));
}

double Histogram::upper_bound(std::size_t i) const noexcept {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].value();
    if (static_cast<double>(cumulative + in_bucket) < target ||
        in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    if (i >= bounds_.size()) return lo;  // +Inf bucket: report its floor
    const double hi = bounds_[i];
    const double frac =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::latency_seconds_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0};
}

// ----------------------------------------------------------------- Registry

Registry::Slot::Slot() = default;
Registry::Slot::~Slot() = default;
Registry::~Registry() = default;

Registry::Slot& Registry::find_or_create(const std::string& name,
                                         const Labels& labels, Kind kind,
                                         std::vector<double> bounds,
                                         const HdrConfig* hdr_config) {
  util::MutexLock lock(mu_);
  const auto key = std::make_pair(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) return *it->second;
  Slot& slot = slots_.emplace_back();
  slot.name = name;
  slot.labels = labels;
  slot.kind = kind;
  if (kind == Kind::kHistogram) {
    if (bounds.empty()) bounds = Histogram::latency_seconds_bounds();
    slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (kind == Kind::kShardedCounter) {
    slot.sharded = std::make_unique<ShardedCounter>();
  } else if (kind == Kind::kHdr) {
    slot.hdr = std::make_unique<HdrHistogram>(hdr_config ? *hdr_config
                                                         : HdrConfig{});
  }
  index_[key] = &slot;
  return slot;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return find_or_create(name, labels, Kind::kCounter, {}).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return find_or_create(name, labels, Kind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> upper_bounds) {
  return *find_or_create(name, labels, Kind::kHistogram,
                         std::move(upper_bounds))
              .histogram;
}

ShardedCounter& Registry::sharded_counter(const std::string& name,
                                          const Labels& labels) {
  return *find_or_create(name, labels, Kind::kShardedCounter, {}).sharded;
}

HdrHistogram& Registry::hdr(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kHdr, {}).hdr;
}

HdrHistogram& Registry::hdr(const std::string& name, const Labels& labels,
                            const HdrConfig& config) {
  return *find_or_create(name, labels, Kind::kHdr, {}, &config).hdr;
}

std::vector<Registry::Entry> Registry::entries() const {
  util::MutexLock lock(mu_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    Entry e;
    e.name = slot.name;
    e.labels = slot.labels;
    e.kind = slot.kind;
    switch (slot.kind) {
      case Kind::kCounter: e.counter = &slot.counter; break;
      case Kind::kGauge: e.gauge = &slot.gauge; break;
      case Kind::kHistogram: e.histogram = slot.histogram.get(); break;
      case Kind::kShardedCounter: e.sharded = slot.sharded.get(); break;
      case Kind::kHdr: e.hdr = slot.hdr.get(); break;
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

std::size_t Registry::size() const {
  util::MutexLock lock(mu_);
  return slots_.size();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Labels tier_labels(const char* tier, std::uint64_t node) {
  return Labels{{"node", std::to_string(node)}, {"tier", tier}};
}

}  // namespace cadet::obs
