#include "obs/hdr.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cadet::obs {

namespace {

constexpr std::size_t half_count(int bits) noexcept {
  return std::size_t{1} << (bits - 1);
}

constexpr std::uint64_t sub_bucket_mask(int bits) noexcept {
  return (std::uint64_t{1} << bits) - 1;
}

// Exponent bucket holding `v`: 0 while v fits entirely in the linear
// sub-buckets, +1 per octave beyond that.
int bucket_of(std::uint64_t v, int bits) noexcept {
  return std::bit_width(v | sub_bucket_mask(bits)) - bits;
}

}  // namespace

// ---------------------------------------------------------------- HdrLayout

std::size_t HdrLayout::cell_count() const noexcept {
  const int top = bucket_of(max_value_ns, sub_bucket_bits);
  // Bucket 0 owns two half-rows (its low half is the only exact range);
  // every later bucket adds one half-row of doubled-width cells.
  return (static_cast<std::size_t>(top) + 2) * half_count(sub_bucket_bits);
}

std::size_t HdrLayout::index_of(std::uint64_t value_ns) const noexcept {
  if (value_ns > max_value_ns) value_ns = max_value_ns;
  const std::size_t half = half_count(sub_bucket_bits);
  const int bucket = bucket_of(value_ns, sub_bucket_bits);
  const std::uint64_t sub = value_ns >> bucket;
  return (static_cast<std::size_t>(bucket) + 1) * half +
         (static_cast<std::size_t>(sub) - half);
}

std::uint64_t HdrLayout::value_lo(std::size_t index) const noexcept {
  const std::size_t half = half_count(sub_bucket_bits);
  if (index < half) return index;  // bucket 0, exact cells
  const int bucket = static_cast<int>(index / half) - 1;
  const std::uint64_t sub = half + index % half;
  return sub << bucket;
}

std::uint64_t HdrLayout::value_hi(std::size_t index) const noexcept {
  const std::size_t half = half_count(sub_bucket_bits);
  if (index < half) return index + 1;
  const int bucket = static_cast<int>(index / half) - 1;
  const std::uint64_t sub = half + index % half;
  return (sub + 1) << bucket;
}

double HdrLayout::value_mid_s(std::size_t index) const noexcept {
  // Midpoint readout halves the worst-case cell-width error. Exact cells
  // (width 1 ns) read back their own value.
  const std::uint64_t lo = value_lo(index);
  const std::uint64_t hi = value_hi(index);
  if (hi - lo <= 1) return static_cast<double>(lo) * 1e-9;
  return (static_cast<double>(lo) + static_cast<double>(hi)) * 0.5e-9;
}

// -------------------------------------------------------------- HdrSnapshot

double HdrSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  std::size_t last_populated = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    last_populated = i;
    cumulative += c;
    if (static_cast<double>(cumulative) >= target) {
      return layout.value_mid_s(i);
    }
  }
  // target == count with floating-point slack: the highest populated cell.
  return layout.value_mid_s(last_populated);
}

std::uint64_t HdrSnapshot::count_above(double seconds) const noexcept {
  if (!(seconds > 0.0)) return count;
  const double ns = seconds * 1e9;
  const std::uint64_t threshold_ns =
      ns >= static_cast<double>(layout.max_value_ns)
          ? layout.max_value_ns
          : static_cast<std::uint64_t>(ns);
  // Count cells lying entirely at or above the threshold; the straddling
  // cell is excluded, keeping the answer within one cell width of exact.
  std::uint64_t above = 0;
  for (std::size_t i = counts.size(); i-- > 0;) {
    if (layout.value_lo(i) < threshold_ns) break;
    above += counts[i];
  }
  return above;
}

bool HdrSnapshot::merge(const HdrSnapshot& other) {
  if (!(layout == other.layout) || counts.size() != other.counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum_s += other.sum_s;
  saturated += other.saturated;
  epoch = std::max(epoch, other.epoch);
  return true;
}

bool HdrSnapshot::subtract(const HdrSnapshot& earlier) {
  if (!(layout == earlier.layout) || counts.size() != earlier.counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < earlier.counts[i]) return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] -= earlier.counts[i];
  }
  count -= earlier.count;
  sum_s -= earlier.sum_s;
  saturated -= earlier.saturated;
  return true;
}

// ------------------------------------------------------------- HdrHistogram

HdrHistogram::HdrHistogram(const HdrConfig& config) {
  layout_.sub_bucket_bits = std::clamp(config.sub_bucket_bits, 1, 12);
  const double max_s = std::clamp(config.max_value_s, 1e-6, 1e9);
  layout_.max_value_ns = static_cast<std::uint64_t>(max_s * 1e9);
#if CADET_OBS_ENABLED
  stripes_ = config.striped ? kShardStripes : 1;
#else
  stripes_ = 1;
#endif
  cells_per_stripe_ = layout_.cell_count();
  cells_ = std::vector<Cell>(stripes_ * cells_per_stripe_);
  sum_ns_ = std::vector<Cell>(stripes_);
  saturated_ = std::vector<Cell>(stripes_);
}

std::uint64_t HdrHistogram::cell_value(std::size_t flat) const noexcept {
#if CADET_OBS_ENABLED
  return cells_[flat].load(std::memory_order_relaxed);
#else
  return cells_[flat];
#endif
}

void HdrHistogram::cell_add(std::size_t flat, std::uint64_t n) noexcept {
#if CADET_OBS_ENABLED
  cells_[flat].fetch_add(n, std::memory_order_relaxed);
#else
  cells_[flat] += n;
#endif
}

std::size_t HdrHistogram::stripe_base() const noexcept {
#if CADET_OBS_ENABLED
  if (stripes_ > 1) return detail::shard_stripe() * cells_per_stripe_;
#endif
  return 0;
}

void HdrHistogram::record(double seconds) noexcept {
  std::uint64_t v = 0;
  bool saturated = false;
  if (seconds > 0.0) {  // negatives and NaN clamp to the zero cell
    const double ns = seconds * 1e9 + 0.5;
    if (ns >= static_cast<double>(layout_.max_value_ns)) {
      v = layout_.max_value_ns;
      saturated = true;
    } else {
      v = static_cast<std::uint64_t>(ns);
    }
  }
  const std::size_t stripe = stripe_base() / cells_per_stripe_;
  cell_add(stripe_base() + layout_.index_of(v), 1);
#if CADET_OBS_ENABLED
  sum_ns_[stripe].fetch_add(v, std::memory_order_relaxed);
  if (saturated) saturated_[stripe].fetch_add(1, std::memory_order_relaxed);
#else
  sum_ns_[stripe] += v;
  if (saturated) saturated_[stripe] += 1;
#endif
}

std::uint64_t HdrHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) total += cell_value(i);
  return total;
}

double HdrHistogram::sum() const noexcept {
  std::uint64_t ns = 0;
  for (std::size_t s = 0; s < stripes_; ++s) {
#if CADET_OBS_ENABLED
    ns += sum_ns_[s].load(std::memory_order_relaxed);
#else
    ns += sum_ns_[s];
#endif
  }
  return static_cast<double>(ns) * 1e-9;
}

std::uint64_t HdrHistogram::saturations() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < stripes_; ++s) {
#if CADET_OBS_ENABLED
    n += saturated_[s].load(std::memory_order_relaxed);
#else
    n += saturated_[s];
#endif
  }
  return n;
}

std::uint64_t HdrHistogram::cell(std::size_t index) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < stripes_; ++s) {
    total += cell_value(s * cells_per_stripe_ + index);
  }
  return total;
}

double HdrHistogram::quantile(double q) const noexcept {
  // Walk merged cells directly; allocation-free so it stays noexcept-safe.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cells_per_stripe_; ++i) total += cell(i);
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  std::size_t last_populated = 0;
  for (std::size_t i = 0; i < cells_per_stripe_; ++i) {
    const std::uint64_t c = cell(i);
    if (c == 0) continue;
    last_populated = i;
    cumulative += c;
    if (static_cast<double>(cumulative) >= target) {
      return layout_.value_mid_s(i);
    }
  }
  return layout_.value_mid_s(last_populated);
}

std::uint64_t HdrHistogram::count_above(double seconds) const noexcept {
  if (!(seconds > 0.0)) return count();
  const double ns = seconds * 1e9;
  const std::uint64_t threshold_ns =
      ns >= static_cast<double>(layout_.max_value_ns)
          ? layout_.max_value_ns
          : static_cast<std::uint64_t>(ns);
  std::uint64_t above = 0;
  for (std::size_t i = cells_per_stripe_; i-- > 0;) {
    if (layout_.value_lo(i) < threshold_ns) break;
    above += cell(i);
  }
  return above;
}

bool HdrHistogram::absorb(const HdrSnapshot& delta) {
  if (!(delta.layout == layout_) ||
      delta.counts.size() != cells_per_stripe_) {
    return false;
  }
  // All adds land in stripe 0; cell() merges stripes on the read side, so
  // absorbed counts and directly recorded ones are indistinguishable.
  std::uint64_t ns = 0;
  for (std::size_t i = 0; i < cells_per_stripe_; ++i) {
    if (delta.counts[i] == 0) continue;
    cell_add(i, delta.counts[i]);
    ns += delta.counts[i] * layout_.value_lo(i);
  }
  // Preserve the exact sum the source histogram accumulated rather than
  // the cell-midpoint reconstruction when the delta carries one.
  const double sum_ns = delta.sum_s > 0.0
                            ? delta.sum_s * 1e9
                            : static_cast<double>(ns);
#if CADET_OBS_ENABLED
  sum_ns_[0].fetch_add(static_cast<std::uint64_t>(sum_ns),
                       std::memory_order_relaxed);
  saturated_[0].fetch_add(delta.saturated, std::memory_order_relaxed);
#else
  sum_ns_[0] += static_cast<std::uint64_t>(sum_ns);
  saturated_[0] += delta.saturated;
#endif
  return true;
}

HdrSnapshot HdrHistogram::snapshot() const {
  HdrSnapshot snap;
  snap.layout = layout_;
#if CADET_OBS_ENABLED
  snap.epoch = detail::next_scrape_epoch();
#endif
  snap.counts.resize(cells_per_stripe_);
  for (std::size_t i = 0; i < cells_per_stripe_; ++i) {
    const std::uint64_t c = cell(i);
    snap.counts[i] = c;
    snap.count += c;
  }
  snap.sum_s = sum();
  snap.saturated = saturations();
  return snap;
}

}  // namespace cadet::obs
