#include "crypto/hmac.h"

#include <cstring>
#include <stdexcept>

#include "util/secure.h"

namespace cadet::crypto {

Sha256::Digest hmac_sha256(util::BytesView key,
                           util::BytesView data) noexcept {
  // The padded key blocks are key-equivalent material; wipe them before
  // they go out of scope.
  std::array<std::uint8_t, Sha256::kBlockSize> key_block{};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::hash(key);
    std::memcpy(key_block.data(), digest.data(), digest.size());
    util::secure_wipe(digest);
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad;
  std::array<std::uint8_t, Sha256::kBlockSize> opad;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  util::secure_wipe(key_block);

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  util::secure_wipe(ipad);
  util::secure_wipe(opad);
  util::secure_wipe(inner_digest);
  return outer.finish();
}

Sha256::Digest hkdf_extract(util::BytesView salt,
                            util::BytesView ikm) noexcept {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(util::BytesView prk, util::BytesView info,
                        std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes okm;
  okm.reserve(length);
  Sha256::Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes block;
    block.reserve(t_len + info.size() + 1);
    block.insert(block.end(), t.begin(), t.begin() + t_len);
    util::append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    util::secure_wipe(block);
    t_len = t.size();
    const std::size_t take = std::min(t_len, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  util::secure_wipe(t);
  return okm;
}

util::Bytes hkdf(util::BytesView salt, util::BytesView ikm,
                 util::BytesView info, std::size_t length) {
  auto prk = hkdf_extract(salt, ikm);
  auto okm = hkdf_expand(prk, info, length);
  util::secure_wipe(prk);
  return okm;
}

}  // namespace cadet::crypto
