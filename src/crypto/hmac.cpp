#include "crypto/hmac.h"

#include <cstring>
#include <stdexcept>

namespace cadet::crypto {

Sha256::Digest hmac_sha256(util::BytesView key,
                           util::BytesView data) noexcept {
  std::array<std::uint8_t, Sha256::kBlockSize> key_block{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(key_block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad;
  std::array<std::uint8_t, Sha256::kBlockSize> opad;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256::Digest hkdf_extract(util::BytesView salt,
                            util::BytesView ikm) noexcept {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(util::BytesView prk, util::BytesView info,
                        std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes okm;
  okm.reserve(length);
  Sha256::Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes block;
    block.reserve(t_len + info.size() + 1);
    block.insert(block.end(), t.begin(), t.begin() + t_len);
    util::append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    t_len = t.size();
    const std::size_t take = std::min(t_len, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  return okm;
}

util::Bytes hkdf(util::BytesView salt, util::BytesView ikm,
                 util::BytesView info, std::size_t length) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace cadet::crypto
