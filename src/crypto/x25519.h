// X25519 Diffie-Hellman (RFC 7748) over Curve25519, implemented with 51-bit
// limbs. This is the key-exchange primitive the paper uses for edge
// registration and client initialization (curve25519, per §VI-D1).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace cadet::crypto {

using X25519Key = std::array<std::uint8_t, 32>;

/// Scalar multiplication: out = scalar * point (u-coordinate form).
/// The scalar is clamped per RFC 7748.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept;

/// Public key from private scalar: scalar * basepoint (u = 9).
X25519Key x25519_public(const X25519Key& private_key) noexcept;

/// An ECDH keypair plus shared-secret computation.
struct X25519KeyPair {
  X25519Key private_key{};
  X25519Key public_key{};

  /// Generate from 32 bytes of random material.
  static X25519KeyPair from_seed(util::BytesView seed32);

  /// Shared secret with a peer's public key.
  X25519Key shared_secret(const X25519Key& peer_public) const noexcept;
};

}  // namespace cadet::crypto
