// SHA-256 (FIPS 180-4). Used by the mixing function's hash fold, HMAC/HKDF,
// token hashing in client reregistration, and the CSPRNG reseed path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace cadet::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  /// Reset to the initial state; the object can be reused after finish().
  void reset() noexcept;

  /// Absorb more input.
  void update(util::BytesView data) noexcept;

  /// Finalize and return the digest. The object must be reset() before reuse.
  Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(util::BytesView data) noexcept;

 private:
  /// Compress `count` consecutive 64-byte blocks. The working variables
  /// stay in registers across the whole run, so bulk update() calls pay
  /// one function-call and state load/store per input span, not per block.
  void process_blocks(const std::uint8_t* blocks, std::size_t count) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace cadet::crypto
