// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HKDF derives the shared keys
// (esk, csk, cek) from X25519 outputs during CADET registration.
#pragma once

#include <cstddef>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cadet::crypto {

/// HMAC-SHA256 over `data` under `key`.
Sha256::Digest hmac_sha256(util::BytesView key, util::BytesView data) noexcept;

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256::Digest hkdf_extract(util::BytesView salt,
                            util::BytesView ikm) noexcept;

/// HKDF-Expand: OKM of `length` bytes (length <= 255*32) from PRK and info.
util::Bytes hkdf_expand(util::BytesView prk, util::BytesView info,
                        std::size_t length);

/// Extract-then-expand convenience.
util::Bytes hkdf(util::BytesView salt, util::BytesView ikm,
                 util::BytesView info, std::size_t length);

}  // namespace cadet::crypto
