#include "crypto/x25519.h"

#include <cstring>
#include <stdexcept>

#include "util/secure.h"

namespace cadet::crypto {

namespace {

// Field element mod p = 2^255 - 19, five 51-bit limbs.
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
Fe fe_one() { return {{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b, with bias added to keep limbs positive. Inputs must be reduced-ish
// (limbs < 2^52); output limbs < 2^53 pre-carry.
Fe fe_sub(const Fe& a, const Fe& b) {
  // Add 2*p in limb form to avoid underflow.
  static constexpr std::uint64_t k2p0 = 0xfffffffffffdaULL;
  static constexpr std::uint64_t k2pi = 0xffffffffffffeULL;
  Fe r;
  r.v[0] = a.v[0] + k2p0 - b.v[0];
  r.v[1] = a.v[1] + k2pi - b.v[1];
  r.v[2] = a.v[2] + k2pi - b.v[2];
  r.v[3] = a.v[3] + k2pi - b.v[3];
  r.v[4] = a.v[4] + k2pi - b.v[4];
  return r;
}

void fe_carry(Fe& r) {
  for (int i = 0; i < 4; ++i) {
    r.v[i + 1] += r.v[i] >> 51;
    r.v[i] &= kMask51;
  }
  r.v[0] += 19 * (r.v[4] >> 51);
  r.v[4] &= kMask51;
  // One more pass for the limb-0 overflow.
  r.v[1] += r.v[0] >> 51;
  r.v[0] &= kMask51;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                      b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  std::uint64_t carry;
  r.v[0] = (std::uint64_t)t0 & kMask51; carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r.v[1] = (std::uint64_t)t1 & kMask51; carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r.v[2] = (std::uint64_t)t2 & kMask51; carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r.v[3] = (std::uint64_t)t3 & kMask51; carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r.v[4] = (std::uint64_t)t4 & kMask51; carry = (std::uint64_t)(t4 >> 51);
  r.v[0] += carry * 19;
  r.v[1] += r.v[0] >> 51;
  r.v[0] &= kMask51;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  using u128 = unsigned __int128;
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)a.v[i] * s;
  Fe r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    t[i] += carry;
    r.v[i] = (std::uint64_t)t[i] & kMask51;
    carry = (std::uint64_t)(t[i] >> 51);
  }
  r.v[0] += carry * 19;
  r.v[1] += r.v[0] >> 51;
  r.v[0] &= kMask51;
  return r;
}

// Conditional swap in constant time: swap a and b iff bit == 1.
void fe_cswap(Fe& a, Fe& b, std::uint64_t bit) {
  const std::uint64_t mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t t = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= t;
    b.v[i] ^= t;
  }
}

// Inversion via Fermat: a^(p-2).
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                    // 2
  Fe z8 = fe_sq(fe_sq(z2));            // 8
  Fe z9 = fe_mul(z8, z);               // 9
  Fe z11 = fe_mul(z9, z2);             // 11
  Fe z22 = fe_sq(z11);                 // 22
  Fe z_5_0 = fe_mul(z22, z9);          // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);        // 2^10 - 2^0
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);       // 2^20 - 2^0
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);       // 2^40 - 2^0
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);       // 2^50 - 2^0
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);      // 2^100 - 2^0
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);     // 2^200 - 2^0
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);      // 2^250 - 2^0
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);               // 2^255 - 21 = p - 2
}

Fe fe_from_bytes(const std::uint8_t* in) {
  auto load64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  };
  Fe r;
  r.v[0] = load64(in) & kMask51;
  r.v[1] = (load64(in + 6) >> 3) & kMask51;
  r.v[2] = (load64(in + 12) >> 6) & kMask51;
  r.v[3] = (load64(in + 19) >> 1) & kMask51;
  r.v[4] = (load64(in + 24) >> 12) & kMask51;  // top bit of in[31] masked
  return r;
}

void fe_to_bytes(std::uint8_t* out, Fe f) {
  fe_carry(f);
  fe_carry(f);
  // Fully reduce: subtract p if f >= p, in constant time.
  // Compute f + 19, and check whether that carries past 2^255.
  Fe g = f;
  g.v[0] += 19;
  for (int i = 0; i < 4; ++i) {
    g.v[i + 1] += g.v[i] >> 51;
    g.v[i] &= kMask51;
  }
  const std::uint64_t carry = g.v[4] >> 51;  // 1 iff f >= p
  g.v[4] &= kMask51;
  const std::uint64_t mask = 0 - carry;
  for (int i = 0; i < 5; ++i) {
    f.v[i] = (f.v[i] & ~mask) | (g.v[i] & mask);
  }

  std::uint64_t packed[4];
  packed[0] = f.v[0] | (f.v[1] << 51);
  packed[1] = (f.v[1] >> 13) | (f.v[2] << 38);
  packed[2] = (f.v[2] >> 26) | (f.v[3] << 25);
  packed[3] = (f.v[3] >> 39) | (f.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<std::uint8_t>(packed[i] >> (8 * b));
    }
  }
}

constexpr std::uint64_t kA24 = 121665;

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept {
  // Clamp the scalar per RFC 7748.
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  const Fe x1 = fe_from_bytes(point.data());
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e_ = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    Fe t2 = fe_mul_small(e_, kA24);
    z2 = fe_mul(e_, fe_add(aa, t2));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  // The clamped scalar is the private key; clear the stack copy.
  util::secure_wipe(e, sizeof(e));

  const Fe out_fe = fe_mul(x2, fe_invert(z2));
  X25519Key out;
  fe_to_bytes(out.data(), out_fe);
  return out;
}

X25519Key x25519_public(const X25519Key& private_key) noexcept {
  X25519Key basepoint{};
  basepoint[0] = 9;
  return x25519(private_key, basepoint);
}

X25519KeyPair X25519KeyPair::from_seed(util::BytesView seed32) {
  if (seed32.size() != 32) {
    throw std::invalid_argument("X25519KeyPair: seed must be 32 bytes");
  }
  X25519KeyPair kp;
  std::memcpy(kp.private_key.data(), seed32.data(), 32);
  kp.public_key = x25519_public(kp.private_key);
  return kp;
}

X25519Key X25519KeyPair::shared_secret(
    const X25519Key& peer_public) const noexcept {
  return x25519(private_key, peer_public);
}

}  // namespace cadet::crypto
