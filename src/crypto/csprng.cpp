#include "crypto/csprng.h"

#include <cstring>

#include "util/secure.h"

namespace cadet::crypto {

Csprng::Csprng(util::BytesView seed) {
  auto digest = Sha256::hash(seed);
  std::memcpy(key_.data(), digest.data(), key_.size());
  util::secure_wipe(digest);
}

Csprng::Csprng(std::uint64_t seed) {
  std::uint8_t buf[8];
  util::put_u64_be(buf, seed);
  auto digest = Sha256::hash(util::BytesView(buf, 8));
  std::memcpy(key_.data(), digest.data(), key_.size());
  util::secure_wipe(digest);
}

Csprng::~Csprng() {
  util::secure_wipe(key_);
}

void Csprng::generate(std::span<std::uint8_t> out) {
  // Each call uses a fresh nonce derived from the call counter, then
  // ratchets the key forward so past output cannot be reconstructed from
  // captured state (backtracking resistance, as in Yarrow's generator gate).
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
  util::put_u64_be(nonce.data() + 4, counter_++);
  ChaCha20 cipher(key_, nonce);
  cipher.keystream(out);
  bytes_generated_ += out.size();
  rekey();
}

util::Bytes Csprng::bytes(std::size_t n) {
  util::Bytes out(n);
  generate(out);
  return out;
}

void Csprng::reseed(util::BytesView entropy) {
  Sha256 h;
  h.update(key_);
  h.update(entropy);
  auto digest = h.finish();
  std::memcpy(key_.data(), digest.data(), key_.size());
  util::secure_wipe(digest);
  counter_ = 0;
}

void Csprng::rekey() {
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
  nonce[0] = 0xff;  // distinct nonce domain from generate()
  util::put_u64_be(nonce.data() + 4, counter_);
  ChaCha20 cipher(key_, nonce);
  std::array<std::uint8_t, 32> next_key{};
  cipher.keystream(next_key);
  key_ = next_key;
  util::secure_wipe(next_key);
}

}  // namespace cadet::crypto
