#include "crypto/chacha20.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "util/secure.h"

namespace cadet::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Host word whose in-memory byte order is the little-endian serialization
/// of `v` (identity on little-endian hosts). Lets the bulk path XOR whole
/// words loaded/stored with memcpy while staying byte-identical to the
/// per-byte reference on any endianness.
inline std::uint32_t le_repr(std::uint32_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return v;
  } else {
    return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
           ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
  }
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

/// One ChaCha20 block: 10 double rounds over a working copy of `state`,
/// feed-forward add, result left as 16 keystream words (little-endian
/// serialization order). Word-oriented so the bulk paths XOR straight from
/// registers instead of round-tripping through a byte buffer. Constant
/// time: the data flow is fixed, independent of key/nonce/data values.
inline void keystream_words(const std::array<std::uint32_t, 16>& state,
                            std::uint32_t x[16]) noexcept {
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += state[i];
}

// Four-block interleaved core. The ARX data flow is identical to the
// scalar core, applied to four independent blocks (counters c..c+3) held
// one-per-lane in GCC/Clang generic vectors, which the compiler lowers to
// SIMD on every target that has it (SSE2 is in the x86-64 baseline) and to
// unrolled scalar code elsewhere. Constant time for the same reason the
// scalar core is: additions, XORs and fixed rotates only.
#if defined(__GNUC__) || defined(__clang__)
#define CADET_CHACHA20_X4 1

using u32x4 = std::uint32_t __attribute__((vector_size(16)));

inline u32x4 rotl4(u32x4 x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round4(u32x4& a, u32x4& b, u32x4& c, u32x4& d) noexcept {
  a += b; d ^= a; d = rotl4(d, 16);
  c += d; b ^= c; b = rotl4(b, 12);
  a += b; d ^= a; d = rotl4(d, 8);
  c += d; b ^= c; b = rotl4(b, 7);
}

/// Keystream for blocks `state[12]` .. `state[12]+3`: on return x[w] holds
/// word w of the four blocks, one block per lane.
inline void chacha_blocks_x4(const std::array<std::uint32_t, 16>& state,
                             u32x4 x[16]) noexcept {
  u32x4 init[16];
  for (int i = 0; i < 16; ++i) {
    init[i] = u32x4{state[i], state[i], state[i], state[i]};
  }
  init[12] += u32x4{0, 1, 2, 3};  // per-lane counters, wrap like ++ does
  for (int i = 0; i < 16; ++i) x[i] = init[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round4(x[0], x[4], x[8], x[12]);
    quarter_round4(x[1], x[5], x[9], x[13]);
    quarter_round4(x[2], x[6], x[10], x[14]);
    quarter_round4(x[3], x[7], x[11], x[15]);
    quarter_round4(x[0], x[5], x[10], x[15]);
    quarter_round4(x[1], x[6], x[11], x[12]);
    quarter_round4(x[2], x[7], x[8], x[13]);
    quarter_round4(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += init[i];
}

/// 4x4 word transpose so lanes become per-block contiguous runs.
inline void transpose4(u32x4& a, u32x4& b, u32x4& c, u32x4& d) noexcept {
  const u32x4 t0 = __builtin_shufflevector(a, b, 0, 4, 1, 5);
  const u32x4 t1 = __builtin_shufflevector(c, d, 0, 4, 1, 5);
  const u32x4 t2 = __builtin_shufflevector(a, b, 2, 6, 3, 7);
  const u32x4 t3 = __builtin_shufflevector(c, d, 2, 6, 3, 7);
  a = __builtin_shufflevector(t0, t1, 0, 1, 4, 5);
  b = __builtin_shufflevector(t0, t1, 2, 3, 6, 7);
  c = __builtin_shufflevector(t2, t3, 0, 1, 4, 5);
  d = __builtin_shufflevector(t2, t3, 2, 3, 6, 7);
}

/// After this, vector x[4*g + b] is words 4g..4g+3 of block b — i.e. the
/// byte range [64b + 16g, 64b + 16g + 16) of the 256-byte keystream run on
/// a little-endian host.
inline void transpose_blocks(u32x4 x[16]) noexcept {
  transpose4(x[0], x[1], x[2], x[3]);
  transpose4(x[4], x[5], x[6], x[7]);
  transpose4(x[8], x[9], x[10], x[11]);
  transpose4(x[12], x[13], x[14], x[15]);
}
#endif  // CADET_CHACHA20_X4

}  // namespace

ChaCha20::ChaCha20(util::BytesView key, util::BytesView nonce,
                   std::uint32_t initial_counter) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = load_le32(key.data() + 4 * i);
  }
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) {
    state_[13 + i] = load_le32(nonce.data() + 4 * i);
  }
}

ChaCha20::~ChaCha20() {
  util::secure_wipe(state_);
  util::secure_wipe(block_);
}

void ChaCha20::next_block() noexcept {
  std::uint32_t x[16];
  keystream_words(state_, x);
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::crypt(std::span<std::uint8_t> data) noexcept {
  std::size_t i = 0;
  const std::size_t n = data.size();
  std::uint8_t* p = data.data();

  // Drain any buffered partial block first so the stream position is
  // identical to the per-byte formulation.
  while (block_pos_ < 64 && i < n) {
    p[i++] ^= block_[block_pos_++];
  }

#ifdef CADET_CHACHA20_X4
  // Four blocks per pass while at least 256 bytes remain. The counters
  // advance exactly as four sequential single-block passes would, so the
  // stream is byte-identical to the scalar path.
  while (n - i >= 256) {
    u32x4 x[16];
    chacha_blocks_x4(state_, x);
    state_[12] += 4;
    if constexpr (std::endian::native == std::endian::little) {
      // Transpose in-register and XOR 16 bytes per op straight into the
      // data (vector lanes already serialize little-endian here).
      transpose_blocks(x);
      for (int v = 0; v < 16; ++v) {
        u32x4 d;
        std::uint8_t* at =
            p + i + 64 * static_cast<std::size_t>(v & 3) +
            16 * static_cast<std::size_t>(v >> 2);
        std::memcpy(&d, at, sizeof d);
        d ^= x[v];
        std::memcpy(at, &d, sizeof d);
      }
    } else {
      std::uint32_t lanes[16][4];
      for (int w = 0; w < 16; ++w) std::memcpy(lanes[w], &x[w], sizeof x[w]);
      for (int b = 0; b < 4; ++b) {
        for (int w = 0; w < 16; ++w) {
          std::uint32_t v;
          std::uint8_t* at =
              p + i + 64 * static_cast<std::size_t>(b) +
              4 * static_cast<std::size_t>(w);
          std::memcpy(&v, at, 4);
          v ^= le_repr(lanes[w][b]);
          std::memcpy(at, &v, 4);
        }
      }
    }
    i += 256;
  }
#endif

  // Full 64-byte blocks: generate the keystream as words and XOR four
  // bytes per operation, never staging through block_. memcpy keeps the
  // word accesses alignment-safe.
  while (n - i >= 64) {
    std::uint32_t x[16];
    keystream_words(state_, x);
    ++state_[12];
    for (int w = 0; w < 16; ++w) {
      std::uint32_t v;
      std::memcpy(&v, p + i + 4 * static_cast<std::size_t>(w), 4);
      v ^= le_repr(x[w]);
      std::memcpy(p + i + 4 * static_cast<std::size_t>(w), &v, 4);
    }
    i += 64;
  }

  // Per-byte tail (< 64 bytes); the remainder of this block stays buffered
  // for the next call, exactly as before.
  if (i < n) {
    next_block();
    while (i < n) {
      p[i++] ^= block_[block_pos_++];
    }
  }
}

void ChaCha20::keystream(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  const std::size_t n = out.size();
  std::uint8_t* p = out.data();

  while (block_pos_ < 64 && i < n) {
    p[i++] = block_[block_pos_++];
  }

#ifdef CADET_CHACHA20_X4
  while (n - i >= 256) {
    u32x4 x[16];
    chacha_blocks_x4(state_, x);
    state_[12] += 4;
    if constexpr (std::endian::native == std::endian::little) {
      transpose_blocks(x);
      for (int v = 0; v < 16; ++v) {
        std::memcpy(p + i + 64 * static_cast<std::size_t>(v & 3) +
                        16 * static_cast<std::size_t>(v >> 2),
                    &x[v], sizeof x[v]);
      }
    } else {
      std::uint32_t lanes[16][4];
      for (int w = 0; w < 16; ++w) std::memcpy(lanes[w], &x[w], sizeof x[w]);
      for (int b = 0; b < 4; ++b) {
        for (int w = 0; w < 16; ++w) {
          const std::uint32_t v = le_repr(lanes[w][b]);
          std::memcpy(p + i + 64 * static_cast<std::size_t>(b) +
                          4 * static_cast<std::size_t>(w),
                      &v, 4);
        }
      }
    }
    i += 256;
  }
#endif

  while (n - i >= 64) {
    std::uint32_t x[16];
    keystream_words(state_, x);
    ++state_[12];
    for (int w = 0; w < 16; ++w) {
      const std::uint32_t v = le_repr(x[w]);
      std::memcpy(p + i + 4 * static_cast<std::size_t>(w), &v, 4);
    }
    i += 64;
  }

  if (i < n) {
    next_block();
    while (i < n) {
      p[i++] = block_[block_pos_++];
    }
  }
}

util::Bytes ChaCha20::crypt(util::BytesView key, util::BytesView nonce,
                            util::BytesView data,
                            std::uint32_t initial_counter) {
  util::Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, initial_counter);
  cipher.crypt(out);
  return out;
}

}  // namespace cadet::crypto
