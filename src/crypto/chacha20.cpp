#include "crypto/chacha20.h"

#include <stdexcept>

#include "util/secure.h"

namespace cadet::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(util::BytesView key, util::BytesView nonce,
                   std::uint32_t initial_counter) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = load_le32(key.data() + 4 * i);
  }
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) {
    state_[13 + i] = load_le32(nonce.data() + 4 * i);
  }
}

ChaCha20::~ChaCha20() {
  util::secure_wipe(state_);
  util::secure_wipe(block_);
}

void ChaCha20::next_block() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::crypt(std::span<std::uint8_t> data) noexcept {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (block_pos_ == 64) next_block();
    data[i] ^= block_[block_pos_++];
  }
}

void ChaCha20::keystream(std::span<std::uint8_t> out) noexcept {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (block_pos_ == 64) next_block();
    out[i] = block_[block_pos_++];
  }
}

util::Bytes ChaCha20::crypt(util::BytesView key, util::BytesView nonce,
                            util::BytesView data,
                            std::uint32_t initial_counter) {
  util::Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, initial_counter);
  cipher.crypt(out);
  return out;
}

}  // namespace cadet::crypto
