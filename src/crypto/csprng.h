// Deterministic CSPRNG (ChaCha20-based DRBG with SHA-256 reseed folding).
//
// Serves two roles:
//  * drives cryptographic choices inside protocol engines (keys, nonces,
//    tokens) deterministically in simulation, and
//  * models a device's on-board RNG that can be reseeded from CADET output.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cadet::crypto {

class Csprng {
 public:
  /// Seed from arbitrary material (hashed into the key).
  explicit Csprng(util::BytesView seed);

  /// Convenience: seed from a 64-bit value (simulation determinism).
  explicit Csprng(std::uint64_t seed);

  /// Wipes the generator key on teardown so freed memory never holds it.
  ~Csprng();

  Csprng(const Csprng&) = default;
  Csprng& operator=(const Csprng&) = default;

  /// Fill `out` with generator output.
  void generate(std::span<std::uint8_t> out);

  /// Convenience: n bytes of output.
  util::Bytes bytes(std::size_t n);

  /// Fixed-size helper for keys/nonces.
  template <std::size_t N>
  std::array<std::uint8_t, N> array() {
    std::array<std::uint8_t, N> out;
    generate(out);
    return out;
  }

  /// Mix new entropy into the key (hash of old key || input).
  void reseed(util::BytesView entropy);

  /// Total bytes generated since construction (for accounting experiments).
  std::uint64_t bytes_generated() const noexcept { return bytes_generated_; }

 private:
  void rekey();

  std::array<std::uint8_t, 32> key_{};
  std::uint64_t counter_ = 0;  // nonce block counter; rekey() resets it
  std::uint64_t bytes_generated_ = 0;
};

}  // namespace cadet::crypto
