// ChaCha20 stream cipher (RFC 8439). Encrypts registration payloads and
// entropy deliveries on secured links, and is the output function of the
// CSPRNG.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace cadet::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(util::BytesView key, util::BytesView nonce,
           std::uint32_t initial_counter = 0);

  /// Wipes the expanded key state and buffered keystream on teardown.
  ~ChaCha20();

  ChaCha20(const ChaCha20&) = default;
  ChaCha20& operator=(const ChaCha20&) = default;

  /// XOR the keystream into the buffer in place (encrypt == decrypt).
  void crypt(std::span<std::uint8_t> data) noexcept;

  /// Produce `out.size()` bytes of raw keystream.
  void keystream(std::span<std::uint8_t> out) noexcept;

  /// One-shot encryption/decryption convenience.
  static util::Bytes crypt(util::BytesView key, util::BytesView nonce,
                           util::BytesView data,
                           std::uint32_t initial_counter = 0);

 private:
  void next_block() noexcept;

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // forces generation on first use
};

}  // namespace cadet::crypto
