#include "net/faulty_transport.h"

#include "obs/trace.h"
#include "util/buffer_pool.h"
#include "util/log.h"

namespace cadet::net {

FaultyTransport::FaultyTransport(Transport& inner, sim::Simulator& simulator,
                                 FaultPlan plan)
    : inner_(inner),
      simulator_(simulator),
      plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xfa017f1aULL) {}

void FaultyTransport::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "net"}, {"transport", "faulty"}};
  dropped_counter_ = &registry.counter("cadet_fault_dropped", labels);
  duplicated_counter_ = &registry.counter("cadet_fault_duplicated", labels);
  reordered_counter_ = &registry.counter("cadet_fault_reordered", labels);
  corrupted_counter_ = &registry.counter("cadet_fault_corrupted", labels);
  partitioned_counter_ = &registry.counter("cadet_fault_partitioned", labels);
  crashed_counter_ = &registry.counter("cadet_fault_crashed", labels);
}

const FaultRule& FaultyTransport::rule_for(NodeId from, NodeId to) const {
  const auto it = plan_.link_rules.find({from, to});
  return it != plan_.link_rules.end() ? it->second : plan_.default_rule;
}

bool FaultyTransport::partitioned(NodeId a, NodeId b,
                                  util::SimTime now) const {
  for (const Partition& p : plan_.partitions) {
    const bool pair_match =
        (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair_match && now >= p.from && now < p.until) return true;
  }
  return false;
}

bool FaultyTransport::crashed(NodeId node, util::SimTime now) const {
  for (const Crash& c : plan_.crashes) {
    if (c.node == node && now >= c.from && now < c.until) return true;
  }
  return false;
}

void FaultyTransport::send(NodeId from, NodeId to, util::Bytes data) {
  if (!enabled_) {
    inner_.send(from, to, std::move(data));
    return;
  }
  const util::SimTime now = simulator_.now();

  // A crashed sender emits nothing. (The receiver side is enforced at
  // delivery time by the wrapped handler, so a datagram already in flight
  // when the crash begins is lost too.)
  if (crashed(from, now)) {
    ++counts_.crashed;
    if (crashed_counter_ != nullptr) crashed_counter_->inc();
    util::BufferPool::local().release(std::move(data));
    return;
  }
  if (partitioned(from, to, now)) {
    ++counts_.partitioned;
    if (partitioned_counter_ != nullptr) partitioned_counter_->inc();
    obs::emit(now, "fault_partition", "net", from,
              {{"to", static_cast<double>(to)}});
    util::BufferPool::local().release(std::move(data));
    return;
  }

  const FaultRule& rule = rule_for(from, to);
  if (rule.drop > 0.0 && rng_.bernoulli(rule.drop)) {
    ++counts_.dropped;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    obs::emit(now, "fault_drop", "net", from,
              {{"to", static_cast<double>(to)}});
    util::BufferPool::local().release(std::move(data));
    return;
  }
  if (rule.corrupt > 0.0 && !data.empty() && rng_.bernoulli(rule.corrupt)) {
    const std::size_t flips = 1 + rng_.uniform(3);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t bit = rng_.uniform(data.size() * 8);
      data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    ++counts_.corrupted;
    if (corrupted_counter_ != nullptr) corrupted_counter_->inc();
    obs::emit(now, "fault_corrupt", "net", from,
              {{"to", static_cast<double>(to)},
               {"flips", static_cast<double>(flips)}});
  }
  if (rule.duplicate > 0.0 && rng_.bernoulli(rule.duplicate)) {
    ++counts_.duplicated;
    if (duplicated_counter_ != nullptr) duplicated_counter_->inc();
    obs::emit(now, "fault_duplicate", "net", from,
              {{"to", static_cast<double>(to)}});
    // The duplicate is the only copy on the whole fault path; its buffer
    // comes from (and returns to) the pool.
    inner_.send(from, to, util::BufferPool::local().copy(data));
  }
  if (rule.reorder > 0.0 && rng_.bernoulli(rule.reorder)) {
    const util::SimTime span =
        rule.reorder_delay_max > rule.reorder_delay_min
            ? rule.reorder_delay_max - rule.reorder_delay_min
            : 1;
    const util::SimTime extra =
        rule.reorder_delay_min +
        static_cast<util::SimTime>(rng_.uniform(
            static_cast<std::uint64_t>(span)));
    ++counts_.reordered;
    if (reordered_counter_ != nullptr) reordered_counter_->inc();
    obs::emit(now, "fault_reorder", "net", from,
              {{"to", static_cast<double>(to)},
               {"delay_ms", util::to_millis(extra)}});
    simulator_.schedule(
        extra, [this, from, to, payload = std::move(data)]() mutable {
          inner_.send(from, to, std::move(payload));
        });
    return;
  }
  inner_.send(from, to, std::move(data));
}

void FaultyTransport::set_handler(NodeId id, PacketHandler handler) {
  inner_.set_handler(
      id, [this, id, handler = std::move(handler)](
              NodeId from, util::BytesView data, util::SimTime now) {
        if (enabled_ && crashed(id, now)) {
          ++counts_.crashed;
          if (crashed_counter_ != nullptr) crashed_counter_->inc();
          return;
        }
        handler(from, data, now);
      });
}

}  // namespace cadet::net
