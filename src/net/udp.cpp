#include "net/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace cadet::net {

namespace {

sockaddr_in make_sockaddr(const UdpAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    throw std::invalid_argument("UdpEndpoint: bad IPv4 address " + addr.host);
  }
  return sa;
}

}  // namespace

UdpEndpoint::UdpEndpoint(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "getsockname");
  }
  port_ = ntohs(sa.sin_port);
}

UdpEndpoint::~UdpEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

UdpEndpoint::UdpEndpoint(UdpEndpoint&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpEndpoint& UdpEndpoint::operator=(UdpEndpoint&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

bool UdpEndpoint::send_to(const UdpAddress& dest, util::BytesView data) {
  const sockaddr_in sa = make_sockaddr(dest);
  const ssize_t sent =
      ::sendto(fd_, data.data(), data.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      return false;
    }
    throw std::system_error(errno, std::generic_category(), "sendto");
  }
  return true;
}

int UdpEndpoint::drain(const std::function<void(util::BytesView,
                                                const UdpAddress&)>& on_packet) {
  int count = 0;
  std::uint8_t buf[65536];
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    const ssize_t got = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                   reinterpret_cast<sockaddr*>(&sa), &len);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "recvfrom");
    }
    char host[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof(host));
    UdpAddress from{host, ntohs(sa.sin_port)};
    on_packet(util::BytesView(buf, static_cast<std::size_t>(got)), from);
    ++count;
  }
  return count;
}

bool wait_readable(const std::vector<const UdpEndpoint*>& endpoints,
                   int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(endpoints.size());
  for (const auto* ep : endpoints) {
    fds.push_back(pollfd{ep->fd(), POLLIN, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    throw std::system_error(errno, std::generic_category(), "poll");
  }
  return ready > 0;
}

}  // namespace cadet::net
