// Transport implementation over the discrete-event simulator. Latency per
// directed link comes from a LatencyProfile (default: testbed LAN); packet
// and byte counters feed the Fig. 10 load-accounting experiments.
//
// Hot-path layout: each node's handler and traffic counters live together
// in one NodeState, so a send touches exactly one hash lookup per endpoint
// (the old code did 3-4: handlers_, counters_ twice, and an ordered-map
// walk for the link profile). The destination's NodeState pointer is
// resolved at send time and captured by the delivery closure —
// unordered_map references are stable, so no lookup happens at delivery.
// Link-profile overrides sit in a flat hash map keyed by the packed
// (from, to) pair, with an empty-map fast path for the common
// default-profile case. Payloads move (never copy) from send() through the
// scheduled delivery into the handler, and their storage is recycled
// through util::BufferPool afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cadet::net {

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulator& simulator, std::uint64_t seed);

  void send(NodeId from, NodeId to, util::Bytes data) override;
  void set_handler(NodeId id, PacketHandler handler) override;

  /// Pre-size the node and link tables (topology build time) so steady-state
  /// sends never rehash.
  void reserve(std::size_t nodes, std::size_t links = 0);

  /// Latency profile for every link without an explicit override.
  void set_default_profile(const sim::LatencyProfile& profile);

  /// Override the profile of the directed link from -> to.
  void set_link_profile(NodeId from, NodeId to,
                        const sim::LatencyProfile& profile);

  /// Per-node traffic accounting.
  struct NodeCounters {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };
  const NodeCounters& counters(NodeId id) const;
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t dropped_packets() const noexcept { return dropped_packets_; }
  void reset_counters();

  /// Publish link-layer totals (cadet_net_packets / _bytes / _dropped
  /// counters, cadet_net_latency_seconds histogram) to `registry`, which
  /// must outlive the transport.
  void bind_metrics(obs::Registry& registry);

 private:
  /// Handler + counters of one node, colocated so the send path resolves
  /// both with a single lookup. References into nodes_ stay valid across
  /// rehashes (unordered_map guarantees element stability), which is what
  /// lets delivery closures capture NodeState pointers.
  struct NodeState {
    PacketHandler handler;
    NodeCounters counters;
  };

  static constexpr std::uint64_t link_key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) |
           static_cast<std::uint64_t>(to);
  }

  const sim::LatencyProfile& profile_for(NodeId from, NodeId to) const;
  void count_unbound_drop(NodeId from, NodeId to);

  sim::Simulator& simulator_;
  util::Xoshiro256 rng_;
  sim::LatencyProfile default_profile_;
  std::unordered_map<std::uint64_t, sim::LatencyProfile> link_profiles_;
  mutable std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t dropped_packets_ = 0;

  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace cadet::net
