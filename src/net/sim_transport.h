// Transport implementation over the discrete-event simulator. Latency per
// directed link comes from a LatencyProfile (default: testbed LAN); packet
// and byte counters feed the Fig. 10 load-accounting experiments.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cadet::net {

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulator& simulator, std::uint64_t seed);

  void send(NodeId from, NodeId to, util::Bytes data) override;
  void set_handler(NodeId id, PacketHandler handler) override;

  /// Latency profile for every link without an explicit override.
  void set_default_profile(const sim::LatencyProfile& profile);

  /// Override the profile of the directed link from -> to.
  void set_link_profile(NodeId from, NodeId to,
                        const sim::LatencyProfile& profile);

  /// Per-node traffic accounting.
  struct NodeCounters {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };
  const NodeCounters& counters(NodeId id) const;
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t dropped_packets() const noexcept { return dropped_packets_; }
  void reset_counters();

  /// Publish link-layer totals (cadet_net_packets / _bytes / _dropped
  /// counters, cadet_net_latency_seconds histogram) to `registry`, which
  /// must outlive the transport.
  void bind_metrics(obs::Registry& registry);

 private:
  const sim::LatencyProfile& profile_for(NodeId from, NodeId to) const;

  sim::Simulator& simulator_;
  util::Xoshiro256 rng_;
  sim::LatencyProfile default_profile_;
  std::map<std::pair<NodeId, NodeId>, sim::LatencyProfile> link_profiles_;
  std::unordered_map<NodeId, PacketHandler> handlers_;
  mutable std::unordered_map<NodeId, NodeCounters> counters_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t dropped_packets_ = 0;

  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace cadet::net
