// Transport abstraction. CADET protocol engines are sans-IO: they consume
// decoded packets plus the current time and return send-intents. A Transport
// moves the bytes — either through the discrete-event simulator
// (SimTransport) or over real UDP sockets (net/udp.h) — so the same engine
// code backs both the testbed reproduction and live deployments.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.h"
#include "util/time.h"

namespace cadet::net {

/// Stable identifier for a protocol participant. In simulation these are
/// assigned by the topology builder; over UDP they map to host:port entries
/// in an address book.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffff;

/// A send-intent produced by a protocol engine.
struct Outgoing {
  NodeId to = kInvalidNode;
  util::Bytes data;
};

/// Delivery callback: (sender, payload, delivery time).
using PacketHandler =
    std::function<void(NodeId from, util::BytesView data, util::SimTime now)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue a datagram from `from` to `to`. Fire-and-forget (UDP semantics:
  /// the transport may drop it).
  virtual void send(NodeId from, NodeId to, util::Bytes data) = 0;

  /// Install the delivery handler for a node. Replaces any previous handler.
  virtual void set_handler(NodeId id, PacketHandler handler) = 0;
};

}  // namespace cadet::net
