#include "net/sim_transport.h"

#include "obs/trace.h"
#include "util/log.h"

namespace cadet::net {

SimTransport::SimTransport(sim::Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator), rng_(seed), default_profile_(sim::testbed_lan()) {}

void SimTransport::set_default_profile(const sim::LatencyProfile& profile) {
  default_profile_ = profile;
}

void SimTransport::set_link_profile(NodeId from, NodeId to,
                                    const sim::LatencyProfile& profile) {
  link_profiles_[{from, to}] = profile;
}

const sim::LatencyProfile& SimTransport::profile_for(NodeId from,
                                                     NodeId to) const {
  const auto it = link_profiles_.find({from, to});
  return it != link_profiles_.end() ? it->second : default_profile_;
}

void SimTransport::send(NodeId from, NodeId to, util::Bytes data) {
  auto& from_counters = counters_[from];
  ++from_counters.packets_sent;
  from_counters.bytes_sent += data.size();
  ++total_packets_;
  if (packets_counter_ != nullptr) {
    packets_counter_->inc();
    bytes_counter_->inc(data.size());
  }

  const auto& profile = profile_for(from, to);
  if (profile.dropped(rng_)) {
    ++dropped_packets_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    obs::emit(simulator_.now(), "packet_drop", "net", from,
              {{"to", static_cast<double>(to)}});
    return;
  }
  const util::SimTime delay = profile.sample(rng_, data.size());
  if (latency_hist_ != nullptr) {
    latency_hist_->observe(util::to_seconds(delay));
  }
  simulator_.schedule(
      delay, [this, from, to, payload = std::move(data)]() {
        const auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          // An unbound destination is a drop, not a delivery: count it as
          // such so load accounting stays truthful.
          ++dropped_packets_;
          if (dropped_counter_ != nullptr) dropped_counter_->inc();
          obs::emit(simulator_.now(), "packet_drop", "net", from,
                    {{"to", static_cast<double>(to)}, {"unbound", 1.0}});
          CADET_LOG_DEBUG << "SimTransport: dropping packet to unbound node "
                          << to;
          return;
        }
        auto& to_counters = counters_[to];
        ++to_counters.packets_received;
        to_counters.bytes_received += payload.size();
        it->second(from, payload, simulator_.now());
      });
}

void SimTransport::set_handler(NodeId id, PacketHandler handler) {
  handlers_[id] = std::move(handler);
}

const SimTransport::NodeCounters& SimTransport::counters(NodeId id) const {
  return counters_[id];  // default-constructs zeros for unseen nodes
}

void SimTransport::reset_counters() {
  counters_.clear();
  total_packets_ = 0;
  dropped_packets_ = 0;
}

void SimTransport::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "net"}, {"transport", "sim"}};
  packets_counter_ = &registry.counter("cadet_net_packets", labels);
  bytes_counter_ = &registry.counter("cadet_net_bytes", labels);
  dropped_counter_ = &registry.counter("cadet_net_dropped", labels);
  latency_hist_ = &registry.histogram("cadet_net_latency_seconds", labels);
}

}  // namespace cadet::net
