#include "net/sim_transport.h"

#include "obs/trace.h"
#include "util/buffer_pool.h"
#include "util/log.h"

namespace cadet::net {

SimTransport::SimTransport(sim::Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator), rng_(seed), default_profile_(sim::testbed_lan()) {}

void SimTransport::reserve(std::size_t nodes, std::size_t links) {
  nodes_.reserve(nodes);
  if (links > 0) link_profiles_.reserve(links);
}

void SimTransport::set_default_profile(const sim::LatencyProfile& profile) {
  default_profile_ = profile;
}

void SimTransport::set_link_profile(NodeId from, NodeId to,
                                    const sim::LatencyProfile& profile) {
  link_profiles_[link_key(from, to)] = profile;
}

const sim::LatencyProfile& SimTransport::profile_for(NodeId from,
                                                     NodeId to) const {
  if (link_profiles_.empty()) return default_profile_;
  const auto it = link_profiles_.find(link_key(from, to));
  return it != link_profiles_.end() ? it->second : default_profile_;
}

void SimTransport::count_unbound_drop(NodeId from, NodeId to) {
  // An unbound destination is a drop, not a delivery: count it as such so
  // load accounting stays truthful.
  ++dropped_packets_;
  if (dropped_counter_ != nullptr) dropped_counter_->inc();
  obs::emit(simulator_.now(), "packet_drop", "net", from,
            {{"to", static_cast<double>(to)}, {"unbound", 1.0}});
  CADET_LOG_DEBUG << "SimTransport: dropping packet to unbound node " << to;
}

void SimTransport::send(NodeId from, NodeId to, util::Bytes data) {
  NodeState& src = nodes_[from];
  ++src.counters.packets_sent;
  src.counters.bytes_sent += data.size();
  ++total_packets_;
  if (packets_counter_ != nullptr) {
    packets_counter_->inc();
    bytes_counter_->inc(data.size());
  }

  const auto& profile = profile_for(from, to);
  if (profile.dropped(rng_)) {
    ++dropped_packets_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    obs::emit(simulator_.now(), "packet_drop", "net", from,
              {{"to", static_cast<double>(to)}});
    util::BufferPool::local().release(std::move(data));
    return;
  }
  const util::SimTime delay = profile.sample(rng_, data.size());
  if (latency_hist_ != nullptr) {
    latency_hist_->observe(util::to_seconds(delay));
  }
  // One lookup now; the delivery closure reuses the pointer (element
  // references are stable). A handler installed between send and delivery
  // is honoured, same as the old lookup-at-delivery behaviour.
  NodeState* dst = &nodes_[to];
  simulator_.schedule(
      delay, [this, from, to, dst, payload = std::move(data)]() mutable {
        if (!dst->handler) {
          count_unbound_drop(from, to);
          util::BufferPool::local().release(std::move(payload));
          return;
        }
        ++dst->counters.packets_received;
        dst->counters.bytes_received += payload.size();
        dst->handler(from, payload, simulator_.now());
        util::BufferPool::local().release(std::move(payload));
      });
}

void SimTransport::set_handler(NodeId id, PacketHandler handler) {
  nodes_[id].handler = std::move(handler);
}

const SimTransport::NodeCounters& SimTransport::counters(NodeId id) const {
  return nodes_[id].counters;  // default-constructs zeros for unseen nodes
}

void SimTransport::reset_counters() {
  // Zero in place instead of clearing: delivery closures in flight hold
  // NodeState pointers into this map.
  for (auto& [id, node] : nodes_) {
    node.counters = NodeCounters{};
  }
  total_packets_ = 0;
  dropped_packets_ = 0;
}

void SimTransport::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "net"}, {"transport", "sim"}};
  packets_counter_ = &registry.counter("cadet_net_packets", labels);
  bytes_counter_ = &registry.counter("cadet_net_bytes", labels);
  dropped_counter_ = &registry.counter("cadet_net_dropped", labels);
  latency_hist_ = &registry.histogram("cadet_net_latency_seconds", labels);
}

}  // namespace cadet::net
