// Binds sans-IO CADET engines to real UDP sockets: one endpoint per node,
// a NodeId -> port directory, and a poll loop that feeds received
// datagrams to engine handlers and transmits their send-intents. This is
// the live-deployment counterpart of testbed::SimNode.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "net/udp.h"
#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/sharded.h"

namespace cadet::obs {
class SloEngine;
}

namespace cadet::net {

/// Wall-clock nanoseconds suitable for the engines' SimTime parameter.
util::SimTime wall_clock_ns();

class UdpRunner {
 public:
  using Handler = std::function<std::vector<Outgoing>(
      NodeId from, util::BytesView data, util::SimTime now)>;

  /// Bind a new loopback endpoint for `id` and route incoming datagrams to
  /// `handler`. Returns the bound port.
  std::uint16_t add_node(NodeId id, Handler handler);

  /// Register an off-process peer reachable at `address` (for runners that
  /// host only part of a deployment).
  void add_remote(NodeId id, const UdpAddress& address);

  /// Transmit an engine's send-intents on behalf of `from`. Intents for
  /// unknown destinations are dropped (counted).
  void send_all(NodeId from, const std::vector<Outgoing>& out);

  /// Wait up to timeout_ms for traffic, then drain every socket once,
  /// dispatching handlers and transmitting their replies. Returns the
  /// number of datagrams handled.
  int poll_once(int timeout_ms);

  /// Pump until `done()` or `deadline_ms` elapses; true if `done`.
  bool pump_until(const std::function<bool()>& done, int deadline_ms);

  std::uint64_t dropped_sends() const noexcept { return dropped_sends_; }
  std::uint64_t datagrams_handled() const noexcept { return handled_; }

  /// Publish datagram totals and handler latency (cadet_net_packets /
  /// _bytes / _dropped counters, cadet_net_handler_seconds histogram,
  /// labeled transport=udp) to `registry`, which must outlive the runner.
  /// Counters are cache-line-sharded and the latency histogram is a
  /// striped HDR, so a multi-threaded poll loop shares them without
  /// contention.
  void bind_metrics(obs::Registry& registry);

  /// Tick `engine` from the poll loop, at most once per `interval_ms` of
  /// wall clock (default 100 ms). The engine must outlive the runner.
  void bind_health(obs::SloEngine* engine, int interval_ms = 100);

 private:
  struct Node {
    NodeId id;
    std::unique_ptr<UdpEndpoint> endpoint;
    Handler handler;
  };

  UdpEndpoint* endpoint_of(NodeId id);
  NodeId node_for_address(const UdpAddress& address) const;

  std::vector<Node> nodes_;
  std::map<NodeId, UdpAddress> directory_;
  std::uint64_t dropped_sends_ = 0;
  std::uint64_t handled_ = 0;

  obs::ShardedCounter* packets_counter_ = nullptr;
  obs::ShardedCounter* bytes_counter_ = nullptr;
  obs::ShardedCounter* dropped_counter_ = nullptr;
  obs::HdrHistogram* handler_hist_ = nullptr;

  obs::SloEngine* slo_ = nullptr;
  std::int64_t slo_interval_ns_ = 0;
  std::int64_t last_slo_tick_ns_ = 0;
};

}  // namespace cadet::net
