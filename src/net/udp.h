// Real UDP sockets (POSIX, non-blocking) for running CADET live, matching
// the paper's prototype which "utilizes UDP sockets to facilitate direct
// exchanges of data" (§VI-A). The examples run a full client/edge/server
// deployment over loopback with these.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace cadet::net {

struct UdpAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool operator==(const UdpAddress&) const = default;
};

/// One bound UDP socket. Non-copyable; owns the file descriptor.
class UdpEndpoint {
 public:
  /// Create and bind. port == 0 picks an ephemeral port.
  explicit UdpEndpoint(std::uint16_t port = 0);
  ~UdpEndpoint();

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;
  UdpEndpoint(UdpEndpoint&& other) noexcept;
  UdpEndpoint& operator=(UdpEndpoint&& other) noexcept;

  std::uint16_t local_port() const noexcept { return port_; }
  int fd() const noexcept { return fd_; }

  /// Send one datagram. Throws std::system_error on hard socket errors;
  /// transient full-buffer conditions are reported by returning false.
  bool send_to(const UdpAddress& dest, util::BytesView data);

  /// Drain every datagram currently readable, invoking `on_packet` for
  /// each. Returns the number of datagrams delivered. Non-blocking.
  int drain(const std::function<void(util::BytesView data,
                                     const UdpAddress& from)>& on_packet);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Block until any of the endpoints is readable, up to timeout_ms
/// (-1 = wait forever). Returns true if at least one became readable.
bool wait_readable(const std::vector<const UdpEndpoint*>& endpoints,
                   int timeout_ms);

}  // namespace cadet::net
