#include "net/udp_runner.h"

#include "obs/slo.h"

namespace cadet::net {

util::SimTime wall_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint16_t UdpRunner::add_node(NodeId id, Handler handler) {
  auto endpoint = std::make_unique<UdpEndpoint>();
  const std::uint16_t port = endpoint->local_port();
  directory_[id] = UdpAddress{"127.0.0.1", port};
  nodes_.push_back(Node{id, std::move(endpoint), std::move(handler)});
  return port;
}

void UdpRunner::add_remote(NodeId id, const UdpAddress& address) {
  directory_[id] = address;
}

UdpEndpoint* UdpRunner::endpoint_of(NodeId id) {
  for (auto& node : nodes_) {
    if (node.id == id) return node.endpoint.get();
  }
  return nullptr;
}

NodeId UdpRunner::node_for_address(const UdpAddress& address) const {
  for (const auto& [id, addr] : directory_) {
    if (addr == address) return id;
  }
  return kInvalidNode;
}

void UdpRunner::send_all(NodeId from, const std::vector<Outgoing>& out) {
  UdpEndpoint* endpoint = endpoint_of(from);
  if (endpoint == nullptr) {
    dropped_sends_ += out.size();
    return;
  }
  for (const auto& o : out) {
    const auto it = directory_.find(o.to);
    if (it == directory_.end()) {
      ++dropped_sends_;
      if (dropped_counter_ != nullptr) dropped_counter_->inc();
      continue;
    }
    if (!endpoint->send_to(it->second, o.data)) {
      // Kernel buffer full (EAGAIN/ENOBUFS): the datagram never left the
      // host, so account it as dropped rather than sent.
      ++dropped_sends_;
      if (dropped_counter_ != nullptr) dropped_counter_->inc();
      continue;
    }
    if (packets_counter_ != nullptr) {
      packets_counter_->inc();
      bytes_counter_->inc(o.data.size());
    }
  }
}

void UdpRunner::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "net"}, {"transport", "udp"}};
  packets_counter_ = &registry.sharded_counter("cadet_net_packets", labels);
  bytes_counter_ = &registry.sharded_counter("cadet_net_bytes", labels);
  dropped_counter_ = &registry.sharded_counter("cadet_net_dropped", labels);
  obs::HdrConfig hdr;
  hdr.striped = true;  // handler latency records from every poll thread
  handler_hist_ = &registry.hdr("cadet_net_handler_seconds", labels, hdr);
}

void UdpRunner::bind_health(obs::SloEngine* engine, int interval_ms) {
  slo_ = engine;
  slo_interval_ns_ =
      static_cast<std::int64_t>(interval_ms < 1 ? 1 : interval_ms) *
      1'000'000;
  last_slo_tick_ns_ = 0;
}

int UdpRunner::poll_once(int timeout_ms) {
  std::vector<const UdpEndpoint*> endpoints;
  endpoints.reserve(nodes_.size());
  for (const auto& node : nodes_) endpoints.push_back(node.endpoint.get());
  wait_readable(endpoints, timeout_ms);

  int handled = 0;
  for (auto& node : nodes_) {
    handled += node.endpoint->drain(
        [&](util::BytesView data, const UdpAddress& from) {
          const NodeId sender = node_for_address(from);
          const util::SimTime start = wall_clock_ns();
          const auto replies = node.handler(sender, data, start);
          if (handler_hist_ != nullptr) {
            handler_hist_->observe(
                util::to_seconds(wall_clock_ns() - start));
          }
          send_all(node.id, replies);
        });
  }
  handled_ += static_cast<std::uint64_t>(handled);

  if (slo_ != nullptr) {
    const util::SimTime now = wall_clock_ns();
    if (now - last_slo_tick_ns_ >= slo_interval_ns_) {
      last_slo_tick_ns_ = now;
      slo_->tick(util::to_seconds(now));
    }
  }
  return handled;
}

bool UdpRunner::pump_until(const std::function<bool()>& done,
                           int deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  while (!done()) {
    poll_once(20);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    if (elapsed.count() > deadline_ms) return false;
  }
  return true;
}

}  // namespace cadet::net
