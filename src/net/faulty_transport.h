// Fault-injection decorator over any Transport. A seeded FaultPlan drives
// per-link drop / duplicate / reorder / corrupt decisions, timed network
// partitions, and node crash windows, so chaos experiments are exactly
// reproducible: the same plan seed yields the same fault sequence. Wraps the
// inner transport transparently — protocol engines cannot tell it is there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cadet::net {

/// Per-link fault probabilities (each decided independently per datagram).
struct FaultRule {
  double drop = 0.0;       ///< datagram silently discarded
  double duplicate = 0.0;  ///< datagram delivered twice
  double reorder = 0.0;    ///< datagram held back by an extra random delay
  double corrupt = 0.0;    ///< 1-3 random bit flips in the payload
  util::SimTime reorder_delay_min = 2 * util::kMillisecond;
  util::SimTime reorder_delay_max = 80 * util::kMillisecond;
};

/// A timed bidirectional partition between two nodes: datagrams either way
/// are discarded while `from <= now < until`.
struct Partition {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  util::SimTime from = 0;
  util::SimTime until = 0;
};

/// A node crash window: the node neither sends nor receives while
/// `from <= now < until` (restart = window end).
struct Crash {
  NodeId node = kInvalidNode;
  util::SimTime from = 0;
  util::SimTime until = 0;
};

/// Complete, seed-deterministic description of the faults to inject.
struct FaultPlan {
  std::uint64_t seed = 1;
  FaultRule default_rule;
  /// Overrides for specific directed links (from, to).
  std::map<std::pair<NodeId, NodeId>, FaultRule> link_rules;
  std::vector<Partition> partitions;
  std::vector<Crash> crashes;
};

class FaultyTransport final : public Transport {
 public:
  /// `inner` and `simulator` must outlive this transport. The simulator
  /// supplies the clock for partition/crash windows and schedules the
  /// extra delay of reordered datagrams.
  FaultyTransport(Transport& inner, sim::Simulator& simulator, FaultPlan plan);

  void send(NodeId from, NodeId to, util::Bytes data) override;
  void set_handler(NodeId id, PacketHandler handler) override;

  /// Master switch: while disabled every datagram passes through untouched
  /// (chaos scenarios register the topology cleanly, then flip faults on).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  const FaultPlan& plan() const noexcept { return plan_; }

  struct FaultCounts {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t partitioned = 0;
    std::uint64_t crashed = 0;  ///< datagrams lost to crash windows
  };
  const FaultCounts& counts() const noexcept { return counts_; }

  /// Publish cadet_fault_* counters to `registry` (must outlive this).
  void bind_metrics(obs::Registry& registry);

 private:
  const FaultRule& rule_for(NodeId from, NodeId to) const;
  bool partitioned(NodeId a, NodeId b, util::SimTime now) const;
  bool crashed(NodeId node, util::SimTime now) const;

  Transport& inner_;
  sim::Simulator& simulator_;
  FaultPlan plan_;
  util::Xoshiro256 rng_;
  bool enabled_ = true;
  FaultCounts counts_;

  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
  obs::Counter* reordered_counter_ = nullptr;
  obs::Counter* corrupted_counter_ = nullptr;
  obs::Counter* partitioned_counter_ = nullptr;
  obs::Counter* crashed_counter_ = nullptr;
};

}  // namespace cadet::net
