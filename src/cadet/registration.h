// Registration primitives shared by the client/edge/server engines
// (paper §V, Fig. 7): X25519 key agreement with HKDF key derivation,
// nonce-increment confirmation, and the client token scheme that lets a
// constrained client rebind to any edge without a second key exchange.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/csprng.h"
#include "crypto/x25519.h"
#include "util/bytes.h"
#include "util/time.h"

namespace cadet {

using SharedKey = std::array<std::uint8_t, 32>;
using Token = std::array<std::uint8_t, 32>;
using Nonce = std::array<std::uint8_t, 8>;

/// Reregistration token hashes are bound to a coarse time window so a
/// captured hash cannot be replayed indefinitely (h(T) with T = (token,
/// current time), paper §V-C). Servers accept the current and previous
/// window to absorb clock skew and transit time.
inline constexpr util::SimTime kTokenWindow = 60 * util::kSecond;

/// Derive a link key from an X25519 shared secret.
/// `label` domain-separates edge-server ("cadet/esk"), client-server
/// ("cadet/csk"), and client-edge ("cadet/cek") keys.
SharedKey derive_key(const crypto::X25519Key& shared_secret,
                     util::BytesView label);

inline constexpr std::uint8_t kLabelEsk[] = {'c','a','d','e','t','/','e','s','k'};
inline constexpr std::uint8_t kLabelCsk[] = {'c','a','d','e','t','/','c','s','k'};

/// nonce + k as a big-endian 64-bit counter (the n+1 / n+2 confirmations).
Nonce nonce_add(const Nonce& nonce, std::uint64_t k) noexcept;

/// h(T): SHA-256 of token || window index.
std::array<std::uint8_t, 32> token_hash(const Token& token,
                                        std::int64_t window) noexcept;

/// Window index for a timestamp.
std::int64_t token_window(util::SimTime now) noexcept;

/// Fresh random token.
Token make_token(crypto::Csprng& rng);

/// Fresh X25519 keypair from the CSPRNG.
crypto::X25519KeyPair make_keypair(crypto::Csprng& rng);

// -------- fixed-layout payload fragments (offset-based codecs) --------

/// pub(32) || nonce(8) — EdgeRegReq / ClientInitReq.
util::Bytes encode_reg_request(const crypto::X25519Key& pub,
                               const Nonce& nonce);
struct RegRequest {
  crypto::X25519Key pub;
  Nonce nonce;
};
std::optional<RegRequest> decode_reg_request(util::BytesView payload);

}  // namespace cadet
