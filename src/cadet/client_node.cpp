#include "cadet/client_node.h"

#include <algorithm>
#include <cstring>

#include "cadet/config.h"
#include "cadet/seal.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/log.h"

namespace cadet {

ClientNode::ClientNode(const Config& config)
    : config_(config),
      csprng_(config.seed ^ 0xc11e47c11e47ULL),
      rng_(config.seed ^ 0xbacc0ffULL),
      pool_(config.pool_bits) {
  if (config.metrics != nullptr) {
    metrics_ = config.metrics;
  } else {
    owned_metrics_ = std::make_shared<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  const obs::Labels labels = obs::tier_labels("client", config_.id);
  ctr_.requests_sent = &metrics_->counter("cadet_client_requests_sent", labels);
  ctr_.requests_fulfilled =
      &metrics_->counter("cadet_client_requests_fulfilled", labels);
  ctr_.requests_expired =
      &metrics_->counter("cadet_client_requests_expired", labels);
  ctr_.requests_retried =
      &metrics_->counter("cadet_client_requests_retried", labels);
  ctr_.requests_fallback =
      &metrics_->counter("cadet_client_requests_fallback", labels);
  ctr_.dupes_dropped =
      &metrics_->counter("cadet_client_dupes_dropped", labels);
  ctr_.uploads_sent = &metrics_->counter("cadet_client_uploads_sent", labels);
  ctr_.bytes_received =
      &metrics_->counter("cadet_client_bytes_received", labels);
  pool_.bind_metrics(*metrics_, labels);
}

util::Bytes ClientNode::wire(Packet packet) {
  if (++tx_seq_ == 0) ++tx_seq_;  // 0 is the "unsequenced" sentinel
  packet.header.seq = tx_seq_;
  return encode(packet);
}

util::SimTime ClientNode::backoff_delay(util::SimTime base,
                                        std::size_t attempt) {
  const double scale = static_cast<double>(
      std::uint64_t{1} << std::min<std::size_t>(attempt, 10));
  const double jitter = 1.0 + 0.1 * (2.0 * rng_.uniform01() - 1.0);
  return static_cast<util::SimTime>(static_cast<double>(base) * scale *
                                    jitter);
}

std::vector<net::Outgoing> ClientNode::begin_init(util::SimTime now,
                                                  RegCallback on_complete) {
  on_init_complete_ = std::move(on_complete);
  init_attempts_ = 0;
  return send_init(now);
}

std::vector<net::Outgoing> ClientNode::send_init(util::SimTime now) {
  (void)now;
  // Fresh keypair + nonce. Key generation is the expensive one-time entropy
  // and compute spend the token scheme exists to avoid repeating. Retries
  // re-run the whole handshake (new keypair, new nonce) so a stale server
  // pending entry or a deduplicated packet can never wedge registration.
  init_keypair_ = make_keypair(csprng_);
  init_nonce_ = csprng_.array<8>();
  cost_.add(cost::kX25519 + cost::kCraftPacket);

  Packet p = Packet::registration(
      RegSubtype::kClientInitReq,
      encode_reg_request(init_keypair_->public_key, *init_nonce_),
      /*req=*/true, /*ack=*/false, /*client_edge=*/false,
      /*edge_server=*/false);
  schedule_init_retry();
  return {{config_.server, wire(std::move(p))}};
}

void ClientNode::schedule_init_retry() {
  if (!config_.timer) return;
  const std::size_t attempt = init_attempts_++;
  if (attempt >= config_.max_reg_retries) return;
  config_.timer(backoff_delay(config_.reg_retry_base, attempt),
                [this](util::SimTime now) -> std::vector<net::Outgoing> {
                  if (initialized()) return {};
                  obs::emit(now, "init_retry", "client", config_.id, {});
                  return send_init(now);
                });
}

std::vector<net::Outgoing> ClientNode::begin_rereg(util::SimTime now,
                                                   RegCallback on_complete) {
  if (!csk_ || !token_) {
    CADET_LOG_WARN << "client " << config_.id
                   << ": rereg attempted before init";
    return {};
  }
  on_rereg_complete_ = std::move(on_complete);
  rereg_attempts_ = 0;
  return send_rereg(now);
}

std::vector<net::Outgoing> ClientNode::send_rereg(util::SimTime now) {
  const auto hash = token_hash(*token_, token_window(now));
  cost_.add(cost::kTokenHash + cost::kCraftPacket);

  util::Bytes payload(4);
  util::put_u32_be(payload.data(), config_.id);
  util::append(payload, hash);
  Packet p = Packet::registration(RegSubtype::kReregReq, std::move(payload),
                                  /*req=*/true, /*ack=*/false,
                                  /*client_edge=*/true, /*edge_server=*/false);
  schedule_rereg_retry();
  return {{config_.edge, wire(std::move(p))}};
}

void ClientNode::schedule_rereg_retry() {
  if (!config_.timer) return;
  const std::size_t attempt = rereg_attempts_++;
  if (attempt >= config_.max_reg_retries) return;
  config_.timer(backoff_delay(config_.reg_retry_base, attempt),
                [this](util::SimTime now) -> std::vector<net::Outgoing> {
                  if (reregistered() || !csk_ || !token_) return {};
                  obs::emit(now, "rereg_retry", "client", config_.id, {});
                  return send_rereg(now);
                });
}

std::vector<net::Outgoing> ClientNode::request_entropy(
    std::uint16_t bits, util::SimTime now, RequestCallback on_complete,
    bool end_to_end) {
  expire_stale_requests(now);
  if (end_to_end && !csk_) {
    CADET_LOG_WARN << "client " << config_.id
                   << ": end-to-end request before initialization";
    return {};
  }
  cost_.add(cost::kCraftPacket);
  ctr_.requests_sent->inc();
  // Root span of this request's trace: opens here, closes at the terminal
  // "reply" / "fallback" / "request_expired" record.
  const obs::SpanContext ctx = obs::SpanTracker::global().start_trace();
  obs::span_begin(now, "request", "client", config_.id, ctx, 0,
                  {{"bits", static_cast<double>(bits)},
                   {"e2e", end_to_end ? 1.0 : 0.0}});
  Packet p = end_to_end
                 ? Packet::data_request_e2e(bits, /*edge_server=*/false,
                                            config_.id)
                 : Packet::data_request(bits, /*edge_server=*/false);
  // Retransmissions resend these exact bytes (same sequence number), so a
  // retry whose first copy arrived is absorbed by the receiver's dedup
  // window instead of being served twice. The same seq carries the span
  // context to the edge — retries keep the original binding.
  util::Bytes datagram = wire(std::move(p));
  obs::SpanTracker::global().bind_seq(config_.id, tx_seq_, ctx);
  const std::uint64_t request_id = next_request_id_++;
  pending_.push_back(PendingRequest{bits, std::move(on_complete), end_to_end,
                                    now, request_id, 0, datagram, ctx});
  schedule_request_retry(request_id, 0);
  return {{config_.edge, std::move(datagram)}};
}

void ClientNode::schedule_request_retry(std::uint64_t request_id,
                                        std::size_t attempt) {
  if (!config_.timer) return;
  config_.timer(backoff_delay(config_.request_retry_base, attempt),
                [this, request_id](util::SimTime now) {
                  return retry_request(request_id, now);
                });
}

std::vector<net::Outgoing> ClientNode::retry_request(std::uint64_t request_id,
                                                     util::SimTime now) {
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [&](const PendingRequest& r) { return r.id == request_id; });
  if (it == pending_.end()) return {};  // fulfilled or expired meanwhile

  if (it->attempts >= config_.max_request_retries) {
    // Graceful degradation (Kietzmann et al.): the service is unreachable,
    // so answer from the local CSPRNG instead of blocking the consumer.
    PendingRequest req = std::move(*it);
    pending_.erase(it);
    ctr_.requests_fallback->inc();
    obs::span_end(now, "fallback", "client", config_.id, req.ctx,
                  {{"bits", static_cast<double>(req.bits)},
                   {"attempts", static_cast<double>(req.attempts)}});
    const util::Bytes local = csprng_.bytes((req.bits + 7) / 8);
    if (req.callback) req.callback(local, now);
    return {};
  }

  ++it->attempts;
  ctr_.requests_retried->inc();
  cost_.add(cost::kCraftPacket);
  obs::span_event(now, "request_retry", "client", config_.id, it->ctx,
                  {{"attempt", static_cast<double>(it->attempts)}});
  schedule_request_retry(request_id, it->attempts);
  return {{config_.edge, it->wire}};
}

std::vector<net::Outgoing> ClientNode::upload_entropy(util::Bytes payload,
                                                      util::SimTime now) {
  cost_.add(cost::kCraftPacket);
  ctr_.uploads_sent->inc();
  // Uploads get their own trace so downstream accounting (penalty drops,
  // sanity rejects, bulk forwarding) joins back to the originating client.
  // There is no acknowledgement to wait for, so the root is zero-length.
  const obs::SpanContext ctx = obs::SpanTracker::global().start_trace();
  obs::span_complete(now, "upload", "client", config_.id, ctx, 0,
                     {{"bytes", static_cast<double>(payload.size())}});
  Packet p = Packet::data_upload(std::move(payload), /*edge_server=*/false);
  util::Bytes datagram = wire(std::move(p));
  obs::SpanTracker::global().bind_seq(config_.id, tx_seq_, ctx);
  return {{config_.edge, std::move(datagram)}};
}

void ClientNode::expire_stale_requests(util::SimTime now) {
  while (!pending_.empty() &&
         now - pending_.front().issued_at > config_.request_timeout) {
    PendingRequest req = std::move(pending_.front());
    pending_.pop_front();
    ctr_.requests_expired->inc();
    obs::span_end(now, "request_expired", "client", config_.id, req.ctx,
                  {{"waited_s", util::to_seconds(now - req.issued_at)}});
    if (req.callback) req.callback({}, now);
  }
}

std::vector<net::Outgoing> ClientNode::on_packet(net::NodeId from,
                                                 util::BytesView data,
                                                 util::SimTime now) {
  cost_.add(cost::kProcessPacket);
  expire_stale_requests(now);
  const auto packet = decode(data);
  if (!packet) {
    CADET_LOG_DEBUG << "client " << config_.id << ": malformed packet from "
                    << from;
    return {};
  }

  if (packet->header.reg) {
    switch (packet->header.subtype) {
      case RegSubtype::kClientInitReqAck:
        return handle_init_ack(*packet, now);
      case RegSubtype::kReregAckToClient:
        handle_rereg_ack(*packet, now);
        return {};
      default:
        return {};
    }
  }
  // Duplicate suppression for data packets (network dupes and absorbed
  // retransmissions). Registration packets are excluded: handshakes are
  // replay-protected by their nonces and retried handshakes are fresh.
  if (packet->header.dat && !replay_.accept(from, packet->header.seq)) {
    ctr_.dupes_dropped->inc();
    obs::span_event(now, "dupe_drop", "client", config_.id,
                    obs::SpanTracker::global().lookup_seq(from,
                                                          packet->header.seq),
                    {{"from", static_cast<double>(from)},
                     {"seq", static_cast<double>(packet->header.seq)}});
    return {};
  }
  if (packet->header.dat && packet->header.ack) {
    handle_data_ack(*packet, now);
  }
  return {};
}

std::vector<net::Outgoing> ClientNode::handle_init_ack(const Packet& packet,
                                                       util::SimTime now) {
  // [s.pub(32) || seal_csk(n+1)(36) || seal_csk(token)(60)]
  if (!init_keypair_ || !init_nonce_) return {};
  if (packet.payload.size() != 32 + (8 + kSealOverhead) + (32 + kSealOverhead)) {
    return {};
  }
  crypto::X25519Key server_pub;
  std::memcpy(server_pub.data(), packet.payload.data(), 32);
  auto shared = init_keypair_->shared_secret(server_pub);
  const SharedKey csk =
      derive_key(shared, util::BytesView(kLabelCsk, sizeof(kLabelCsk)));
  util::secure_wipe(shared);
  cost_.add(cost::kX25519 + cost::kSealPerByte * 100);

  const auto sealed_nonce =
      util::BytesView(packet.payload.data() + 32, 8 + kSealOverhead);
  const auto nonce_plain = open(csk, sealed_nonce);
  if (!nonce_plain || nonce_plain->size() != 8) {
    CADET_LOG_WARN << "client " << config_.id << ": init nonce open failed";
    return {};
  }
  const Nonce expected = nonce_add(*init_nonce_, 1);
  if (!util::ct_equal(*nonce_plain,
                      util::BytesView(expected.data(), expected.size()))) {
    CADET_LOG_WARN << "client " << config_.id << ": init nonce mismatch";
    return {};
  }

  const auto sealed_token = util::BytesView(
      packet.payload.data() + 32 + 8 + kSealOverhead, 32 + kSealOverhead);
  const auto token_plain = open(csk, sealed_token);
  if (!token_plain || token_plain->size() != 32) return {};

  csk_ = csk;
  Token token;
  std::memcpy(token.data(), token_plain->data(), 32);
  token_ = token;

  // Confirm with E(n+2, csk) (Fig. 7b packet 3).
  const Nonce confirm = nonce_add(*init_nonce_, 2);
  util::Bytes sealed = seal(
      *csk_, util::BytesView(confirm.data(), confirm.size()), csprng_);
  cost_.add(cost::kCraftPacket);
  Packet reply = Packet::registration(RegSubtype::kClientInitAck,
                                      std::move(sealed), /*req=*/false,
                                      /*ack=*/true, /*client_edge=*/false,
                                      /*edge_server=*/false,
                                      /*encrypted=*/true);
  if (on_init_complete_) on_init_complete_(now);
  return {{config_.server, wire(std::move(reply))}};
}

void ClientNode::handle_rereg_ack(const Packet& packet, util::SimTime now) {
  if (!csk_) return;
  const auto cek_plain = open(*csk_, packet.payload);
  cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
  if (!cek_plain || cek_plain->size() != 32) {
    CADET_LOG_WARN << "client " << config_.id << ": rereg ack open failed";
    return;
  }
  SharedKey cek;
  std::memcpy(cek.data(), cek_plain->data(), 32);
  cek_ = cek;
  if (on_rereg_complete_) on_rereg_complete_(now);
}

void ClientNode::handle_data_ack(const Packet& packet, util::SimTime now) {
  util::Bytes delivered;
  if (packet.header.end_to_end) {
    // Sealed by the server under csk; the relaying edge never saw the
    // plaintext.
    if (!csk_) {
      CADET_LOG_WARN << "client " << config_.id
                     << ": end-to-end delivery without csk";
      return;
    }
    const auto plain = open(*csk_, packet.payload);
    cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
    if (!plain) return;
    delivered = *plain;
  } else if (packet.header.encrypted) {
    if (!cek_) {
      CADET_LOG_WARN << "client " << config_.id
                     << ": encrypted delivery without cek";
      return;
    }
    const auto plain = open(*cek_, packet.payload);
    cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
    if (!plain) return;
    delivered = *plain;
  } else {
    delivered = packet.payload;
  }

  // NIST guidance (paper §VI-C2): remote entropy bolsters the on-board RNG
  // rather than being consumed directly — mix into the local pool.
  // Remote bytes are credited at half weight as a trust haircut.
  pool_.add(delivered, delivered.size() * 4);

  // Fulfil the oldest pending request of the matching mode (end-to-end and
  // cached deliveries can overtake each other in flight).
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->end_to_end != packet.header.end_to_end) continue;
    PendingRequest req = std::move(*it);
    pending_.erase(it);
    ctr_.requests_fulfilled->inc();
    ctr_.bytes_received->inc(delivered.size());
    obs::span_end(now, "reply", "client", config_.id, req.ctx,
                  {{"bytes", static_cast<double>(delivered.size())},
                   {"latency_s", util::to_seconds(now - req.issued_at)}});
    if (req.callback) req.callback(delivered, now);
    break;
  }
}

}  // namespace cadet
