// Authenticated sealing of packet payloads on secured links.
//
// The paper writes E(d, k) for payload encryption; this implementation uses
// ChaCha20 with a random 12-byte nonce plus a truncated HMAC-SHA256 tag,
// giving integrity on top of confidentiality (an eavesdropping-only model
// per §VI-D1, but tamper detection costs 16 bytes and removes a footgun).
//
// Wire layout: nonce(12) || ciphertext || tag(16)
//   tag = HMAC-SHA256(key, nonce || ciphertext)[0..16)
#pragma once

#include <cstddef>
#include <optional>

#include "crypto/csprng.h"
#include "util/bytes.h"

namespace cadet {

inline constexpr std::size_t kSealNonceBytes = 12;
inline constexpr std::size_t kSealTagBytes = 16;
inline constexpr std::size_t kSealOverhead = kSealNonceBytes + kSealTagBytes;

/// Seal `plaintext` under `key` (32 bytes), drawing the nonce from `rng`.
util::Bytes seal(util::BytesView key, util::BytesView plaintext,
                 crypto::Csprng& rng);

/// Open a sealed buffer; std::nullopt if too short or the tag fails.
std::optional<util::Bytes> open(util::BytesView key, util::BytesView sealed);

}  // namespace cadet
