#include "cadet/seal.h"

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "obs/profile.h"

namespace cadet {

util::Bytes seal(util::BytesView key, util::BytesView plaintext,
                 crypto::Csprng& rng) {
  CADET_PROFILE_SCOPE("crypto.seal");
  util::Bytes out(kSealNonceBytes);
  rng.generate(out);

  util::Bytes ct =
      crypto::ChaCha20::crypt(key, util::BytesView(out.data(), kSealNonceBytes),
                              plaintext);
  util::append(out, ct);

  const auto tag = crypto::hmac_sha256(key, out);
  out.insert(out.end(), tag.begin(), tag.begin() + kSealTagBytes);
  return out;
}

std::optional<util::Bytes> open(util::BytesView key, util::BytesView sealed) {
  CADET_PROFILE_SCOPE("crypto.open");
  if (sealed.size() < kSealOverhead) return std::nullopt;
  const std::size_t ct_end = sealed.size() - kSealTagBytes;
  const auto expected = crypto::hmac_sha256(
      key, util::BytesView(sealed.data(), ct_end));
  if (!util::ct_equal(
          util::BytesView(expected.data(), kSealTagBytes),
          util::BytesView(sealed.data() + ct_end, kSealTagBytes))) {
    return std::nullopt;
  }
  return crypto::ChaCha20::crypt(
      key, util::BytesView(sealed.data(), kSealNonceBytes),
      util::BytesView(sealed.data() + kSealNonceBytes,
                      ct_end - kSealNonceBytes));
}

}  // namespace cadet
