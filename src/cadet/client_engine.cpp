#include "cadet/client_engine.h"

#include <algorithm>

namespace cadet {
namespace {

/// SplitMix64 step used to derive per-client streams and cold key material
/// from the engine seed (mirrors util::SplitMix64; re-stated here so the
/// header's inline next_u64 and this derivation agree byte-for-byte).
std::uint64_t splitmix(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ClientEngine::ClientEngine(const Config& config)
    : first_id_(config.first_id),
      count_(config.count),
      pool_capacity_(config.pool_capacity_bits),
      usage_decay_(config.usage_decay),
      rng_(config.count),
      pool_bits_(config.count, 0),
      usage_(config.count, 0.0F),
      usage_step_(config.count, 0),
      penalty_(config.count, 0.0F),
      pending_bits_(config.count, 0),
      pending_id_(config.count, 0),
      pending_since_(config.count, 0),
      attempts_(config.count, 0),
      flags_(config.count, 0),
      cold_(new std::uint8_t[std::size_t{config.count} * kColdBytes]) {
  for (std::uint32_t i = 0; i < count_; ++i) {
    // Decorrelate the streams: seed ^ f(global id) through one SplitMix64
    // whitening step, then derive the 32 cold bytes from the same chain so
    // each client's key material is a pure function of (seed, id).
    std::uint64_t chain =
        config.seed ^ (0x9e3779b97f4a7c15ULL * (first_id_ + i + 1));
    rng_[i] = splitmix(chain);
    std::uint8_t* cold = cold_.get() + std::size_t{i} * kColdBytes;
    for (std::size_t w = 0; w < kColdBytes / 8; ++w) {
      const std::uint64_t word = splitmix(chain);
      for (std::size_t b = 0; b < 8; ++b) {
        cold[w * 8 + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
  }
}

ClientEngine::HeavyScan ClientEngine::heavy_scan(
    std::uint32_t step, double sigma_k, double median_ratio, float abs_floor,
    std::vector<float>& scratch) noexcept {
  HeavyScan result;
  if (count_ == 0) return result;

  scratch.resize(count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    scratch[i] = usage_score(i, step);
  }
  const std::size_t mid = count_ / 2;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  const float median = scratch[mid];
  // Reuse the (already scrambled) scratch for absolute deviations.
  for (float& value : scratch) value = std::fabs(value - median);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  const float mad = scratch[mid];

  float threshold =
      median + static_cast<float>(sigma_k * 1.4826) * mad;
  threshold = std::max(threshold,
                       median * static_cast<float>(median_ratio));
  threshold = std::max(threshold, abs_floor);

  std::uint32_t heavy = 0;
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (usage_score(i, step) > threshold) {
      flags_[i] |= kHeavy;
      ++heavy;
    } else {
      flags_[i] &= static_cast<std::uint8_t>(~kHeavy);
    }
  }
  result.median = median;
  result.threshold = threshold;
  result.heavy = heavy;
  return result;
}

std::size_t ClientEngine::memory_bytes() const noexcept {
  return rng_.capacity() * sizeof(std::uint64_t) +
         pool_bits_.capacity() * sizeof(std::uint32_t) +
         usage_.capacity() * sizeof(float) +
         usage_step_.capacity() * sizeof(std::uint32_t) +
         penalty_.capacity() * sizeof(float) +
         pending_bits_.capacity() * sizeof(std::uint16_t) +
         pending_id_.capacity() * sizeof(std::uint16_t) +
         pending_since_.capacity() * sizeof(util::SimTime) +
         attempts_.capacity() * sizeof(std::uint8_t) +
         flags_.capacity() * sizeof(std::uint8_t) +
         std::size_t{count_} * kColdBytes;
}

}  // namespace cadet
