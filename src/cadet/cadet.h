// Umbrella header: the CADET public API.
//
//   #include "cadet/cadet.h"
//
// pulls in the protocol engines (ClientNode / EdgeNode / ServerNode), the
// wire codec, registration primitives, and the policy components (penalty
// table, usage tracker, edge cache). Simulation users additionally include
// "testbed/topology.h"; live-socket users include "net/udp.h".
#pragma once

#include "cadet/cache.h"
#include "cadet/client_node.h"
#include "cadet/config.h"
#include "cadet/edge_node.h"
#include "cadet/node_common.h"
#include "cadet/packet.h"
#include "cadet/penalty.h"
#include "cadet/registration.h"
#include "cadet/seal.h"
#include "cadet/server_node.h"
#include "cadet/usage.h"
