#include "cadet/packet.h"

#include <cstring>

#include "cadet/config.h"
#include "util/buffer_pool.h"

namespace cadet {

namespace {
constexpr std::uint8_t kBitReg = 0x80;
constexpr std::uint8_t kBitDat = 0x40;
constexpr std::uint8_t kBitReq = 0x20;
constexpr std::uint8_t kBitAck = 0x10;
constexpr std::uint8_t kBitCE = 0x08;
constexpr std::uint8_t kBitES = 0x04;
constexpr std::uint8_t kBitEnc = 0x02;
constexpr std::uint8_t kBitUrg = 0x01;
}  // namespace

Packet Packet::data_upload(util::Bytes payload, bool edge_server) {
  Packet p;
  p.header.dat = true;
  p.header.client_edge = !edge_server;
  p.header.edge_server = edge_server;
  p.header.argument = static_cast<std::uint16_t>(payload.size());
  p.payload = std::move(payload);
  return p;
}

Packet Packet::data_request(std::uint16_t bits, bool edge_server) {
  Packet p;
  p.header.dat = true;
  p.header.req = true;
  p.header.client_edge = !edge_server;
  p.header.edge_server = edge_server;
  p.header.argument = bits;
  return p;
}

Packet Packet::data_request_e2e(std::uint16_t bits, bool edge_server,
                                std::uint32_t client_id) {
  Packet p = data_request(bits, edge_server);
  p.header.encrypted = true;
  p.header.end_to_end = true;
  p.payload.resize(4);
  util::put_u32_be(p.payload.data(), client_id);
  return p;
}

Packet Packet::data_ack(util::Bytes payload, bool edge_server,
                        bool encrypted) {
  Packet p;
  p.header.dat = true;
  p.header.ack = true;
  p.header.client_edge = !edge_server;
  p.header.edge_server = edge_server;
  p.header.encrypted = encrypted;
  p.header.argument = static_cast<std::uint16_t>(payload.size());
  p.payload = std::move(payload);
  return p;
}

Packet Packet::data_ack_e2e(util::Bytes payload, bool edge_server) {
  Packet p = data_ack(std::move(payload), edge_server, /*encrypted=*/true);
  p.header.end_to_end = true;
  return p;
}

Packet Packet::registration(RegSubtype subtype, util::Bytes payload, bool req,
                            bool ack, bool client_edge, bool edge_server,
                            bool encrypted) {
  Packet p;
  p.header.reg = true;
  p.header.req = req;
  p.header.ack = ack;
  p.header.client_edge = client_edge;
  p.header.edge_server = edge_server;
  p.header.encrypted = encrypted;
  p.header.subtype = subtype;
  p.header.argument = static_cast<std::uint16_t>(payload.size());
  p.payload = std::move(payload);
  return p;
}

util::Bytes encode(const Packet& packet) {
  // Wire buffers cycle through the per-thread pool: acquired here, released
  // by the sim transport once the packet is delivered (or dropped).
  util::Bytes wire =
      util::BufferPool::local().acquire(kHeaderBytes + packet.payload.size());
  wire[0] = static_cast<std::uint8_t>((packet.header.version & 0x1f) << 3);
  std::uint8_t flags = 0;
  if (packet.header.reg) flags |= kBitReg;
  if (packet.header.dat) flags |= kBitDat;
  if (packet.header.req) flags |= kBitReq;
  if (packet.header.ack) flags |= kBitAck;
  if (packet.header.client_edge) flags |= kBitCE;
  if (packet.header.edge_server) flags |= kBitES;
  if (packet.header.encrypted) flags |= kBitEnc;
  if (packet.header.urgent) flags |= kBitUrg;
  wire[1] = flags;
  util::put_u16_be(wire.data() + 2, packet.header.argument);
  // Variable-arguments byte: registration subtype on REG packets, the
  // end-to-end marker on DAT packets.
  wire[4] = packet.header.reg
                ? static_cast<std::uint8_t>(packet.header.subtype)
                : static_cast<std::uint8_t>(packet.header.end_to_end ? 1 : 0);
  util::put_u16_be(wire.data() + 5, packet.header.seq);
  if (!packet.payload.empty()) {
    std::memcpy(wire.data() + kHeaderBytes, packet.payload.data(),
                packet.payload.size());
  }
  return wire;
}

std::optional<Packet> decode(util::BytesView wire) {
  if (wire.size() < kHeaderBytes) return std::nullopt;
  Packet p;
  p.header.version = wire[0] >> 3;
  if (p.header.version != kProtocolVersion) return std::nullopt;
  if ((wire[0] & 0x07) != 0) return std::nullopt;  // reserved bits must be 0

  const std::uint8_t flags = wire[1];
  p.header.reg = flags & kBitReg;
  p.header.dat = flags & kBitDat;
  p.header.req = flags & kBitReq;
  p.header.ack = flags & kBitAck;
  p.header.client_edge = flags & kBitCE;
  p.header.edge_server = flags & kBitES;
  p.header.encrypted = flags & kBitEnc;
  p.header.urgent = flags & kBitUrg;
  if (p.header.reg == p.header.dat) return std::nullopt;  // exactly one

  p.header.argument = util::get_u16_be(wire.data() + 2);
  const std::uint8_t subtype = wire[4];
  if (p.header.reg) {
    if (subtype > static_cast<std::uint8_t>(RegSubtype::kReregAckToClient)) {
      return std::nullopt;
    }
    p.header.subtype = static_cast<RegSubtype>(subtype);
  } else {
    if (subtype > 1) return std::nullopt;
    p.header.end_to_end = subtype == 1;
    if (p.header.end_to_end && !p.header.encrypted) return std::nullopt;
  }

  p.header.seq = util::get_u16_be(wire.data() + 5);
  p.payload.assign(wire.begin() + kHeaderBytes, wire.end());
  // For data packets carrying payload the argument must describe it.
  if (p.header.dat && !p.header.req &&
      p.payload.size() != p.header.argument) {
    return std::nullopt;
  }
  // Registration payloads are length-framed by the argument field too, so
  // a truncated handshake is rejected here instead of confusing an engine.
  if (p.header.reg && p.payload.size() != p.header.argument) {
    return std::nullopt;
  }
  // End-to-end requests must carry the 4-byte client id.
  if (p.header.dat && p.header.req && p.header.end_to_end &&
      p.payload.size() != 4) {
    return std::nullopt;
  }
  return p;
}

}  // namespace cadet
