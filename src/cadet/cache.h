// Edge-tier entropy cache (paper §III-C).
//
// Capacity = 4096 bits per served client. A reserve partition (default the
// bottom 25 %) is withheld from heavy users: a heavy user's draw fails once
// it would cut into the reserve, forcing that request up to the server tier,
// while regular users can drain the cache to empty. A refill is signalled
// when occupancy falls below 25 % of capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "cadet/config.h"
#include "util/bytes.h"

namespace cadet {

class EdgeCache {
 public:
  /// Capacity is kClientBufferBits * num_clients (bits), converted to bytes.
  explicit EdgeCache(std::size_t num_clients,
                     double reserve_fraction = kCacheReserveFraction,
                     double refill_fraction = kCacheRefillFraction);

  std::size_t capacity_bytes() const noexcept { return capacity_bytes_; }
  std::size_t size_bytes() const noexcept { return data_.size(); }
  std::size_t reserve_bytes() const noexcept { return reserve_bytes_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Mix delivered entropy in (oldest evicted beyond capacity).
  void insert(util::BytesView bytes);

  /// Attempt to serve `nbytes`. A heavy user may not dip into the reserve
  /// partition; regular users may. Returns the served bytes (empty if the
  /// request cannot be served at this tier and must go upstream).
  util::Bytes take(std::size_t nbytes, bool heavy_user);

  /// True when occupancy has fallen below the refill threshold.
  bool needs_refill() const noexcept;

  /// Bytes to ask the server for when refilling (top up to capacity).
  std::size_t refill_amount() const noexcept;

 private:
  std::size_t capacity_bytes_;
  std::size_t reserve_bytes_;
  std::size_t refill_threshold_bytes_;
  std::deque<std::uint8_t> data_;
};

}  // namespace cadet
