// EWMA usage score (paper §III-C, Eq. 1):
//
//   US_t = usage_t + decay * US_{t-1}
//
// The step counter t advances every time the edge processes ANY CADET
// packet, so the decay rate adapts to network speed. A client is "heavy"
// when its current score exceeds the paper's "3 standard deviations above
// the mean usage score" threshold — computed here with the robust
// estimators median and MAD (threshold = median + k * 1.4826 * MAD).
// The robust form is load-bearing, not cosmetic: with classical mean/sigma
// over n clients, the largest achievable z-score is (n-1)/sqrt(n) (~2.47
// for n=7), because an outlier inflates the sigma it is judged against —
// one or two heavy users among 8 clients could *never* clear 3 sigma, and
// Fig. 8c would be irreproducible. Median/MAD ignore a heavy minority, so
// the threshold tracks normal-user behaviour exactly as the figure shows.
// Heavy users are cut off from the edge cache's reserve portion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "cadet/config.h"

namespace cadet {

class UsageTracker {
 public:
  using DeviceId = std::uint32_t;

  explicit UsageTracker(double decay = kUsageDecay,
                        double sigma_threshold = kUsageSigmaThreshold);

  /// Advance one step (one processed packet): decay every score, then add
  /// `usage` (e.g. bytes requested) to `device`'s score. Pass usage = 0 with
  /// an untracked sentinel via tick() when the processed packet carries no
  /// usage.
  void record(DeviceId device, double usage);

  /// Advance one step with no usage attributed (a packet from an
  /// infrastructure peer or a non-consuming message).
  void tick();

  double score(DeviceId device) const;

  /// Heavy-user threshold = median + sigma_threshold * 1.4826 * MAD over
  /// all tracked devices' current scores (robust equivalent of the paper's
  /// "3 standard deviations above the mean usage score").
  double heavy_threshold() const;

  /// Median of all tracked devices' current scores (0 when none tracked).
  double median() const;

  /// Heavy iff score > heavy_threshold() AND score >
  /// kUsageHeavyMedianRatio * median(): the MAD test catches outliers, the
  /// median-ratio floor stops compressed-cohort false positives (an honest
  /// burst that is 3 MAD-sigmas out but barely above typical usage).
  bool is_heavy(DeviceId device) const;

  /// Ensure a device is tracked (score 0) so it participates in the
  /// mean/sigma statistics even before its first request.
  void track(DeviceId device);

  std::size_t tracked_count() const noexcept { return scores_.size(); }
  std::uint64_t steps() const noexcept { return steps_; }

 private:
  void decay_all();

  double decay_;
  double sigma_threshold_;
  // Ordered map: decay_all() and heavy_threshold() traverse every
  // score, and the traversal order must not depend on hash seeding or
  // insertion history (cadet-lint: unordered-iteration).
  std::map<DeviceId, double> scores_;
  std::uint64_t steps_ = 0;
};

}  // namespace cadet
