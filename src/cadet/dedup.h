// Receive-side duplicate suppression for data packets.
//
// UDP (and the fault-injecting transports that model it) can deliver a
// datagram zero, one, or many times. Every engine stamps outgoing packets
// with a per-sender 16-bit sequence number (packet.h bytes 5-6); receivers
// run DAT packets through a ReplayFilter so a duplicated upload never
// double-credits a device and a duplicated delivery never double-serves
// entropy. Deliberate retransmissions reuse their original sequence number,
// so a retry whose first copy actually arrived is absorbed here instead of
// being processed twice.
//
// The filter is the DTLS/QUIC-style sliding window: per sender it tracks
// the highest sequence seen plus a 64-deep bitmap of recently seen values,
// with RFC 1982 serial arithmetic so the 16-bit counter wraps cleanly. A
// sequence far *behind* the window (> 64 back) is taken as a peer restart
// and re-initializes the window — a rebooted node must not be deadlocked by
// its own pre-crash numbering.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/transport.h"

namespace cadet {

class ReplayFilter {
 public:
  static constexpr std::uint16_t kWindowBits = 64;

  /// Returns true if (from, seq) is fresh and records it; false if it is a
  /// duplicate that must be dropped. seq 0 means "unsequenced" (packets
  /// built without an engine, e.g. hand-crafted in tests) and is always
  /// accepted.
  bool accept(net::NodeId from, std::uint16_t seq) {
    if (seq == 0) return true;
    Window& w = windows_[from];
    if (!w.any) {
      w.any = true;
      w.max_seq = seq;
      w.bits = 1;
      return true;
    }
    const std::int16_t diff =
        static_cast<std::int16_t>(static_cast<std::uint16_t>(seq - w.max_seq));
    if (diff > 0) {
      // Ahead of the window: slide forward.
      w.bits = diff >= kWindowBits ? 1 : (w.bits << diff) | 1;
      w.max_seq = seq;
      return true;
    }
    const std::uint16_t back = static_cast<std::uint16_t>(-diff);
    if (back >= kWindowBits) {
      // Far behind: the peer restarted its counter. Accept and re-anchor.
      w.max_seq = seq;
      w.bits = 1;
      return true;
    }
    const std::uint64_t mask = 1ULL << back;
    if ((w.bits & mask) != 0) return false;  // duplicate
    w.bits |= mask;
    return true;
  }

  /// Forget a sender's window (e.g. when its registration state is reset).
  void forget(net::NodeId from) { windows_.erase(from); }

 private:
  struct Window {
    std::uint16_t max_seq = 0;
    std::uint64_t bits = 0;
    bool any = false;
  };
  std::unordered_map<net::NodeId, Window> windows_;
};

}  // namespace cadet
