// Edge-tier protocol engine (paper §II "Edge", Fig. 2 middle column).
//
// The edge is the LAN gateway: it aggregates client uploads into bulk
// transfers (slashing server load ~98 %, Fig. 10a), answers most entropy
// requests from a local cache, polices uploads with sanity checks + the
// penalty table, tracks per-client EWMA usage to shield a reserve cache
// partition from heavy users, and brokers client reregistration.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "cadet/cache.h"
#include "cadet/dedup.h"
#include "cadet/node_common.h"
#include "cadet/packet.h"
#include "cadet/penalty.h"
#include "cadet/provenance.h"
#include "cadet/registration.h"
#include "cadet/usage.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace cadet {

/// When to ask the server tier for more cache data (paper §III-C fixes the
/// trigger at 25 % of capacity and notes the problem "could potentially be
/// modeled as a flow control problem" — kAdaptive is that future-work
/// policy: it estimates local demand and the server round-trip time and
/// refills just early enough to cover the in-flight window).
enum class RefillPolicy { kFixedFraction, kAdaptive };

class EdgeNode {
 public:
  struct Config {
    net::NodeId id = net::kInvalidNode;
    net::NodeId server = net::kInvalidNode;
    std::uint64_t seed = 0;
    std::size_t num_clients = 11;  // sizes the cache (Fig. 9: 11 per edge)
    std::size_t upload_forward_bytes = kUploadForwardBytes;
    PenaltyConfig penalty{};
    bool sanity_checks_enabled = true;
    double sanity_alpha = SanityChecker::kDefaultAlpha;
    RefillPolicy refill_policy = RefillPolicy::kFixedFraction;
    /// Adaptive policy: refill when the cache holds less than
    /// demand_rate * rtt * safety_factor bytes.
    double adaptive_safety_factor = 4.0;
    /// Adaptive policy: bytes requested cover this many seconds of demand.
    double adaptive_horizon_s = 30.0;
    /// §VI-D3 mitigation: harvest CADET packet inter-arrival jitter at the
    /// edge and inject it between client contributions in the bulk upload,
    /// diluting an attacker who controls many uploaders.
    bool inject_timing_entropy = false;
    /// §VI-D3 mitigation: require contributions from at least this many
    /// distinct clients before forwarding the aggregate payload.
    std::size_t min_contributors = 1;
    /// Stage-2 heavy-user policing: deny requests outright after
    /// kUsageHeavyStrikeLimit consecutive over-line strikes at flooding
    /// rate. Disabled = the paper prototype's reserve-blocking only.
    bool heavy_denial_enabled = true;
    /// After this many consecutive failures to open sealed server data
    /// (e.g. the server restarted and lost the esk), the edge abandons its
    /// key and re-registers. 0 disables.
    std::size_t reregister_after_failures = 3;
    /// Timer hook for retransmission/backoff (testbed::World wires it to
    /// the simulator). Null = lazy, traffic-driven timeouts only.
    EngineTimer timer;
    /// Registration handshake re-issues before giving up.
    std::size_t max_reg_retries = kMaxRegRetries;
    util::SimTime reg_retry_base = kRegRetryBaseNs;
    /// Consecutive timer-driven refill re-issues before the chain stops
    /// (lazy refill re-arms it on later traffic).
    std::size_t max_refill_retries = kMaxRefillRetries;
    /// Shared metrics registry (testbed::World wires its own). When null
    /// the node keeps a private registry, so standalone nodes (unit tests)
    /// stay isolated.
    obs::Registry* metrics = nullptr;
  };

  using RegCallback = std::function<void(util::SimTime now)>;

  explicit EdgeNode(const Config& config);

  net::NodeId id() const noexcept { return config_.id; }

  /// Register this edge with the server tier (Fig. 7a packet 1).
  std::vector<net::Outgoing> begin_edge_reg(util::SimTime now,
                                            RegCallback on_complete = {});

  /// Handle an incoming packet from a client or the server.
  std::vector<net::Outgoing> on_packet(net::NodeId from, util::BytesView data,
                                       util::SimTime now);

  // ---- state inspection ----
  bool registered() const noexcept { return esk_.has_value(); }
  EdgeCache& cache() noexcept { return cache_; }
  const EdgeCache& cache() const noexcept { return cache_; }
  UsageTracker& usage() noexcept { return usage_; }
  PenaltyTable& penalty() noexcept { return penalty_; }
  CostMeter& cost() noexcept { return cost_; }
  /// Requests queued awaiting a refill (heavy users are never queued).
  std::size_t pending_requests() const noexcept { return pending_.size(); }
  /// Requests from this client refused outright after sustained heavy
  /// usage (strike escalation). Unlike UsageTracker::is_heavy — which is
  /// an instantaneous, intentionally noisy flag — this counts actual
  /// enforcement decisions and never resets, so it is the right signal
  /// for "was this client ever policed as heavy".
  std::uint64_t heavy_denials(net::NodeId client) const noexcept {
    const auto it = heavy_denied_.find(client);
    return it == heavy_denied_.end() ? 0 : it->second;
  }

  struct Stats {
    std::uint64_t uploads_received = 0;
    std::uint64_t uploads_dropped_penalty = 0;
    std::uint64_t uploads_rejected_sanity = 0;
    std::uint64_t uploads_accepted = 0;
    std::uint64_t bulk_uploads_sent = 0;
    std::uint64_t requests_received = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t heavy_rejections = 0;  // heavy user blocked from reserve
    std::uint64_t e2e_forwarded = 0;     // untrusted-edge relays
    std::uint64_t timing_bytes_injected = 0;
    std::uint64_t reregistrations = 0;   // recoveries from a lost esk
    std::uint64_t dupes_dropped = 0;     // duplicate data packets suppressed
    std::uint64_t refill_retries = 0;    // timer-driven refill re-issues
    std::uint64_t bytes_delivered = 0;   // entropy bytes shipped to clients
  };
  /// Snapshot assembled from the registry counters (the counters are the
  /// single source of truth; this keeps existing call sites working).
  Stats stats() const noexcept;

  /// Registry this node publishes to (its own unless Config wired one).
  obs::Registry& metrics() noexcept { return *metrics_; }

  /// Adaptive-policy telemetry (meaningful once traffic has flowed).
  double demand_rate_bps() const noexcept { return demand_rate_Bps_ * 8.0; }
  double refill_rtt_estimate_s() const noexcept { return refill_rtt_s_; }

 private:
  std::vector<net::Outgoing> handle_client_upload(net::NodeId client,
                                                  const Packet& packet,
                                                  util::SimTime now);
  std::vector<net::Outgoing> handle_client_request(net::NodeId client,
                                                   const Packet& packet,
                                                   util::SimTime now);
  std::vector<net::Outgoing> handle_server_data(const Packet& packet,
                                                util::SimTime now);
  std::vector<net::Outgoing> handle_reg_packet(net::NodeId from,
                                               const Packet& packet,
                                               util::SimTime now);
  net::Outgoing make_client_delivery(net::NodeId client, util::Bytes data,
                                     obs::SpanContext ctx);
  std::vector<net::Outgoing> maybe_refill(std::size_t extra_bytes,
                                          util::SimTime now);
  std::vector<net::Outgoing> drain_pending(util::SimTime now);

  /// Stamp the next tx sequence number and serialize.
  util::Bytes wire(Packet packet);
  /// base * 2^attempt, jittered ±10 % (deterministic per seed).
  util::SimTime backoff_delay(util::SimTime base, std::size_t attempt);
  std::vector<net::Outgoing> send_edge_reg(util::SimTime now);
  void schedule_reg_retry();
  void schedule_refill_retry();

  Config config_;
  crypto::Csprng csprng_;
  util::Xoshiro256 rng_;
  EdgeCache cache_;
  UsageTracker usage_;
  PenaltyTable penalty_;
  SanityChecker sanity_;
  CostMeter cost_;
  ReplayFilter replay_;
  std::uint16_t tx_seq_ = 0;

  // Metrics (owned registry only when none was wired via Config).
  std::shared_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  struct Counters {
    obs::Counter* uploads_received = nullptr;
    obs::Counter* uploads_dropped_penalty = nullptr;
    obs::Counter* uploads_rejected_sanity = nullptr;
    obs::Counter* uploads_accepted = nullptr;
    obs::Counter* bulk_uploads_sent = nullptr;
    obs::Counter* requests_received = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* heavy_rejections = nullptr;
    obs::Counter* e2e_forwarded = nullptr;
    obs::Counter* timing_bytes_injected = nullptr;
    obs::Counter* reregistrations = nullptr;
    obs::Counter* dupes_dropped = nullptr;
    obs::Counter* refill_retries = nullptr;
    obs::Counter* bytes_delivered = nullptr;
  } ctr_;
  obs::Gauge* cache_gauge_ = nullptr;
  // Provenance watermarks: newest / oldest refill batch still feeding the
  // cache (see provenance.h for the approximate-FIFO caveat).
  obs::Gauge* prov_newest_gauge_ = nullptr;
  obs::Gauge* prov_oldest_gauge_ = nullptr;

  util::Bytes upload_buffer_;
  std::set<net::NodeId> buffer_contributors_;

  // Timing-jitter harvest state (inject_timing_entropy).
  std::array<std::uint8_t, 32> timing_state_{};
  util::SimTime last_packet_at_ = 0;
  std::uint64_t timing_counter_ = 0;

  // edge registration state
  std::optional<crypto::X25519KeyPair> reg_keypair_;
  std::optional<Nonce> reg_nonce_;
  std::optional<SharedKey> esk_;
  RegCallback on_reg_complete_;
  std::size_t reg_attempts_ = 0;

  // client-edge keys established via reregistration
  std::unordered_map<net::NodeId, SharedKey> client_keys_;

  struct PendingRequest {
    net::NodeId client;
    std::size_t bytes;
    bool heavy;
    util::SimTime queued_at = 0;
    obs::SpanContext ctx;  // client request root (for delivery records)
  };
  std::deque<PendingRequest> pending_;
  /// Consecutive requests judged over the heavy line, per client. While a
  /// client is under kUsageHeavyStrikeLimit it is only reserve-blocked;
  /// at the limit its requests are denied outright (see
  /// handle_client_request). Ordered map: cadet-lint unordered-iteration.
  std::map<net::NodeId, int> heavy_strikes_;
  /// Total outright denials per client (monotone; see heavy_denials()).
  std::map<net::NodeId, std::uint64_t> heavy_denied_;
  /// Last kUsageHeavyDenyWindow request-arrival times per client, the
  /// absolute rate signal gating full denial (see config.h).
  std::map<net::NodeId, std::deque<util::SimTime>> request_arrivals_;
  /// True when the client's recent arrivals establish a sustained rate at
  /// or above kUsageHeavyDenyMinRateHz (a zero-span burst counts as fast).
  bool sustained_fast(net::NodeId client) const;
  /// Cache lineage: one batch id per refill insert, debited on every take.
  ProvenanceLedger prov_;
  std::uint64_t refill_batch_ = 0;
  /// Root span of the outstanding refill trace (invalid when none).
  obs::SpanContext refill_ctx_;
  bool refill_outstanding_ = false;
  util::SimTime refill_sent_at_ = 0;
  /// Bumped whenever a refill request leaves; a retry timer only acts if
  /// its captured epoch still matches (i.e. no response arrived meanwhile).
  std::uint64_t refill_epoch_ = 0;
  std::size_t refill_retries_ = 0;
  std::size_t consecutive_open_failures_ = 0;

  /// Extract up to n bytes from the timing-jitter state.
  util::Bytes harvest_timing_bytes(std::size_t n);

  /// Track a sealed-open failure; may trigger re-registration.
  std::vector<net::Outgoing> note_open_failure(util::SimTime now);

  // Adaptive-refill estimators.
  void note_demand(std::size_t bytes, util::SimTime now);
  bool adaptive_needs_refill() const;
  std::size_t adaptive_refill_amount() const;
  double demand_rate_Bps_ = 0.0;
  util::SimTime last_demand_at_ = 0;
  double refill_rtt_s_ = 0.25;  // seeded with the paper's uncached average
};

}  // namespace cadet
