// Penalty table (paper §IV-A, Fig. 5, Eq. 2, Table I).
//
// Every upload's sanity-check outcome adjusts the uploader's penalty score
// per the active scheme. Scores in [0, drop_thresh) are trusted; in
// [drop_thresh, max_penalty) packets are randomly ignored with probability
// drop_percent (ignored packets give the device no chance to redeem points
// — it "must always play fair"); at max_penalty the device is blacklisted.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "cadet/config.h"
#include "util/rng.h"

namespace cadet {

/// Points applied for each possible number of sanity checks passed (0..6).
struct PenaltyScheme {
  std::string name;
  std::array<double, 7> points;

  static PenaltyScheme base();    // Table I "CADET Base"
  static PenaltyScheme loose();   // Table I "Loose"
  static PenaltyScheme strict();  // Table I "Strict"
};

/// Shape of the drop-probability curve between drop_thresh and max_penalty.
enum class DropCurve {
  kLinear,   // Eq. 2: (p - thresh) / (max - thresh)
  kSigmoid,  // §IV-A alternative that avoids a hard 100 % rate
};

struct PenaltyConfig {
  PenaltyScheme scheme = PenaltyScheme::base();
  double drop_thresh = kDropThresh;
  double max_penalty = kMaxPenalty;
  DropCurve curve = DropCurve::kLinear;
};

class PenaltyTable {
 public:
  using DeviceId = std::uint32_t;

  explicit PenaltyTable(PenaltyConfig config = {});

  /// Probability that an incoming packet from a device at score `penalty`
  /// is ignored.
  double drop_percent(double penalty) const noexcept;

  /// Decide whether to ignore an incoming packet from `device` *before*
  /// inspecting it (Fig. 2 upstream step 2).
  bool should_drop(DeviceId device, util::Xoshiro256& rng) const;

  /// Apply the scheme for an upload that passed `checks_passed` of the 6
  /// sanity checks. Scores floor at zero.
  void record_result(DeviceId device, int checks_passed);

  double score(DeviceId device) const;
  bool is_delinquent(DeviceId device) const;
  bool is_blacklisted(DeviceId device) const;

  const PenaltyConfig& config() const noexcept { return config_; }

 private:
  PenaltyConfig config_;
  // Ordered map so any future traversal (snapshots, federation sync)
  // is deterministic by construction (cadet-lint: unordered-iteration).
  std::map<DeviceId, double> scores_;
};

}  // namespace cadet
