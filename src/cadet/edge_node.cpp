#include "cadet/edge_node.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cadet/config.h"
#include "cadet/seal.h"
#include "crypto/sha256.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/log.h"

namespace cadet {

EdgeNode::EdgeNode(const Config& config)
    : config_(config),
      csprng_(config.seed ^ 0xed6eed6eed6eULL),
      rng_(config.seed ^ 0x1234abcdULL),
      cache_(config.num_clients),
      penalty_(config.penalty),
      sanity_(config.sanity_alpha) {
  if (config.metrics != nullptr) {
    metrics_ = config.metrics;
  } else {
    owned_metrics_ = std::make_shared<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  const obs::Labels labels = obs::tier_labels("edge", config_.id);
  ctr_.uploads_received =
      &metrics_->counter("cadet_edge_uploads_received", labels);
  ctr_.uploads_dropped_penalty =
      &metrics_->counter("cadet_edge_uploads_dropped_penalty", labels);
  ctr_.uploads_rejected_sanity =
      &metrics_->counter("cadet_edge_uploads_rejected_sanity", labels);
  ctr_.uploads_accepted =
      &metrics_->counter("cadet_edge_uploads_accepted", labels);
  ctr_.bulk_uploads_sent =
      &metrics_->counter("cadet_edge_bulk_uploads_sent", labels);
  ctr_.requests_received =
      &metrics_->counter("cadet_edge_requests_received", labels);
  ctr_.cache_hits = &metrics_->counter("cadet_edge_cache_hits", labels);
  ctr_.cache_misses = &metrics_->counter("cadet_edge_cache_misses", labels);
  ctr_.heavy_rejections =
      &metrics_->counter("cadet_edge_heavy_rejections", labels);
  ctr_.e2e_forwarded = &metrics_->counter("cadet_edge_e2e_forwarded", labels);
  ctr_.timing_bytes_injected =
      &metrics_->counter("cadet_edge_timing_bytes_injected", labels);
  ctr_.reregistrations =
      &metrics_->counter("cadet_edge_reregistrations", labels);
  ctr_.dupes_dropped = &metrics_->counter("cadet_edge_dupes_dropped", labels);
  ctr_.refill_retries =
      &metrics_->counter("cadet_edge_refill_retries", labels);
  ctr_.bytes_delivered =
      &metrics_->counter("cadet_edge_bytes_delivered", labels);
  cache_gauge_ = &metrics_->gauge("cadet_edge_cache_bytes", labels);
  prov_newest_gauge_ =
      &metrics_->gauge("cadet_edge_cache_gen_newest", labels);
  prov_oldest_gauge_ =
      &metrics_->gauge("cadet_edge_cache_gen_oldest", labels);
}

util::Bytes EdgeNode::wire(Packet packet) {
  if (++tx_seq_ == 0) ++tx_seq_;  // 0 is the "unsequenced" sentinel
  packet.header.seq = tx_seq_;
  return encode(packet);
}

util::SimTime EdgeNode::backoff_delay(util::SimTime base,
                                      std::size_t attempt) {
  const double scale = static_cast<double>(
      std::uint64_t{1} << std::min<std::size_t>(attempt, 10));
  const double jitter = 1.0 + 0.1 * (2.0 * rng_.uniform01() - 1.0);
  return static_cast<util::SimTime>(static_cast<double>(base) * scale *
                                    jitter);
}

EdgeNode::Stats EdgeNode::stats() const noexcept {
  Stats s;
  s.uploads_received = ctr_.uploads_received->value();
  s.uploads_dropped_penalty = ctr_.uploads_dropped_penalty->value();
  s.uploads_rejected_sanity = ctr_.uploads_rejected_sanity->value();
  s.uploads_accepted = ctr_.uploads_accepted->value();
  s.bulk_uploads_sent = ctr_.bulk_uploads_sent->value();
  s.requests_received = ctr_.requests_received->value();
  s.cache_hits = ctr_.cache_hits->value();
  s.cache_misses = ctr_.cache_misses->value();
  s.heavy_rejections = ctr_.heavy_rejections->value();
  s.e2e_forwarded = ctr_.e2e_forwarded->value();
  s.timing_bytes_injected = ctr_.timing_bytes_injected->value();
  s.reregistrations = ctr_.reregistrations->value();
  s.dupes_dropped = ctr_.dupes_dropped->value();
  s.refill_retries = ctr_.refill_retries->value();
  s.bytes_delivered = ctr_.bytes_delivered->value();
  return s;
}

std::vector<net::Outgoing> EdgeNode::begin_edge_reg(util::SimTime now,
                                                    RegCallback on_complete) {
  on_reg_complete_ = std::move(on_complete);
  reg_attempts_ = 0;
  return send_edge_reg(now);
}

std::vector<net::Outgoing> EdgeNode::send_edge_reg(util::SimTime now) {
  (void)now;
  // Retries re-run the whole handshake (fresh keypair + nonce) so a stale
  // server pending entry can never wedge registration.
  reg_keypair_ = make_keypair(csprng_);
  reg_nonce_ = csprng_.array<8>();
  cost_.add(cost::kX25519 + cost::kCraftPacket);

  Packet p = Packet::registration(
      RegSubtype::kEdgeRegReq,
      encode_reg_request(reg_keypair_->public_key, *reg_nonce_),
      /*req=*/true, /*ack=*/false, /*client_edge=*/false,
      /*edge_server=*/true);
  schedule_reg_retry();
  return {{config_.server, wire(std::move(p))}};
}

void EdgeNode::schedule_reg_retry() {
  if (!config_.timer) return;
  const std::size_t attempt = reg_attempts_++;
  if (attempt >= config_.max_reg_retries) return;
  config_.timer(backoff_delay(config_.reg_retry_base, attempt),
                [this](util::SimTime now) -> std::vector<net::Outgoing> {
                  if (registered()) return {};
                  obs::emit(now, "reg_retry", "edge", config_.id, {});
                  return send_edge_reg(now);
                });
}

std::vector<net::Outgoing> EdgeNode::on_packet(net::NodeId from,
                                               util::BytesView data,
                                               util::SimTime now) {
  cost_.add(cost::kProcessPacket);
  if (config_.inject_timing_entropy) {
    // Fold the packet inter-arrival delta into the timing-jitter state
    // (SVI-D3: "measure some local sources of entropy, such as CADET
    // packet inter-arrival times").
    crypto::Sha256 h;
    h.update(timing_state_);
    std::uint8_t delta[8];
    util::put_u64_be(delta, static_cast<std::uint64_t>(now - last_packet_at_));
    h.update(util::BytesView(delta, 8));
    timing_state_ = h.finish();
    last_packet_at_ = now;
  }
  // The usage clock (Eq. 1's per-packet decay) advances only on ACCEPTED
  // work: recorded requests, sanity-passed uploads, server deliveries.
  // Packets that die at a gate — malformed bytes, duplicates, penalty or
  // sanity drops — must not tick it, because each gate is an
  // attacker-reachable path: a garbage/retransmit flood would otherwise
  // drive the whole cohort's scores toward zero until honest double-fires
  // cross the (compressed) heavy threshold, recruiting the usage defense
  // against the honest population (adversary harness, decay-clock attack).
  const auto packet = decode(data);
  if (!packet) {
    CADET_LOG_DEBUG << "edge " << config_.id << ": malformed packet from "
                    << from;
    return {};
  }

  if (packet->header.reg) {
    return handle_reg_packet(from, *packet, now);
  }

  // Data packets. Duplicate suppression first: a network-duplicated upload
  // must not double-credit its device and a retransmitted request whose
  // first copy arrived must not be served twice.
  if (!replay_.accept(from, packet->header.seq)) {
    ctr_.dupes_dropped->inc();
    obs::span_event(now, "dupe_drop", "edge", config_.id,
                    obs::SpanTracker::global().lookup_seq(
                        from, packet->header.seq),
                    {{"from", static_cast<double>(from)},
                     {"seq", static_cast<double>(packet->header.seq)}});
    return {};
  }
  if (from == config_.server) {
    usage_.tick();
    return handle_server_data(*packet, now);
  }
  if (packet->header.req) {
    return handle_client_request(from, *packet, now);
  }
  return handle_client_upload(from, *packet, now);
}

util::Bytes EdgeNode::harvest_timing_bytes(std::size_t n) {
  crypto::Sha256 h;
  h.update(timing_state_);
  std::uint8_t ctr[8];
  util::put_u64_be(ctr, timing_counter_++);
  h.update(util::BytesView(ctr, 8));
  const auto digest = h.finish();
  return util::Bytes(digest.begin(),
                     digest.begin() + std::min<std::size_t>(n, digest.size()));
}

std::vector<net::Outgoing> EdgeNode::handle_client_upload(
    net::NodeId client, const Packet& packet, util::SimTime now) {
  // Join this packet back to the uploader's trace (bound to its wire seq).
  obs::SpanTracker& tracker = obs::SpanTracker::global();
  const obs::SpanContext up = tracker.lookup_seq(client, packet.header.seq);
  ctr_.uploads_received->inc();
  obs::span_event(now, "upload_rx", "edge", config_.id, up,
                  {{"client", static_cast<double>(client)},
                   {"bytes", static_cast<double>(packet.payload.size())}});

  // (2) penalty gate: delinquent devices are randomly ignored; the device
  // cannot tell whether a given packet was scored, so it must play fair.
  if (penalty_.should_drop(client, rng_)) {
    ctr_.uploads_dropped_penalty->inc();
    obs::span_event(now, "penalty_drop", "edge", config_.id, up,
                    {{"client", static_cast<double>(client)}});
    return {};
  }

  // (3) sanity check.
  int checks_passed = nist::SanityBattery::kNumChecks;
  bool accepted = true;
  if (config_.sanity_checks_enabled) {
    cost_.add(cost::kSanityPerByte *
              static_cast<double>(packet.payload.size()));
    const auto outcome = sanity_.check(client, packet.payload);
    checks_passed = outcome.checks_passed;
    accepted = outcome.accepted;
    penalty_.record_result(client, checks_passed);
  }
  if (!accepted) {
    ctr_.uploads_rejected_sanity->inc();
    obs::span_event(now, "sanity_reject", "edge", config_.id, up,
                    {{"client", static_cast<double>(client)},
                     {"checks_passed", static_cast<double>(checks_passed)}});
    return {};
  }

  // (4) accumulate in the upload buffer, optionally interleaved with
  // locally harvested timing jitter (SVI-D3). Only now — past the penalty
  // and sanity gates — does the packet advance the usage clock (see
  // on_packet: gated packets must not drive cohort decay).
  usage_.tick();
  ctr_.uploads_accepted->inc();
  buffer_contributors_.insert(client);
  util::append(upload_buffer_, packet.payload);
  if (config_.inject_timing_entropy) {
    const util::Bytes jitter = harvest_timing_bytes(2);
    ctr_.timing_bytes_injected->inc(jitter.size());
    util::append(upload_buffer_, jitter);
  }

  // (5) forward in bulk once enough has accumulated — and, when
  // configured, only once several distinct clients have contributed, so a
  // single uploader cannot fill a whole aggregate with chosen data.
  std::vector<net::Outgoing> out;
  if (upload_buffer_.size() >= config_.upload_forward_bytes &&
      buffer_contributors_.size() >= config_.min_contributors) {
    cost_.add(cost::kCraftPacket);
    const std::size_t bulk_bytes = upload_buffer_.size();
    Packet bulk =
        Packet::data_upload(std::move(upload_buffer_), /*edge_server=*/true);
    upload_buffer_.clear();
    buffer_contributors_.clear();
    ctr_.bulk_uploads_sent->inc();
    // A bulk upload aggregates many client traces; it gets its own trace,
    // which the server's mix record joins via the wire seq.
    const obs::SpanContext bulk_ctx = tracker.start_trace();
    obs::span_complete(now, "bulk_upload", "edge", config_.id, bulk_ctx, 0,
                       {{"bytes", static_cast<double>(bulk_bytes)}});
    util::Bytes datagram = wire(std::move(bulk));
    tracker.bind_seq(config_.id, tx_seq_, bulk_ctx);
    out.push_back({config_.server, std::move(datagram)});
  }
  return out;
}

bool EdgeNode::sustained_fast(net::NodeId client) const {
  const auto it = request_arrivals_.find(client);
  if (it == request_arrivals_.end() ||
      it->second.size() < kUsageHeavyDenyWindow) {
    return false;  // too little history to establish a rate
  }
  const util::SimTime span = it->second.back() - it->second.front();
  if (span <= 0) return true;  // whole window in one instant: a burst
  const double rate_hz = static_cast<double>(kUsageHeavyDenyWindow - 1) /
                         util::to_seconds(span);
  return rate_hz >= kUsageHeavyDenyMinRateHz;
}

std::vector<net::Outgoing> EdgeNode::handle_client_request(
    net::NodeId client, const Packet& packet, util::SimTime now) {
  // Adopt the client's request root via the wire seq: the serve decision
  // below becomes a zero-length child span of that root. Retransmissions
  // reuse the seq, so a retried request lands in the same trace.
  obs::SpanTracker& tracker = obs::SpanTracker::global();
  const obs::SpanContext root = tracker.lookup_seq(client, packet.header.seq);
  ctr_.requests_received->inc();
  obs::span_event(now, "request", "edge", config_.id, root,
                  {{"client", static_cast<double>(client)},
                   {"bits", static_cast<double>(packet.header.argument)}});
  // Clamp to what this cache tier can ever hold: the 16-bit request field
  // allows asks (8 kB) larger than a small edge's whole cache, which could
  // otherwise queue forever.
  const std::size_t bytes =
      std::min<std::size_t>((packet.header.argument + 7) / 8,
                            cache_.capacity_bytes() - cache_.reserve_bytes());
  // (Client retransmissions never reach this point: retries resend the
  // same bytes under the same wire seq, so the replay gate above absorbs
  // them — a retried request is scored and queued exactly once.)
  // Heavy-user policing escalates in two stages. A request judged over
  // the heavy line (instantaneous EWMA flag) is reserve-blocked, §III-C.
  // Once a client has been over the line on kUsageHeavyStrikeLimit
  // CONSECUTIVE requests it is denied outright: reserve-blocking alone
  // is a leak — a fast requester still eats the open portion of every
  // refill ahead of slower honest clients, each refill is repaid from
  // the server pool, and the pool drains at the attacker's request rate
  // (adversary harness, cache-inflation mix). The strike window keeps an
  // honest Poisson double-fire (which can cross the line for a packet or
  // two) from paying the full retry-and-fallback price, while a flooding
  // attacker reaches the limit within a second.
  //
  // A DENIED packet dies at the gate and does NOT advance the usage
  // clock (no record, no decay step). Eq. 1's per-packet decay is itself
  // attackable: a flood of scored packets compresses every honest score
  // toward zero, the robust threshold follows the compressed cohort, and
  // honest double-fires start crossing it — the flood would recruit the
  // defense against the honest population. Gated packets are "not
  // processed", so the attacker's own score stays frozen above the line
  // while the flood lasts, and only decays at the edge's organic packet
  // rate once it stops.
  const auto gate_deny = [&](int strikes) -> std::vector<net::Outgoing> {
    ctr_.heavy_rejections->inc();
    ++heavy_denied_[client];
    obs::span_event(now, "heavy_deny", "edge", config_.id, root,
                    {{"client", static_cast<double>(client)},
                     {"bytes", static_cast<double>(bytes)},
                     {"strikes", static_cast<double>(strikes)}});
    return maybe_refill(0, now);
  };
  // Arrival-rate window: every request that reaches this gate (served,
  // blocked, or denied) is an observed arrival. Denial requires the
  // absolute rate floor in addition to the relative strike signal — see
  // kUsageHeavyDenyMinRateHz in config.h.
  {
    auto& arrivals = request_arrivals_[client];
    arrivals.push_back(now);
    if (arrivals.size() > kUsageHeavyDenyWindow) arrivals.pop_front();
  }
  if (config_.heavy_denial_enabled) {
    const auto struck = heavy_strikes_.find(client);
    if (struck != heavy_strikes_.end() &&
        struck->second >= kUsageHeavyStrikeLimit && usage_.is_heavy(client) &&
        sustained_fast(client)) {
      return gate_deny(struck->second);
    }
  }

  usage_.record(client, static_cast<double>(bytes));
  const bool over = usage_.is_heavy(client);
  int strikes = 0;
  if (over) {
    strikes = ++heavy_strikes_[client];
  } else {
    heavy_strikes_.erase(client);
    // Over-line asks are excluded from the demand estimator, or phantom
    // demand would size every refill.
    note_demand(bytes, now);
  }
  if (config_.heavy_denial_enabled && over &&
      strikes >= kUsageHeavyStrikeLimit && sustained_fast(client)) {
    // Crossed the limit at flooding rate — denied from this packet on.
    // The e2e path is gated too: it draws on the server pool directly.
    return gate_deny(strikes);
  }

  if (packet.header.end_to_end) {
    // Untrusted-edge mode: the cache holds plaintext this edge could read,
    // so the request is relayed to the server, which seals the reply under
    // the client's own csk. Costs a full server round trip by design.
    ctr_.e2e_forwarded->inc();
    obs::span_complete(now, "e2e_forward", "edge", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"client", static_cast<double>(client)}});
    cost_.add(cost::kCraftPacket);
    Packet fwd = Packet::data_request_e2e(packet.header.argument,
                                          /*edge_server=*/true, client);
    util::Bytes datagram = wire(std::move(fwd));
    // Bind the forward to the *root*: the server's serve span and this
    // edge's later relay span both parent directly on it, which keeps
    // their timestamps nested in the root interval.
    tracker.bind_seq(config_.id, tx_seq_, root);
    return {{config_.server, std::move(datagram)}};
  }

  std::vector<net::Outgoing> out;
  util::Bytes served = cache_.take(bytes, over);
  cache_gauge_->set(static_cast<std::int64_t>(cache_.size_bytes()));
  if (!served.empty()) {
    ctr_.cache_hits->inc();
    // Which refill batches fed this delivery (entropy provenance).
    const auto src = prov_.debit(served.size());
    prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
    obs::span_complete(now, "cache_hit", "edge", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"client", static_cast<double>(client)},
                        {"bytes", static_cast<double>(served.size())},
                        {"src_lo", static_cast<double>(src.lo)},
                        {"src_hi", static_cast<double>(src.hi)}});
    cost_.add(cost::kCraftPacket);
    out.push_back(make_client_delivery(client, std::move(served), root));
  } else {
    if (over && cache_.size_bytes() >= bytes) ctr_.heavy_rejections->inc();
    ctr_.cache_misses->inc();
    obs::span_complete(now, "cache_miss", "edge", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"client", static_cast<double>(client)},
                        {"bytes", static_cast<double>(bytes)}});
    pending_.push_back(PendingRequest{client, bytes, over, now, root});
  }

  // Over-line asks must not inflate the refill size — refills are driven
  // by the honest demand estimate plus honest misses only.
  const auto refill = maybe_refill(over ? 0 : bytes, now);
  out.insert(out.end(), refill.begin(), refill.end());
  return out;
}

std::vector<net::Outgoing> EdgeNode::maybe_refill(std::size_t extra_bytes,
                                                  util::SimTime now) {
  if (refill_outstanding_) {
    // UDP gives no delivery guarantee: a refill whose response never came
    // must not wedge the edge forever (it would starve every queued
    // client). Declare it lost after a timeout and re-issue.
    if (now - refill_sent_at_ < kRefillTimeoutNs) return {};
    refill_outstanding_ = false;
    obs::span_end(now, "refill_lost", "edge", config_.id, refill_ctx_, {});
    refill_ctx_ = {};
  }
  const bool low = config_.refill_policy == RefillPolicy::kAdaptive
                       ? adaptive_needs_refill()
                       : cache_.needs_refill();
  if (!low && pending_.empty()) return {};
  const std::size_t base_want =
      config_.refill_policy == RefillPolicy::kAdaptive
          ? adaptive_refill_amount()
          : cache_.refill_amount();
  const std::size_t want = base_want + extra_bytes;
  // The 16-bit argument field carries the request size in bits.
  const std::uint16_t bits = static_cast<std::uint16_t>(
      std::min<std::size_t>(want * 8, 0xffff));
  cost_.add(cost::kCraftPacket);
  refill_outstanding_ = true;
  refill_sent_at_ = now;
  ++refill_epoch_;
  schedule_refill_retry();
  // A refill serves whichever requests are queued when data lands and can
  // outlive any one of them, so it is its own trace root (duration = the
  // refill round trip), not a child of the triggering request.
  obs::SpanTracker& tracker = obs::SpanTracker::global();
  refill_ctx_ = tracker.start_trace();
  obs::span_begin(now, "refill", "edge", config_.id, refill_ctx_, 0,
                  {{"bits", static_cast<double>(bits)},
                   {"cache_bytes", static_cast<double>(cache_.size_bytes())}});
  Packet req = Packet::data_request(bits, /*edge_server=*/true);
  util::Bytes datagram = wire(std::move(req));
  tracker.bind_seq(config_.id, tx_seq_, refill_ctx_);
  return {{config_.server, std::move(datagram)}};
}

void EdgeNode::schedule_refill_retry() {
  if (!config_.timer) return;  // lazy traffic-driven timeout still applies
  const std::uint64_t epoch = refill_epoch_;
  config_.timer(
      backoff_delay(kRefillTimeoutNs, refill_retries_),
      [this, epoch](util::SimTime now) -> std::vector<net::Outgoing> {
        // Only act when *this* refill is still the outstanding one: a
        // response (or a newer refill) bumps state and orphans this timer.
        if (!refill_outstanding_ || refill_epoch_ != epoch) return {};
        if (refill_retries_ >= config_.max_refill_retries) return {};
        refill_outstanding_ = false;
        ++refill_retries_;
        ctr_.refill_retries->inc();
        // Closes the lost refill's span; maybe_refill opens a fresh trace.
        obs::span_end(now, "refill_retry", "edge", config_.id, refill_ctx_,
                      {{"attempt", static_cast<double>(refill_retries_)}});
        refill_ctx_ = {};
        return maybe_refill(0, now);
      });
}

std::vector<net::Outgoing> EdgeNode::handle_server_data(const Packet& packet,
                                                        util::SimTime now) {
  if (!packet.header.ack) return {};

  if (packet.header.end_to_end) {
    // Relay an end-to-end delivery: [client_id(4) || seal_csk(entropy)].
    // This edge cannot open the sealed part — it only routes it.
    if (packet.payload.size() <= 4) return {};
    const net::NodeId client = util::get_u32_be(packet.payload.data());
    util::Bytes sealed(packet.payload.begin() + 4, packet.payload.end());
    cost_.add(cost::kCraftPacket);
    // Sealed size upper-bounds the plaintext, so the delivered-bytes
    // invariant (Σ client bytes_received ≤ Σ edge bytes_delivered) holds.
    ctr_.bytes_delivered->inc(sealed.size());
    // The server bound its reply to the request's root context.
    obs::SpanTracker& tracker = obs::SpanTracker::global();
    const obs::SpanContext root =
        tracker.lookup_seq(config_.server, packet.header.seq);
    obs::span_complete(now, "relay", "edge", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"client", static_cast<double>(client)},
                        {"bytes", static_cast<double>(sealed.size())}});
    Packet fwd = Packet::data_ack_e2e(std::move(sealed),
                                      /*edge_server=*/false);
    util::Bytes datagram = wire(std::move(fwd));
    tracker.bind_seq(config_.id, tx_seq_, root);
    return {{client, std::move(datagram)}};
  }

  // TCP-style smoothed RTT of the refill round trip feeds the adaptive
  // refill trigger.
  if (refill_outstanding_) {
    const double sample_s = util::to_seconds(now - refill_sent_at_);
    refill_rtt_s_ = 0.875 * refill_rtt_s_ + 0.125 * sample_s;
  }
  refill_outstanding_ = false;
  refill_retries_ = 0;  // a genuine response resets the retry budget

  // The server bound its reply to the refill that asked for it. A reply
  // for the *current* refill closes its span — on every terminal path,
  // usable data or not, or the span would leak open. A stale reply (its
  // refill was already declared lost and re-issued) must not close the
  // newer refill's span. With spans off both contexts are invalid and the
  // guard passes, preserving the plain-event output.
  obs::SpanTracker& tracker = obs::SpanTracker::global();
  const obs::SpanContext reply_ctx =
      tracker.lookup_seq(config_.server, packet.header.seq);
  const bool current = reply_ctx.trace == refill_ctx_.trace;
  const auto close_refill = [&](const char* name, double bytes) {
    if (current) {
      obs::span_end(now, name, "edge", config_.id, refill_ctx_,
                    {{"bytes", bytes}});
      refill_ctx_ = {};
    } else {
      obs::span_event(now, name, "edge", config_.id, reply_ctx,
                      {{"bytes", bytes}, {"stale", 1.0}});
    }
  };

  util::Bytes delivered;
  if (packet.header.encrypted) {
    if (!esk_) return {};
    const auto plain = open(*esk_, packet.payload);
    cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
    if (!plain) {
      // A restarted server no longer holds our esk; its replies (sealed
      // under a key we do not have, or rejected by ours) show up here as
      // repeated open failures. Recover by re-registering.
      close_refill("refill_bad_data", 0.0);
      return note_open_failure(now);
    }
    consecutive_open_failures_ = 0;
    delivered = *plain;
  } else {
    if (esk_) {
      // Downgrade: a registered edge must not accept plaintext deliveries.
      // This is also what a restarted server (which lost our esk) sends,
      // so it feeds the same recovery counter.
      close_refill("refill_bad_data", 0.0);
      return note_open_failure(now);
    }
    delivered = packet.payload;
  }
  if (delivered.empty()) {
    // The server's pool was dry: the round trip completed with no bytes.
    close_refill("refill_empty", 0.0);
    return {};
  }

  // Close the refill trace: the round trip ends where usable data lands.
  close_refill("refill_data", static_cast<double>(delivered.size()));

  // Edge mixing (Fig. 2 downstream step 5) dominates the cache-miss path.
  cost_.add(cost::kEdgeMixPerByte * static_cast<double>(delivered.size()));
  cache_.insert(delivered);
  cache_gauge_->set(static_cast<std::int64_t>(cache_.size_bytes()));
  // New provenance batch: these bytes entered the cache together.
  prov_.credit(++refill_batch_, delivered.size());
  prov_newest_gauge_->set(static_cast<std::int64_t>(prov_.newest()));
  prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));

  return drain_pending(now);
}

std::vector<net::Outgoing> EdgeNode::drain_pending(util::SimTime now) {
  // Discard entries whose client has long since given up.
  while (!pending_.empty() &&
         now - pending_.front().queued_at > kEdgePendingTimeoutNs) {
    pending_.pop_front();
  }
  std::vector<net::Outgoing> out;
  while (!pending_.empty()) {
    PendingRequest& req = pending_.front();
    util::Bytes served = cache_.take(req.bytes, req.heavy);
    if (served.empty()) break;
    cost_.add(cost::kCraftPacket);
    const auto src = prov_.debit(served.size());
    prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
    // Per-delivery provenance record, tagged with the request's trace.
    obs::span_event(now, "delivery", "edge", config_.id, req.ctx,
                    {{"client", static_cast<double>(req.client)},
                     {"bytes", static_cast<double>(served.size())},
                     {"src_lo", static_cast<double>(src.lo)},
                     {"src_hi", static_cast<double>(src.hi)}});
    out.push_back(make_client_delivery(req.client, std::move(served),
                                       req.ctx));
    pending_.pop_front();
  }
  cache_gauge_->set(static_cast<std::int64_t>(cache_.size_bytes()));
  if (!pending_.empty()) {
    const auto refill = maybe_refill(pending_.front().bytes, now);
    out.insert(out.end(), refill.begin(), refill.end());
  }
  return out;
}

net::Outgoing EdgeNode::make_client_delivery(net::NodeId client,
                                             util::Bytes data,
                                             obs::SpanContext ctx) {
  ctr_.bytes_delivered->inc(data.size());
  const auto key_it = client_keys_.find(client);
  Packet packet = [&] {
    if (key_it != client_keys_.end()) {
      cost_.add(cost::kSealPerByte * static_cast<double>(data.size()));
      util::Bytes sealed = seal(key_it->second, data, csprng_);
      return Packet::data_ack(std::move(sealed), /*edge_server=*/false,
                              /*encrypted=*/true);
    }
    return Packet::data_ack(std::move(data), /*edge_server=*/false,
                            /*encrypted=*/false);
  }();
  util::Bytes datagram = wire(std::move(packet));
  // Lets the client (and its dedup path) join the delivery to the trace.
  obs::SpanTracker::global().bind_seq(config_.id, tx_seq_, ctx);
  return {client, std::move(datagram)};
}

std::vector<net::Outgoing> EdgeNode::note_open_failure(util::SimTime now) {
  if (config_.reregister_after_failures == 0) return {};
  ++consecutive_open_failures_;
  if (consecutive_open_failures_ < config_.reregister_after_failures) {
    return {};
  }
  CADET_LOG_WARN << "edge " << config_.id << ": " << consecutive_open_failures_
                 << " consecutive sealed-open failures; re-registering";
  consecutive_open_failures_ = 0;
  esk_.reset();
  ctr_.reregistrations->inc();
  obs::emit(now, "reregister", "edge", config_.id, {});
  return begin_edge_reg(now, std::move(on_reg_complete_));
}

void EdgeNode::note_demand(std::size_t bytes, util::SimTime now) {
  // Exponentially decayed rate estimator with a 30 s time constant: the
  // estimate halves after ~20 quiet seconds and tracks bursts quickly.
  constexpr double kTauS = 30.0;
  const double dt = util::to_seconds(now - last_demand_at_);
  if (dt > 0) {
    demand_rate_Bps_ *= std::exp(-dt / kTauS);
  }
  demand_rate_Bps_ += static_cast<double>(bytes) / kTauS;
  last_demand_at_ = now;
}

bool EdgeNode::adaptive_needs_refill() const {
  const double in_flight_window_s =
      refill_rtt_s_ * config_.adaptive_safety_factor;
  const double needed = demand_rate_Bps_ * in_flight_window_s;
  return static_cast<double>(cache_.size_bytes()) < std::max(needed, 64.0);
}

std::size_t EdgeNode::adaptive_refill_amount() const {
  // Target a horizon's worth of demand, floored at one client-buffer (tiny
  // refills would thrash the server) and capped at cache capacity.
  const std::size_t target = std::clamp<std::size_t>(
      static_cast<std::size_t>(demand_rate_Bps_ * config_.adaptive_horizon_s),
      kClientBufferBits / 8, cache_.capacity_bytes());
  return target - std::min(cache_.size_bytes(), target);
}

std::vector<net::Outgoing> EdgeNode::handle_reg_packet(net::NodeId from,
                                                       const Packet& packet,
                                                       util::SimTime now) {
  switch (packet.header.subtype) {
    case RegSubtype::kEdgeRegReqAck: {
      // [s.pub(32) || seal_esk(n+1)(36)] (Fig. 7a packet 2)
      if (!reg_keypair_ || !reg_nonce_) return {};
      if (packet.payload.size() != 32 + 8 + kSealOverhead) return {};
      crypto::X25519Key server_pub;
      std::memcpy(server_pub.data(), packet.payload.data(), 32);
      auto shared = reg_keypair_->shared_secret(server_pub);
      const SharedKey esk =
          derive_key(shared, util::BytesView(kLabelEsk, sizeof(kLabelEsk)));
      util::secure_wipe(shared);
      cost_.add(cost::kX25519);

      const auto nonce_plain =
          open(esk, util::BytesView(packet.payload.data() + 32,
                                    8 + kSealOverhead));
      if (!nonce_plain || nonce_plain->size() != 8) return {};
      const Nonce expected = nonce_add(*reg_nonce_, 1);
      if (!util::ct_equal(*nonce_plain,
                          util::BytesView(expected.data(), expected.size()))) {
        CADET_LOG_WARN << "edge " << config_.id << ": reg nonce mismatch";
        return {};
      }
      esk_ = esk;

      const Nonce confirm = nonce_add(*reg_nonce_, 2);
      util::Bytes sealed = seal(
          *esk_, util::BytesView(confirm.data(), confirm.size()), csprng_);
      cost_.add(cost::kCraftPacket);
      if (on_reg_complete_) on_reg_complete_(now);
      Packet reply = Packet::registration(
          RegSubtype::kEdgeRegAck, std::move(sealed), /*req=*/false,
          /*ack=*/true, /*client_edge=*/false, /*edge_server=*/true,
          /*encrypted=*/true);
      return {{config_.server, wire(std::move(reply))}};
    }

    case RegSubtype::kReregReq: {
      // Client rereg: seal [client_id || h(T)] under esk, forward to the
      // server (Fig. 7c packet 2).
      if (!esk_) {
        CADET_LOG_WARN << "edge " << config_.id
                       << ": rereg before edge registration";
        return {};
      }
      if (packet.payload.size() != 36) return {};
      cost_.add(cost::kSealPerByte * 36 + cost::kCraftPacket);
      util::Bytes sealed = seal(*esk_, packet.payload, csprng_);
      Packet fwd = Packet::registration(
          RegSubtype::kReregFwd, std::move(sealed), /*req=*/true,
          /*ack=*/false, /*client_edge=*/false, /*edge_server=*/true,
          /*encrypted=*/true);
      return {{config_.server, wire(std::move(fwd))}};
    }

    case RegSubtype::kReregAckToEdge: {
      // [client_id(4) || seal_esk(cek)(60) || seal_csk(cek)(60)]
      if (!esk_) return {};
      constexpr std::size_t kSealedKey = 32 + kSealOverhead;
      if (packet.payload.size() != 4 + 2 * kSealedKey) return {};
      const net::NodeId client = util::get_u32_be(packet.payload.data());
      const auto cek_plain =
          open(*esk_, util::BytesView(packet.payload.data() + 4, kSealedKey));
      cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
      if (!cek_plain || cek_plain->size() != 32) return {};
      SharedKey cek;
      std::memcpy(cek.data(), cek_plain->data(), 32);
      client_keys_[client] = cek;

      // Forward the client's sealed copy (Fig. 7c packet 4).
      util::Bytes client_part(packet.payload.begin() + 4 + kSealedKey,
                              packet.payload.end());
      cost_.add(cost::kCraftPacket);
      Packet fwd = Packet::registration(
          RegSubtype::kReregAckToClient, std::move(client_part),
          /*req=*/false, /*ack=*/true, /*client_edge=*/true,
          /*edge_server=*/false, /*encrypted=*/true);
      return {{client, wire(std::move(fwd))}};
    }

    default:
      (void)from;
      return {};
  }
}

}  // namespace cadet
