// Protocol-wide constants and tunables.
//
// Values follow the paper's prototype: edge cache sized at 4096 bits per
// client with a 25 % refill trigger (§III-C), EWMA usage decay 0.96 with a
// mu+3sigma heavy threshold (§III-C), penalty drop_thresh 10 / max_penalty 35
// (§IV-A). Cycle costs calibrate the simulator to the timings the paper
// reports for its Python prototype (e.g. sanity checks ~75 ms per 256-bit
// block at 300 MHz, D.Req ~0.12 s cached vs ~0.25 s uncached in Fig. 8a).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cadet {

inline constexpr std::uint8_t kProtocolVersion = 1;

// ---------------------------------------------------------------- caching
/// Client randomness-buffer size; the edge cache reserves one of these per
/// client (paper: "4096 bits, the typical size of a client's own randomness
/// buffer, multiplied by the number of clients").
inline constexpr std::size_t kClientBufferBits = 4096;

/// Edge requests a refill when the cache drops below this fraction.
inline constexpr double kCacheRefillFraction = 0.25;

/// Fraction of the edge cache set aside for regular users when heavy users
/// have drained the open portion (§III-C reserve-cache).
inline constexpr double kCacheReserveFraction = 0.25;

// ------------------------------------------------------------ usage score
/// EWMA decay (paper Eq. 1, empirically chosen 0.96).
inline constexpr double kUsageDecay = 0.96;

/// Heavy-user threshold: this many standard deviations above the mean.
inline constexpr double kUsageSigmaThreshold = 3.0;

/// Relative floor on the heavy-user test: a device is only heavy when its
/// score also exceeds this multiple of the median score. The MAD threshold
/// alone is a pure spread test — under attacker-driven decay pressure the
/// cohort's scores compress until honest Poisson double-fires clear
/// median + 3 sigma even though they are barely above typical usage. The
/// ratio floor pins "heavy" to "several times the typical user", which is
/// what §III-C means by a heavy user. A zero median (idle network) keeps
/// the stddev-fallback single-spike behaviour unchanged.
inline constexpr double kUsageHeavyMedianRatio = 4.0;

/// Consecutive over-threshold requests before the edge escalates from
/// reserve-blocking to denying a heavy user outright. The instantaneous
/// flag is noisy — an honest Poisson double-fire can cross the line for a
/// packet or two, and in the first seconds of a run the whole cohort's
/// scores are still near zero, so an early burst clears the relative
/// floor easily — so full denial (which costs the client a retry-and-
/// fallback round) waits for a sustained signal. Five consecutive
/// over-line requests is ~10 s of sustained bursting for an honest-rate
/// client but well under a second for a flooding attacker; and because
/// strikes persist while a client is being denied (only a request judged
/// normal resets them), a larger limit delays just the FIRST denial, not
/// the steady-state policing.
inline constexpr int kUsageHeavyStrikeLimit = 5;

/// Full denial additionally requires the client to be OBSERVABLY fast:
/// at least kUsageHeavyDenyWindow request arrivals whose measured rate is
/// >= kUsageHeavyDenyMinRateHz. The EWMA score and its robust threshold
/// are purely relative — under a regime change (an attack starting, the
/// first seconds of a run) an honest client can sustain a heavy-looking
/// relative episode for several requests — but wall-clock arrival rate is
/// absolute: an honest device asks a few times a second at most, while
/// flooding pays off only well above that. A client below the rate floor
/// is at worst reserve-blocked (stage 1), never denied. Residual risk: an
/// attacker throttled just under the floor evades denial, but at that
/// rate it is within an order of magnitude of honest demand and the
/// reserve + demand-estimator exclusion bound the damage.
/// Sizing: at an honest ~0.5 Hz Poisson request rate, 12 arrivals inside
/// 4.4 s (the span that reads as 2.5 Hz) is a ~1e-6 tail per window —
/// negligible even across a 50-seed sweep of 36 honest clients — while
/// any profitable flood sits at several Hz and fills the window in a few
/// seconds.
inline constexpr std::size_t kUsageHeavyDenyWindow = 12;
inline constexpr double kUsageHeavyDenyMinRateHz = 2.5;

// ---------------------------------------------------------------- penalty
inline constexpr double kDropThresh = 10.0;
inline constexpr double kMaxPenalty = 35.0;

/// If a cache-refill response has not arrived after this long, the edge
/// considers the request lost (UDP gives no delivery guarantee) and allows
/// a new refill to be issued. Checked lazily on packet processing.
inline constexpr std::int64_t kRefillTimeoutNs = 2'000'000'000;  // 2 s

/// Queued client requests the edge has not been able to serve after this
/// long are discarded (the client will have expired its own side already).
/// Bounds the pending queue against clients that vanish.
inline constexpr std::int64_t kEdgePendingTimeoutNs = 8'000'000'000;  // 8 s

// ------------------------------------------------------ retry / backoff
// Timer-driven robustness (engines with a wired EngineTimer). Delays double
// per attempt with ±10 % deterministic jitter so synchronized clients do
// not retransmit in lockstep.

/// First client request retransmission fires this long after the request.
inline constexpr std::int64_t kRequestRetryBaseNs = 1'000'000'000;  // 1 s

/// Retransmissions per request before degrading to the local CSPRNG
/// fallback. With a 1 s base the whole chain (1+2+4 s, plus jitter)
/// resolves before the 10 s lazy request_timeout.
inline constexpr std::size_t kMaxRequestRetries = 3;

/// Registration handshakes re-issued (fresh keypair + nonce) when no
/// acknowledgement arrived. Bounded so a dead server cannot spin timers
/// forever.
inline constexpr std::size_t kMaxRegRetries = 5;
inline constexpr std::int64_t kRegRetryBaseNs = 1'000'000'000;  // 1 s

/// Consecutive timer-driven refill re-issues at the edge before the timer
/// chain stops (lazy traffic-driven refill still re-arms it later).
inline constexpr std::size_t kMaxRefillRetries = 6;

// ----------------------------------------------------------------- upload
/// Edge forwards its upload buffer to the server once it holds this many
/// payload bytes ("after enough entropy data has accumulated", §III-A).
inline constexpr std::size_t kUploadForwardBytes = 1024;

// ------------------------------------------------------- cycle-cost model
// Costs are in CPU cycles; the simulator divides by the tier clock rate
// (20 MHz client / 300 MHz edge / 600 MHz server). Calibrated so the
// reproduction matches the paper's measured protocol-operation times.
namespace cost {

/// Serializing an outgoing packet (craft reply / request).
inline constexpr double kCraftPacket = 1.0e6;

/// Parsing + dispatching an incoming packet (packet processor).
inline constexpr double kProcessPacket = 1.0e6;

/// Sanity-check battery, per payload byte. Paper §VI-C1: 70-80 ms for
/// 256 bits at 300 MHz => ~22.5e6 cycles / 32 bytes.
inline constexpr double kSanityPerByte = 7.0e5;

/// Mixing received entropy into the edge cache, per byte. Dominates the
/// cache-miss path (edge mixing, Fig. 2 downstream step 5): a full ~5.7 kB
/// refill costs ~23e6 cycles => ~76 ms at the 300 MHz edge, which is what
/// separates the cached (~0.12 s) and uncached (~0.25 s) request times.
inline constexpr double kEdgeMixPerByte = 4.0e3;

/// Server mixing-function cost per input byte (hash folds).
inline constexpr double kServerMixPerByte = 1.0e4;

/// One X25519 scalar multiplication (keygen or shared secret). ~30 ms on
/// the 20 MHz client: two of these plus packet handling keeps client
/// initialization just under the paper's 0.25 s ceiling.
inline constexpr double kX25519 = 0.6e6;

/// Hashing cost for token operations, per invocation.
inline constexpr double kTokenHash = 2.0e5;

/// Symmetric seal/open, per byte.
inline constexpr double kSealPerByte = 2.0e3;

/// Quality-check battery per pool byte (runs on the 600 MHz server).
inline constexpr double kQualityPerByte = 1.0e5;

}  // namespace cost

}  // namespace cadet
