#include "cadet/registration.h"

#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/secure.h"

namespace cadet {

SharedKey derive_key(const crypto::X25519Key& shared_secret,
                     util::BytesView label) {
  static constexpr std::uint8_t kSalt[] = {'C', 'A', 'D', 'E', 'T'};
  util::Bytes okm =
      crypto::hkdf(util::BytesView(kSalt, sizeof(kSalt)),
                   util::BytesView(shared_secret.data(), shared_secret.size()),
                   label, 32);
  SharedKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  util::secure_wipe(okm);
  return key;
}

Nonce nonce_add(const Nonce& nonce, std::uint64_t k) noexcept {
  Nonce out;
  const std::uint64_t value = util::get_u64_be(nonce.data()) + k;
  util::put_u64_be(out.data(), value);
  return out;
}

std::array<std::uint8_t, 32> token_hash(const Token& token,
                                        std::int64_t window) noexcept {
  crypto::Sha256 h;
  h.update(token);
  std::uint8_t w[8];
  util::put_u64_be(w, static_cast<std::uint64_t>(window));
  h.update(util::BytesView(w, 8));
  return h.finish();
}

std::int64_t token_window(util::SimTime now) noexcept {
  return now / kTokenWindow;
}

Token make_token(crypto::Csprng& rng) {
  return rng.array<32>();
}

crypto::X25519KeyPair make_keypair(crypto::Csprng& rng) {
  const auto seed = rng.array<32>();
  return crypto::X25519KeyPair::from_seed(seed);
}

util::Bytes encode_reg_request(const crypto::X25519Key& pub,
                               const Nonce& nonce) {
  util::Bytes out;
  out.reserve(pub.size() + nonce.size());
  out.insert(out.end(), pub.begin(), pub.end());
  out.insert(out.end(), nonce.begin(), nonce.end());
  return out;
}

std::optional<RegRequest> decode_reg_request(util::BytesView payload) {
  if (payload.size() != 40) return std::nullopt;
  RegRequest out;
  std::memcpy(out.pub.data(), payload.data(), 32);
  std::memcpy(out.nonce.data(), payload.data() + 32, 8);
  return out;
}

}  // namespace cadet
