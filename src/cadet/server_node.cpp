#include "cadet/server_node.h"

#include <algorithm>
#include <cstring>

#include "cadet/config.h"
#include "cadet/seal.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/log.h"

namespace cadet {

ServerNode::ServerNode(const Config& config)
    : config_(config),
      csprng_(config.seed ^ 0x5e27e25e27e2ULL),
      rng_(config.seed ^ 0x9876fedcULL),
      pool_(config.pool_capacity_bytes),
      mixer_(pool_),
      penalty_(config.penalty),
      sanity_(config.sanity_alpha) {
  if (config.metrics != nullptr) {
    metrics_ = config.metrics;
  } else {
    owned_metrics_ = std::make_shared<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  const obs::Labels labels = obs::tier_labels("server", config_.id);
  ctr_.uploads_received =
      &metrics_->counter("cadet_server_uploads_received", labels);
  ctr_.uploads_dropped_penalty =
      &metrics_->counter("cadet_server_uploads_dropped_penalty", labels);
  ctr_.uploads_rejected_sanity =
      &metrics_->counter("cadet_server_uploads_rejected_sanity", labels);
  ctr_.bytes_mixed = &metrics_->counter("cadet_server_bytes_mixed", labels);
  ctr_.requests_served =
      &metrics_->counter("cadet_server_requests_served", labels);
  ctr_.bytes_served = &metrics_->counter("cadet_server_bytes_served", labels);
  ctr_.requests_short =
      &metrics_->counter("cadet_server_requests_short", labels);
  ctr_.quality_checks_run =
      &metrics_->counter("cadet_server_quality_checks_run", labels);
  ctr_.quality_checks_failed =
      &metrics_->counter("cadet_server_quality_checks_failed", labels);
  ctr_.pool_exchanges =
      &metrics_->counter("cadet_server_pool_exchanges", labels);
  ctr_.dupes_dropped =
      &metrics_->counter("cadet_server_dupes_dropped", labels);
  pool_.bind_metrics(*metrics_, labels);
  mixer_.bind_metrics(*metrics_, labels);
  prov_newest_gauge_ =
      &metrics_->gauge("cadet_server_pool_gen_newest", labels);
  prov_oldest_gauge_ =
      &metrics_->gauge("cadet_server_pool_gen_oldest", labels);
}

ServerNode::Stats ServerNode::stats() const noexcept {
  Stats s;
  s.uploads_received = ctr_.uploads_received->value();
  s.uploads_dropped_penalty = ctr_.uploads_dropped_penalty->value();
  s.uploads_rejected_sanity = ctr_.uploads_rejected_sanity->value();
  s.bytes_mixed = ctr_.bytes_mixed->value();
  s.requests_served = ctr_.requests_served->value();
  s.bytes_served = ctr_.bytes_served->value();
  s.requests_short = ctr_.requests_short->value();
  s.quality_checks_run = ctr_.quality_checks_run->value();
  s.quality_checks_failed = ctr_.quality_checks_failed->value();
  s.pool_exchanges = ctr_.pool_exchanges->value();
  s.dupes_dropped = ctr_.dupes_dropped->value();
  return s;
}

util::Bytes ServerNode::wire(Packet packet) {
  if (++tx_seq_ == 0) ++tx_seq_;  // 0 is the "unsequenced" sentinel
  packet.header.seq = tx_seq_;
  return encode(packet);
}

void ServerNode::seed_pool(util::BytesView bytes) {
  pool_.push(bytes);
  // Generation 0 = pre-protocol seed entropy (deployment bootstrap).
  prov_.credit(0, bytes.size());
}

std::vector<net::Outgoing> ServerNode::on_packet(net::NodeId from,
                                                 util::BytesView data,
                                                 util::SimTime now) {
  cost_.add(cost::kProcessPacket);
  const auto packet = decode(data);
  if (!packet) {
    CADET_LOG_DEBUG << "server " << config_.id << ": malformed packet from "
                    << from;
    return {};
  }
  if (packet->header.reg) return handle_registration(from, *packet, now);
  return handle_data(from, *packet, now);
}

std::vector<net::Outgoing> ServerNode::handle_data(net::NodeId from,
                                                   const Packet& packet,
                                                   util::SimTime now) {
  // Duplicate suppression: a retransmitted bulk upload must not be mixed
  // (and credited) twice, and a duplicated request must not drain the pool
  // for a reply nobody is waiting on.
  obs::SpanTracker& tracker = obs::SpanTracker::global();
  if (!replay_.accept(from, packet.header.seq)) {
    ctr_.dupes_dropped->inc();
    obs::span_event(now, "dupe_drop", "server", config_.id,
                    tracker.lookup_seq(from, packet.header.seq),
                    {{"from", static_cast<double>(from)},
                     {"seq", static_cast<double>(packet.header.seq)}});
    return {};
  }
  // Context the sender bound to this packet's seq (invalid if spans off).
  const obs::SpanContext root = tracker.lookup_seq(from, packet.header.seq);

  if (packet.header.req && packet.header.end_to_end) {
    // Untrusted-edge request: seal the entropy under the requesting
    // client's csk so the relaying edge cannot read it (paper §VIII).
    const net::NodeId client = util::get_u32_be(packet.payload.data());
    const auto record_it = client_records_.find(client);
    if (record_it == client_records_.end()) {
      CADET_LOG_WARN << "server " << config_.id
                     << ": e2e request for unknown client " << client;
      return {};
    }
    const std::size_t want = (packet.header.argument + 7) / 8;
    util::Bytes served = pool_.pop(want);
    if (served.size() < want) ctr_.requests_short->inc();
    ctr_.requests_served->inc();
    ctr_.bytes_served->inc(served.size());
    const auto src = prov_.debit(served.size());
    prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
    obs::span_complete(now, "request", "server", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"bytes", static_cast<double>(served.size())},
                        {"e2e", 1.0},
                        {"gen_lo", static_cast<double>(src.lo)},
                        {"gen_hi", static_cast<double>(src.hi)}});
    cost_.add(cost::kCraftPacket +
              cost::kSealPerByte * static_cast<double>(served.size()));

    util::Bytes payload(4);
    util::put_u32_be(payload.data(), client);
    util::append(payload, seal(record_it->second.csk, served, csprng_));
    util::Bytes datagram = wire(Packet::data_ack_e2e(
        std::move(payload), packet.header.edge_server));
    // Bind the reply seq to the ROOT, not the serve span: the edge relay
    // and the client's dedup tagging should parent on the request root.
    tracker.bind_seq(config_.id, tx_seq_, root);
    return {{from, std::move(datagram)}};
  }

  if (packet.header.req) {
    // Entropy request: serve from the pool head.
    const std::size_t want = (packet.header.argument + 7) / 8;
    util::Bytes served = pool_.pop(want);
    if (served.size() < want) ctr_.requests_short->inc();
    ctr_.requests_served->inc();
    ctr_.bytes_served->inc(served.size());
    const auto src = prov_.debit(served.size());
    prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
    obs::span_complete(now, "request", "server", config_.id,
                       {root.trace, tracker.new_span()}, root.span,
                       {{"bytes", static_cast<double>(served.size())},
                        {"e2e", 0.0},
                        {"gen_lo", static_cast<double>(src.lo)},
                        {"gen_hi", static_cast<double>(src.hi)}});
    cost_.add(cost::kCraftPacket);

    const auto esk_it = edge_keys_.find(from);
    util::Bytes datagram;
    if (esk_it != edge_keys_.end()) {
      cost_.add(cost::kSealPerByte * static_cast<double>(served.size()));
      util::Bytes sealed = seal(esk_it->second, served, csprng_);
      datagram = wire(Packet::data_ack(std::move(sealed),
                                       packet.header.edge_server,
                                       /*encrypted=*/true));
    } else {
      datagram = wire(Packet::data_ack(std::move(served),
                                       packet.header.edge_server,
                                       /*encrypted=*/false));
    }
    // An edge refill closes its own refill span on receipt; binding the
    // request root here covers direct client requests and dedup tagging.
    tracker.bind_seq(config_.id, tx_seq_, root);
    return {{from, std::move(datagram)}};
  }

  if (packet.header.ack) {
    // Delivery from a peer server's pool exchange: mix it in directly.
    mix_contribution(packet.payload, now, root);
    return {};
  }

  // Upload (bulk from an edge, direct from a client, or a peer exchange).
  ctr_.uploads_received->inc();
  obs::span_event(now, "upload_rx", "server", config_.id, root,
                  {{"from", static_cast<double>(from)},
                   {"bytes", static_cast<double>(packet.payload.size())}});
  if (penalty_.should_drop(from, rng_)) {
    ctr_.uploads_dropped_penalty->inc();
    return {};
  }
  if (config_.sanity_checks_enabled) {
    cost_.add(cost::kSanityPerByte * static_cast<double>(packet.payload.size()));
    const auto outcome = sanity_.check(from, packet.payload);
    penalty_.record_result(from, outcome.checks_passed);
    if (!outcome.accepted) {
      ctr_.uploads_rejected_sanity->inc();
      return {};
    }
  }
  mix_contribution(packet.payload, now, root);
  return {};
}

void ServerNode::mix_contribution(util::BytesView payload, util::SimTime now,
                                  obs::SpanContext ctx) {
  if (payload.empty()) return;
  cost_.add(cost::kServerMixPerByte * static_cast<double>(payload.size()));
  mixer_.add_input(payload);
  ctr_.bytes_mixed->inc(payload.size());
  // One provenance generation per mixed contribution; drawn down FIFO by
  // every pool pop (serves, quality drops, peer exchanges).
  prov_.credit(++mix_generation_, payload.size());
  prov_newest_gauge_->set(static_cast<std::int64_t>(prov_.newest()));
  prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
  obs::span_event(now, "mix", "server", config_.id, ctx,
                  {{"bytes", static_cast<double>(payload.size())},
                   {"gen", static_cast<double>(mix_generation_)}});
  bytes_since_quality_check_ += payload.size();
  maybe_quality_check();
}

void ServerNode::maybe_quality_check() {
  if (config_.quality_check_interval_bytes == 0) return;
  if (bytes_since_quality_check_ < config_.quality_check_interval_bytes) {
    return;
  }
  bytes_since_quality_check_ = 0;
  run_quality_check();
}

nist::BatteryResult ServerNode::run_quality_check() {
  const std::size_t bytes_needed = (config_.quality_check_bits + 7) / 8;
  util::Bytes snapshot = pool_.peek(bytes_needed);
  ctr_.quality_checks_run->inc();
  if (snapshot.size() * 8 < 1024) {
    // Not enough data for a meaningful verdict; count as run, not failed.
    return {};
  }
  cost_.add(cost::kQualityPerByte * static_cast<double>(snapshot.size()));
  const auto result = quality_.run(snapshot, snapshot.size() * 8);
  // A single marginal failure is expected noise: with 7 tests at
  // alpha = 0.01 a perfect generator trips one ~5-7 % of the time, and a
  // periodic checker would bleed good data if that quarantined. Require
  // either two failing tests or one decisive failure (p < 1e-4) before
  // dropping the inspected segment.
  int failures = 0;
  bool decisive = false;
  for (const auto& test : result.results) {
    if (!test.pass) {
      ++failures;
      if (test.p_value < 1e-4) decisive = true;
    }
  }
  if (failures >= 2 || decisive) {
    ctr_.quality_checks_failed->inc();
    pool_.pop(snapshot.size());
    prov_.debit(snapshot.size());
    prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
    CADET_LOG_WARN << "server " << config_.id
                   << ": quality check failed (" << failures
                   << " tests); dropped " << snapshot.size()
                   << " pool bytes";
  }
  return result;
}

std::vector<net::Outgoing> ServerNode::begin_pool_exchange(net::NodeId peer,
                                                           std::size_t bytes) {
  util::Bytes chunk = pool_.pop(bytes);
  if (chunk.empty()) return {};
  ctr_.pool_exchanges->inc();
  prov_.debit(chunk.size());
  prov_oldest_gauge_->set(static_cast<std::int64_t>(prov_.oldest()));
  cost_.add(cost::kCraftPacket);
  // Shipped as a data delivery so the peer mixes it without a sanity gate
  // (peer servers are trusted infrastructure).
  Packet p = Packet::data_ack(std::move(chunk), /*edge_server=*/true,
                              /*encrypted=*/false);
  return {{peer, wire(std::move(p))}};
}

std::vector<net::Outgoing> ServerNode::handle_registration(
    net::NodeId from, const Packet& packet, util::SimTime now) {
  switch (packet.header.subtype) {
    case RegSubtype::kEdgeRegReq:
    case RegSubtype::kClientInitReq: {
      const auto req = decode_reg_request(packet.payload);
      if (!req) return {};
      const bool is_client =
          packet.header.subtype == RegSubtype::kClientInitReq;

      // Fresh server keypair per handshake (Fig. 7a/7b packet 2).
      const auto kp = make_keypair(csprng_);
      auto shared = kp.shared_secret(req->pub);
      const SharedKey key =
          is_client
              ? derive_key(shared, util::BytesView(kLabelCsk, sizeof(kLabelCsk)))
              : derive_key(shared, util::BytesView(kLabelEsk, sizeof(kLabelEsk)));
      util::secure_wipe(shared);
      cost_.add(2 * cost::kX25519 + cost::kCraftPacket);

      PendingHandshake pending;
      pending.key = key;
      pending.expected_confirm = nonce_add(req->nonce, 2);
      pending.is_client = is_client;
      pending_[from] = pending;

      util::Bytes payload;
      payload.reserve(32 + (8 + kSealOverhead) + (32 + kSealOverhead));
      payload.insert(payload.end(), kp.public_key.begin(),
                     kp.public_key.end());
      const Nonce n1 = nonce_add(req->nonce, 1);
      util::Bytes sealed_nonce =
          seal(key, util::BytesView(n1.data(), n1.size()), csprng_);
      util::append(payload, sealed_nonce);

      if (is_client) {
        // Token for future edge reregistration, sealed under csk.
        const Token token = make_token(csprng_);
        ClientRecord record;
        record.csk = key;
        record.token = token;
        client_records_[from] = record;
        util::Bytes sealed_token =
            seal(key, util::BytesView(token.data(), token.size()), csprng_);
        util::append(payload, sealed_token);
      }

      Packet reply = Packet::registration(
          is_client ? RegSubtype::kClientInitReqAck
                    : RegSubtype::kEdgeRegReqAck,
          std::move(payload), /*req=*/true, /*ack=*/true,
          /*client_edge=*/false, /*edge_server=*/!is_client,
          /*encrypted=*/true);
      return {{from, wire(std::move(reply))}};
    }

    case RegSubtype::kEdgeRegAck:
    case RegSubtype::kClientInitAck: {
      const auto it = pending_.find(from);
      if (it == pending_.end()) return {};
      const auto confirm = open(it->second.key, packet.payload);
      cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
      if (!confirm || confirm->size() != 8 ||
          !util::ct_equal(*confirm,
                          util::BytesView(it->second.expected_confirm.data(),
                                          8))) {
        CADET_LOG_WARN << "server " << config_.id
                       << ": bad registration confirm from " << from;
        pending_.erase(it);
        if (packet.header.subtype == RegSubtype::kClientInitAck) {
          client_records_.erase(from);
        }
        return {};
      }
      if (!it->second.is_client) {
        edge_keys_[from] = it->second.key;
      }
      // Client records were stored at packet-2 time; the confirm finalizes.
      pending_.erase(it);
      return {};
    }

    case RegSubtype::kReregFwd: {
      // seal_esk([client_id(4) || h(T)(32)]) from the edge (Fig. 7c pkt 2).
      const auto esk_it = edge_keys_.find(from);
      if (esk_it == edge_keys_.end()) return {};
      const auto plain = open(esk_it->second, packet.payload);
      cost_.add(cost::kSealPerByte * static_cast<double>(packet.payload.size()));
      if (!plain || plain->size() != 36) return {};
      const net::NodeId client = util::get_u32_be(plain->data());
      const auto record_it = client_records_.find(client);
      if (record_it == client_records_.end()) {
        CADET_LOG_WARN << "server " << config_.id << ": rereg for unknown client "
                       << client;
        return {};
      }

      // Accept the current or previous token window (clock skew/transit).
      const std::int64_t window = token_window(now);
      bool matched = false;
      for (const std::int64_t w : {window, window - 1}) {
        const auto expected = token_hash(record_it->second.token, w);
        cost_.add(cost::kTokenHash);
        if (util::ct_equal(util::BytesView(expected.data(), expected.size()),
                           util::BytesView(plain->data() + 4, 32))) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        CADET_LOG_WARN << "server " << config_.id
                       << ": rereg token hash mismatch for client " << client;
        return {};
      }

      // Mint cek; ship one copy for the edge, one for the client.
      const SharedKey cek = csprng_.array<32>();
      util::Bytes payload(4);
      util::put_u32_be(payload.data(), client);
      util::Bytes for_edge =
          seal(esk_it->second, util::BytesView(cek.data(), cek.size()),
               csprng_);
      util::Bytes for_client =
          seal(record_it->second.csk, util::BytesView(cek.data(), cek.size()),
               csprng_);
      util::append(payload, for_edge);
      util::append(payload, for_client);
      cost_.add(cost::kCraftPacket + cost::kSealPerByte * 64);

      Packet reply = Packet::registration(
          RegSubtype::kReregAckToEdge, std::move(payload), /*req=*/false,
          /*ack=*/true, /*client_edge=*/false, /*edge_server=*/true,
          /*encrypted=*/true);
      return {{from, wire(std::move(reply))}};
    }

    default:
      return {};
  }
}

}  // namespace cadet
