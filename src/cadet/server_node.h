// Server-tier protocol engine (paper §II "Server", Fig. 2 right column).
//
// Central servers do the heavy lifting: bulk storage in the entropy pool,
// the Yarrow-style mixing function, periodic NIST quality checks on pool
// contents, their own sanity/penalty gate on edge uploads, the registration
// database (edge keys, client keys, client tokens), and occasional pool
// exchange with peer servers (Fig. 2 steps 10-11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cadet/dedup.h"
#include "cadet/node_common.h"
#include "cadet/packet.h"
#include "cadet/penalty.h"
#include "cadet/provenance.h"
#include "cadet/registration.h"
#include "entropy/yarrow.h"
#include "net/transport.h"
#include "nist/battery.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace cadet {

class ServerNode {
 public:
  struct Config {
    net::NodeId id = net::kInvalidNode;
    std::uint64_t seed = 0;
    std::size_t pool_capacity_bytes = 1 << 20;
    PenaltyConfig penalty{};
    bool sanity_checks_enabled = true;
    double sanity_alpha = SanityChecker::kDefaultAlpha;
    /// Run a quality check after this many bytes have been mixed in
    /// (0 disables periodic checks).
    std::size_t quality_check_interval_bytes = 64 * 1024;
    /// Bits inspected per quality check (paper: 50 000-bit accumulations).
    std::size_t quality_check_bits = 50000;
    /// Peer servers for pool exchange.
    std::vector<net::NodeId> peers;
    /// Shared metrics registry (testbed::World wires its own). When null
    /// the node keeps a private registry, so standalone nodes (unit tests)
    /// stay isolated.
    obs::Registry* metrics = nullptr;
  };

  explicit ServerNode(const Config& config);

  net::NodeId id() const noexcept { return config_.id; }

  /// Handle an incoming packet from an edge, client, or peer server.
  std::vector<net::Outgoing> on_packet(net::NodeId from, util::BytesView data,
                                       util::SimTime now);

  /// Partial pool exchange with a peer server (Fig. 2 steps 10-11): pop
  /// `bytes` from the local pool head and ship them to `peer`, which mixes
  /// them like any other contribution.
  std::vector<net::Outgoing> begin_pool_exchange(net::NodeId peer,
                                                 std::size_t bytes);

  /// Seed the pool directly (deployment bootstrap; the paper's servers
  /// start with locally harvested entropy).
  void seed_pool(util::BytesView bytes);

  /// Run the quality battery on the pool head right now.
  nist::BatteryResult run_quality_check();

  // ---- state inspection ----
  entropy::ServerEntropyPool& pool() noexcept { return pool_; }
  const entropy::ServerEntropyPool& pool() const noexcept { return pool_; }
  entropy::YarrowMixer& mixer() noexcept { return mixer_; }
  PenaltyTable& penalty() noexcept { return penalty_; }
  CostMeter& cost() noexcept { return cost_; }
  bool edge_registered(net::NodeId edge) const {
    return edge_keys_.contains(edge);
  }
  bool client_known(net::NodeId client) const {
    return client_records_.contains(client);
  }

  struct Stats {
    std::uint64_t uploads_received = 0;
    std::uint64_t uploads_dropped_penalty = 0;
    std::uint64_t uploads_rejected_sanity = 0;
    std::uint64_t bytes_mixed = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t requests_short = 0;  // pool couldn't fully cover a request
    std::uint64_t quality_checks_run = 0;
    std::uint64_t quality_checks_failed = 0;
    std::uint64_t pool_exchanges = 0;
    std::uint64_t dupes_dropped = 0;  // duplicate data packets suppressed
  };
  /// Snapshot assembled from the registry counters (the counters are the
  /// single source of truth; this keeps existing call sites working).
  Stats stats() const noexcept;

  /// Registry this node publishes to (its own unless Config wired one).
  obs::Registry& metrics() noexcept { return *metrics_; }

 private:
  std::vector<net::Outgoing> handle_data(net::NodeId from,
                                         const Packet& packet,
                                         util::SimTime now);
  std::vector<net::Outgoing> handle_registration(net::NodeId from,
                                                 const Packet& packet,
                                                 util::SimTime now);
  void mix_contribution(util::BytesView payload, util::SimTime now,
                        obs::SpanContext ctx = {});
  void maybe_quality_check();

  /// Stamp the next tx sequence number and serialize.
  util::Bytes wire(Packet packet);

  Config config_;
  crypto::Csprng csprng_;
  util::Xoshiro256 rng_;
  entropy::ServerEntropyPool pool_;
  entropy::YarrowMixer mixer_;
  PenaltyTable penalty_;
  SanityChecker sanity_;
  nist::QualityBattery quality_;
  CostMeter cost_;
  ReplayFilter replay_;
  std::uint16_t tx_seq_ = 0;

  // Metrics (owned registry only when none was wired via Config).
  std::shared_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  struct Counters {
    obs::Counter* uploads_received = nullptr;
    obs::Counter* uploads_dropped_penalty = nullptr;
    obs::Counter* uploads_rejected_sanity = nullptr;
    obs::Counter* bytes_mixed = nullptr;
    obs::Counter* requests_served = nullptr;
    obs::Counter* bytes_served = nullptr;
    obs::Counter* requests_short = nullptr;
    obs::Counter* quality_checks_run = nullptr;
    obs::Counter* quality_checks_failed = nullptr;
    obs::Counter* pool_exchanges = nullptr;
    obs::Counter* dupes_dropped = nullptr;
  } ctr_;
  // Provenance watermarks: newest / oldest mixing generation still live in
  // the pool (see provenance.h for the approximate-FIFO caveat).
  obs::Gauge* prov_newest_gauge_ = nullptr;
  obs::Gauge* prov_oldest_gauge_ = nullptr;

  // Handshakes in flight: peer id -> (derived key, expected confirm nonce).
  struct PendingHandshake {
    SharedKey key;
    Nonce expected_confirm;
    bool is_client = false;
  };
  std::unordered_map<net::NodeId, PendingHandshake> pending_;

  std::unordered_map<net::NodeId, SharedKey> edge_keys_;  // esk per edge
  struct ClientRecord {
    SharedKey csk;
    Token token;
  };
  std::unordered_map<net::NodeId, ClientRecord> client_records_;

  std::uint64_t bytes_since_quality_check_ = 0;

  /// Pool lineage: one generation per mixed contribution, debited on every
  /// pool draw (serves, quality-check drops, peer exchanges).
  ProvenanceLedger prov_;
  std::uint64_t mix_generation_ = 0;
};

}  // namespace cadet
