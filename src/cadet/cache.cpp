#include "cadet/cache.h"

#include <algorithm>
#include <stdexcept>

namespace cadet {

EdgeCache::EdgeCache(std::size_t num_clients, double reserve_fraction,
                     double refill_fraction) {
  if (num_clients == 0) {
    throw std::invalid_argument("EdgeCache: need at least one client");
  }
  capacity_bytes_ = kClientBufferBits / 8 * num_clients;
  reserve_bytes_ =
      static_cast<std::size_t>(reserve_fraction * static_cast<double>(capacity_bytes_));
  refill_threshold_bytes_ =
      static_cast<std::size_t>(refill_fraction * static_cast<double>(capacity_bytes_));
}

void EdgeCache::insert(util::BytesView bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  while (data_.size() > capacity_bytes_) data_.pop_front();
}

util::Bytes EdgeCache::take(std::size_t nbytes, bool heavy_user) {
  const std::size_t floor = heavy_user ? reserve_bytes_ : 0;
  if (data_.size() < floor + nbytes) {
    return {};  // cannot serve at this tier
  }
  util::Bytes out(data_.begin(), data_.begin() + static_cast<long>(nbytes));
  data_.erase(data_.begin(), data_.begin() + static_cast<long>(nbytes));
  return out;
}

bool EdgeCache::needs_refill() const noexcept {
  return data_.size() < refill_threshold_bytes_;
}

std::size_t EdgeCache::refill_amount() const noexcept {
  return capacity_bytes_ - data_.size();
}

}  // namespace cadet
