#include "cadet/usage.h"

#include <algorithm>
#include <cmath>

namespace cadet {

namespace {

/// Median of a scratch vector (sorts in place).
double median_of(std::vector<double>& values) {
  const std::size_t n = values.size();
  std::sort(values.begin(), values.end());
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Consistency factor making MAD estimate sigma for normal data.
constexpr double kMadToSigma = 1.4826;

}  // namespace

UsageTracker::UsageTracker(double decay, double sigma_threshold)
    : decay_(decay), sigma_threshold_(sigma_threshold) {}

void UsageTracker::decay_all() {
  ++steps_;
  for (auto& [id, score] : scores_) score *= decay_;
}

void UsageTracker::record(DeviceId device, double usage) {
  decay_all();
  scores_[device] += usage;
}

void UsageTracker::tick() { decay_all(); }

double UsageTracker::score(DeviceId device) const {
  const auto it = scores_.find(device);
  return it == scores_.end() ? 0.0 : it->second;
}

double UsageTracker::median() const {
  if (scores_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(scores_.size());
  for (const auto& [id, score] : scores_) values.push_back(score);
  return median_of(values);
}

double UsageTracker::heavy_threshold() const {
  if (scores_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(scores_.size());
  for (const auto& [id, score] : scores_) values.push_back(score);
  const double median = median_of(values);
  std::vector<double> deviations = values;
  for (double& v : deviations) v = std::fabs(v - median);
  const double mad = median_of(deviations);
  double scale = kMadToSigma * mad;
  if (scale == 0.0) {
    // Degenerate MAD (majority of scores identical, e.g. an idle network):
    // fall back to the classical standard deviation so a single spike is
    // still judged against *some* spread rather than a zero threshold.
    double mean = 0.0;
    for (const double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double m2 = 0.0;
    for (const double v : values) m2 += (v - mean) * (v - mean);
    scale = std::sqrt(m2 / static_cast<double>(values.size()));
  }
  return median + sigma_threshold_ * scale;
}

bool UsageTracker::is_heavy(DeviceId device) const {
  const double threshold = heavy_threshold();
  if (threshold <= 0.0) return false;
  const double s = score(device);
  if (s <= threshold) return false;
  // Relative floor: the MAD threshold is a spread test, and a cohort whose
  // scores have been compressed by attacker-driven decay can put honest
  // burst noise 3 MAD-sigmas out while it is still only ~2x the typical
  // user. Require the score to also be a hard multiple of the median so
  // "heavy" means "several times normal usage", not "least typical".
  // Median 0 (idle network) keeps the stddev-fallback spike behaviour.
  return s > kUsageHeavyMedianRatio * median();
}

void UsageTracker::track(DeviceId device) { scores_.emplace(device, 0.0); }

}  // namespace cadet
