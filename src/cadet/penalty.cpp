#include "cadet/penalty.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cadet {

PenaltyScheme PenaltyScheme::base() {
  return {"CADET Base", {+5, +4, +3, +2, +1, 0, -1}};
}

PenaltyScheme PenaltyScheme::loose() {
  return {"Loose", {+4, +3, +2, +1, 0, -1, -2}};
}

PenaltyScheme PenaltyScheme::strict() {
  return {"Strict", {+10, +6, +3, +1, 0, -1, -1}};
}

PenaltyTable::PenaltyTable(PenaltyConfig config) : config_(std::move(config)) {
  if (config_.max_penalty <= config_.drop_thresh) {
    throw std::invalid_argument("PenaltyTable: max_penalty <= drop_thresh");
  }
}

double PenaltyTable::drop_percent(double penalty) const noexcept {
  if (penalty < config_.drop_thresh) return 0.0;
  switch (config_.curve) {
    case DropCurve::kLinear: {
      const double p = (penalty - config_.drop_thresh) /
                       (config_.max_penalty - config_.drop_thresh);
      return std::clamp(p, 0.0, 1.0);
    }
    case DropCurve::kSigmoid: {
      // Centered halfway between thresh and max; ~0.995 cap at max keeps a
      // sliver of acceptance so a reformed device can eventually recover.
      const double mid =
          (config_.drop_thresh + config_.max_penalty) / 2.0;
      const double scale =
          (config_.max_penalty - config_.drop_thresh) / 10.0;
      return 1.0 / (1.0 + std::exp(-(penalty - mid) / scale));
    }
  }
  return 0.0;
}

bool PenaltyTable::should_drop(DeviceId device, util::Xoshiro256& rng) const {
  const auto it = scores_.find(device);
  if (it == scores_.end()) return false;
  if (it->second >= config_.max_penalty &&
      config_.curve == DropCurve::kLinear) {
    return true;  // blacklisted: always ignore
  }
  const double p = drop_percent(it->second);
  return p > 0.0 && rng.bernoulli(p);
}

void PenaltyTable::record_result(DeviceId device, int checks_passed) {
  if (checks_passed < 0 ||
      checks_passed >= static_cast<int>(config_.scheme.points.size())) {
    throw std::out_of_range("PenaltyTable: checks_passed out of range");
  }
  double& score = scores_[device];
  score = std::max(0.0, score + config_.scheme.points[checks_passed]);
}

double PenaltyTable::score(DeviceId device) const {
  const auto it = scores_.find(device);
  return it == scores_.end() ? 0.0 : it->second;
}

bool PenaltyTable::is_delinquent(DeviceId device) const {
  return score(device) >= config_.drop_thresh;
}

bool PenaltyTable::is_blacklisted(DeviceId device) const {
  return score(device) >= config_.max_penalty;
}

}  // namespace cadet
