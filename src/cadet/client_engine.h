// Struct-of-arrays flyweight client state for million-client worlds.
//
// The per-ClientNode object graph (deque, optionals, Csprng, metrics
// handles — kilobytes per client once the allocator has its say) is the
// right model for protocol-fidelity experiments at testbed scale, but it is
// two orders of magnitude too fat for the ROADMAP's "millions of users".
// ClientEngine keeps one client's entire hot state in ~48 bytes spread
// across packed parallel arrays — RNG stream, pool cursor, usage/penalty
// scores, one pending-request slot with its issue timestamp — plus a
// 32-byte arena slot of cold key material, all in a handful of
// allocations for the whole population. The
// engine owns no behaviour: the sharded testbed (testbed/scale.h) drives it
// from simulator events, so the same state supports honest, flooding, and
// bad-uploader roles via the flag byte.
//
// Economics semantics mirror the full protocol engines (usage.h, penalty.h,
// config.h): EWMA usage with decay kUsageDecay, lazily applied — scores
// decay by pow(decay, steps-since-last-touch) on access instead of an
// O(population) sweep per packet — and a robust median + 1.4826 * MAD
// heavy threshold with the kUsageHeavyMedianRatio relative floor.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cadet/config.h"
#include "util/time.h"

namespace cadet {

class ClientEngine {
 public:
  /// Role and policing flags; packed into one byte per client.
  enum Flag : std::uint8_t {
    kProducer = 1u << 0,     ///< uploads entropy as well as requesting
    kBadUploader = 1u << 1,  ///< uploads fail the sanity battery
    kFlooder = 1u << 2,      ///< hostile request rate, ignores local pool
    kHeavy = 1u << 3,        ///< flagged by the last heavy-user scan
    kBlacklisted = 1u << 4,  ///< penalty reached kMaxPenalty
  };

  struct Config {
    std::uint64_t seed = 0;
    std::uint32_t first_id = 0;  ///< global id of client index 0
    std::uint32_t count = 0;
    std::uint32_t pool_capacity_bits =
        static_cast<std::uint32_t>(kClientBufferBits);
    double usage_decay = kUsageDecay;
  };

  explicit ClientEngine(const Config& config);

  std::uint32_t count() const noexcept { return count_; }
  std::uint32_t global_id(std::uint32_t i) const noexcept {
    return first_id_ + i;
  }
  std::uint32_t pool_capacity_bits() const noexcept { return pool_capacity_; }

  // ---------------------------------------------------------------- flags
  std::uint8_t flags(std::uint32_t i) const noexcept { return flags_[i]; }
  bool has(std::uint32_t i, Flag flag) const noexcept {
    return (flags_[i] & flag) != 0;
  }
  void set_flag(std::uint32_t i, Flag flag) noexcept { flags_[i] |= flag; }
  void clear_flag(std::uint32_t i, Flag flag) noexcept {
    flags_[i] &= static_cast<std::uint8_t>(~flag);
  }

  // ------------------------------------------------------------ rng stream
  /// Each client owns an 8-byte SplitMix64 stream — enough randomness for
  /// arrival processes, and the whole population's generators fit in one
  /// vector instead of a Csprng apiece.
  std::uint64_t next_u64(std::uint32_t i) noexcept {
    std::uint64_t z = (rng_[i] += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform01(std::uint32_t i) noexcept {
    return static_cast<double>(next_u64(i) >> 11) * 0x1.0p-53;
  }
  /// Exponential inter-arrival draw in seconds.
  double next_exp(std::uint32_t i, double mean_s) noexcept {
    return -mean_s * std::log(1.0 - uniform01(i));
  }

  // ------------------------------------------------------------ pool cursor
  std::uint32_t pool_bits(std::uint32_t i) const noexcept {
    return pool_bits_[i];
  }
  /// Serve `bits` from the local pool; true when the pool covered it.
  bool pool_consume(std::uint32_t i, std::uint32_t bits) noexcept {
    if (pool_bits_[i] < bits) return false;
    pool_bits_[i] -= bits;
    return true;
  }
  void pool_credit(std::uint32_t i, std::uint32_t bits) noexcept {
    const std::uint64_t sum = std::uint64_t{pool_bits_[i]} + bits;
    pool_bits_[i] = sum > pool_capacity_ ? pool_capacity_
                                         : static_cast<std::uint32_t>(sum);
  }

  // ------------------------------------------------- pending-request slot
  /// One in-flight network request per client (the real ClientNode keeps a
  /// deque; at scale one slot + retries is the paper's behaviour anyway).
  /// `now` stamps the issue time so fulfillment latency is observable
  /// (pending_since). Returns the generation id replies must match.
  std::uint16_t issue_request(std::uint32_t i, std::uint16_t bits,
                              util::SimTime now = 0) noexcept {
    pending_bits_[i] = bits;
    pending_since_[i] = now;
    attempts_[i] = 0;
    return ++pending_id_[i];
  }
  bool request_pending(std::uint32_t i) const noexcept {
    return pending_bits_[i] != 0;
  }
  bool pending_matches(std::uint32_t i, std::uint16_t id) const noexcept {
    return pending_bits_[i] != 0 && pending_id_[i] == id;
  }
  std::uint16_t pending_bits(std::uint32_t i) const noexcept {
    return pending_bits_[i];
  }
  /// Issue time of the slot's current request (the `now` passed to
  /// issue_request; survives until the next issue so a reply handler can
  /// read the latency after resolving the slot).
  util::SimTime pending_since(std::uint32_t i) const noexcept {
    return pending_since_[i];
  }
  /// Retry bookkeeping: returns the attempt count after the bump.
  std::uint8_t bump_attempts(std::uint32_t i) noexcept {
    return ++attempts_[i];
  }
  /// Fulfilled: credit the granted bits and clear the slot.
  void complete_request(std::uint32_t i, std::uint32_t grant_bits) noexcept {
    pool_credit(i, grant_bits);
    pending_bits_[i] = 0;
  }
  /// Denied / expired: clear the slot without credit.
  void cancel_request(std::uint32_t i) noexcept { pending_bits_[i] = 0; }

  // ------------------------------------------------------- edge economics
  /// Lazily decay client i's usage score to `step`, add `add`, return the
  /// new score. `step` is the edge's per-request counter, so decay cost is
  /// O(1) per touched client instead of O(population) per packet.
  float usage_touch(std::uint32_t i, std::uint32_t step, float add) noexcept {
    const float score = usage_score(i, step) + add;
    usage_[i] = score;
    usage_step_[i] = step;
    return score;
  }
  float usage_score(std::uint32_t i, std::uint32_t step) const noexcept {
    const std::uint32_t lag = step - usage_step_[i];
    if (lag == 0) return usage_[i];
    return usage_[i] *
           static_cast<float>(std::pow(usage_decay_, static_cast<double>(lag)));
  }

  /// Add penalty points (negative redeems); clamped to [0, kMaxPenalty].
  /// Sets kBlacklisted at the ceiling and returns the new score.
  float penalty_add(std::uint32_t i, float points) noexcept {
    float score = penalty_[i] + points;
    if (score < 0.0F) score = 0.0F;
    if (score >= static_cast<float>(kMaxPenalty)) {
      score = static_cast<float>(kMaxPenalty);
      flags_[i] |= kBlacklisted;
    }
    penalty_[i] = score;
    return score;
  }
  float penalty_score(std::uint32_t i) const noexcept { return penalty_[i]; }

  /// Robust heavy-user scan over the whole population: threshold is
  /// median + sigma_k * 1.4826 * MAD, floored by median * median_ratio and
  /// by `abs_floor` (the §III-C relative-floor semantics from usage.h).
  /// Sets/clears the kHeavy flag per client and returns the summary.
  /// `scratch` is caller-owned workspace, reused across scans.
  struct HeavyScan {
    float median = 0.0F;
    float threshold = 0.0F;
    std::uint32_t heavy = 0;
  };
  HeavyScan heavy_scan(std::uint32_t step, double sigma_k,
                       double median_ratio, float abs_floor,
                       std::vector<float>& scratch) noexcept;

  /// Cold per-client state: 32 bytes of derived key/token material in one
  /// arena allocation (at scale, derivation at construction stands in for
  /// the registration handshake; the sharded harness documents that).
  static constexpr std::size_t kColdBytes = 32;
  const std::uint8_t* cold(std::uint32_t i) const noexcept {
    return cold_.get() + std::size_t{i} * kColdBytes;
  }

  /// Total heap bytes held by the packed arrays and the arena.
  std::size_t memory_bytes() const noexcept;

 private:
  std::uint32_t first_id_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t pool_capacity_ = 0;
  double usage_decay_ = kUsageDecay;

  std::vector<std::uint64_t> rng_;
  std::vector<std::uint32_t> pool_bits_;
  std::vector<float> usage_;
  std::vector<std::uint32_t> usage_step_;
  std::vector<float> penalty_;
  std::vector<std::uint16_t> pending_bits_;  // 0 = no request in flight
  std::vector<std::uint16_t> pending_id_;
  std::vector<util::SimTime> pending_since_;
  std::vector<std::uint8_t> attempts_;
  std::vector<std::uint8_t> flags_;
  std::unique_ptr<std::uint8_t[]> cold_;  // kColdBytes per client
};

}  // namespace cadet
