// Entropy provenance: source-batch lineage for pool contributions and
// deliveries (paper §III — EaaS-style auditing of *which* uploads fed the
// bytes a client received).
//
// Each tier keeps a FIFO ledger of (generation, bytes) credit segments:
// the server credits one generation per mixing-pool contribution, the edge
// credits one batch per cache refill insert. Every draw debits the ledger
// front-first and reports the [oldest, newest] generation range the served
// bytes came from; those ranges ride the delivery trace events, and the
// newest/oldest live generations surface as per-tier watermark gauges.
//
// The accounting is deliberately approximate FIFO: the server pool is
// hash-mixed (every output depends on every input) and the edge cache has
// a reserve partition, so byte-exact lineage does not exist — the range
// answers "entropy from which contribution window could have influenced
// these bytes", which is the auditable fact.
//
// Header-only; cheap enough to run unconditionally, but engines only
// consult it when observability is compiled in.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>

namespace cadet {

class ProvenanceLedger {
 public:
  struct Range {
    std::uint64_t lo = 0;  // oldest generation the draw touched
    std::uint64_t hi = 0;  // newest generation the draw touched
  };

  /// Record `bytes` of entropy contributed under `generation`
  /// (generations are per-tier monotonic; 0 is reserved for "unknown").
  void credit(std::uint64_t generation, std::size_t bytes) {
    if (bytes == 0) return;
    if (!segments_.empty() && segments_.back().generation == generation) {
      segments_.back().bytes += bytes;
    } else {
      segments_.push_back({generation, bytes});
    }
    if (generation > newest_) newest_ = generation;
  }

  /// Consume `bytes` oldest-first; returns the generation range consumed.
  /// Draws beyond the credited total (seed entropy predating the ledger)
  /// extend the range down to generation 0.
  Range debit(std::size_t bytes) {
    Range range;
    bool first = true;
    while (bytes > 0 && !segments_.empty()) {
      Segment& front = segments_.front();
      if (first) {
        range.lo = range.hi = front.generation;
        first = false;
      } else {
        range.lo = std::min(range.lo, front.generation);
        range.hi = std::max(range.hi, front.generation);
      }
      const std::size_t take = std::min(bytes, front.bytes);
      front.bytes -= take;
      bytes -= take;
      if (front.bytes == 0) segments_.pop_front();
    }
    if (bytes > 0) range.lo = 0;  // drained past all credited segments
    return range;
  }

  /// Newest generation ever credited (watermark gauge).
  std::uint64_t newest() const noexcept { return newest_; }

  /// Oldest generation still live in the ledger (0 when drained).
  std::uint64_t oldest() const noexcept {
    return segments_.empty() ? 0 : segments_.front().generation;
  }

  std::size_t credited_bytes() const noexcept {
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.bytes;
    return total;
  }

 private:
  struct Segment {
    std::uint64_t generation = 0;
    std::size_t bytes = 0;
  };

  std::deque<Segment> segments_;
  std::uint64_t newest_ = 0;
};

}  // namespace cadet
