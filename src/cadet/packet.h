// CADET wire format (paper Fig. 4).
//
// Every packet starts with a fixed header:
//   byte 0 : version (5 bits) | reserved (3 bits)
//   byte 1 : REG DAT REQ ACK C-E E-S ENC URG   (one bit each)
//   bytes 2-3 : argument — request size in BITS for entropy requests,
//               payload size in BYTES for entropy data packets
//   byte 4 : variable-arguments byte (this implementation uses it as a
//            registration-subtype tag on REG packets, per the paper's note
//            that the area carries "additional arguments related to
//            different packet types", and as the end-to-end marker on DAT
//            packets)
//   bytes 5-6 : per-sender sequence number (big-endian). Engines stamp a
//               monotonically increasing value so receivers can discard
//               network duplicates and retransmissions (UDP dedup); 0 means
//               "unsequenced" and is exempt from duplicate suppression.
// followed by the data payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "cadet/config.h"
#include "util/bytes.h"

namespace cadet {

/// Registration-message subtype carried in the variable-arguments byte of
/// REG packets (paper Fig. 7 exchanges).
enum class RegSubtype : std::uint8_t {
  kNone = 0,
  kEdgeRegReq = 1,        // edge -> server  [e.pub, n]
  kEdgeRegReqAck = 2,     // server -> edge  [s.pub, E(n+1, esk)]
  kEdgeRegAck = 3,        // edge -> server  [E(n+2, esk)]
  kClientInitReq = 4,     // client -> server [c.pub, n]
  kClientInitReqAck = 5,  // server -> client [s.pub, E(n+1,csk), E(t,csk)]
  kClientInitAck = 6,     // client -> server [E(n+2, csk)]
  kReregReq = 7,          // client -> edge  [client, h(T)]
  kReregFwd = 8,          // edge -> server  [E(client || h(T), esk)]
  kReregAckToEdge = 9,    // server -> edge  [client, E(cek,esk), E(cek,csk)]
  kReregAckToClient = 10, // edge -> client  [E(cek, csk)]
};

struct PacketHeader {
  std::uint8_t version = kProtocolVersion;  // 5 bits on the wire
  bool reg = false;   // registration packet
  bool dat = false;   // data packet
  bool req = false;   // request
  bool ack = false;   // acknowledgement
  bool client_edge = false;  // C-E: client<->edge link
  bool edge_server = false;  // E-S: edge<->server link
  bool encrypted = false;    // ENC: payload sealed
  bool urgent = false;       // URG
  std::uint16_t argument = 0;
  RegSubtype subtype = RegSubtype::kNone;
  /// Data-packet variant carried in the variable-arguments byte:
  /// end-to-end mode, where the payload is sealed under the client-server
  /// key csk so the edge relays it without being able to read it (the
  /// untrusted-edge scenario of paper §VIII).
  bool end_to_end = false;
  /// Per-sender sequence number (bytes 5-6). Stamped just before encoding
  /// by the engines; 0 = unsequenced (dedup-exempt).
  std::uint16_t seq = 0;
};

struct Packet {
  PacketHeader header;
  util::Bytes payload;

  // ---- constructors for the protocol's packet shapes ----

  /// Entropy upload (client->edge or edge->server when edge_server).
  static Packet data_upload(util::Bytes payload, bool edge_server);

  /// Entropy request for `bits` bits.
  static Packet data_request(std::uint16_t bits, bool edge_server);

  /// End-to-end entropy request: carries the requesting client's id so the
  /// server can seal the reply under that client's csk.
  static Packet data_request_e2e(std::uint16_t bits, bool edge_server,
                                 std::uint32_t client_id);

  /// Entropy delivery.
  static Packet data_ack(util::Bytes payload, bool edge_server,
                         bool encrypted);

  /// End-to-end entropy delivery (payload sealed under csk; on the
  /// edge-server leg it is prefixed with the destination client id).
  static Packet data_ack_e2e(util::Bytes payload, bool edge_server);

  /// Registration message with subtype.
  static Packet registration(RegSubtype subtype, util::Bytes payload,
                             bool req, bool ack, bool client_edge,
                             bool edge_server, bool encrypted = false);
};

/// Size of the fixed header: version/flags/argument, the subtype byte, and
/// the two-byte sequence number.
inline constexpr std::size_t kHeaderBytes = 7;

/// Serialize to wire bytes.
util::Bytes encode(const Packet& packet);

/// Parse wire bytes; std::nullopt on malformed input (short buffer, version
/// mismatch, REG/DAT both or neither set, payload shorter than argument).
std::optional<Packet> decode(util::BytesView wire);

}  // namespace cadet
