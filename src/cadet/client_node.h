// Client-tier protocol engine (paper §II "Client").
//
// A client uploads excess entropy to its edge node, requests entropy when
// its local pool runs low, and optionally registers for encrypted delivery:
// a one-time client *initialization* (X25519 with a server, yielding the
// client-server key csk and a token) followed by cheap *reregistration*
// with any edge (token hash, yielding the client-edge key cek) — paper
// §V-B/§V-C.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cadet/dedup.h"
#include "cadet/node_common.h"
#include "cadet/packet.h"
#include "cadet/registration.h"
#include "entropy/pool.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace cadet {

class ClientNode {
 public:
  struct Config {
    net::NodeId id = net::kInvalidNode;
    net::NodeId edge = net::kInvalidNode;
    net::NodeId server = net::kInvalidNode;
    std::uint64_t seed = 0;
    std::size_t pool_bits = kClientBufferBits;
    /// Requests unanswered after this long are expired (their callback
    /// fires with empty data). UDP gives no delivery guarantee, so without
    /// expiry a lost packet would leak a pending entry forever. Checked
    /// lazily; with a wired `timer` the retry/fallback chain normally
    /// resolves a request well before this backstop.
    util::SimTime request_timeout = 10 * util::kSecond;
    /// Timer hook for retransmission/backoff (testbed::World wires it to
    /// the simulator). Null = lazy expiry only, no retries.
    EngineTimer timer;
    /// Request retransmissions before degrading to the local CSPRNG.
    std::size_t max_request_retries = kMaxRequestRetries;
    /// First retransmission delay; doubles per attempt with ±10 % jitter.
    util::SimTime request_retry_base = kRequestRetryBaseNs;
    /// Registration handshake re-issues before giving up.
    std::size_t max_reg_retries = kMaxRegRetries;
    util::SimTime reg_retry_base = kRegRetryBaseNs;
    /// Shared metrics registry (testbed::World wires its own). When null
    /// the node keeps a private registry, so standalone nodes (unit tests)
    /// stay isolated.
    obs::Registry* metrics = nullptr;
  };

  /// Called when a data request completes: delivered bytes and the time.
  /// Empty `data` signals expiry (the request was lost in transit or the
  /// service could not answer in time).
  using RequestCallback =
      std::function<void(util::BytesView data, util::SimTime now)>;
  /// Called when a registration phase completes.
  using RegCallback = std::function<void(util::SimTime now)>;

  explicit ClientNode(const Config& config);

  net::NodeId id() const noexcept { return config_.id; }

  // ---- actions (each returns the packets to transmit) ----

  /// One-time client initialization with the server (Fig. 7b packet 1).
  std::vector<net::Outgoing> begin_init(util::SimTime now,
                                        RegCallback on_complete = {});

  /// Token-based reregistration with the local edge (Fig. 7c packet 1).
  /// Requires a completed init.
  std::vector<net::Outgoing> begin_rereg(util::SimTime now,
                                         RegCallback on_complete = {});

  /// Request `bits` bits of entropy from the edge. With `end_to_end` the
  /// delivery is sealed under the client-server key csk, so an untrusted
  /// edge relays it without being able to read it (paper §VIII); requires
  /// a completed initialization and always costs a server round trip.
  std::vector<net::Outgoing> request_entropy(std::uint16_t bits,
                                             util::SimTime now,
                                             RequestCallback on_complete = {},
                                             bool end_to_end = false);

  /// Upload an entropy contribution to the edge.
  std::vector<net::Outgoing> upload_entropy(util::Bytes payload,
                                            util::SimTime now);

  /// Handle an incoming packet.
  std::vector<net::Outgoing> on_packet(net::NodeId from, util::BytesView data,
                                       util::SimTime now);

  // ---- state inspection ----

  bool initialized() const noexcept { return csk_.has_value(); }
  bool reregistered() const noexcept { return cek_.has_value(); }
  entropy::EntropyPool& pool() noexcept { return pool_; }
  const entropy::EntropyPool& pool() const noexcept { return pool_; }
  CostMeter& cost() noexcept { return cost_; }
  std::uint64_t requests_fulfilled() const noexcept {
    return ctr_.requests_fulfilled->value();
  }
  std::uint64_t requests_expired() const noexcept {
    return ctr_.requests_expired->value();
  }
  std::uint64_t requests_retried() const noexcept {
    return ctr_.requests_retried->value();
  }
  /// Requests answered from the local CSPRNG after retries were exhausted
  /// (graceful degradation; Kietzmann et al.'s "fall back to local
  /// generation" guideline).
  std::uint64_t requests_fallback() const noexcept {
    return ctr_.requests_fallback->value();
  }
  std::uint64_t dupes_dropped() const noexcept {
    return ctr_.dupes_dropped->value();
  }
  std::size_t requests_pending() const noexcept { return pending_.size(); }

  /// Registry this node publishes to (its own unless Config wired one).
  obs::Registry& metrics() noexcept { return *metrics_; }

 private:
  std::vector<net::Outgoing> handle_init_ack(const Packet& packet,
                                             util::SimTime now);
  void handle_rereg_ack(const Packet& packet, util::SimTime now);
  void handle_data_ack(const Packet& packet, util::SimTime now);
  void expire_stale_requests(util::SimTime now);

  /// Stamp the next tx sequence number and serialize.
  util::Bytes wire(Packet packet);
  /// base * 2^attempt, jittered ±10 % (deterministic per seed).
  util::SimTime backoff_delay(util::SimTime base, std::size_t attempt);

  std::vector<net::Outgoing> send_init(util::SimTime now);
  std::vector<net::Outgoing> send_rereg(util::SimTime now);
  void schedule_init_retry();
  void schedule_rereg_retry();
  void schedule_request_retry(std::uint64_t request_id, std::size_t attempt);
  std::vector<net::Outgoing> retry_request(std::uint64_t request_id,
                                           util::SimTime now);

  Config config_;
  crypto::Csprng csprng_;
  util::Xoshiro256 rng_;  // backoff jitter (simulation-grade, seeded)
  entropy::EntropyPool pool_;
  CostMeter cost_;
  ReplayFilter replay_;
  std::uint16_t tx_seq_ = 0;

  // Metrics (owned registry only when none was wired via Config).
  std::shared_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  struct Counters {
    obs::Counter* requests_sent = nullptr;
    obs::Counter* requests_fulfilled = nullptr;
    obs::Counter* requests_expired = nullptr;
    obs::Counter* requests_retried = nullptr;
    obs::Counter* requests_fallback = nullptr;
    obs::Counter* dupes_dropped = nullptr;
    obs::Counter* uploads_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
  } ctr_;

  // registration state
  std::optional<crypto::X25519KeyPair> init_keypair_;
  std::optional<Nonce> init_nonce_;
  std::optional<SharedKey> csk_;
  std::optional<Token> token_;
  std::optional<SharedKey> cek_;
  RegCallback on_init_complete_;
  RegCallback on_rereg_complete_;
  std::size_t init_attempts_ = 0;
  std::size_t rereg_attempts_ = 0;

  struct PendingRequest {
    std::uint16_t bits;
    RequestCallback callback;
    bool end_to_end = false;
    util::SimTime issued_at = 0;
    std::uint64_t id = 0;          // retry bookkeeping
    std::size_t attempts = 0;      // retransmissions so far
    util::Bytes wire;              // original datagram (same seq on retry)
    obs::SpanContext ctx;          // root span (request lifecycle)
  };
  std::deque<PendingRequest> pending_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace cadet
