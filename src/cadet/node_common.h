// Shared engine plumbing: CPU-cycle metering and the sanity-check wrapper
// with per-device payload history.
//
// Engines are sans-IO: handlers take (sender, bytes, now) and return
// send-intents; a wrapper (testbed SimNode or a live UDP runner) moves the
// bytes and converts metered cycles into busy time on the tier's CPU model.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "nist/battery.h"
#include "util/bytes.h"
#include "util/time.h"

namespace cadet {

/// A deferred unit of engine work: runs at a simulated time and returns the
/// packets to transmit (same shape as an engine handler).
using EngineWork =
    std::function<std::vector<net::Outgoing>(util::SimTime now)>;

/// Timer hook the embedding runtime (testbed::World, a live UDP runner)
/// wires into an engine Config: schedule `work` to run `delay` from now on
/// this node's CPU. Engines use it for retransmission/backoff timers; when
/// left null the engine falls back to lazy, traffic-driven expiry only.
using EngineTimer =
    std::function<void(util::SimTime delay, EngineWork work)>;

/// Accumulates simulated CPU cycles spent inside an engine call.
class CostMeter {
 public:
  void add(double cycles) noexcept { cycles_ += cycles; }

  /// Drain the accumulated cost (the wrapper charges it as busy time).
  double take() noexcept {
    const double c = cycles_;
    cycles_ = 0.0;
    return c;
  }

  double pending() const noexcept { return cycles_; }

 private:
  double cycles_ = 0.0;
};

/// Sanity-check front end used at the edge and server ingress. Keeps the
/// last accepted payload per device for the history-comparison check and
/// applies the paper's accept rule: a payload passing <= 3 of the 6 checks
/// is classified bad and dropped.
///
/// Two significance levels calibrate the penalty dynamics (Fig. 10c /
/// Table II), and the split is load-bearing:
///
///  * `alpha` governs the five NIST checks. At 0.03 an honest 256-bit
///    payload fails >= 3 of them only ~1.5 % of the time, matching the
///    paper's ~1.2 % honest rejection rate (Table II).
///  * `history_alpha` governs the CADET-specific history comparison, and
///    is deliberately strict (0.7): an honest payload "fails" it ~70 % of
///    the time, i.e. it demands uploads look *aggressively* independent of
///    the device's previous upload. Since rejection needs >= 3 failures,
///    this never drops honest traffic — but it shifts the typical honest
///    score from 6/6 (-1 penalty point) to 5/6 (0 points), making the
///    penalty walk near-critical. That is exactly what lets a 5 %-bad
///    uploader drift past drop_thresh = 10 while an honest uploader stays
///    pinned at ~0, as Fig. 10c measures; with a single lax alpha the
///    honest -1 drift would swamp a 5 % attacker's +4 jumps and the
///    figure's thresholds would be unreachable. See DESIGN.md.
class SanityChecker {
 public:
  using DeviceId = std::uint32_t;

  static constexpr int kAcceptMinimum = 4;  // pass >= 4 of 6 to be accepted
  static constexpr double kDefaultAlpha = 0.03;
  static constexpr double kDefaultHistoryAlpha = 0.7;

  explicit SanityChecker(double alpha = kDefaultAlpha,
                         double history_alpha = kDefaultHistoryAlpha)
      : alpha_(alpha), history_alpha_(history_alpha) {}

  struct Outcome {
    int checks_passed = 0;
    bool accepted = false;
  };

  Outcome check(DeviceId device, util::BytesView payload) {
    auto& history = history_[device];
    const nist::BatteryResult battery =
        battery_.run(payload, util::BytesView(history));
    Outcome out;
    for (const auto& result : battery.results) {
      const double bar =
          result.name == "HistoryCompare" ? history_alpha_ : alpha_;
      if (result.p_value >= bar) ++out.checks_passed;
    }
    out.accepted = out.checks_passed >= kAcceptMinimum;
    if (out.accepted) {
      history.assign(payload.begin(), payload.end());
    }
    return out;
  }

  double alpha() const noexcept { return alpha_; }
  double history_alpha() const noexcept { return history_alpha_; }

 private:
  double alpha_;
  double history_alpha_;
  nist::SanityBattery battery_;
  std::unordered_map<DeviceId, util::Bytes> history_;
};

}  // namespace cadet
