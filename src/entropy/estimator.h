// Min-entropy estimation (NIST SP800-90B style) for harvested data.
//
// The paper's clients credit their pools with a per-source quality guess;
// these estimators replace the guess with a measurement: the
// most-common-value estimate over byte symbols and the Markov estimate
// over the bit sequence, combined conservatively. Estimates are *upper
// bounds honest about small samples* — a 99 % confidence interval widens
// the most-common-value probability before taking the log.
#pragma once

#include <cstddef>

#include "util/bitview.h"
#include "util/bytes.h"

namespace cadet::entropy {

/// Most-common-value estimate: min-entropy per byte symbol in [0, 8].
/// Uses the SP800-90B upper confidence bound p_u = p + 2.576*sqrt(p(1-p)/n).
double mcv_min_entropy_per_byte(util::BytesView data);

/// First-order Markov estimate over bits: min-entropy per bit in [0, 1].
/// Bounds the probability of the most likely 128-bit path through the
/// measured transition matrix (SP800-90B 6.3.3, binary specialization).
double markov_min_entropy_per_bit(const util::BitView& bits);

/// Conservative combined estimate of the total min-entropy (in bits)
/// contained in `data`: n_bytes * min(MCV per-byte, 8 * Markov per-bit).
/// Returns 0 for inputs too small to estimate (< 8 bytes).
std::size_t estimate_min_entropy_bits(util::BytesView data);

}  // namespace cadet::entropy
