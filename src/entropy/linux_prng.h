// Model of the Linux kernel PRNG input pool (Lacharme et al. 2012, the
// paper's reference [4]) — the baseline generator Table III compares CADET
// against. Structure follows the kernel's design: a 128-word pool mixed by
// a twisted generalized-feedback shift register with fixed polynomial taps,
// extraction by hash folding with feedback. (The kernel used SHA-1; we use
// SHA-256 folded to 160 bits, which preserves the structure while reusing
// the repo's hash.)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace cadet::entropy {

class LinuxPrngModel {
 public:
  static constexpr std::size_t kPoolWords = 128;  // 4096-bit input pool

  LinuxPrngModel();

  /// Mix one event word into the pool (the kernel's add_entropy_words).
  void mix_word(std::uint32_t word) noexcept;

  /// Mix a byte buffer word-by-word.
  void mix(util::BytesView data) noexcept;

  /// Model of add_timer_randomness: feed an event timestamp delta.
  void add_timer_event(std::uint64_t timestamp_ns) noexcept;

  /// Extract output bytes (hash folding with pool feedback).
  util::Bytes extract(std::size_t nbytes);

 private:
  std::array<std::uint32_t, kPoolWords> pool_{};
  std::size_t add_ptr_ = 0;
  std::uint32_t input_rotate_ = 0;
  std::uint64_t last_timestamp_ = 0;
  std::uint64_t extract_counter_ = 0;
};

}  // namespace cadet::entropy
