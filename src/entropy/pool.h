// Client-side entropy pool: a fixed-capacity randomness buffer with an
// entropy-credit counter, modeled on the kernel pools the paper's clients
// rely on. The paper sizes the edge cache as "4096 bits (the typical size of
// a client's own randomness buffer)" per client — this is that buffer.
//
// Contents are kept well-mixed by hashing on both insert and extract, so a
// pool that has *ever* held entropy emits statistically random bytes; the
// credit counter tracks how much true entropy those bytes are backed by.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/bytes.h"

namespace cadet::entropy {

class EntropyPool {
 public:
  static constexpr std::size_t kDefaultCapacityBits = 4096;

  explicit EntropyPool(std::size_t capacity_bits = kDefaultCapacityBits);

  std::size_t capacity_bits() const noexcept { return capacity_bits_; }

  /// Entropy credit currently available, in bits.
  std::size_t available_bits() const noexcept { return available_bits_; }

  bool empty() const noexcept { return available_bits_ == 0; }
  bool full() const noexcept { return available_bits_ >= capacity_bits_; }

  /// Mix `data` into the pool, crediting `entropy_bits` of it as true
  /// entropy (callers estimate this from the source quality; credit
  /// saturates at capacity).
  void add(util::BytesView data, std::size_t entropy_bits);

  /// Extract up to `nbytes` of output, debiting 8 bits of credit per byte.
  /// Returns fewer bytes (possibly zero) when credit runs short.
  util::Bytes extract(std::size_t nbytes);

  /// Extract exactly `nbytes`, allowing the credit to go negative-ish:
  /// output keeps flowing (like /dev/urandom) but available_bits() stays 0.
  /// `starved_bytes` counts output bytes not backed by credit.
  util::Bytes extract_unchecked(std::size_t nbytes);

  std::uint64_t starved_bytes() const noexcept { return starved_bytes_; }
  std::uint64_t total_added_bytes() const noexcept { return total_added_; }
  std::uint64_t total_extracted_bytes() const noexcept {
    return total_extracted_;
  }

  /// Publish this pool's fill level and starvation to `registry`
  /// (cadet_pool_available_bits gauge, cadet_pool_starved_bytes counter),
  /// labeled for the owning node. The registry must outlive the pool.
  void bind_metrics(obs::Registry& registry, const obs::Labels& labels);

 private:
  void publish_fill() noexcept {
    if (fill_gauge_ != nullptr) {
      fill_gauge_->set(static_cast<std::int64_t>(available_bits_));
    }
  }

  void stir(util::BytesView data);
  util::Bytes squeeze(std::size_t nbytes);

  std::size_t capacity_bits_;
  std::size_t available_bits_ = 0;
  std::uint64_t starved_bytes_ = 0;
  std::uint64_t total_added_ = 0;
  std::uint64_t total_extracted_ = 0;
  std::uint64_t extract_counter_ = 0;
  util::Bytes state_;  // capacity_bits/8 bytes of mixed pool state

  obs::Gauge* fill_gauge_ = nullptr;
  obs::Counter* starved_counter_ = nullptr;
};

}  // namespace cadet::entropy
