#include "entropy/yarrow.h"

#include <algorithm>

#include "util/secure.h"

namespace cadet::entropy {

ServerEntropyPool::ServerEntropyPool(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void ServerEntropyPool::push(util::BytesView bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  while (data_.size() > capacity_) data_.pop_front();
  publish_fill();
}

util::Bytes ServerEntropyPool::pop(std::size_t n) {
  const std::size_t take = std::min(n, data_.size());
  util::Bytes out(data_.begin(), data_.begin() + static_cast<long>(take));
  data_.erase(data_.begin(), data_.begin() + static_cast<long>(take));
  publish_fill();
  return out;
}

void ServerEntropyPool::bind_metrics(obs::Registry& registry,
                                     const obs::Labels& labels) {
  fill_gauge_ = &registry.gauge("cadet_pool_bytes", labels);
  publish_fill();
}

util::Bytes ServerEntropyPool::peek(std::size_t n) const {
  const std::size_t take = std::min(n, data_.size());
  return util::Bytes(data_.begin(), data_.begin() + static_cast<long>(take));
}

YarrowMixer::YarrowMixer(ServerEntropyPool& pool, const YarrowConfig& config)
    : pool_(pool), config_(config) {}

void YarrowMixer::add_input(util::BytesView data) {
  ++input_counter_;
  const bool to_slow = (input_counter_ % config_.slow_divert_every) == 0;
  util::Bytes& target = to_slow ? slow_pool_ : fast_pool_;
  util::append(target, data);

  if (fast_pool_.size() >= config_.fast_pool_threshold) fold(fast_pool_);
  if (slow_pool_.size() >= config_.slow_pool_threshold) fold(slow_pool_);
}

void YarrowMixer::flush() {
  if (!fast_pool_.empty()) fold(fast_pool_);
  if (!slow_pool_.empty()) fold(slow_pool_);
}

void YarrowMixer::fold(util::Bytes& accumulator) {
  // (3) concatenate accumulated input with the oldest stored bytes,
  // (4) hash, (5) reinsert at the tail — numbers per Fig. 6.
  const util::Bytes oldest = pool_.pop(config_.fold_history_bytes);

  // Hash in counter-extended blocks so a fold yields as many output bytes
  // as the entropy it consumed (a plain 32-byte digest would throttle the
  // pool's fill rate below client demand).
  const std::uint64_t hash_ops_before = hash_ops_;
  const std::size_t out_target =
      std::max<std::size_t>(accumulator.size() + oldest.size(),
                            crypto::Sha256::kDigestSize);
  util::Bytes mixed;
  mixed.reserve(out_target);
  std::uint64_t block = 0;
  while (mixed.size() < out_target) {
    crypto::Sha256 h;
    h.update(accumulator);
    h.update(oldest);
    std::uint8_t ctr[8];
    util::put_u64_be(ctr, block++);
    h.update(util::BytesView(ctr, 8));
    const auto digest = h.finish();
    ++hash_ops_;
    const std::size_t take =
        std::min<std::size_t>(digest.size(), out_target - mixed.size());
    mixed.insert(mixed.end(), digest.begin(), digest.begin() + take);
  }
  pool_.push(mixed);
  // The raw accumulated input is unmixed entropy; wipe it rather than
  // leaving it readable in the vector's spare capacity after clear().
  util::secure_wipe(accumulator);
  accumulator.clear();
  ++folds_;
  if (folds_counter_ != nullptr) folds_counter_->inc();
  if (hash_ops_counter_ != nullptr) {
    hash_ops_counter_->inc(hash_ops_ - hash_ops_before);
  }
}

void YarrowMixer::bind_metrics(obs::Registry& registry,
                               const obs::Labels& labels) {
  folds_counter_ = &registry.counter("cadet_mixer_folds", labels);
  hash_ops_counter_ = &registry.counter("cadet_mixer_hash_ops", labels);
}

}  // namespace cadet::entropy
