#include "entropy/linux_prng.h"

#include <cstring>

#include "crypto/sha256.h"

namespace cadet::entropy {

namespace {

// The kernel's twist table and tap set for a 128-word pool
// (drivers/char/random.c, poolinfo for 4096 bits).
constexpr std::uint32_t kTwistTable[8] = {
    0x00000000, 0x3b6e20c8, 0x76dc4190, 0x4db26158,
    0xedb88320, 0xd6d6a3e8, 0x9b64c2b0, 0xa00ae278};
constexpr std::size_t kTaps[5] = {104, 76, 51, 25, 1};

inline std::uint32_t rotl32(std::uint32_t x, unsigned n) noexcept {
  return n == 0 ? x : (x << n) | (x >> (32 - n));
}

}  // namespace

LinuxPrngModel::LinuxPrngModel() = default;

void LinuxPrngModel::mix_word(std::uint32_t word) noexcept {
  word = rotl32(word, input_rotate_ & 31);
  // Rotation increment differs at the pool wrap point, as in the kernel.
  input_rotate_ += (add_ptr_ == 0) ? 14 : 7;

  std::uint32_t w = word;
  w ^= pool_[add_ptr_];
  for (const std::size_t tap : kTaps) {
    w ^= pool_[(add_ptr_ + tap) % kPoolWords];
  }
  pool_[add_ptr_] = (w >> 3) ^ kTwistTable[w & 7];
  add_ptr_ = (add_ptr_ + kPoolWords - 1) % kPoolWords;
}

void LinuxPrngModel::mix(util::BytesView data) noexcept {
  std::size_t i = 0;
  while (i < data.size()) {
    std::uint32_t word = 0;
    for (int b = 0; b < 4 && i < data.size(); ++b, ++i) {
      word |= static_cast<std::uint32_t>(data[i]) << (8 * b);
    }
    mix_word(word);
  }
}

void LinuxPrngModel::add_timer_event(std::uint64_t timestamp_ns) noexcept {
  const std::uint64_t delta = timestamp_ns - last_timestamp_;
  last_timestamp_ = timestamp_ns;
  mix_word(static_cast<std::uint32_t>(timestamp_ns));
  mix_word(static_cast<std::uint32_t>(delta));
}

util::Bytes LinuxPrngModel::extract(std::size_t nbytes) {
  util::Bytes out;
  out.reserve(nbytes);
  while (out.size() < nbytes) {
    // Hash the whole pool with an extraction counter.
    crypto::Sha256 h;
    h.update(util::BytesView(reinterpret_cast<const std::uint8_t*>(pool_.data()),
                             pool_.size() * sizeof(std::uint32_t)));
    std::uint8_t ctr[8];
    util::put_u64_be(ctr, extract_counter_++);
    h.update(util::BytesView(ctr, 8));
    const auto digest = h.finish();

    // Feed the hash back into the pool (anti-backtracking, as the kernel
    // does with extract_buf's fold-back).
    mix(util::BytesView(digest.data(), digest.size() / 2));

    // Fold to 160 bits (the kernel folds SHA-1's 160 to 80; we keep the
    // 2:1 fold spirit on the front 20 bytes).
    std::uint8_t folded[10];
    for (int i = 0; i < 10; ++i) folded[i] = digest[i] ^ digest[i + 10];
    const std::size_t take =
        std::min<std::size_t>(sizeof(folded), nbytes - out.size());
    out.insert(out.end(), folded, folded + take);
  }
  return out;
}

}  // namespace cadet::entropy
