// The CADET server-tier mixing function (paper §IV-B, Fig. 6), modeled on
// Yarrow-160's two-pool accumulator:
//
//   input → [fast pool | slow pool] → (pool full) → concat with the oldest
//   bytes of the server entropy pool → hash → reinsert at the pool tail.
//
// Most input lands in the fast pool; every k-th contribution is diverted to
// the slow pool, which is larger and therefore folds over longer horizons.
// Combining with the oldest stored bytes mixes data that is not temporally
// local, keeping pool predictability low even under partially known input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/bytes.h"

namespace cadet::entropy {

/// FIFO byte store backing a server node. Mixed data enters at the tail;
/// client requests and mixing-function folds consume from the head.
class ServerEntropyPool {
 public:
  explicit ServerEntropyPool(std::size_t capacity_bytes = 1 << 20);

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Append at the tail; oldest bytes are evicted beyond capacity.
  void push(util::BytesView bytes);

  /// Pop up to n of the oldest bytes.
  util::Bytes pop(std::size_t n);

  /// Copy (without consuming) up to n of the oldest bytes — the quality
  /// check inspects the pool without draining it.
  util::Bytes peek(std::size_t n) const;

  /// Publish the pool fill level as the cadet_pool_bytes gauge. The
  /// registry must outlive the pool.
  void bind_metrics(obs::Registry& registry, const obs::Labels& labels);

 private:
  void publish_fill() noexcept {
    if (fill_gauge_ != nullptr) {
      fill_gauge_->set(static_cast<std::int64_t>(data_.size()));
    }
  }

  std::size_t capacity_;
  std::deque<std::uint8_t> data_;
  obs::Gauge* fill_gauge_ = nullptr;
};

struct YarrowConfig {
  std::size_t fast_pool_threshold = 64;   // bytes before a fast fold
  std::size_t slow_pool_threshold = 128;  // bytes before a slow fold
  std::size_t slow_divert_every = 8;      // every k-th input goes slow
  std::size_t fold_history_bytes = 32;    // oldest pool bytes mixed per fold
};

class YarrowMixer {
 public:
  explicit YarrowMixer(ServerEntropyPool& pool,
                       const YarrowConfig& config = {});

  /// Feed one client/edge contribution into the accumulator pools.
  void add_input(util::BytesView data);

  /// Force-fold any partially filled accumulators into the pool (used at
  /// shutdown/snapshot points so no contribution is stranded).
  void flush();

  std::uint64_t folds_performed() const noexcept { return folds_; }
  std::uint64_t hash_operations() const noexcept { return hash_ops_; }

  /// Publish fold (reseed) and hash-operation counts to `registry`
  /// (cadet_mixer_folds / cadet_mixer_hash_ops counters).
  void bind_metrics(obs::Registry& registry, const obs::Labels& labels);

 private:
  void fold(util::Bytes& accumulator);

  ServerEntropyPool& pool_;
  YarrowConfig config_;
  util::Bytes fast_pool_;
  util::Bytes slow_pool_;
  std::uint64_t input_counter_ = 0;
  std::uint64_t folds_ = 0;
  std::uint64_t hash_ops_ = 0;
  obs::Counter* folds_counter_ = nullptr;
  obs::Counter* hash_ops_counter_ = nullptr;
};

}  // namespace cadet::entropy
