// Entropy-source models. The paper's clients harvest randomness from system
// event timing (IRQs, disk I/O); IoT devices produce it slowly, which is the
// starvation problem CADET addresses. These models expose production *rate*
// and *quality* as parameters, plus synthetic-payload generators for the
// honest/malicious upload behaviours in the Table II / Fig. 10c experiments.
// A /dev/urandom-backed source supports live (non-simulated) runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/time.h"

namespace cadet::entropy {

/// A producer of (timestamped) entropy harvest events.
class EntropySource {
 public:
  virtual ~EntropySource() = default;

  /// Time until the next harvest event.
  virtual util::SimTime next_interval(util::Xoshiro256& rng) = 0;

  /// Bytes captured by one harvest event.
  virtual util::Bytes harvest(util::Xoshiro256& rng) = 0;

  /// Estimated true-entropy content, bits per harvested byte (<= 8).
  virtual double entropy_per_byte() const = 0;

  virtual std::string name() const = 0;
};

/// Interrupt/disk timing jitter: small frequent events, conservative
/// entropy estimate. Defaults model an idle IoT device (~16 bytes/s).
class TimerJitterSource final : public EntropySource {
 public:
  TimerJitterSource(double events_per_second = 8.0,
                    std::size_t bytes_per_event = 2,
                    double entropy_per_byte = 4.0);

  util::SimTime next_interval(util::Xoshiro256& rng) override;
  util::Bytes harvest(util::Xoshiro256& rng) override;
  double entropy_per_byte() const override { return entropy_per_byte_; }
  std::string name() const override { return "timer-jitter"; }

 private:
  double events_per_second_;
  std::size_t bytes_per_event_;
  double entropy_per_byte_;
};

/// On-board sensor noise (paper cites sensor-based RNG as prior work):
/// bursty, higher volume per event, lower per-byte entropy.
class SensorNoiseSource final : public EntropySource {
 public:
  SensorNoiseSource(double events_per_second = 1.0,
                    std::size_t bytes_per_event = 32,
                    double entropy_per_byte = 2.0);

  util::SimTime next_interval(util::Xoshiro256& rng) override;
  util::Bytes harvest(util::Xoshiro256& rng) override;
  double entropy_per_byte() const override { return entropy_per_byte_; }
  std::string name() const override { return "sensor-noise"; }

 private:
  double events_per_second_;
  std::size_t bytes_per_event_;
  double entropy_per_byte_;
};

/// Live source reading the kernel CSPRNG; used by the UDP examples where
/// the host actually has entropy to contribute.
class DevUrandomSource final : public EntropySource {
 public:
  explicit DevUrandomSource(std::size_t bytes_per_event = 32);

  util::SimTime next_interval(util::Xoshiro256& rng) override;
  util::Bytes harvest(util::Xoshiro256& rng) override;
  double entropy_per_byte() const override { return 8.0; }
  std::string name() const override { return "dev-urandom"; }

 private:
  std::size_t bytes_per_event_;
};

/// Synthetic payload generators for experiment workloads.
namespace synth {

/// Statistically random bytes (honest upload).
util::Bytes good(util::Xoshiro256& rng, std::size_t n);

/// Bits drawn Bernoulli(p_one) — biased data that fails frequency-family
/// checks when p_one is far from 0.5.
util::Bytes biased(util::Xoshiro256& rng, std::size_t n, double p_one);

/// Repeating byte pattern — fails runs/ApEn checks.
util::Bytes patterned(std::size_t n, std::uint8_t a = 0xaa,
                      std::uint8_t b = 0x55);

/// "Bad" data as used in the paper's misbehaving-client experiments:
/// a random draw between heavy bias and short patterns.
util::Bytes bad(util::Xoshiro256& rng, std::size_t n);

}  // namespace synth

}  // namespace cadet::entropy
