#include "entropy/sources.h"

#include <fstream>
#include <stdexcept>

namespace cadet::entropy {

TimerJitterSource::TimerJitterSource(double events_per_second,
                                     std::size_t bytes_per_event,
                                     double entropy_per_byte)
    : events_per_second_(events_per_second),
      bytes_per_event_(bytes_per_event),
      entropy_per_byte_(entropy_per_byte) {}

util::SimTime TimerJitterSource::next_interval(util::Xoshiro256& rng) {
  return util::from_seconds(rng.exponential(1.0 / events_per_second_));
}

util::Bytes TimerJitterSource::harvest(util::Xoshiro256& rng) {
  return rng.bytes(bytes_per_event_);
}

SensorNoiseSource::SensorNoiseSource(double events_per_second,
                                     std::size_t bytes_per_event,
                                     double entropy_per_byte)
    : events_per_second_(events_per_second),
      bytes_per_event_(bytes_per_event),
      entropy_per_byte_(entropy_per_byte) {}

util::SimTime SensorNoiseSource::next_interval(util::Xoshiro256& rng) {
  return util::from_seconds(rng.exponential(1.0 / events_per_second_));
}

util::Bytes SensorNoiseSource::harvest(util::Xoshiro256& rng) {
  // Sensor LSB noise: low-order bits random, high-order bits correlated —
  // callers credit only entropy_per_byte_ bits per byte.
  util::Bytes out(bytes_per_event_);
  std::uint8_t walk = static_cast<std::uint8_t>(rng());
  for (auto& byte : out) {
    walk = static_cast<std::uint8_t>(walk + static_cast<int>(rng.uniform(5)) - 2);
    byte = static_cast<std::uint8_t>((walk & 0xf0) |
                                     (rng() & 0x0f));
  }
  return out;
}

DevUrandomSource::DevUrandomSource(std::size_t bytes_per_event)
    : bytes_per_event_(bytes_per_event) {}

util::SimTime DevUrandomSource::next_interval(util::Xoshiro256& rng) {
  (void)rng;
  return util::from_millis(100);
}

util::Bytes DevUrandomSource::harvest(util::Xoshiro256& rng) {
  (void)rng;
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (!urandom) {
    throw std::runtime_error("DevUrandomSource: cannot open /dev/urandom");
  }
  util::Bytes out(bytes_per_event_);
  urandom.read(reinterpret_cast<char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
  if (urandom.gcount() != static_cast<std::streamsize>(out.size())) {
    throw std::runtime_error("DevUrandomSource: short read");
  }
  return out;
}

namespace synth {

util::Bytes good(util::Xoshiro256& rng, std::size_t n) {
  return rng.bytes(n);
}

util::Bytes biased(util::Xoshiro256& rng, std::size_t n, double p_one) {
  util::Bytes out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8; ++b) {
      byte = static_cast<std::uint8_t>((byte << 1) |
                                       (rng.bernoulli(p_one) ? 1 : 0));
    }
    out[i] = byte;
  }
  return out;
}

util::Bytes patterned(std::size_t n, std::uint8_t a, std::uint8_t b) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (i % 2 == 0) ? a : b;
  return out;
}

util::Bytes bad(util::Xoshiro256& rng, std::size_t n) {
  switch (rng.uniform(3)) {
    case 0:
      return biased(rng, n, 0.80);
    case 1:
      return biased(rng, n, 0.20);
    default:
      // Fixed alternation: balanced bit counts (freq/cusum-blind) but
      // degenerate run structure, so runs/ApEn catch it.
      return patterned(n, 0xaa, 0x55);
  }
}

}  // namespace synth

}  // namespace cadet::entropy
