#include "entropy/estimator.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace cadet::entropy {

namespace {
// 99 % two-sided normal quantile used by SP800-90B's MCV bound.
constexpr double kZ99 = 2.576;
}  // namespace

double mcv_min_entropy_per_byte(util::BytesView data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (const std::uint8_t byte : data) ++counts[byte];
  const double n = static_cast<double>(data.size());
  const double p_hat =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      n;
  const double p_upper =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / n));
  return std::clamp(-std::log2(p_upper), 0.0, 8.0);
}

double markov_min_entropy_per_bit(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n < 2) return 0.0;

  // Initial-state probabilities with the MCV-style confidence bound.
  const double ones = static_cast<double>(bits.popcount());
  const double dn = static_cast<double>(n);
  const double p1_hat = ones / dn;
  auto bound = [&](double p, double samples) {
    if (samples <= 0.0) return 1.0;
    return std::min(1.0, p + kZ99 * std::sqrt(p * (1.0 - p) / samples));
  };
  const double p1 = bound(p1_hat, dn);
  const double p0 = bound(1.0 - p1_hat, dn);

  // Transition counts.
  double c[2][2] = {{0, 0}, {0, 0}};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ++c[bits[i]][bits[i + 1]];
  }
  double t[2][2];
  for (int a = 0; a < 2; ++a) {
    const double row = c[a][0] + c[a][1];
    for (int b = 0; b < 2; ++b) {
      t[a][b] = row > 0.0 ? bound(c[a][b] / row, row) : 1.0;
    }
  }

  // Most probable 128-step path: dynamic program over 2 states with
  // probabilities in log space.
  constexpr int kSteps = 128;
  double best[2] = {std::log2(std::max(p0, 1e-12)),
                    std::log2(std::max(p1, 1e-12))};
  for (int step = 1; step < kSteps; ++step) {
    const double next0 =
        std::max(best[0] + std::log2(std::max(t[0][0], 1e-12)),
                 best[1] + std::log2(std::max(t[1][0], 1e-12)));
    const double next1 =
        std::max(best[0] + std::log2(std::max(t[0][1], 1e-12)),
                 best[1] + std::log2(std::max(t[1][1], 1e-12)));
    best[0] = next0;
    best[1] = next1;
  }
  const double log_p_max = std::max(best[0], best[1]);
  return std::clamp(-log_p_max / kSteps, 0.0, 1.0);
}

std::size_t estimate_min_entropy_bits(util::BytesView data) {
  if (data.size() < 8) return 0;
  const double per_byte =
      std::min(mcv_min_entropy_per_byte(data),
               8.0 * markov_min_entropy_per_bit(util::BitView(data)));
  return static_cast<std::size_t>(per_byte *
                                  static_cast<double>(data.size()));
}

}  // namespace cadet::entropy
