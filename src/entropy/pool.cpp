#include "entropy/pool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace cadet::entropy {

EntropyPool::EntropyPool(std::size_t capacity_bits)
    : capacity_bits_(capacity_bits), state_((capacity_bits + 7) / 8, 0) {
  if (capacity_bits < 256) {
    throw std::invalid_argument("EntropyPool: capacity must be >= 256 bits");
  }
}

void EntropyPool::stir(util::BytesView data) {
  // Fold input into the state block-by-block: each 32-byte state block is
  // replaced by H(block || input_chunk || position). Cheap, position-
  // dependent, and guarantees every input bit touches the whole pool after
  // one extract cycle.
  std::size_t offset = 0;
  std::size_t block = (extract_counter_ + total_added_) %
                      (state_.size() / crypto::Sha256::kDigestSize);
  const std::size_t num_blocks = state_.size() / crypto::Sha256::kDigestSize;
  while (offset < data.size() || offset == 0) {
    const std::size_t take = std::min<std::size_t>(
        data.size() - offset, crypto::Sha256::kDigestSize);
    crypto::Sha256 h;
    h.update(util::BytesView(state_.data() + block * crypto::Sha256::kDigestSize,
                             crypto::Sha256::kDigestSize));
    h.update(util::BytesView(data.data() + offset, take));
    std::uint8_t pos[8];
    util::put_u64_be(pos, block);
    h.update(util::BytesView(pos, 8));
    const auto digest = h.finish();
    std::memcpy(state_.data() + block * crypto::Sha256::kDigestSize,
                digest.data(), crypto::Sha256::kDigestSize);
    offset += std::max<std::size_t>(take, 1);
    block = (block + 1) % num_blocks;
    if (take == 0) break;
  }
}

void EntropyPool::add(util::BytesView data, std::size_t entropy_bits) {
  stir(data);
  total_added_ += data.size();
  available_bits_ = std::min(capacity_bits_, available_bits_ + entropy_bits);
  publish_fill();
}

void EntropyPool::bind_metrics(obs::Registry& registry,
                               const obs::Labels& labels) {
  fill_gauge_ = &registry.gauge("cadet_pool_available_bits", labels);
  starved_counter_ = &registry.counter("cadet_pool_starved_bytes", labels);
  publish_fill();
}

util::Bytes EntropyPool::squeeze(std::size_t nbytes) {
  util::Bytes out;
  out.reserve(nbytes);
  while (out.size() < nbytes) {
    crypto::Sha256 h;
    h.update(state_);
    std::uint8_t ctr[8];
    util::put_u64_be(ctr, extract_counter_++);
    h.update(util::BytesView(ctr, 8));
    const auto digest = h.finish();
    const std::size_t take =
        std::min<std::size_t>(digest.size(), nbytes - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + take);
    // Feed the digest back so successive extracts differ and state ratchets.
    stir(digest);
  }
  total_extracted_ += out.size();
  return out;
}

util::Bytes EntropyPool::extract(std::size_t nbytes) {
  const std::size_t backed = std::min(nbytes, available_bits_ / 8);
  available_bits_ -= backed * 8;
  publish_fill();
  return squeeze(backed);
}

util::Bytes EntropyPool::extract_unchecked(std::size_t nbytes) {
  const std::size_t backed = std::min(nbytes, available_bits_ / 8);
  available_bits_ -= backed * 8;
  starved_bytes_ += nbytes - backed;
  if (starved_counter_ != nullptr) starved_counter_->inc(nbytes - backed);
  publish_fill();
  return squeeze(nbytes);
}

}  // namespace cadet::entropy
