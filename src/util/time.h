// Simulated-time representation. All protocol engines take time as a plain
// value so they run identically under the discrete-event simulator and under
// wall-clock transports.
#pragma once

#include <cstdint>

namespace cadet::util {

/// Nanoseconds since simulation start (or since epoch for live transports).
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / 1e6;
}

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9);
}

constexpr SimTime from_millis(double ms) noexcept {
  return static_cast<SimTime>(ms * 1e6);
}

}  // namespace cadet::util
