#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace cadet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
LogClock g_clock = nullptr;
void* g_clock_ctx = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_clock(LogClock clock, void* ctx) noexcept {
  g_clock = clock;
  g_clock_ctx = ctx;
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  char prefix[64];
  if (g_clock != nullptr) {
    std::snprintf(prefix, sizeof(prefix), "[%s] sim_time=%.6f ",
                  level_name(level), to_seconds(g_clock(g_clock_ctx)));
  } else {
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::snprintf(prefix, sizeof(prefix), "[%s] wall=%.6f ",
                  level_name(level), wall_s);
  }
  return prefix + msg;
}

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "%s\n", format_log_line(level, msg).c_str());
}

}  // namespace cadet::util
