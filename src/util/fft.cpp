#include "util/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cadet::util {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void fft_radix2(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& value : a) value /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    auto a = x;
    fft_radix2(a, false);
    return a;
  }

  // Bluestein: X[k] = b*[k] . (a (*) b)[k]  with chirp a[j] = x[j] w^{j^2},
  // b[j] = w^{-j^2}, w = exp(-pi i / n). The convolution runs on a
  // power-of-two grid of size >= 2n-1.
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<std::complex<double>> a(m), b(m);
  // j^2 mod 2n keeps the chirp argument bounded (exp is 2n-periodic in it).
  const double base = std::numbers::pi / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t j2 = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(j) * j) % (2 * n));
    const double angle = base * static_cast<double>(j2);
    const std::complex<double> chirp(std::cos(angle), -std::sin(angle));
    a[j] = x[j] * chirp;
    b[j] = std::conj(chirp);
    if (j != 0) b[m - j] = std::conj(chirp);
  }

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_radix2(a, true);

  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(k) * k) % (2 * n));
    const double angle = base * static_cast<double>(k2);
    const std::complex<double> chirp(std::cos(angle), -std::sin(angle));
    out[k] = a[k] * chirp;
  }
  return out;
}

}  // namespace cadet::util
