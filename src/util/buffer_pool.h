// Free-list recycling of util::Bytes buffers on the packet hot path.
//
// Every datagram used to cost two heap round trips: the wire buffer
// allocated by cadet::encode() and freed when the transport's delivery
// closure died. BufferPool closes that loop: encode() acquires its wire
// buffer from the thread-local pool, SimTransport releases the payload
// back after the handler returns, and in steady state a simulation reuses
// the same handful of buffers for millions of packets.
//
// The pool is bounded (kMaxPooled buffers, each at most kMaxBufferCapacity
// bytes) so a burst cannot pin memory, and it is per-thread: the simulator
// is single-threaded, and the UDP runner's threads each keep their own
// free list, so no locking is ever needed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace cadet::util {

class BufferPool {
 public:
  /// Most buffers kept waiting for reuse.
  static constexpr std::size_t kMaxPooled = 64;
  /// Buffers that grew beyond this are freed rather than pooled, so one
  /// jumbo payload cannot turn the pool into a memory hog.
  static constexpr std::size_t kMaxBufferCapacity = 64 * 1024;

  BufferPool() { free_.reserve(kMaxPooled); }

  /// A buffer of exactly `size` bytes (recycled when possible; contents of
  /// recycled bytes are value-initialized by resize, so acquire is
  /// deterministic either way).
  Bytes acquire(std::size_t size) {
    ++acquired_;
    if (!free_.empty()) {
      ++reused_;
      Bytes buf = std::move(free_.back());
      free_.pop_back();
      buf.resize(size);
      return buf;
    }
    return Bytes(size);
  }

  /// A pooled copy of `src`.
  Bytes copy(BytesView src) {
    Bytes buf = acquire(src.size());
    if (!src.empty()) {
      std::copy(src.begin(), src.end(), buf.begin());
    }
    return buf;
  }

  /// Hand a dead buffer's storage back for reuse. Oversized or surplus
  /// buffers are simply freed. Never allocates (the free list's capacity
  /// is reserved up front).
  void release(Bytes&& buf) noexcept {
    if (buf.capacity() == 0 || buf.capacity() > kMaxBufferCapacity ||
        free_.size() >= kMaxPooled) {
      return;  // dropped: ~Bytes frees it
    }
    buf.clear();
    free_.push_back(std::move(buf));
  }

  std::size_t pooled() const noexcept { return free_.size(); }
  /// Lifetime acquire() calls, and how many were served from the pool.
  std::uint64_t acquired() const noexcept { return acquired_; }
  std::uint64_t reused() const noexcept { return reused_; }

  /// The calling thread's pool (simulator + engines share one per thread).
  static BufferPool& local() noexcept;

 private:
  std::vector<Bytes> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace cadet::util
