// Byte-buffer helpers shared across the CADET codebase: hex codecs,
// big-endian integer packing, and constant-time comparison (the latter
// lives in util/secure.h alongside secure_wipe; re-exported here because
// every wire-codec caller already includes bytes.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/secure.h"

namespace cadet::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode bytes as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (case-insensitive). Throws std::invalid_argument on
/// malformed input (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// Big-endian packing helpers used by the wire codec.
void put_u16_be(std::uint8_t* out, std::uint16_t v) noexcept;
void put_u32_be(std::uint8_t* out, std::uint32_t v) noexcept;
void put_u64_be(std::uint8_t* out, std::uint64_t v) noexcept;
std::uint16_t get_u16_be(const std::uint8_t* in) noexcept;
std::uint32_t get_u32_be(const std::uint8_t* in) noexcept;
std::uint64_t get_u64_be(const std::uint8_t* in) noexcept;

/// Append the contents of `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// XOR `src` into `dst` (dst.size() must be >= src.size()).
void xor_into(std::span<std::uint8_t> dst, BytesView src) noexcept;

}  // namespace cadet::util
