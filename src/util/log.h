// Minimal leveled logger. Experiments run millions of simulated packet
// events, so the default level is Warn; tests and examples raise it.
#pragma once

#include <sstream>
#include <string>

#include "util/time.h"

namespace cadet::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Register a clock supplying the current simulated time; once set, log
/// lines carry a `sim_time=` prefix instead of the wall clock. Pass
/// nullptr to revert. `ctx` is handed back to `clock` on every call (it
/// typically points at the simulator).
using LogClock = SimTime (*)(void* ctx);
void set_log_clock(LogClock clock, void* ctx = nullptr) noexcept;

/// The full line log_emit writes: "[LEVEL] sim_time=1.250000 msg" with a
/// registered clock, "[LEVEL] wall=<unix seconds> msg" otherwise.
/// Exposed separately so tests can check formatting without capturing
/// stderr.
std::string format_log_line(LogLevel level, const std::string& msg);

/// Emit a message (already filtered by the macros below).
void log_emit(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace cadet::util

#define CADET_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::cadet::util::log_level())) {         \
  } else                                                      \
    ::cadet::util::detail::LogLine(level)

#define CADET_LOG_DEBUG CADET_LOG(::cadet::util::LogLevel::Debug)
#define CADET_LOG_INFO CADET_LOG(::cadet::util::LogLevel::Info)
#define CADET_LOG_WARN CADET_LOG(::cadet::util::LogLevel::Warn)
#define CADET_LOG_ERROR CADET_LOG(::cadet::util::LogLevel::Error)
