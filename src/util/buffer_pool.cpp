#include "util/buffer_pool.h"

namespace cadet::util {

BufferPool& BufferPool::local() noexcept {
  static thread_local BufferPool pool;
  return pool;
}

}  // namespace cadet::util
