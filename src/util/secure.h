// Secret-hygiene primitives: guaranteed zeroization and constant-time
// comparison. These exist because the "obvious" alternatives are wrong in
// ways the compiler will not tell you about:
//
//  * `std::memset(key, 0, n)` on a buffer the compiler can prove is dead
//    is a no-op under as-if — the key stays in freed memory. secure_wipe
//    uses volatile stores plus a compiler barrier so the writes survive.
//  * `memcmp(tag_a, tag_b, n)` exits on the first differing byte, leaking
//    the match length through timing. ct_equal's runtime depends only on
//    the input length.
//
// cadet_lint's `secret-hygiene` rule flags code that uses the raw libc
// calls on key/seed/token material and points here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cadet::util {

/// Zero `len` bytes at `ptr` in a way the optimizer cannot elide, even
/// when the buffer is about to go out of scope.
void secure_wipe(void* ptr, std::size_t len) noexcept;

/// Wipe a mutable byte span.
inline void secure_wipe(std::span<std::uint8_t> buf) noexcept {
  secure_wipe(buf.data(), buf.size());
}

/// Wipe any contiguous container of trivially-copyable elements
/// (std::array, std::vector, C arrays via std::span). The container keeps
/// its size; only the contents are zeroed.
template <typename Container>
  requires requires(Container& c) {
    c.data();
    c.size();
  }
void secure_wipe(Container& c) noexcept {
  secure_wipe(static_cast<void*>(c.data()), c.size() * sizeof(*c.data()));
}

/// Constant-time equality; returns false on length mismatch without
/// inspecting contents. Use for MAC tags, tokens, and any comparison where
/// early exit would leak how much of a secret matched.
bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept;

/// Constant-time selection: returns `a` if pick == 1, `b` if pick == 0,
/// without a data-dependent branch. `pick` must be 0 or 1.
inline std::uint8_t ct_select(std::uint8_t pick, std::uint8_t a,
                              std::uint8_t b) noexcept {
  const std::uint8_t mask = static_cast<std::uint8_t>(0 - pick);
  return static_cast<std::uint8_t>((a & mask) | (b & ~mask));
}

}  // namespace cadet::util
