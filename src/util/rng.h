// Deterministic PRNGs for simulation and workload generation.
//
// These are NOT cryptographic generators — they drive the discrete-event
// simulator, workload arrival processes, and synthetic "good/bad entropy"
// payloads so that every experiment is reproducible from a seed. The
// protocol's own randomness goes through crypto::Csprng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace cadet::util {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, 2^256-1 period. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential with the given mean.
  double exponential(double mean) noexcept;

  /// Fill a span with pseudorandom bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Convenience: n pseudorandom bytes.
  Bytes bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cadet::util
