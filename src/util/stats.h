// Statistics accumulators used by the experiment harnesses: running
// mean/variance (Welford), exact percentiles over stored samples, and a
// fixed-bin histogram for response-time distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cadet::util {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; exact quantiles by sorting on demand.
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0,1]. Requires at least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const noexcept { return values_; }

  /// "mean=…, p50=…, p95=…, min=…, max=… (n=…)" summary line.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_low(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cadet::util
