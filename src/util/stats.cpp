#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cadet::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  ensure_sorted();
  return values_.back();
}

double Samples::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::quantile on empty set");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::string Samples::summary() const {
  std::ostringstream os;
  if (values_.empty()) {
    os << "(no samples)";
    return os.str();
  }
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "mean=" << mean() << " p50=" << quantile(0.5)
     << " p95=" << quantile(0.95) << " min=" << min() << " max=" << max()
     << " (n=" << count() << ")";
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
}

void Histogram::add(double x) noexcept {
  std::ptrdiff_t idx =
      static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace cadet::util
