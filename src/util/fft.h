// Fast Fourier transforms: iterative radix-2 for power-of-two sizes and
// Bluestein's chirp-z algorithm for arbitrary sizes. The NIST spectral
// test needs an exact-n DFT (padding would change the statistic), and the
// pool snapshots it runs on are not powers of two.
#pragma once

#include <complex>
#include <vector>

namespace cadet::util {

/// In-place radix-2 FFT. a.size() must be a power of two (throws
/// std::invalid_argument otherwise). `inverse` applies the conjugate
/// transform and divides by n.
void fft_radix2(std::vector<std::complex<double>>& a, bool inverse);

/// DFT of arbitrary length via Bluestein's algorithm (O(n log n)).
/// Returns X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n).
std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& x);

}  // namespace cadet::util
