#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace cadet::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::exponential(double mean) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

void Xoshiro256::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t v = (*this)();
    for (int b = 0; b < 8; ++b) {
      out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t v = (*this)();
    for (int b = 0; i < out.size(); ++i, ++b) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

Bytes Xoshiro256::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

}  // namespace cadet::util
