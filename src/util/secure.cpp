#include "util/secure.h"

namespace cadet::util {

void secure_wipe(void* ptr, std::size_t len) noexcept {
  // Volatile stores are observable behaviour, so the optimizer must emit
  // them even if the buffer is never read again.
  auto* p = static_cast<volatile std::uint8_t*>(ptr);
  for (std::size_t i = 0; i < len; ++i) p[i] = 0;
  // Barrier: tells the compiler the memory at `ptr` escapes, blocking
  // store-elimination across the call boundary after inlining.
  asm volatile("" : : "r"(ptr) : "memory");
}

bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace cadet::util
