#include "util/bytes.h"

#include <stdexcept>

namespace cadet::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void put_u16_be(std::uint8_t* out, std::uint16_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}

void put_u32_be(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void put_u64_be(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

std::uint16_t get_u16_be(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>((in[0] << 8) | in[1]);
}

std::uint32_t get_u32_be(const std::uint8_t* in) noexcept {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

std::uint64_t get_u64_be(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | in[i];
  }
  return v;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void xor_into(std::span<std::uint8_t> dst, BytesView src) noexcept {
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] ^= src[i];
  }
}

}  // namespace cadet::util
