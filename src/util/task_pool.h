// Persistent worker pool for embarrassingly parallel index loops.
//
// The sharded testbed runs one deterministic sub-world per edge subtree and
// needs to step all of them once per time window — thousands of windows per
// run, so spawning threads per window (the cadet_sweep pattern) would cost
// more than the window body. TaskPool keeps `workers - 1` threads parked on
// a condition variable and dispatches indices {0 .. count-1} through an
// under-lock cursor; the calling thread participates as the last worker, so
// TaskPool(1) executes inline with zero threads and zero synchronization.
//
// Determinism note: the pool lives in src/util (the threaded tier) and is
// only ever handed to deterministic code as an opaque executor callback —
// which shard runs on which thread never influences simulation results,
// because shards touch disjoint state during a window and merge at a
// single-threaded barrier (see sim/merge_queue.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace cadet::util {

class TaskPool {
 public:
  using Task = std::function<void(std::size_t)>;

  /// `workers` is the total parallelism including the caller; the pool
  /// spawns workers - 1 threads (0 means 1).
  explicit TaskPool(std::size_t workers) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  std::size_t workers() const noexcept { return threads_.size() + 1; }

  /// Run task(0), task(1), ..., task(count - 1), distributed across the
  /// workers; returns once every index has completed. Not reentrant: run()
  /// must not be called from inside a task.
  void run(std::size_t count, const Task& task) {
    if (count == 0) return;
    if (threads_.empty() || count == 1) {
      for (std::size_t i = 0; i < count; ++i) task(i);
      return;
    }
    {
      MutexLock lock(mu_);
      task_ = &task;
      count_ = count;
      next_ = 0;
      active_ = threads_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    drain(task);
    MutexLock lock(mu_);
    while (active_ != 0) done_cv_.wait(mu_);
    task_ = nullptr;
  }

 private:
  /// Claim indices until the cursor is exhausted. The task pointer is read
  /// under the same lock as the cursor, so workers never see a stale task.
  void drain(const Task& task) {
    for (;;) {
      std::size_t index;
      {
        MutexLock lock(mu_);
        if (next_ >= count_) return;
        index = next_++;
      }
      task(index);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        MutexLock lock(mu_);
        while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
        if (stop_) return;
        seen = generation_;
      }
      for (;;) {
        std::size_t index;
        const Task* task;
        {
          MutexLock lock(mu_);
          if (next_ >= count_) break;
          index = next_++;
          task = task_;
        }
        (*task)(index);
      }
      {
        MutexLock lock(mu_);
        if (--active_ == 0) done_cv_.notify_one();
      }
    }
  }

  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::vector<std::thread> threads_;
  const Task* task_ CADET_GUARDED_BY(mu_) = nullptr;
  std::size_t count_ CADET_GUARDED_BY(mu_) = 0;
  std::size_t next_ CADET_GUARDED_BY(mu_) = 0;
  std::size_t active_ CADET_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ CADET_GUARDED_BY(mu_) = 0;
  bool stop_ CADET_GUARDED_BY(mu_) = false;
};

}  // namespace cadet::util
