// Bit-level view over a byte buffer, MSB-first within each byte.
// The NIST SP800-22 statistics operate on bit sequences; this adapter lets
// them run over packet payloads and pool contents without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cadet::util {

class BitView {
 public:
  BitView() = default;
  explicit BitView(std::span<const std::uint8_t> bytes,
                   std::size_t bit_count = SIZE_MAX) noexcept
      : bytes_(bytes),
        bit_count_(bit_count == SIZE_MAX ? bytes.size() * 8 : bit_count) {}

  std::size_t size() const noexcept { return bit_count_; }
  bool empty() const noexcept { return bit_count_ == 0; }

  /// Bit i, counted MSB-first from the start of the buffer. Returns 0 or 1.
  int operator[](std::size_t i) const noexcept {
    return (bytes_[i >> 3] >> (7 - (i & 7))) & 1;
  }

  /// Number of set bits in the view.
  std::size_t popcount() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < bit_count_; ++i) n += (*this)[i];
    return n;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

}  // namespace cadet::util
