// Clang thread-safety annotations for CADET's wall-clock (threaded) tiers.
//
// The deterministic tiers are single-threaded by contract (cadet_lint's
// thread-in-sim rule enforces that), so every mutex in the tree lives in
// the boundary layers: the obs health plane and the real-socket net path.
// Those mutexes are annotated so clang's -Wthread-safety analysis proves
// lock discipline at compile time — the clang CI legs build with
// -Wthread-safety -Werror, and cadet_lint's unannotated-mutex rule
// requires every mutex member to guard something via CADET_GUARDED_BY.
//
// The macros compile to clang attributes and to nothing elsewhere, so gcc
// builds see plain std::mutex semantics. Because libstdc++'s std::mutex
// and std::lock_guard carry no capability attributes, the analysis only
// tracks lock state through the annotated wrappers below: hold mutexes as
// util::Mutex members and take them with util::MutexLock.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CADET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CADET_THREAD_ANNOTATION
#define CADET_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Type is a lockable capability (put on mutex-like classes).
#define CADET_CAPABILITY(name) CADET_THREAD_ANNOTATION(capability(name))

/// RAII type that acquires on construction and releases on destruction.
#define CADET_SCOPED_CAPABILITY CADET_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding `mu`.
#define CADET_GUARDED_BY(mu) CADET_THREAD_ANNOTATION(guarded_by(mu))

/// Pointee (not the pointer) is protected by `mu`.
#define CADET_PT_GUARDED_BY(mu) CADET_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Caller must hold the listed capabilities when invoking the function.
#define CADET_REQUIRES(...) \
  CADET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define CADET_ACQUIRE(...) \
  CADET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define CADET_RELEASE(...) \
  CADET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `result`.
#define CADET_TRY_ACQUIRE(result, ...) \
  CADET_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define CADET_EXCLUDES(...) \
  CADET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to a mutex-guarded object.
#define CADET_RETURN_CAPABILITY(x) CADET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions with deliberately unanalyzable locking.
/// Every use must carry a comment explaining why the analysis is wrong.
#define CADET_NO_THREAD_SAFETY_ANALYSIS \
  CADET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cadet::util {

/// std::mutex with the capability attribute, so CADET_GUARDED_BY members
/// are actually checked. Same cost as the raw mutex — the wrapper is
/// attributes only.
class CADET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CADET_ACQUIRE() { mu_.lock(); }
  void unlock() CADET_RELEASE() { mu_.unlock(); }
  bool try_lock() CADET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent: the analysis sees the acquire in
/// the constructor and the release in the destructor.
class CADET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CADET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CADET_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace cadet::util
