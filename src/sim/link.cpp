#include "sim/link.h"

#include <cmath>

namespace cadet::sim {

util::SimTime LatencyProfile::sample(util::Xoshiro256& rng,
                                     std::size_t bytes) const {
  double delay_ns = static_cast<double>(base);
  if (jitter_sigma > 0.0) {
    delay_ns += std::exp(jitter_mu + jitter_sigma * rng.normal());
  } else if (jitter_mu > 0.0) {
    delay_ns += std::exp(jitter_mu);
  }
  delay_ns += ns_per_byte * static_cast<double>(bytes);
  return static_cast<util::SimTime>(delay_ns);
}

bool LatencyProfile::dropped(util::Xoshiro256& rng) const {
  return loss_prob > 0.0 && rng.bernoulli(loss_prob);
}

LatencyProfile testbed_lan() {
  LatencyProfile p;
  p.base = util::from_millis(0.15);
  p.jitter_mu = std::log(30e3);  // 30 us median jitter
  p.jitter_sigma = 0.4;
  p.ns_per_byte = 80.0;  // 100 Mb/s
  p.loss_prob = 0.0;
  return p;
}

LatencyProfile testbed_backbone() {
  LatencyProfile p;
  p.base = util::from_millis(0.2);
  p.jitter_mu = std::log(40e3);
  p.jitter_sigma = 0.4;
  p.ns_per_byte = 80.0;
  p.loss_prob = 0.0;
  return p;
}

LatencyProfile internet_wan() {
  LatencyProfile p;
  // Calibrated to the paper's "real world" column: the edge<->server path
  // crosses the public Internet, and the round trip it adds to a cache
  // miss widens the cached/uncached gap to ~0.3 s (Fig. 8a).
  p.base = util::from_millis(25.0);
  p.jitter_mu = std::log(45e6);  // 45 ms median extra
  p.jitter_sigma = 0.7;
  p.ns_per_byte = 100.0;
  p.loss_prob = 0.002;
  return p;
}

}  // namespace cadet::sim
