// CPU-speed model reproducing the paper's underclocked tiers (Fig. 9):
// clients at 20 MHz, edges at 200-300 MHz, servers at 600 MHz. Processing
// time for an operation is its cycle cost divided by the clock rate, so the
// same protocol logic is "slower" on a client exactly as on the testbed.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace cadet::sim {

class CpuModel {
 public:
  explicit constexpr CpuModel(double clock_hz) noexcept
      : clock_hz_(clock_hz) {}

  constexpr double clock_hz() const noexcept { return clock_hz_; }

  /// Time to execute `cycles` cycles at this clock rate.
  constexpr util::SimTime time_for_cycles(double cycles) const noexcept {
    return static_cast<util::SimTime>(cycles / clock_hz_ * 1e9);
  }

 private:
  double clock_hz_;
};

/// Paper testbed clock rates (Fig. 9; §VI-B2 reports sanity-check timing at
/// 300 MHz, which we use for the edge tier).
inline constexpr CpuModel kClientCpu{20e6};
inline constexpr CpuModel kEdgeCpu{300e6};
inline constexpr CpuModel kServerCpu{600e6};

}  // namespace cadet::sim
