// Conservative cross-shard event channel for sharded deterministic worlds.
//
// A sharded simulation partitions the topology into sub-worlds (one per
// edge subtree plus one for the server tier), each running its own
// Simulator. Client<->edge traffic stays inside a shard; edge<->server
// traffic crosses shards as BoundaryEvents. During a window each shard
// appends to its own outbox — no two shards share an outbox, so the window
// body needs no synchronization even when shards run on a thread pool. At
// the window barrier a single thread drains every outbox into one batch
// ordered by {time, seq, shard}: delivery time first, then the per-source
// emission sequence, then the source shard index. The ordering is a pure
// function of the simulation state, never of which worker ran which shard,
// which is what keeps same-seed traces byte-identical for any -j.
//
// The channel is conservative in the classic windowed-PDES sense: every
// event emitted during window k must be timestamped at or after the start
// of window k+1 (the window length is the minimum cross-shard latency).
// drain() validates that lookahead bound and the emitted/drained counters
// give callers a conservation check — nothing crosses the boundary
// unaccounted, even when fault injection is chewing on the shards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace cadet::sim {

/// One message crossing a shard boundary. POD on purpose: outboxes are
/// plain vectors and the merge sort moves 64-byte values.
struct BoundaryEvent {
  util::SimTime time = 0;   ///< delivery time in the destination shard
  std::uint64_t seq = 0;    ///< per-source-shard emission counter
  std::uint32_t src = 0;    ///< emitting shard index
  std::uint32_t dst = 0;    ///< destination shard index
  std::uint32_t kind = 0;   ///< protocol-defined discriminator
  std::uint32_t flags = 0;  ///< protocol-defined small payload
  std::uint64_t a = 0;      ///< payload word (e.g. node id)
  std::uint64_t b = 0;      ///< payload word (e.g. byte count)
  util::SimTime emit_ts = 0;  ///< emission time in the source shard
                              ///< (crossing latency = time - emit_ts)
  std::uint64_t ctx = 0;    ///< span/trace context carried across the
                            ///< boundary (0 = untraced)
};

/// Deterministic merge order: {time, seq, shard}.
inline bool boundary_before(const BoundaryEvent& x,
                            const BoundaryEvent& y) noexcept {
  if (x.time != y.time) return x.time < y.time;
  if (x.seq != y.seq) return x.seq < y.seq;
  return x.src < y.src;
}

class MergeQueue {
 public:
  explicit MergeQueue(std::size_t shards)
      : outbox_(shards), emitted_(shards, 0) {}

  std::size_t shards() const noexcept { return outbox_.size(); }

  /// Emit from shard `src`. Stamps the source index and the per-source
  /// sequence number. Safe to call concurrently from different shards (one
  /// writer per outbox); never from two threads for the same `src`.
  void emit(std::uint32_t src, BoundaryEvent event) {
    event.src = src;
    event.seq = emitted_[src]++;
    outbox_[src].push_back(event);
  }

  /// Drain every outbox into `out`, ordered by {time, seq, shard}. Called
  /// single-threaded at the window barrier. Returns false when any event
  /// violates the conservative bound `time >= not_before` — a lookahead
  /// bug; violations() counts every offending event so callers can
  /// surface the defect as a metric instead of only a boolean.
  bool drain(util::SimTime not_before, std::vector<BoundaryEvent>& out) {
    out.clear();
    std::uint64_t violations = 0;
    for (std::vector<BoundaryEvent>& box : outbox_) {
      for (const BoundaryEvent& event : box) {
        if (event.time < not_before) ++violations;
      }
      out.insert(out.end(), box.begin(), box.end());
      box.clear();
    }
    std::sort(out.begin(), out.end(), boundary_before);
    drained_ += out.size();
    violations_ += violations;
    return violations == 0;
  }

  /// Conservation counters: every emitted event must eventually be drained
  /// (emitted() == drained() once the run settles).
  std::uint64_t emitted() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t count : emitted_) total += count;
    return total;
  }
  std::uint64_t drained() const noexcept { return drained_; }

  /// Total events that have violated the conservative lookahead bound
  /// across all drains (0 on a healthy run).
  std::uint64_t violations() const noexcept { return violations_; }

  /// Events sitting in outboxes, not yet drained.
  std::size_t pending() const noexcept {
    std::size_t total = 0;
    for (const std::vector<BoundaryEvent>& box : outbox_) total += box.size();
    return total;
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t total = emitted_.capacity() * sizeof(std::uint64_t);
    for (const std::vector<BoundaryEvent>& box : outbox_) {
      total += box.capacity() * sizeof(BoundaryEvent);
    }
    return total;
  }

 private:
  std::vector<std::vector<BoundaryEvent>> outbox_;  // one per source shard
  std::vector<std::uint64_t> emitted_;  // per-source seq = emission count
  std::uint64_t drained_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace cadet::sim
