// Network-link latency model. Two calibrated profiles reproduce the paper's
// environments: the switched-LAN testbed ("no internet" boxes of Fig. 8a)
// and the real-world Internet path (right boxes of Fig. 8a), whose extra
// travel time widens the cache/no-cache response gap by ~0.3 s.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace cadet::util {
class Xoshiro256;
}

namespace cadet::sim {

struct LatencyProfile {
  /// Fixed propagation + forwarding delay.
  util::SimTime base = 0;
  /// Lognormal jitter: exp(mu + sigma*N(0,1)) nanoseconds added to base.
  double jitter_mu = 0.0;     // log of median jitter in ns
  double jitter_sigma = 0.0;  // lognormal shape
  /// Per-byte serialization cost (ns/byte).
  double ns_per_byte = 0.0;
  /// Independent loss probability per packet.
  double loss_prob = 0.0;

  /// Sample a one-way delay for a packet of `bytes` bytes.
  util::SimTime sample(util::Xoshiro256& rng, std::size_t bytes) const;

  /// Sample whether the packet is dropped.
  bool dropped(util::Xoshiro256& rng) const;
};

/// Switched LAN inside the testbed: ~0.2 ms one-way, tight jitter,
/// 100 Mb/s serialization, no loss.
LatencyProfile testbed_lan();

/// Testbed edge<->server hop (same switch fabric).
LatencyProfile testbed_backbone();

/// Real-world Internet path: ~18 ms median one-way, heavy-tailed jitter,
/// small loss probability.
LatencyProfile internet_wan();

}  // namespace cadet::sim
