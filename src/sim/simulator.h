// Discrete-event simulator used to reproduce the paper's 49-Pi testbed.
//
// Events are (time, sequence) ordered: equal-time events fire in the order
// they were scheduled, which keeps every experiment deterministic for a
// given seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/time.h"

namespace cadet::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  util::SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` after the current time (delay >= 0;
  /// negative delays clamp to 0, i.e. "as soon as possible").
  void schedule(util::SimTime delay, Callback fn);

  /// Schedule `fn` at an absolute time (clamped to now()).
  void schedule_at(util::SimTime when, Callback fn);

  /// Run until the event queue drains or simulated time would exceed
  /// `t_end`. Events exactly at t_end still run. Returns the number of
  /// events executed.
  std::size_t run_until(util::SimTime t_end);

  /// Run until the queue drains (use with care: recurring timers never
  /// drain; prefer run_until).
  std::size_t run();

  /// Execute at most one pending event; returns false if the queue is empty.
  bool step();

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed over this simulator's lifetime.
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Publish event-loop health (cadet_sim_events counter,
  /// cadet_sim_queue_depth gauge) to `registry`, which must outlive the
  /// simulator.
  void bind_metrics(obs::Registry& registry);

 private:
  struct Event {
    util::SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void publish_depth() noexcept {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<std::int64_t>(queue_.size()));
    }
  }

  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  obs::Counter* events_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace cadet::sim
