// Discrete-event simulator used to reproduce the paper's 49-Pi testbed.
//
// Events are (time, sequence) ordered: equal-time events fire in the order
// they were scheduled, which keeps every experiment deterministic for a
// given seed.
//
// Hot-path layout: the pending set is an implicit 4-ary min-heap of
// {time, seq, slot} keys (24 bytes each, so sift operations stay inside a
// couple of cache lines and never touch the callbacks), while the callbacks
// themselves live in a chunked slab of InlineFn cells recycled through a
// free list. Chunks are pointer-stable, so each closure is constructed once
// — directly in its cell by the schedule templates — and invoked in place
// by step(), with no intermediate moves. In steady state schedule/step are
// allocation-free: the heap and slab grow to the high-water mark of pending
// events and stay there, and InlineFn stores captures of up to 48 bytes —
// every closure the transports and testbed schedule — without touching the
// allocator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/inline_fn.h"
#include "util/time.h"

namespace cadet::sim {

class Simulator {
 public:
  using Callback = InlineFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Metrics are batched (kDepthSampleInterval); push the residual delta so
  /// a registry snapshot taken after the simulator dies is exact even when
  /// the driver stepped manually and never reached a run/run_until
  /// boundary. The bound registry must outlive the simulator.
  ~Simulator() { flush_metrics(); }

  /// Current simulated time.
  util::SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` after the current time (delay >= 0;
  /// negative delays clamp to 0, i.e. "as soon as possible"). The template
  /// overloads construct the closure directly in its slab cell; the Callback
  /// overloads accept a pre-built InlineFn.
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>,
                             int> = 0>
  void schedule(util::SimTime delay, F&& fn) {
    schedule_at(now_ + std::max<util::SimTime>(delay, 0),
                std::forward<F>(fn));
  }
  void schedule(util::SimTime delay, Callback fn);

  /// Schedule `fn` at an absolute time (clamped to now()).
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>,
                             int> = 0>
  void schedule_at(util::SimTime when, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    try {
      cell(slot).emplace(std::forward<F>(fn));
    } catch (...) {
      free_slots_.push_back(slot);
      throw;
    }
    push_entry(when, slot);
  }
  void schedule_at(util::SimTime when, Callback fn);

  /// Pre-size the event heap and callback slab for `events` simultaneously
  /// pending events (topology builders and benchmarks call this so the
  /// steady state never reallocates).
  void reserve(std::size_t events);

  /// Run until the event queue drains or simulated time would exceed
  /// `t_end`. Events exactly at t_end still run. Returns the number of
  /// events executed.
  std::size_t run_until(util::SimTime t_end);

  /// Run until the queue drains (use with care: recurring timers never
  /// drain; prefer run_until).
  std::size_t run();

  /// Execute at most one pending event; returns false if the queue is
  /// empty. Defined inline: run loops (and the benchmarks) sit directly on
  /// this, and inlining the pop bookkeeping into the caller is measurable.
  bool step() {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);

    now_ = top.time;
    if ((++events_executed_ & (kDepthSampleInterval - 1)) == 0) {
      flush_metrics();
    }
    // Invoke + destroy in place with one indirect call: slab chunks never
    // move, so the cell stays valid even if the callback schedules (and
    // thereby grows the slab). The slot is recycled only after consume()
    // returns — while the callback runs its cell must not be reusable, or
    // a reentrant schedule could construct a new closure over the
    // executing one.
    cell(top.slot).consume();
    free_slots_.push_back(top.slot);
    return true;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Approximate heap footprint of the pending-event machinery: the heap
  /// keys, the callback slab, and the free list. The scale harness divides
  /// this by the client count for its bytes/client accounting.
  std::size_t memory_bytes() const noexcept {
    return heap_.capacity() * sizeof(HeapEntry) +
           slab_.size() * (kSlabChunkSize * sizeof(Callback) +
                           sizeof(std::unique_ptr<Callback[]>)) +
           free_slots_.capacity() * sizeof(std::uint32_t);
  }

  /// Total events executed over this simulator's lifetime.
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Publish event-loop health (cadet_sim_events counter,
  /// cadet_sim_queue_depth gauge) to `registry`, which must outlive the
  /// simulator. Both are refreshed every kDepthSampleInterval executed
  /// events and at run/run_until boundaries, not per event — the per-event
  /// atomic increment and gauge store were measurable on the hot path.
  /// Mid-run reads may lag by up to kDepthSampleInterval - 1 events; totals
  /// are exact whenever run/run_until returns.
  void bind_metrics(obs::Registry& registry);

  /// Push the events executed since the last flush to the bound counter and
  /// refresh the depth gauge. Called automatically at run/run_until
  /// boundaries and on destruction; drivers that sit directly on step()
  /// (benchmarks, manual loops) call it before reading the registry.
  void flush_metrics() noexcept {
    if (events_counter_ != nullptr) {
      events_counter_->inc(events_executed_ - events_published_);
      events_published_ = events_executed_;
      publish_depth();
    }
  }

  /// How often (in executed events) the metrics are refreshed. Power of two
  /// so the sample check compiles to a mask.
  static constexpr std::uint64_t kDepthSampleInterval = 256;
  static_assert((kDepthSampleInterval & (kDepthSampleInterval - 1)) == 0,
                "sample interval must be a power of two");

 private:
  /// Heap key: ordering fields plus the slab slot of the callback. Kept
  /// separate from the callbacks — and squeezed to 16 bytes — so sifts
  /// move small PODs and a 4-child group reads 64 bytes, not 96: the
  /// heap outgrows L1 at testbed rates and the sift is a chain of
  /// dependent loads, so bytes-per-level is what pops pay for.
  struct HeapEntry {
    util::SimTime time;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    // Wrapping 32-bit compare: FIFO among equal-time events holds provided
    // no two of them were scheduled more than 2^31 schedules apart (far
    // beyond any testbed run), and wraparound behaves identically across
    // same-seed runs, so determinism is unaffected either way.
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  /// The slab is chunked (deque-style) so cells never move when it grows:
  /// step() relies on that to invoke callbacks in place, and a callback may
  /// grow the slab by scheduling.
  static constexpr std::size_t kSlabChunkShift = 9;
  static constexpr std::size_t kSlabChunkSize = std::size_t{1}
                                                << kSlabChunkShift;

  Callback& cell(std::uint32_t slot) noexcept {
    return slab_[slot >> kSlabChunkShift][slot & (kSlabChunkSize - 1)];
  }

  /// Pop a recycled slab cell or extend the slab by one slot (appending a
  /// chunk when the current one fills).
  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint32_t slot = next_slot_++;
    if ((slot >> kSlabChunkShift) == slab_.size()) {
      slab_.push_back(std::make_unique<Callback[]>(kSlabChunkSize));
    }
    return slot;
  }

  /// Push the heap key for an already-filled slab cell.
  void push_entry(util::SimTime when, std::uint32_t slot);

  void publish_depth() noexcept {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<std::int64_t>(heap_.size()));
    }
  }

  util::SimTime now_ = 0;
  std::uint32_t next_seq_ = 0;  // wraps; see before()
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_published_ = 0;
  std::vector<HeapEntry> heap_;  // implicit 4-ary min-heap
  /// Callback cells indexed by slot via cell(); pointer-stable chunks.
  std::vector<std::unique_ptr<Callback[]>> slab_;
  std::uint32_t next_slot_ = 0;            // first never-used slot
  std::vector<std::uint32_t> free_slots_;  // recycled slab cells
  obs::Counter* events_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace cadet::sim
