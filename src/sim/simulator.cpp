#include "sim/simulator.h"

#include <algorithm>

namespace cadet::sim {

void Simulator::schedule(util::SimTime delay, Callback fn) {
  schedule_at(now_ + std::max<util::SimTime>(delay, 0), std::move(fn));
}

void Simulator::schedule_at(util::SimTime when, Callback fn) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
  publish_depth();
}

void Simulator::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "sim"}};
  events_counter_ = &registry.counter("cadet_sim_events", labels);
  depth_gauge_ = &registry.gauge("cadet_sim_queue_depth", labels);
  events_counter_->inc(events_executed_);
  publish_depth();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but copy the small members and move
  // the callback through a temporary instead for clarity.
  Event ev = queue_.top();
  queue_.pop();
  publish_depth();
  now_ = ev.time;
  ++events_executed_;
  if (events_counter_ != nullptr) events_counter_->inc();
  ev.fn();
  return true;
}

std::size_t Simulator::run_until(util::SimTime t_end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    step();
    ++executed;
  }
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace cadet::sim
