#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "obs/profile.h"

namespace cadet::sim {

// 4-ary layout: children of i are 4i+1 .. 4i+4, parent is (i-1)/4. The
// wider fan-out roughly halves the tree depth versus a binary heap, and the
// four children share one or two cache lines, so pops do fewer dependent
// cache misses — the dominant cost at testbed event rates.

void Simulator::sift_up(std::size_t i) noexcept {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::sift_down(std::size_t i) noexcept {
  const HeapEntry entry = heap_[i];
  HeapEntry* const h = heap_.data();
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best;
    if (first + 4 <= n) [[likely]] {
      // Which child wins is inherently unpredictable, so pick it with a
      // bool-to-offset tournament instead of compare-and-branch — the
      // mispredictions here dominated pop cost in profiling.
      const std::size_t b01 =
          first + static_cast<std::size_t>(before(h[first + 1], h[first]));
      const std::size_t b23 =
          first + 2 +
          static_cast<std::size_t>(before(h[first + 3], h[first + 2]));
      // Start pulling in both possible next child groups before the final
      // compare resolves: the sift is a chain of dependent loads, and the
      // heap outgrows L1 at testbed event rates, so overlapping the next
      // level's latency is worth the one wasted prefetch.
      __builtin_prefetch(&h[(b01 << 2) + 1]);
      __builtin_prefetch(&h[(b23 << 2) + 1]);
      best = before(h[b23], h[b01]) ? b23 : b01;
    } else {
      best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (before(h[c], h[best])) best = c;
      }
    }
    if (!before(h[best], entry)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = entry;
}

void Simulator::schedule(util::SimTime delay, Callback fn) {
  schedule_at(now_ + std::max<util::SimTime>(delay, 0), std::move(fn));
}

void Simulator::schedule_at(util::SimTime when, Callback fn) {
  const std::uint32_t slot = acquire_slot();
  cell(slot) = std::move(fn);
  push_entry(when, slot);
}

void Simulator::push_entry(util::SimTime when, std::uint32_t slot) {
  heap_.push_back(HeapEntry{std::max(when, now_), next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

void Simulator::reserve(std::size_t events) {
  heap_.reserve(events);
  free_slots_.reserve(events);
  while ((slab_.size() << kSlabChunkShift) < events) {
    slab_.push_back(std::make_unique<Callback[]>(kSlabChunkSize));
  }
}

void Simulator::bind_metrics(obs::Registry& registry) {
  const obs::Labels labels{{"tier", "sim"}};
  events_counter_ = &registry.counter("cadet_sim_events", labels);
  depth_gauge_ = &registry.gauge("cadet_sim_queue_depth", labels);
  events_counter_->inc(events_executed_);
  events_published_ = events_executed_;
  publish_depth();
}

std::size_t Simulator::run_until(util::SimTime t_end) {
  // One scope per run, never per step: profiling must not perturb the <5%
  // observability-overhead budget on the event hot path.
  CADET_PROFILE_SCOPE("sim.run");
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().time <= t_end) {
    step();
    ++executed;
  }
  if (now_ < t_end) now_ = t_end;
  flush_metrics();
  return executed;
}

std::size_t Simulator::run() {
  CADET_PROFILE_SCOPE("sim.run");
  std::size_t executed = 0;
  while (step()) ++executed;
  flush_metrics();
  return executed;
}

}  // namespace cadet::sim
