#include "sim/simulator.h"

#include <algorithm>

namespace cadet::sim {

void Simulator::schedule(util::SimTime delay, Callback fn) {
  schedule_at(now_ + std::max<util::SimTime>(delay, 0), std::move(fn));
}

void Simulator::schedule_at(util::SimTime when, Callback fn) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but copy the small members and move
  // the callback through a temporary instead for clarity.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t Simulator::run_until(util::SimTime t_end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    step();
    ++executed;
  }
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace cadet::sim
