// Small-buffer-optimized, move-only callable for the simulator hot path.
//
// Simulator::schedule used to type-erase its callback through
// std::function<void()>, which heap-allocates for any capture list larger
// than the implementation's tiny SSO buffer (~16 bytes on libstdc++) — one
// malloc/free pair per scheduled event. InlineFn stores callables of up to
// kInlineSize bytes directly inside the object, so the transports' delivery
// closures (this + endpoints + a util::Bytes payload = 48 bytes) schedule
// without touching the allocator; larger callables transparently fall back
// to the heap. Move-only: the simulator never copies callbacks (the old
// copy-out-of-priority_queue::top duplicated the callback and its captured
// state on every event).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cadet::sim {

class InlineFn {
 public:
  /// Captures up to this many bytes live inside the InlineFn itself.
  static constexpr std::size_t kInlineSize = 48;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// Invoke the held callable. Precondition: bool(*this).
  void operator()() { vtable_->invoke(storage_); }

  /// Invoke the held callable and destroy it, leaving this empty — one
  /// indirect call where invoke-then-reset would pay two. The callable is
  /// destroyed even if it throws. Precondition: bool(*this).
  void consume() {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    vt->invoke_destroy(storage_);
  }

  /// Destroy any held callable and construct `fn` in place (same storage
  /// rules as the converting constructor). The simulator's slab recycles
  /// cells through this, so scheduling constructs each closure exactly once
  /// — directly in its cell — instead of relocating a temporary InlineFn.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::kVTable;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(fn));
      vtable_ = &HeapOps<D>::kVTable;
    }
  }

  /// Whether a callable of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into dst's storage, then destroy src's occupant.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Invoke then destroy (destroys on throw too).
    void (*invoke_destroy)(void* storage);
  };

  template <typename D>
  struct InlineOps {
    static D* self(void* s) noexcept { return static_cast<D*>(s); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* s) noexcept { self(s)->~D(); }
    static void invoke_destroy(void* s) {
      struct Guard {
        D* d;
        ~Guard() { d->~D(); }
      } guard{self(s)};
      (*guard.d)();
    }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy,
                                    &invoke_destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* s) noexcept { return *static_cast<D**>(s); }
    static void invoke(void* s) { (*slot(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      *static_cast<D**>(dst) = slot(src);
    }
    static void destroy(void* s) noexcept { delete slot(s); }
    static void invoke_destroy(void* s) {
      struct Guard {
        D* d;
        ~Guard() { delete d; }
      } guard{slot(s)};
      (*guard.d)();
    }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy,
                                    &invoke_destroy};
  };

  void move_from(InlineFn& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace cadet::sim
