#include "nist/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cadet::nist {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion of P(a, x): converges quickly for x < a + 1.
double igam_series(double a, double x) {
  if (x == 0.0) return 0.0;
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction of Q(a, x) (modified Lentz): converges for x >= a + 1.
double igamc_cf(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double igam(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igam: require a > 0 and x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return igam_series(a, x);
  return 1.0 - igamc_cf(a, x);
}

double igamc(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igamc: require a > 0 and x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - igam_series(a, x);
  return igamc_cf(a, x);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace cadet::nist
