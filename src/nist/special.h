// Special functions needed by the SP800-22 p-value computations:
// regularized incomplete gamma (upper), and the standard normal CDF.
#pragma once

namespace cadet::nist {

/// Regularized upper incomplete gamma Q(a, x) = Γ(a,x)/Γ(a).
/// Domain: a > 0, x >= 0. This is NIST's `igamc`.
double igamc(double a, double x);

/// Regularized lower incomplete gamma P(a, x) = 1 - Q(a, x).
double igam(double a, double x);

/// Standard normal CDF Φ(x).
double normal_cdf(double x);

}  // namespace cadet::nist
