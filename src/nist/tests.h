// The subset of NIST SP800-22 statistical tests CADET uses (paper §IV).
//
// Sanity checks (edge/server ingress) use: Frequency, Runs, Approximate
// Entropy, Cumulative Sums (forward and reverse), plus a history-comparison
// test. Quality checks on the server pool add Block Frequency and Longest
// Run of Ones. Each function returns a TestResult with the test statistic,
// p-value, and the standard alpha = 0.01 pass verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitview.h"

namespace cadet::nist {

struct TestResult {
  std::string name;
  double statistic = 0.0;
  double p_value = 0.0;
  bool pass = false;  // p >= 0.01 per SP800-22
};

constexpr double kAlpha = 0.01;

/// 2.1 Frequency (monobit). Requires n >= 1 (recommended n >= 100).
TestResult frequency_test(const util::BitView& bits);

/// 2.2 Block frequency with block size M. Requires n >= M.
TestResult block_frequency_test(const util::BitView& bits, std::size_t m);

/// 2.3 Runs. Requires n >= 2.
TestResult runs_test(const util::BitView& bits);

/// 2.4 Longest run of ones in a block. Requires n >= 128; chooses
/// M in {8, 128, 10000} from n per the SP800-22 table.
TestResult longest_run_test(const util::BitView& bits);

/// 2.12 Approximate entropy with block length m (m+1 must satisfy
/// 2^(m+1) <= n). The paper's sanity checks use small payloads, so the
/// default m = 2 keeps it valid from 8 bits upward.
TestResult approximate_entropy_test(const util::BitView& bits,
                                    std::size_t m = 2);

enum class CusumMode { Forward, Reverse };

/// 2.13 Cumulative sums, forward or reverse.
TestResult cusum_test(const util::BitView& bits, CusumMode mode);

/// 2.11 Serial test with block length m (requires 2^m <= n and m >= 2).
/// Produces two p-values (for the first and second generalized serial
/// statistics); both must pass.
struct SerialResult {
  TestResult p1;
  TestResult p2;
};
SerialResult serial_test(const util::BitView& bits, std::size_t m);

/// 2.6 Discrete Fourier Transform (spectral) test. Requires n >= 2
/// (recommended n >= 1000). Detects periodic features the run-based tests
/// miss.
TestResult spectral_test(const util::BitView& bits);

/// 2.5 Binary matrix rank test over disjoint M x Q matrices (default the
/// standard 32 x 32). Requires at least one full matrix, i.e.
/// n >= rows * cols; SP800-22 recommends 38 matrices or more.
TestResult rank_test(const util::BitView& bits, std::size_t rows = 32,
                     std::size_t cols = 32);

/// GF(2) rank of an M x Q bit matrix given as row bitmasks (Q <= 64).
std::size_t gf2_rank(std::vector<std::uint64_t> rows, std::size_t cols);

/// Asymptotic probability that a random M x Q GF(2) matrix has rank r.
double gf2_rank_probability(std::size_t r, std::size_t rows,
                            std::size_t cols);

/// 2.10 Linear complexity test: Berlekamp-Massey LFSR length over
/// `block_len`-bit blocks (SP800-22 recommends 500 <= M <= 5000 and at
/// least 200 blocks; smaller inputs are accepted for unit testing).
TestResult linear_complexity_test(const util::BitView& bits,
                                  std::size_t block_len = 500);

/// Berlekamp-Massey: length of the shortest LFSR generating `bits`.
std::size_t berlekamp_massey(const std::vector<int>& bits);

/// 2.7 Non-overlapping template matching: occurrences of `templ` (given as
/// 0/1 ints, length 2..16) counted with a non-overlapping scan in each of
/// `num_blocks` blocks. Default template is the SP800-22 example
/// B = 000000001. Requires n >= num_blocks * (template length + 1).
TestResult non_overlapping_template_test(
    const util::BitView& bits, const std::vector<int>& templ = {0, 0, 0, 0,
                                                                0, 0, 0, 0,
                                                                1},
    std::size_t num_blocks = 8);

/// 2.8 Overlapping template matching for the all-ones template of length 9
/// with 1032-bit blocks (the standardized parameterization whose category
/// probabilities SP800-22 tabulates). Requires n >= 1032.
TestResult overlapping_template_test(const util::BitView& bits);

/// 2.9 Maurer's universal statistical test. Picks the block length L from
/// n per the SP800-22 table (L in [2, 16]); requires n >= 2000 bits.
TestResult universal_test(const util::BitView& bits);

/// 2.14 Random excursions: one chi-square result per walk state
/// x in {-4..-1, +1..+4}. Requires at least 500 zero-crossing cycles
/// (throws std::invalid_argument otherwise; SP800-22 marks the test
/// inapplicable), which in practice needs inputs around 10^6 bits.
std::vector<TestResult> random_excursions_test(const util::BitView& bits);

/// 2.15 Random excursions variant: one result per state x in
/// {-9..-1, +1..+9} (18 results). Same applicability rule as 2.14.
std::vector<TestResult> random_excursions_variant_test(
    const util::BitView& bits);

/// CADET's sixth sanity test (paper §IV-A: "one test that compares current
/// data against past data"). Measures the bitwise match fraction between the
/// current payload and the previous payload from the same device; both
/// near-identical data (replay/stuck source) and near-complementary data
/// fail. Views may differ in length; the shorter prefix is compared.
/// An empty history passes trivially.
TestResult history_compare_test(const util::BitView& current,
                                const util::BitView& previous);

}  // namespace cadet::nist
