#include "nist/tests.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "nist/special.h"
#include "util/fft.h"

namespace cadet::nist {

namespace {

TestResult make_result(std::string name, double statistic, double p) {
  TestResult r;
  r.name = std::move(name);
  r.statistic = statistic;
  r.p_value = p;
  r.pass = p >= kAlpha;
  return r;
}

}  // namespace

TestResult frequency_test(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n == 0) throw std::invalid_argument("frequency_test: empty input");
  // S_n = sum of +-1; ones count k gives S_n = 2k - n.
  const double s_n =
      2.0 * static_cast<double>(bits.popcount()) - static_cast<double>(n);
  const double s_obs = std::fabs(s_n) / std::sqrt(static_cast<double>(n));
  const double p = std::erfc(s_obs / std::sqrt(2.0));
  return make_result("Frequency", s_obs, p);
}

TestResult block_frequency_test(const util::BitView& bits, std::size_t m) {
  const std::size_t n = bits.size();
  if (m == 0 || n < m) {
    throw std::invalid_argument("block_frequency_test: need n >= M >= 1");
  }
  const std::size_t num_blocks = n / m;
  double chi2 = 0.0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < m; ++i) ones += bits[b * m + i];
    const double pi = static_cast<double>(ones) / static_cast<double>(m);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(m);
  const double p = igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0);
  return make_result("BlockFrequency", chi2, p);
}

TestResult runs_test(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n < 2) throw std::invalid_argument("runs_test: need n >= 2");
  const double pi =
      static_cast<double>(bits.popcount()) / static_cast<double>(n);
  // Frequency precondition: if the sequence already fails monobit badly,
  // SP800-22 sets p = 0 without running the test.
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) {
    return make_result("Runs", 0.0, 0.0);
  }
  std::size_t v_obs = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (bits[i] != bits[i - 1]) ++v_obs;
  }
  const double dn = static_cast<double>(n);
  const double num = std::fabs(static_cast<double>(v_obs) - 2.0 * dn * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * dn) * pi * (1.0 - pi);
  const double p = std::erfc(num / den);
  return make_result("Runs", static_cast<double>(v_obs), p);
}

TestResult longest_run_test(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n < 128) throw std::invalid_argument("longest_run_test: need n >= 128");

  std::size_t m;           // block size
  std::size_t k;           // number of categories - 1
  std::vector<double> pi;  // category probabilities
  std::vector<std::size_t> v_bounds;  // category upper bounds (lowest..)
  if (n < 6272) {
    m = 8;
    k = 3;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
    v_bounds = {1, 2, 3};  // <=1, 2, 3, >=4
  } else if (n < 750000) {
    m = 128;
    k = 5;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    v_bounds = {4, 5, 6, 7, 8};  // <=4 .. >=9
  } else {
    m = 10000;
    k = 6;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    v_bounds = {10, 11, 12, 13, 14, 15};  // <=10 .. >=16
  }

  const std::size_t num_blocks = n / m;
  std::vector<std::size_t> v(k + 1, 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t longest = 0;
    std::size_t run = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (bits[b * m + i]) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    std::size_t cat = k;  // default: top (open) category
    for (std::size_t c = 0; c < v_bounds.size(); ++c) {
      if (longest <= v_bounds[c]) {
        cat = c;
        break;
      }
    }
    ++v[cat];
  }

  const double dn_blocks = static_cast<double>(num_blocks);
  double chi2 = 0.0;
  for (std::size_t c = 0; c <= k; ++c) {
    const double expected = dn_blocks * pi[c];
    const double diff = static_cast<double>(v[c]) - expected;
    chi2 += diff * diff / expected;
  }
  const double p = igamc(static_cast<double>(k) / 2.0, chi2 / 2.0);
  return make_result("LongestRunOfOnes", chi2, p);
}

TestResult approximate_entropy_test(const util::BitView& bits,
                                    std::size_t m) {
  const std::size_t n = bits.size();
  if (n < (std::size_t{1} << (m + 1))) {
    throw std::invalid_argument(
        "approximate_entropy_test: need n >= 2^(m+1)");
  }

  // phi(block_len): sum over observed patterns of C_i * ln(C_i), with
  // cyclic wraparound per SP800-22 2.12.
  const auto phi = [&](std::size_t block_len) -> double {
    if (block_len == 0) return 0.0;
    const std::size_t num_patterns = std::size_t{1} << block_len;
    std::vector<std::size_t> counts(num_patterns, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t pattern = 0;
      for (std::size_t j = 0; j < block_len; ++j) {
        pattern = (pattern << 1) | static_cast<std::size_t>(bits[(i + j) % n]);
      }
      ++counts[pattern];
    }
    double sum = 0.0;
    for (std::size_t c : counts) {
      if (c > 0) {
        const double ci = static_cast<double>(c) / static_cast<double>(n);
        sum += ci * std::log(ci);
      }
    }
    return sum;
  };

  const double ap_en = phi(m) - phi(m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
  const double p =
      igamc(static_cast<double>(std::size_t{1} << (m - 1)), chi2 / 2.0);
  return make_result("ApproximateEntropy", chi2, p);
}

TestResult cusum_test(const util::BitView& bits, CusumMode mode) {
  const std::size_t n = bits.size();
  if (n == 0) throw std::invalid_argument("cusum_test: empty input");

  long long sum = 0;
  long long z = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t i = (mode == CusumMode::Forward) ? idx : n - 1 - idx;
    sum += bits[i] ? 1 : -1;
    z = std::max(z, std::llabs(sum));
  }
  if (z == 0) {
    // Degenerate (impossible for nonempty +-1 walk except n=0, but guard).
    return make_result(mode == CusumMode::Forward ? "CusumForward"
                                                  : "CusumReverse",
                       0.0, 0.0);
  }

  const double dn = static_cast<double>(n);
  const double dz = static_cast<double>(z);
  const double sqrt_n = std::sqrt(dn);

  double p = 1.0;
  {
    const long long k_lo = (-(static_cast<long long>(n) / z) + 1) / 4;
    const long long k_hi = (static_cast<long long>(n) / z - 1) / 4;
    double term = 0.0;
    for (long long k = k_lo; k <= k_hi; ++k) {
      const double dk = static_cast<double>(k);
      term += normal_cdf((4.0 * dk + 1.0) * dz / sqrt_n) -
              normal_cdf((4.0 * dk - 1.0) * dz / sqrt_n);
    }
    p -= term;
  }
  {
    const long long k_lo = (-(static_cast<long long>(n) / z) - 3) / 4;
    const long long k_hi = (static_cast<long long>(n) / z - 1) / 4;
    double term = 0.0;
    for (long long k = k_lo; k <= k_hi; ++k) {
      const double dk = static_cast<double>(k);
      term += normal_cdf((4.0 * dk + 3.0) * dz / sqrt_n) -
              normal_cdf((4.0 * dk + 1.0) * dz / sqrt_n);
    }
    p += term;
  }
  p = std::clamp(p, 0.0, 1.0);
  return make_result(
      mode == CusumMode::Forward ? "CusumForward" : "CusumReverse", dz, p);
}

namespace {

/// psi-squared statistic over overlapping `block_len`-bit patterns with
/// cyclic wraparound (SP800-22 2.11). psi2(0) = 0 by definition.
double psi_squared(const util::BitView& bits, std::size_t block_len) {
  if (block_len == 0) return 0.0;
  const std::size_t n = bits.size();
  const std::size_t num_patterns = std::size_t{1} << block_len;
  std::vector<std::size_t> counts(num_patterns, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pattern = 0;
    for (std::size_t j = 0; j < block_len; ++j) {
      pattern = (pattern << 1) | static_cast<std::size_t>(bits[(i + j) % n]);
    }
    ++counts[pattern];
  }
  double sum = 0.0;
  for (const std::size_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * static_cast<double>(num_patterns) / static_cast<double>(n) -
         static_cast<double>(n);
}

}  // namespace

SerialResult serial_test(const util::BitView& bits, std::size_t m) {
  const std::size_t n = bits.size();
  if (m < 2 || n < (std::size_t{1} << m)) {
    throw std::invalid_argument("serial_test: need m >= 2 and n >= 2^m");
  }
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double del1 = psi_m - psi_m1;
  const double del2 = psi_m - 2.0 * psi_m1 + psi_m2;

  SerialResult out;
  out.p1 = make_result("Serial-1", del1,
                       igamc(static_cast<double>(std::size_t{1} << (m - 1)) /
                                 2.0,
                             del1 / 2.0));
  out.p2 = make_result("Serial-2", del2,
                       igamc(static_cast<double>(std::size_t{1} << (m - 2)) /
                                 2.0,
                             del2 / 2.0));
  return out;
}

TestResult spectral_test(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n < 2) throw std::invalid_argument("spectral_test: need n >= 2");

  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::complex<double>(bits[i] ? 1.0 : -1.0, 0.0);
  }
  const auto spectrum = util::dft(x);

  // Count peaks below the 95 % threshold over the first n/2 frequencies.
  const double dn = static_cast<double>(n);
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * dn);
  const std::size_t half = n / 2;
  std::size_t below = 0;
  for (std::size_t k = 0; k < half; ++k) {
    if (std::abs(spectrum[k]) < threshold) ++below;
  }
  const double n0 = 0.95 * static_cast<double>(half);
  const double n1 = static_cast<double>(below);
  const double d = (n1 - n0) / std::sqrt(dn * 0.95 * 0.05 / 4.0);
  const double p = std::erfc(std::fabs(d) / std::sqrt(2.0));
  return make_result("Spectral", d, p);
}

std::size_t gf2_rank(std::vector<std::uint64_t> rows, std::size_t cols) {
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows.size(); ++col) {
    const std::uint64_t mask = std::uint64_t{1} << (cols - 1 - col);
    // Find a pivot row at or below `rank`.
    std::size_t pivot = rank;
    while (pivot < rows.size() && !(rows[pivot] & mask)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r] & mask)) rows[r] ^= rows[rank];
    }
    ++rank;
  }
  return rank;
}

double gf2_rank_probability(std::size_t r, std::size_t rows,
                            std::size_t cols) {
  // SP800-22 section 3.5: P_r = 2^{r(Q+M-r)-MQ} *
  //   prod_{i=0}^{r-1} (1-2^{i-Q})(1-2^{i-M}) / (1-2^{i-r}).
  if (r > std::min(rows, cols)) return 0.0;
  const double m = static_cast<double>(rows);
  const double q = static_cast<double>(cols);
  const double dr = static_cast<double>(r);
  double log2_p = dr * (q + m - dr) - m * q;
  double product = 1.0;
  for (std::size_t i = 0; i < r; ++i) {
    const double di = static_cast<double>(i);
    product *= (1.0 - std::pow(2.0, di - q)) *
               (1.0 - std::pow(2.0, di - m)) /
               (1.0 - std::pow(2.0, di - dr));
  }
  return std::pow(2.0, log2_p) * product;
}

TestResult rank_test(const util::BitView& bits, std::size_t rows,
                     std::size_t cols) {
  const std::size_t n = bits.size();
  if (rows == 0 || cols == 0 || cols > 64 || n < rows * cols) {
    throw std::invalid_argument("rank_test: need n >= rows*cols, cols <= 64");
  }
  const std::size_t bits_per_matrix = rows * cols;
  const std::size_t num_matrices = n / bits_per_matrix;

  const std::size_t full = std::min(rows, cols);
  std::size_t count_full = 0, count_minus1 = 0, count_rest = 0;
  for (std::size_t mtx = 0; mtx < num_matrices; ++mtx) {
    std::vector<std::uint64_t> matrix(rows, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      std::uint64_t row = 0;
      for (std::size_t c = 0; c < cols; ++c) {
        row = (row << 1) |
              static_cast<std::uint64_t>(
                  bits[mtx * bits_per_matrix + r * cols + c]);
      }
      matrix[r] = row;
    }
    const std::size_t rank = gf2_rank(std::move(matrix), cols);
    if (rank == full) {
      ++count_full;
    } else if (rank + 1 == full) {
      ++count_minus1;
    } else {
      ++count_rest;
    }
  }

  const double p_full = gf2_rank_probability(full, rows, cols);
  const double p_minus1 = gf2_rank_probability(full - 1, rows, cols);
  const double p_rest = 1.0 - p_full - p_minus1;
  const double dn = static_cast<double>(num_matrices);
  double chi2 = 0.0;
  const double expected[3] = {dn * p_full, dn * p_minus1, dn * p_rest};
  const double observed[3] = {static_cast<double>(count_full),
                              static_cast<double>(count_minus1),
                              static_cast<double>(count_rest)};
  for (int i = 0; i < 3; ++i) {
    chi2 += (observed[i] - expected[i]) * (observed[i] - expected[i]) /
            expected[i];
  }
  // 2 degrees of freedom: P = e^{-chi2/2}.
  return make_result("Rank", chi2, std::exp(-chi2 / 2.0));
}

std::size_t berlekamp_massey(const std::vector<int>& s) {
  const std::size_t n = s.size();
  std::vector<int> c(n + 1, 0), b(n + 1, 0);
  c[0] = b[0] = 1;
  std::size_t l = 0;
  std::size_t m = 0;  // steps since last length change, minus offset
  std::ptrdiff_t last_change = -1;
  for (std::size_t i = 0; i < n; ++i) {
    // Discrepancy d = s[i] + sum_{j=1}^{l} c[j] s[i-j]  (mod 2).
    int d = s[i];
    for (std::size_t j = 1; j <= l; ++j) {
      d ^= c[j] & s[i - j];
    }
    if (d == 0) continue;
    const std::vector<int> t = c;
    const std::size_t shift = i - static_cast<std::size_t>(last_change);
    for (std::size_t j = 0; j + shift <= n; ++j) {
      c[j + shift] ^= b[j];
    }
    if (2 * l <= i) {
      l = i + 1 - l;
      last_change = static_cast<std::ptrdiff_t>(i);
      b = t;
    }
  }
  (void)m;
  return l;
}

TestResult linear_complexity_test(const util::BitView& bits,
                                  std::size_t block_len) {
  const std::size_t n = bits.size();
  if (block_len < 4 || n < block_len) {
    throw std::invalid_argument(
        "linear_complexity_test: need n >= block_len >= 4");
  }
  const std::size_t num_blocks = n / block_len;
  const double dm = static_cast<double>(block_len);
  const double sign_m = (block_len % 2 == 0) ? 1.0 : -1.0;
  // mu = M/2 + (9 + (-1)^{M+1})/36 - (M/3 + 2/9)/2^M, with
  // (-1)^{M+1} = -sign_m.
  const double mu = dm / 2.0 + (9.0 - sign_m) / 36.0 -
                    (dm / 3.0 + 2.0 / 9.0) / std::pow(2.0, dm);

  // SP800-22 2.10 category probabilities for T.
  static constexpr double kPi[7] = {0.010417, 0.03125, 0.125, 0.5,
                                    0.25,     0.0625,  0.020833};
  std::size_t counts[7] = {0};
  std::vector<int> block(block_len);
  for (std::size_t blk = 0; blk < num_blocks; ++blk) {
    for (std::size_t i = 0; i < block_len; ++i) {
      block[i] = bits[blk * block_len + i];
    }
    const double l = static_cast<double>(berlekamp_massey(block));
    // T = (-1)^M (L - mu) + 2/9 per SP800-22 2.10.
    const double t = sign_m * (l - mu) + 2.0 / 9.0;
    int category;
    if (t <= -2.5) {
      category = 0;
    } else if (t <= -1.5) {
      category = 1;
    } else if (t <= -0.5) {
      category = 2;
    } else if (t <= 0.5) {
      category = 3;
    } else if (t <= 1.5) {
      category = 4;
    } else if (t <= 2.5) {
      category = 5;
    } else {
      category = 6;
    }
    ++counts[category];
  }

  const double dn = static_cast<double>(num_blocks);
  double chi2 = 0.0;
  for (int i = 0; i < 7; ++i) {
    const double expected = dn * kPi[i];
    chi2 += (static_cast<double>(counts[i]) - expected) *
            (static_cast<double>(counts[i]) - expected) / expected;
  }
  return make_result("LinearComplexity", chi2, igamc(3.0, chi2 / 2.0));
}

TestResult non_overlapping_template_test(const util::BitView& bits,
                                         const std::vector<int>& templ,
                                         std::size_t num_blocks) {
  const std::size_t n = bits.size();
  const std::size_t m = templ.size();
  if (m < 2 || m > 16 || num_blocks == 0 || n < num_blocks * (m + 1)) {
    throw std::invalid_argument(
        "non_overlapping_template_test: bad template/block sizes");
  }
  const std::size_t block_len = n / num_blocks;

  const double dm = static_cast<double>(m);
  const double dblock = static_cast<double>(block_len);
  const double mu = (dblock - dm + 1.0) / std::pow(2.0, dm);
  const double var =
      dblock * (1.0 / std::pow(2.0, dm) -
                (2.0 * dm - 1.0) / std::pow(2.0, 2.0 * dm));

  double chi2 = 0.0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t count = 0;
    std::size_t i = 0;
    while (i + m <= block_len) {
      bool match = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (bits[b * block_len + i + j] != templ[j]) {
          match = false;
          break;
        }
      }
      if (match) {
        ++count;
        i += m;  // non-overlapping scan restarts after a hit
      } else {
        ++i;
      }
    }
    const double diff = static_cast<double>(count) - mu;
    chi2 += diff * diff / var;
  }
  const double p = igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0);
  return make_result("NonOverlappingTemplate", chi2, p);
}

TestResult overlapping_template_test(const util::BitView& bits) {
  // Standard parameterization: template = 9 ones, M = 1032, K = 5, with
  // the SP800-22 category probabilities.
  constexpr std::size_t kTemplateLen = 9;
  constexpr std::size_t kBlockLen = 1032;
  static constexpr double kPi[6] = {0.364091, 0.185659, 0.139381,
                                    0.100571, 0.070432, 0.139865};
  const std::size_t n = bits.size();
  if (n < kBlockLen) {
    throw std::invalid_argument("overlapping_template_test: need n >= 1032");
  }
  const std::size_t num_blocks = n / kBlockLen;

  std::size_t counts[6] = {0};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i + kTemplateLen <= kBlockLen; ++i) {
      bool match = true;
      for (std::size_t j = 0; j < kTemplateLen; ++j) {
        if (!bits[b * kBlockLen + i + j]) {
          match = false;
          break;
        }
      }
      if (match) ++hits;  // overlapping scan advances by one
    }
    ++counts[std::min<std::size_t>(hits, 5)];
  }

  const double dn = static_cast<double>(num_blocks);
  double chi2 = 0.0;
  for (int c = 0; c < 6; ++c) {
    const double expected = dn * kPi[c];
    chi2 += (static_cast<double>(counts[c]) - expected) *
            (static_cast<double>(counts[c]) - expected) / expected;
  }
  return make_result("OverlappingTemplate", chi2, igamc(2.5, chi2 / 2.0));
}

TestResult universal_test(const util::BitView& bits) {
  const std::size_t n = bits.size();
  if (n < 2000) {
    throw std::invalid_argument("universal_test: need n >= 2000");
  }
  // Expected value / variance per block length L (SP800-22 table 2.9.8).
  static constexpr double kExpected[17] = {
      0, 0.7326495, 1.5374383, 2.4016068, 3.3112247, 4.2534266, 5.2177052,
      6.1962507, 7.1836656, 8.1764248, 9.1723243, 10.170032, 11.168765,
      12.168070, 13.167693, 14.167488, 15.167379};
  static constexpr double kVariance[17] = {
      0, 0.690, 1.338, 1.901, 2.358, 2.705, 2.954, 3.125, 3.238,
      3.311, 3.356, 3.384, 3.401, 3.410, 3.416, 3.419, 3.421};

  // Largest valid L: the official breakpoints start at L=6 (n >= 387840);
  // below that we extend downward with the same Q = 10*2^L, K ~ 1000*2^L
  // sizing rule so mid-sized pool snapshots remain testable.
  std::size_t l = 2;
  static constexpr std::size_t kBreaks[12] = {
      0,      0,      2000,    20480,   64640,    161600,
      387840, 904960, 2068480, 4654080, 10342400, 22753280};
  for (std::size_t candidate = 2; candidate <= 11; ++candidate) {
    if (n >= kBreaks[candidate]) l = candidate;
  }
  const std::size_t num_blocks = n / l;
  const std::size_t q = 10 * (std::size_t{1} << l);  // init blocks
  if (num_blocks <= q) {
    throw std::invalid_argument("universal_test: input too short for L");
  }
  const std::size_t k = num_blocks - q;

  std::vector<std::size_t> last_seen(std::size_t{1} << l, 0);
  auto block_value = [&](std::size_t index) {
    std::size_t value = 0;
    for (std::size_t j = 0; j < l; ++j) {
      value = (value << 1) | static_cast<std::size_t>(bits[index * l + j]);
    }
    return value;
  };
  for (std::size_t i = 0; i < q; ++i) {
    last_seen[block_value(i)] = i + 1;
  }
  double sum = 0.0;
  for (std::size_t i = q; i < num_blocks; ++i) {
    const std::size_t value = block_value(i);
    sum += std::log2(static_cast<double>(i + 1 - last_seen[value]));
    last_seen[value] = i + 1;
  }
  const double fn = sum / static_cast<double>(k);

  const double dl = static_cast<double>(l);
  const double c = 0.7 - 0.8 / dl +
                   (4.0 + 32.0 / dl) *
                       std::pow(static_cast<double>(k), -3.0 / dl) / 15.0;
  const double sigma = c * std::sqrt(kVariance[l] / static_cast<double>(k));
  const double p =
      std::erfc(std::fabs(fn - kExpected[l]) / (std::sqrt(2.0) * sigma));
  return make_result("Universal", fn, p);
}

namespace {

/// Zero-crossing cycles of the +-1 random walk: returns per-cycle visit
/// counts for states -9..+9 (indexed x+9), plus the cycle count J.
struct ExcursionData {
  std::vector<std::array<std::size_t, 19>> cycles;
};

ExcursionData walk_cycles(const util::BitView& bits) {
  ExcursionData out;
  std::array<std::size_t, 19> current{};
  long long s = 0;
  bool any = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    s += bits[i] ? 1 : -1;
    if (s == 0) {
      out.cycles.push_back(current);
      current = {};
      any = false;
    } else if (s >= -9 && s <= 9) {
      ++current[static_cast<std::size_t>(s + 9)];
      any = true;
    } else {
      any = true;
    }
  }
  if (any) out.cycles.push_back(current);  // final unfinished cycle
  return out;
}

}  // namespace

std::vector<TestResult> random_excursions_test(const util::BitView& bits) {
  const ExcursionData data = walk_cycles(bits);
  const std::size_t j = data.cycles.size();
  if (j < 500) {
    throw std::invalid_argument(
        "random_excursions_test: fewer than 500 cycles (test inapplicable)");
  }

  std::vector<TestResult> out;
  for (const int x : {-4, -3, -2, -1, 1, 2, 3, 4}) {
    // Category probabilities pi_k(x) per SP800-22 3.14.
    const double ax = std::fabs(static_cast<double>(x));
    const double p_leave = 1.0 / (2.0 * ax);
    double pi[6];
    pi[0] = 1.0 - p_leave;
    for (int k = 1; k <= 4; ++k) {
      pi[k] = (1.0 / (4.0 * ax * ax)) * std::pow(1.0 - p_leave, k - 1);
    }
    pi[5] = p_leave * std::pow(1.0 - p_leave, 4);

    std::size_t counts[6] = {0};
    for (const auto& cycle : data.cycles) {
      const std::size_t visits = cycle[static_cast<std::size_t>(x + 9)];
      ++counts[std::min<std::size_t>(visits, 5)];
    }
    double chi2 = 0.0;
    for (int k = 0; k < 6; ++k) {
      const double expected = static_cast<double>(j) * pi[k];
      chi2 += (static_cast<double>(counts[k]) - expected) *
              (static_cast<double>(counts[k]) - expected) / expected;
    }
    out.push_back(make_result(
        "RandomExcursions(x=" + std::to_string(x) + ")", chi2,
        igamc(2.5, chi2 / 2.0)));
  }
  return out;
}

std::vector<TestResult> random_excursions_variant_test(
    const util::BitView& bits) {
  const ExcursionData data = walk_cycles(bits);
  const std::size_t j = data.cycles.size();
  if (j < 500) {
    throw std::invalid_argument(
        "random_excursions_variant_test: fewer than 500 cycles");
  }

  std::vector<TestResult> out;
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    std::size_t total_visits = 0;
    for (const auto& cycle : data.cycles) {
      total_visits += cycle[static_cast<std::size_t>(x + 9)];
    }
    const double dj = static_cast<double>(j);
    const double ax = std::fabs(static_cast<double>(x));
    const double denom = std::sqrt(2.0 * dj * (4.0 * ax - 2.0));
    const double p =
        std::erfc(std::fabs(static_cast<double>(total_visits) - dj) / denom);
    out.push_back(make_result(
        "RandomExcursionsVariant(x=" + std::to_string(x) + ")",
        static_cast<double>(total_visits), p));
  }
  return out;
}

TestResult history_compare_test(const util::BitView& current,
                                const util::BitView& previous) {
  if (previous.empty() || current.empty()) {
    // No history yet: trivially passes.
    return make_result("HistoryCompare", 0.5, 1.0);
  }
  const std::size_t n = std::min(current.size(), previous.size());
  std::size_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    matches += (current[i] == previous[i]) ? 1 : 0;
  }
  const double frac = static_cast<double>(matches) / static_cast<double>(n);
  // Under independence, matches ~ Binomial(n, 1/2): two-sided normal test.
  const double zscore = (frac - 0.5) * 2.0 * std::sqrt(static_cast<double>(n));
  const double p = std::erfc(std::fabs(zscore) / std::sqrt(2.0));
  auto r = make_result("HistoryCompare", frac, p);
  return r;
}

}  // namespace cadet::nist
