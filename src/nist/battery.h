// Test batteries, mirroring the paper's two verification points:
//
//  * SanityBattery — run at the edge/server packet processors on every
//    upload payload: Frequency, Runs, Approximate Entropy, CumSum(F),
//    CumSum(R), and the history-comparison test (6 checks; paper §IV-A).
//  * QualityBattery — run periodically on server pool contents: the five
//    NIST sanity tests plus Block Frequency and Longest Run of Ones
//    (paper §IV-C and Table III's columns).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nist/tests.h"
#include "util/bytes.h"

namespace cadet::nist {

struct BatteryResult {
  std::vector<TestResult> results;

  int passed() const noexcept {
    int n = 0;
    for (const auto& r : results) n += r.pass ? 1 : 0;
    return n;
  }
  int total() const noexcept { return static_cast<int>(results.size()); }
  bool all_passed() const noexcept { return passed() == total(); }
};

class SanityBattery {
 public:
  static constexpr int kNumChecks = 6;

  /// Run the 6 sanity checks on `payload`, comparing against `previous`
  /// (the device's last accepted payload; empty if none).
  BatteryResult run(util::BytesView payload, util::BytesView previous) const;
};

class QualityBattery {
 public:
  static constexpr int kNumChecks = 7;
  /// With `extended`: + Serial (2 statistics) + Spectral +
  /// NonOverlappingTemplate, and for inputs of 50 000 bits (the paper's
  /// pool snapshot) + Rank + LinearComplexity + OverlappingTemplate +
  /// Universal.
  static constexpr int kNumChecksExtended = 15;

  /// Run the quality battery over `pool_bits` bits of `pool_data` (whole
  /// buffer if pool_bits is 0). Order matches paper Table III: Freq,
  /// B.Freq, CS(F), CS(R), Runs, LROO, AE. With `extended` set, the
  /// Serial (two statistics) and Spectral tests are appended — the paper
  /// notes that "depending on the power of the central server, more tests
  /// can be included".
  BatteryResult run(util::BytesView pool_data, std::size_t pool_bits = 0) const;

  /// Block size for the block-frequency test (SP800-22 suggests M >= 20,
  /// n/M < 100; 128 works for the 50 000-bit pool snapshots).
  std::size_t block_size = 128;
  /// Block length for approximate entropy on large inputs.
  std::size_t apen_m = 10;
  /// Block length for the serial test (extended battery).
  std::size_t serial_m = 5;
  bool extended = false;
};

/// Multi-run assessment per SP800-22 §4.2: collect each test's p-values
/// across many runs, then judge the generator by (a) the proportion of
/// runs passing at alpha and (b) the uniformity of the p-value
/// distribution (chi-square over ten bins, passing at 0.0001).
class MultiRunAssessment {
 public:
  /// Record one battery run (tests are keyed by position; run batteries
  /// with a consistent shape).
  void add_run(const BatteryResult& result);

  struct TestAssessment {
    std::string name;
    double pass_proportion = 0.0;
    double uniformity_p = 0.0;
    bool proportion_ok = false;   // within the binomial confidence band
    bool uniformity_ok = false;   // >= 1e-4
  };

  std::size_t runs() const noexcept { return runs_; }

  /// Per-test verdicts; empty until at least one run was added.
  std::vector<TestAssessment> assess() const;

  /// Minimum acceptable pass proportion for `runs` at `alpha`:
  /// (1-alpha) - 3*sqrt(alpha(1-alpha)/runs), per SP800-22 §4.2.1.
  static double min_proportion(std::size_t runs, double alpha = kAlpha);

  /// Uniformity meta p-value of a p-value sample (ten-bin chi-square).
  static double uniformity_p_value(const std::vector<double>& p_values);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> per_test_p_;
  std::vector<std::size_t> per_test_passes_;
  std::size_t runs_ = 0;
};

}  // namespace cadet::nist
