#include "nist/battery.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "nist/special.h"

namespace cadet::nist {

BatteryResult SanityBattery::run(util::BytesView payload,
                                 util::BytesView previous) const {
  const util::BitView bits(payload);
  const util::BitView prev_bits(previous);
  BatteryResult out;
  out.results.reserve(kNumChecks);
  out.results.push_back(frequency_test(bits));
  out.results.push_back(runs_test(bits));
  // ApEn block length adapts down for tiny payloads (4-byte uploads in
  // Fig. 10 are only 32 bits): need 2^(m+1) <= n.
  std::size_t m = 2;
  while ((std::size_t{1} << (m + 1)) > bits.size() && m > 1) --m;
  out.results.push_back(approximate_entropy_test(bits, m));
  out.results.push_back(cusum_test(bits, CusumMode::Forward));
  out.results.push_back(cusum_test(bits, CusumMode::Reverse));
  out.results.push_back(history_compare_test(bits, prev_bits));
  return out;
}

BatteryResult QualityBattery::run(util::BytesView pool_data,
                                  std::size_t pool_bits) const {
  const std::size_t nbits =
      pool_bits == 0 ? pool_data.size() * 8
                     : std::min(pool_bits, pool_data.size() * 8);
  const util::BitView bits(pool_data, nbits);
  BatteryResult out;
  out.results.reserve(kNumChecks);
  out.results.push_back(frequency_test(bits));
  out.results.push_back(block_frequency_test(bits, block_size));
  out.results.push_back(cusum_test(bits, CusumMode::Forward));
  out.results.push_back(cusum_test(bits, CusumMode::Reverse));
  out.results.push_back(runs_test(bits));
  out.results.push_back(longest_run_test(bits));
  // SP800-22 validity bound for ApEn: m < log2(n) - 5; shrink the block
  // length for inputs smaller than the configured m expects.
  std::size_t m = apen_m;
  while (m > 2 && (std::size_t{1} << (m + 6)) > nbits) --m;
  out.results.push_back(approximate_entropy_test(bits, m));
  if (extended) {
    std::size_t sm = serial_m;
    while (sm > 2 && (std::size_t{1} << (sm + 2)) > nbits) --sm;
    const auto serial = serial_test(bits, sm);
    out.results.push_back(serial.p1);
    out.results.push_back(serial.p2);
    out.results.push_back(spectral_test(bits));
    // Rank and linear complexity need large inputs for their asymptotic
    // category probabilities to hold; include them when the pool snapshot
    // is big enough (SP800-22 guidance: >= 38 matrices / >= 50 blocks).
    if (nbits >= 38 * 32 * 32) {
      out.results.push_back(rank_test(bits));
    }
    if (nbits >= 50 * 500) {
      out.results.push_back(linear_complexity_test(bits, 500));
    }
    if (nbits >= 8 * 128) {
      out.results.push_back(non_overlapping_template_test(bits));
    }
    if (nbits >= 10 * 1032) {
      out.results.push_back(overlapping_template_test(bits));
    }
    if (nbits >= 20480) {
      out.results.push_back(universal_test(bits));
    }
  }
  return out;
}

void MultiRunAssessment::add_run(const BatteryResult& result) {
  if (runs_ == 0) {
    for (const auto& r : result.results) names_.push_back(r.name);
    per_test_p_.resize(names_.size());
    per_test_passes_.assign(names_.size(), 0);
  }
  if (result.results.size() != names_.size()) {
    throw std::invalid_argument(
        "MultiRunAssessment: inconsistent battery shape");
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    per_test_p_[i].push_back(result.results[i].p_value);
    if (result.results[i].pass) ++per_test_passes_[i];
  }
  ++runs_;
}

double MultiRunAssessment::min_proportion(std::size_t runs, double alpha) {
  if (runs == 0) return 0.0;
  const double p = 1.0 - alpha;
  return p - 3.0 * std::sqrt(p * alpha / static_cast<double>(runs));
}

double MultiRunAssessment::uniformity_p_value(
    const std::vector<double>& p_values) {
  if (p_values.empty()) return 0.0;
  constexpr int kBins = 10;
  std::array<int, kBins> counts{};
  for (const double p : p_values) {
    int bin = static_cast<int>(p * kBins);
    bin = std::clamp(bin, 0, kBins - 1);
    ++counts[bin];
  }
  const double expected =
      static_cast<double>(p_values.size()) / static_cast<double>(kBins);
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  return igamc((kBins - 1) / 2.0, chi2 / 2.0);
}

std::vector<MultiRunAssessment::TestAssessment> MultiRunAssessment::assess()
    const {
  std::vector<TestAssessment> out;
  const double bound = min_proportion(runs_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    TestAssessment a;
    a.name = names_[i];
    a.pass_proportion = runs_ ? static_cast<double>(per_test_passes_[i]) /
                                    static_cast<double>(runs_)
                              : 0.0;
    a.uniformity_p = uniformity_p_value(per_test_p_[i]);
    a.proportion_ok = a.pass_proportion >= bound;
    a.uniformity_ok = a.uniformity_p >= 1e-4;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace cadet::nist
