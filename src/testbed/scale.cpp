#include "testbed/scale.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace cadet::testbed {
namespace {

// Latency model. The client<->edge wire is the testbed LAN; the
// edge<->server boundary rides a metro backbone. The window length equals
// the boundary's MINIMUM latency — that is the whole conservative
// synchronization argument: an event emitted inside window [t, t+W) is
// delivered at emit_time + W + jitter >= t + W, i.e. never inside the
// window that emitted it.
constexpr util::SimTime kLanBaseNs = 200 * util::kMicrosecond;
constexpr util::SimTime kLanJitterNs = 100 * util::kMicrosecond;
constexpr util::SimTime kBoundaryBaseNs = 8 * util::kMillisecond;
constexpr util::SimTime kBoundaryJitterNs = 2 * util::kMillisecond;

// Client retry chain: kMaxScaleRetries retransmissions, then the CSPRNG
// fallback has long since taken over and the slot expires.
constexpr util::SimTime kRequestTimeoutNs = 1'500 * util::kMillisecond;
constexpr std::uint8_t kMaxScaleRetries = 2;

// Heavy-user scans sweep each edge's population with the robust
// median + MAD threshold every couple of seconds (the per-request lazy
// decay keeps packet processing O(1); the scan is the amortized sweep).
constexpr util::SimTime kScanPeriodNs = 2 * util::kSecond;
constexpr util::SimTime kSourcePeriodNs = 500 * util::kMillisecond;

// Penalty points per processed upload: failing the sanity battery costs
// +6 (kMaxPenalty after ~6 strikes), a clean upload redeems -1 — the same
// shape as PenaltyScheme over the full engines.
constexpr float kBadUploadPoints = 6.0F;
constexpr float kGoodUploadPoints = -1.0F;

// Event-kind tags folded into the per-shard trace checksums.
enum : std::uint64_t {
  kFoldRequest = 1,
  kFoldFulfilled = 2,
  kFoldFallback = 3,
  kFoldExpired = 4,
  kFoldHeavyDeny = 5,
  kFoldCacheMiss = 6,
  kFoldUpload = 7,
  kFoldUploadBad = 8,
  kFoldRefillReq = 9,
  kFoldRefillData = 10,
  kFoldScan = 11,
  kFoldServerGrant = 12,
  kFoldServerUpload = 13,
  kFoldBoundary = 14,
};

inline void fold(std::uint64_t& cs, std::uint64_t x) noexcept {
  cs = (cs ^ x) * 0x100000001b3ULL;
}

inline void fold_event(std::uint64_t& cs, std::uint64_t kind,
                       std::uint64_t node, util::SimTime time,
                       std::uint64_t extra) noexcept {
  fold(cs, kind);
  fold(cs, node);
  fold(cs, static_cast<std::uint64_t>(time));
  fold(cs, extra);
}

inline std::uint64_t float_bits(float value) noexcept {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Trace-id construction for the scale spans. The top two bits partition
// the id space by span kind so ids never collide across kinds:
//   10 request span   (gid << 16 | pending id)
//   01 refill span    (edge shard << 32 | per-edge counter)
//   11 upload forward (edge shard << 32 | per-edge counter)
inline std::uint64_t request_trace(std::uint32_t gid,
                                   std::uint16_t id) noexcept {
  return (std::uint64_t{1} << 63) | (std::uint64_t{gid} << 16) | id;
}
inline std::uint64_t refill_trace(std::uint32_t shard,
                                  std::uint64_t n) noexcept {
  return (std::uint64_t{1} << 62) | (std::uint64_t{shard} << 32) | n;
}
inline std::uint64_t forward_trace(std::uint32_t shard,
                                   std::uint64_t n) noexcept {
  return (std::uint64_t{3} << 62) | (std::uint64_t{shard} << 32) | n;
}

/// Build one scale trace event; callers append payload attrs (two slots
/// stay free — ShardObs::emit stamps {shard, seq} into the other two).
inline obs::TraceEvent scale_event(util::SimTime ts, const char* name,
                                   const char* tier, std::uint64_t node,
                                   char phase, std::uint64_t trace,
                                   std::uint64_t span,
                                   std::uint64_t parent) noexcept {
  obs::TraceEvent event;
  event.ts = ts;
  event.name = name;
  event.tier = tier;
  event.node = node;
  event.phase = phase;
  event.trace = trace;
  event.span = span;
  event.parent = parent;
  return event;
}

inline void add_attr(obs::TraceEvent& event, const char* key,
                     double value) noexcept {
  if (event.num_attrs < event.attrs.size()) {
    event.attrs[event.num_attrs++] = {key, value};
  }
}

void add_stats(ScaleStats& into, const ScaleStats& from) noexcept {
  into.requests_sent += from.requests_sent;
  into.local_serves += from.local_serves;
  into.retried += from.retried;
  into.fulfilled += from.fulfilled;
  into.fallback += from.fallback;
  into.expired += from.expired;
  into.stale_replies += from.stale_replies;
  into.heavy_denied += from.heavy_denied;
  into.cache_misses += from.cache_misses;
  into.bytes_delivered += from.bytes_delivered;
  into.uploads_sent += from.uploads_sent;
  into.uploads_accepted += from.uploads_accepted;
  into.uploads_rejected += from.uploads_rejected;
  into.blacklist_drops += from.blacklist_drops;
  into.blacklisted_clients += from.blacklisted_clients;
  into.wire_dropped_requests += from.wire_dropped_requests;
  into.wire_dropped_replies += from.wire_dropped_replies;
  into.wire_dropped_uploads += from.wire_dropped_uploads;
  into.crash_dropped_requests += from.crash_dropped_requests;
  into.crash_dropped_uploads += from.crash_dropped_uploads;
  into.crash_dropped_refills += from.crash_dropped_refills;
  into.refills_requested += from.refills_requested;
  into.refill_reissues += from.refill_reissues;
  into.refills_completed += from.refills_completed;
  into.upload_forwards += from.upload_forwards;
  into.upload_forward_bytes += from.upload_forward_bytes;
  into.server_grants += from.server_grants;
  into.server_grant_bytes += from.server_grant_bytes;
  into.server_source_bytes += from.server_source_bytes;
  into.heavy_scan_flags += from.heavy_scan_flags;
}

}  // namespace

ScaleWorld::ScaleWorld(const ScaleConfig& config)
    : config_(config),
      num_clients_(config.num_clients),
      window_(kBoundaryBaseNs),
      horizon_(util::from_seconds(config.duration_s)),
      merge_((config.num_clients + config.clients_per_edge - 1) /
                 std::max<std::size_t>(config.clients_per_edge, 1) +
             1),
      plane_((config.num_clients + config.clients_per_edge - 1) /
             std::max<std::size_t>(config.clients_per_edge, 1)) {
  if (config_.num_clients == 0 || config_.clients_per_edge == 0) {
    throw std::invalid_argument("ScaleWorld: need clients and an edge size");
  }
  if (config_.duration_s <= 0.0 || config_.request_rate_hz <= 0.0) {
    throw std::invalid_argument("ScaleWorld: need a duration and a rate");
  }
  const std::size_t num_edges =
      (num_clients_ + config_.clients_per_edge - 1) / config_.clients_per_edge;

  // Auto-size the server source to ~125 % of the population's steady wire
  // demand (each tick either drains the pool locally or asks the edge for
  // 2x, so the long-run wire demand is rate * request_bits per client).
  source_rate_ = config_.source_rate_bytes_per_s > 0.0
                     ? config_.source_rate_bytes_per_s
                     : static_cast<double>(num_clients_) *
                           config_.request_rate_hz *
                           (config_.request_bits / 8.0) * 1.25;
  server_.rng = util::Xoshiro256(config_.seed ^ 0x5eedULL);
  server_.pool_bytes = static_cast<std::int64_t>(source_rate_ * 2.0);
  server_.sim.reserve(64);
  server_.sim.schedule_at(kSourcePeriodNs, [this] { server_source_tick(); });

  shards_.reserve(num_edges);
  for (std::size_t k = 0; k < num_edges; ++k) {
    auto shard = std::make_unique<EdgeShard>();
    shard->index = static_cast<std::uint32_t>(k);
    const std::size_t first = k * config_.clients_per_edge;
    shard->clients = static_cast<std::uint32_t>(
        std::min(config_.clients_per_edge, num_clients_ - first));
    ClientEngine::Config engine_config;
    // Same seed-mixing shape as the per-node World builders so shards stay
    // decorrelated without sharing any generator state.
    engine_config.seed = config_.seed * 40503ULL + 7 * k + 3;
    engine_config.first_id = static_cast<std::uint32_t>(1000 + first);
    engine_config.count = shard->clients;
    shard->engine = std::make_unique<ClientEngine>(engine_config);
    shard->rng = util::Xoshiro256(config_.seed ^ (0x9e3779b9ULL * (k + 1)));
    shard->cache_capacity_bits =
        static_cast<std::int64_t>(shard->clients) *
        static_cast<std::int64_t>(kClientBufferBits);
    shard->cache_bits = static_cast<std::int64_t>(
        static_cast<double>(shard->cache_capacity_bits) *
        std::min(std::max(config_.initial_cache_fill, 0.0), 1.0));
    for (const ScaleCrashWindow& crash : config_.crashes) {
      if (crash.edge == shard->index) shard->crashes.push_back(crash);
    }
    // Steady state holds roughly two pending events per client (the next
    // request tick plus in-flight timeout/upload machinery).
    shard->sim.reserve(2 * shard->clients + 64);

    ClientEngine& engine = *shard->engine;
    const std::uint32_t s = shard->index;
    for (std::uint32_t i = 0; i < shard->clients; ++i) {
      const double role = engine.uniform01(i);
      if (role < config_.flooder_fraction) {
        engine.set_flag(i, ClientEngine::kFlooder);
      } else if (role < config_.flooder_fraction + config_.producer_fraction) {
        engine.set_flag(i, ClientEngine::kProducer);
        if (engine.uniform01(i) < config_.bad_uploader_fraction) {
          engine.set_flag(i, ClientEngine::kBadUploader);
        }
      }
      const double request_mean =
          engine.has(i, ClientEngine::kFlooder)
              ? 1.0 / config_.flooder_rate_hz
              : 1.0 / config_.request_rate_hz;
      const util::SimTime first_tick =
          util::from_seconds(engine.next_exp(i, request_mean));
      if (first_tick <= horizon_) {
        shard->sim.schedule_at(first_tick,
                               [this, s, i] { request_tick(s, i); });
      }
      if (engine.has(i, ClientEngine::kProducer) &&
          config_.upload_rate_hz > 0.0) {
        const util::SimTime first_upload = util::from_seconds(
            engine.next_exp(i, 1.0 / config_.upload_rate_hz));
        if (first_upload <= horizon_) {
          shard->sim.schedule_at(first_upload,
                                 [this, s, i] { upload_tick(s, i); });
        }
      }
    }
    shard->sim.schedule_at(kScanPeriodNs, [this, s] { edge_scan(s); });
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t ScaleWorld::run(const Executor& executor) {
  std::vector<sim::BoundaryEvent> batch;
  const std::function<void(std::size_t)> task = [this](std::size_t s) {
    step_shard(s);
  };
  for (;;) {
    window_end_ += window_;
    if (executor) {
      executor(num_shards(), task);
    } else {
      for (std::size_t s = 0; s < num_shards(); ++s) step_shard(s);
    }
    // Single-threaded barrier: merge in {time, seq, shard} order and
    // inject into the destination shards for the next window. A drain
    // reporting a lookahead violation is a protocol bug — it is counted
    // (merge_.violations(), surfaced as a metric and a non-zero tool
    // exit) but the events still inject so conservation holds and the
    // run stays inspectable.
    merge_.drain(window_end_, batch);
    plane_.record_batch(batch.size());
    for (const sim::BoundaryEvent& event : batch) inject(event);
    boundary_injected_ += batch.size();
    // Fold the per-stream obs buffers up to the merged watermark: every
    // stream has now completed the window, so all events below the
    // watermark exist and the fold order is final.
    plane_.fold_window(tracer_, window_end_);
    if (window_hook_) {
      WindowReport report;
      report.watermark = window_end_;
      report.batch = batch.size();
      report.events = events_executed();
      report.lookahead_violations = merge_.violations();
      window_hook_(report);
    }
    if (window_end_ > horizon_ && batch.empty() && idle()) break;
  }
  // Belt and braces: a healthy run has nothing left (every held event's
  // delivery kept its shard busy until a later barrier folded it).
  plane_.fold_all(tracer_);
  return events_executed();
}

void ScaleWorld::step_shard(std::size_t s) {
  // Events inside [window_start, window_end) — run_until is inclusive, so
  // stop one tick short of the boundary.
  if (s < shards_.size()) {
    shards_[s]->sim.run_until(window_end_ - 1);
  } else {
    server_.sim.run_until(window_end_ - 1);
  }
}

void ScaleWorld::inject(const sim::BoundaryEvent& event) {
  fold_event(boundary_checksum_, kFoldBoundary,
             (std::uint64_t{event.src} << 32) | event.dst, event.time,
             (event.seq << 8) | event.kind);
  fold(boundary_checksum_, event.a);
  fold(boundary_checksum_, event.b);
  plane_.record_crossing(util::to_seconds(event.time - event.emit_ts));
  if (plane_.tracing()) {
    // The crossing event is timestamped at DELIVERY time — possibly up to
    // two windows ahead — so the watermark-gated fold holds it until
    // every stream has advanced past it.
    const char* name = event.kind == kRefillReq    ? "cross_refill_req"
                       : event.kind == kRefillData ? "cross_refill_data"
                                                   : "cross_upload";
    obs::TraceEvent cross = scale_event(event.time, name, "net", event.dst,
                                        0, event.ctx, 0, 0);
    add_attr(cross, "src", static_cast<double>(event.src));
    add_attr(cross, "latency_s",
             util::to_seconds(event.time - event.emit_ts));
    plane_.boundary().emit(cross);
  }
  const std::uint64_t ctx = event.ctx;
  switch (event.kind) {
    case kRefillReq: {
      const std::uint32_t edge = static_cast<std::uint32_t>(event.a);
      const std::uint64_t bytes = event.b;
      server_.sim.schedule_at(event.time, [this, edge, bytes, ctx] {
        server_refill(edge, bytes, ctx);
      });
      break;
    }
    case kUploadFwd: {
      const std::uint64_t bytes = event.b;
      server_.sim.schedule_at(
          event.time, [this, bytes, ctx] { server_upload(bytes, ctx); });
      break;
    }
    case kRefillData: {
      const std::uint32_t s = event.dst;
      const std::uint64_t bytes = event.b;
      shards_[s]->sim.schedule_at(event.time, [this, s, bytes, ctx] {
        edge_refill(s, bytes, ctx);
      });
      break;
    }
    default:
      throw std::logic_error("ScaleWorld: unknown boundary event kind");
  }
}

bool ScaleWorld::idle() const noexcept {
  if (!server_.sim.empty()) return false;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    if (!shard->sim.empty()) return false;
  }
  return true;
}

// ----------------------------------------------------------- client side

void ScaleWorld::request_tick(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  const util::SimTime now = shard.sim.now();
  const bool flooder = engine.has(i, ClientEngine::kFlooder);
  // Chain the next arrival first so whatever this tick does cannot stall
  // the process.
  const double mean = flooder ? 1.0 / config_.flooder_rate_hz
                              : 1.0 / config_.request_rate_hz;
  const util::SimTime next =
      now + util::from_seconds(engine.next_exp(i, mean));
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s, i] { request_tick(s, i); });
  }
  if (!flooder && engine.pool_consume(i, config_.request_bits)) {
    ++shard.stats.local_serves;
    return;
  }
  // One in-flight slot per client: while a request rides its retry chain,
  // further ticks lean on the fallback path implicitly (flooders included,
  // which caps a flooder at one outstanding request like a real socket).
  if (engine.request_pending(i)) return;
  const std::uint16_t wire_bits =
      static_cast<std::uint16_t>(2 * config_.request_bits);
  const std::uint16_t id = engine.issue_request(i, wire_bits, now);
  ++shard.stats.requests_sent;
  fold_event(shard.checksum, kFoldRequest, engine.global_id(i), now, id);
  if (plane_.tracing()) {
    const std::uint64_t trace = request_trace(engine.global_id(i), id);
    obs::TraceEvent event = scale_event(now, "request", "client",
                                        engine.global_id(i), 'B', trace,
                                        trace, 0);
    add_attr(event, "bits", static_cast<double>(wire_bits));
    plane_.edge(s).emit(event);
  }
  send_request(s, i, id, false);
}

void ScaleWorld::send_request(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id, bool retransmit) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (retransmit) ++shard.stats.retried;
  if (config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob)) {
    ++shard.stats.wire_dropped_requests;
  } else {
    shard.sim.schedule_at(now + lan_delay(shard),
                          [this, s, i, id] { edge_request(s, i, id); });
  }
  shard.sim.schedule_at(now + kRequestTimeoutNs,
                        [this, s, i, id] { client_timeout(s, i, id); });
}

void ScaleWorld::edge_request(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    ++shard.stats.crash_dropped_requests;
    return;
  }
  ClientEngine& engine = *shard.engine;
  const std::uint16_t bits = engine.pending_bits(i);
  if (bits == 0 || !engine.pending_matches(i, id)) return;  // stale dup
  const std::uint32_t step = ++shard.usage_step;
  engine.usage_touch(i, step, static_cast<float>(bits));
  if (engine.has(i, ClientEngine::kHeavy)) {
    ++shard.stats.heavy_denied;
    fold_event(shard.checksum, kFoldHeavyDeny, engine.global_id(i), now, id);
    if (plane_.tracing()) {
      plane_.edge(s).emit(scale_event(
          now, "heavy_deny", "edge", engine.global_id(i), 0,
          request_trace(engine.global_id(i), id), 0, 0));
    }
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(now + lan_delay(shard),
                            [this, s, i, id] { client_reject(s, i, id); });
    }
    maybe_refill(shard);
    return;
  }
  if (shard.cache_bits >= bits) {
    shard.cache_bits -= bits;
    const std::uint32_t grant = bits;
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(
          now + lan_delay(shard),
          [this, s, i, id, grant] { client_reply(s, i, id, grant); });
    }
  } else {
    // Cache empty: the edge has nothing to serve — tell the client so it
    // degrades to its CSPRNG fallback instead of burning retries.
    ++shard.stats.cache_misses;
    fold_event(shard.checksum, kFoldCacheMiss, engine.global_id(i), now, id);
    if (plane_.tracing()) {
      plane_.edge(s).emit(scale_event(
          now, "cache_miss", "edge", engine.global_id(i), 0,
          request_trace(engine.global_id(i), id), 0, 0));
    }
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(now + lan_delay(shard),
                            [this, s, i, id] { client_reject(s, i, id); });
    }
  }
  maybe_refill(shard);
}

void ScaleWorld::client_reply(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id, std::uint32_t grant_bits) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) {
    ++shard.stats.stale_replies;
    return;
  }
  const util::SimTime now = shard.sim.now();
  const double latency_s = util::to_seconds(now - engine.pending_since(i));
  engine.complete_request(i, grant_bits);
  engine.pool_consume(i, config_.request_bits);  // the tick's original need
  ++shard.stats.fulfilled;
  shard.stats.bytes_delivered += grant_bits / 8;
  fold_event(shard.checksum, kFoldFulfilled, engine.global_id(i), now,
             grant_bits);
  plane_.edge(s).record(latency_s);
  if (plane_.tracing()) {
    const std::uint64_t trace = request_trace(engine.global_id(i), id);
    obs::TraceEvent event = scale_event(now, "fulfilled", "client",
                                        engine.global_id(i), 'E', trace,
                                        trace, 0);
    add_attr(event, "latency_s", latency_s);
    add_attr(event, "bits", static_cast<double>(grant_bits));
    plane_.edge(s).emit(event);
  }
}

void ScaleWorld::client_reject(std::uint32_t s, std::uint32_t i,
                               std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) {
    ++shard.stats.stale_replies;
    return;
  }
  // Denied or cache-missed: the client generates via its local CSPRNG
  // (the paper's degradation path) and the slot resolves as a fallback.
  engine.cancel_request(i);
  ++shard.stats.fallback;
  const util::SimTime now = shard.sim.now();
  fold_event(shard.checksum, kFoldFallback, engine.global_id(i), now, id);
  if (plane_.tracing()) {
    const std::uint64_t trace = request_trace(engine.global_id(i), id);
    obs::TraceEvent event = scale_event(now, "fallback", "client",
                                        engine.global_id(i), 'E', trace,
                                        trace, 0);
    add_attr(event, "latency_s",
             util::to_seconds(now - engine.pending_since(i)));
    plane_.edge(s).emit(event);
  }
}

void ScaleWorld::client_timeout(std::uint32_t s, std::uint32_t i,
                                std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) return;  // resolved; stale timer
  if (engine.bump_attempts(i) <= kMaxScaleRetries) {
    send_request(s, i, id, true);
    return;
  }
  engine.cancel_request(i);
  ++shard.stats.expired;
  const util::SimTime now = shard.sim.now();
  fold_event(shard.checksum, kFoldExpired, engine.global_id(i), now, id);
  if (plane_.tracing()) {
    const std::uint64_t trace = request_trace(engine.global_id(i), id);
    plane_.edge(s).emit(scale_event(now, "expired", "client",
                                    engine.global_id(i), 'E', trace, trace,
                                    0));
  }
}

// ------------------------------------------------------------ upload side

void ScaleWorld::upload_tick(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  const util::SimTime now = shard.sim.now();
  const util::SimTime next =
      now + util::from_seconds(
                engine.next_exp(i, 1.0 / config_.upload_rate_hz));
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s, i] { upload_tick(s, i); });
  }
  ++shard.stats.uploads_sent;
  fold_event(shard.checksum, kFoldUpload, engine.global_id(i), now,
             config_.upload_bytes);
  if (plane_.tracing()) {
    obs::TraceEvent event = scale_event(now, "upload", "client",
                                        engine.global_id(i), 0, 0, 0, 0);
    add_attr(event, "bytes", static_cast<double>(config_.upload_bytes));
    plane_.edge(s).emit(event);
  }
  if (config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob)) {
    ++shard.stats.wire_dropped_uploads;
    return;
  }
  shard.sim.schedule_at(now + lan_delay(shard),
                        [this, s, i] { edge_upload(s, i); });
}

void ScaleWorld::edge_upload(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    ++shard.stats.crash_dropped_uploads;
    return;
  }
  ClientEngine& engine = *shard.engine;
  if (engine.has(i, ClientEngine::kBlacklisted)) {
    ++shard.stats.blacklist_drops;
    return;
  }
  const float score = engine.penalty_score(i);
  if (score >= static_cast<float>(kDropThresh)) {
    // Probabilistic drop band between drop_thresh and max_penalty; dropped
    // packets are NOT processed, so they give no chance to redeem.
    const double drop_p = (score - kDropThresh) / (kMaxPenalty - kDropThresh);
    if (shard.rng.bernoulli(drop_p)) {
      ++shard.stats.uploads_rejected;
      return;
    }
  }
  if (engine.has(i, ClientEngine::kBadUploader)) {
    // Fails the sanity battery: penalize, reject the payload.
    ++shard.stats.uploads_rejected;
    const bool was_blacklisted = engine.has(i, ClientEngine::kBlacklisted);
    engine.penalty_add(i, kBadUploadPoints);
    const bool newly_blacklisted =
        !was_blacklisted && engine.has(i, ClientEngine::kBlacklisted);
    if (newly_blacklisted) ++shard.stats.blacklisted_clients;
    fold_event(shard.checksum, kFoldUploadBad, engine.global_id(i), now,
               float_bits(engine.penalty_score(i)));
    if (plane_.tracing()) {
      obs::TraceEvent event =
          scale_event(now, newly_blacklisted ? "blacklisted" : "upload_bad",
                      "edge", engine.global_id(i), 0, 0, 0, 0);
      add_attr(event, "penalty",
               static_cast<double>(engine.penalty_score(i)));
      plane_.edge(s).emit(event);
    }
    return;
  }
  engine.penalty_add(i, kGoodUploadPoints);
  ++shard.stats.uploads_accepted;
  // Accepted entropy mixes into the edge cache first, then accumulates
  // toward the next upstream forward (kUploadForwardBytes, §III-A).
  shard.cache_bits =
      std::min(shard.cache_capacity_bits,
               shard.cache_bits +
                   static_cast<std::int64_t>(config_.upload_bytes) * 8);
  shard.upload_buffer_bytes += config_.upload_bytes;
  if (shard.upload_buffer_bytes >= kUploadForwardBytes) {
    sim::BoundaryEvent event;
    event.time = now + boundary_delay(shard.rng);
    event.dst = static_cast<std::uint32_t>(shards_.size());
    event.kind = kUploadFwd;
    event.a = shard.index;
    event.b = shard.upload_buffer_bytes;
    event.emit_ts = now;
    if (plane_.tracing()) {
      event.ctx = forward_trace(shard.index, ++shard.forward_traces);
      obs::TraceEvent open = scale_event(now, "upload_fwd", "edge",
                                         shard.index, 'B', event.ctx,
                                         event.ctx, 0);
      add_attr(open, "bytes",
               static_cast<double>(shard.upload_buffer_bytes));
      plane_.edge(s).emit(open);
    }
    merge_.emit(shard.index, event);
    ++shard.stats.upload_forwards;
    shard.stats.upload_forward_bytes += shard.upload_buffer_bytes;
    shard.upload_buffer_bytes = 0;
  }
}

// ------------------------------------------------------------- edge plane

void ScaleWorld::edge_scan(std::uint32_t s) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  const util::SimTime next = now + kScanPeriodNs;
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s] { edge_scan(s); });
  }
  if (offline(shard, now)) return;  // a crashed edge does not police
  // Absolute floor: several wire requests' worth of undecayed score — a
  // single honest double-fire cannot reach it, a flooder's steady EWMA
  // sits well above it.
  const float floor =
      4.5F * static_cast<float>(config_.request_bits);
  const ClientEngine::HeavyScan scan = shard.engine->heavy_scan(
      shard.usage_step, kUsageSigmaThreshold, kUsageHeavyMedianRatio, floor,
      shard.scratch);
  shard.stats.heavy_scan_flags += scan.heavy;
  fold_event(shard.checksum, kFoldScan, shard.index, now,
             (float_bits(scan.median) << 32) | float_bits(scan.threshold));
  fold(shard.checksum, scan.heavy);
  if (plane_.tracing()) {
    obs::TraceEvent event =
        scale_event(now, "heavy_scan", "edge", shard.index, 0, 0, 0, 0);
    add_attr(event, "heavy", static_cast<double>(scan.heavy));
    add_attr(event, "threshold", static_cast<double>(scan.threshold));
    plane_.edge(s).emit(event);
  }
}

void ScaleWorld::maybe_refill(EdgeShard& shard) {
  const double fill = static_cast<double>(shard.cache_bits);
  if (fill >= kCacheRefillFraction *
                  static_cast<double>(shard.cache_capacity_bits)) {
    return;
  }
  const util::SimTime now = shard.sim.now();
  if (shard.refill_pending &&
      now - shard.refill_issued_at <= kRefillTimeoutNs) {
    return;
  }
  const bool reissue = shard.refill_pending;
  const std::uint64_t want_bytes = static_cast<std::uint64_t>(
      (shard.cache_capacity_bits - shard.cache_bits) / 8);
  sim::BoundaryEvent event;
  event.time = now + boundary_delay(shard.rng);
  event.dst = static_cast<std::uint32_t>(shards_.size());
  event.kind = kRefillReq;
  event.a = shard.index;
  event.b = want_bytes;
  event.emit_ts = now;
  if (plane_.tracing()) {
    event.ctx = refill_trace(shard.index, ++shard.refill_traces);
    obs::TraceEvent open = scale_event(now, "refill_req", "edge",
                                       shard.index, 'B', event.ctx,
                                       event.ctx, 0);
    add_attr(open, "bytes", static_cast<double>(want_bytes));
    add_attr(open, "reissue", reissue ? 1.0 : 0.0);
    plane_.edge(shard.index).emit(open);
  }
  merge_.emit(shard.index, event);
  shard.refill_pending = true;
  shard.refill_issued_at = now;
  if (reissue) {
    ++shard.stats.refill_reissues;
  } else {
    ++shard.stats.refills_requested;
  }
  fold_event(shard.checksum, kFoldRefillReq, shard.index, now, want_bytes);
}

void ScaleWorld::edge_refill(std::uint32_t s, std::uint64_t bytes,
                             std::uint64_t ctx) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    // Lost to the crash; refill_pending stays set and the timeout path
    // re-issues once the edge is back and traffic flows again.
    ++shard.stats.crash_dropped_refills;
    if (plane_.tracing() && ctx != 0) {
      // Close the refill span so the trace stays well-formed: the data
      // existed, the crash ate it.
      plane_.edge(s).emit(scale_event(now, "refill_lost", "edge",
                                      shard.index, 'E', ctx, ctx, 0));
    }
    return;
  }
  shard.refill_pending = false;
  ++shard.stats.refills_completed;
  shard.cache_bits =
      std::min(shard.cache_capacity_bits,
               shard.cache_bits + static_cast<std::int64_t>(bytes) * 8);
  fold_event(shard.checksum, kFoldRefillData, shard.index, now, bytes);
  if (plane_.tracing() && ctx != 0) {
    obs::TraceEvent close = scale_event(now, "refill_data", "edge",
                                        shard.index, 'E', ctx, ctx, 0);
    add_attr(close, "bytes", static_cast<double>(bytes));
    plane_.edge(s).emit(close);
  }
}

// ------------------------------------------------------------ server side

void ScaleWorld::server_refill(std::uint32_t edge, std::uint64_t want_bytes,
                               std::uint64_t ctx) {
  const util::SimTime now = server_.sim.now();
  const std::uint64_t grant = std::min(
      want_bytes, static_cast<std::uint64_t>(
                      std::max<std::int64_t>(server_.pool_bytes, 0)));
  server_.pool_bytes -= static_cast<std::int64_t>(grant);
  ++server_.stats.server_grants;
  server_.stats.server_grant_bytes += grant;
  // Reply even when the grant is zero: the edge clears refill_pending and
  // retries on later traffic instead of waiting out the full timeout.
  sim::BoundaryEvent event;
  event.time = now + boundary_delay(server_.rng);
  event.dst = edge;
  event.kind = kRefillData;
  event.a = edge;
  event.b = grant;
  event.emit_ts = now;
  event.ctx = ctx;  // thread the refill span across the return crossing
  merge_.emit(static_cast<std::uint32_t>(shards_.size()), event);
  fold_event(server_.checksum, kFoldServerGrant, edge, now, grant);
  if (plane_.tracing() && ctx != 0) {
    obs::TraceEvent grant_event =
        scale_event(now, "server_grant", "server", edge, 'X', ctx, 2, ctx);
    add_attr(grant_event, "bytes", static_cast<double>(grant));
    plane_.server().emit(grant_event);
  }
}

void ScaleWorld::server_upload(std::uint64_t bytes, std::uint64_t ctx) {
  const util::SimTime now = server_.sim.now();
  server_.pool_bytes += static_cast<std::int64_t>(bytes);
  fold_event(server_.checksum, kFoldServerUpload, 0, now, bytes);
  if (plane_.tracing() && ctx != 0) {
    obs::TraceEvent close =
        scale_event(now, "server_upload", "server", 0, 'E', ctx, ctx, 0);
    add_attr(close, "bytes", static_cast<double>(bytes));
    plane_.server().emit(close);
  }
}

void ScaleWorld::server_source_tick() {
  const util::SimTime now = server_.sim.now();
  const std::uint64_t added = static_cast<std::uint64_t>(
      source_rate_ * util::to_seconds(kSourcePeriodNs));
  server_.pool_bytes += static_cast<std::int64_t>(added);
  server_.stats.server_source_bytes += added;
  const util::SimTime next = now + kSourcePeriodNs;
  if (next <= horizon_) {
    server_.sim.schedule_at(next, [this] { server_source_tick(); });
  }
}

// -------------------------------------------------------------- plumbing

util::SimTime ScaleWorld::lan_delay(EdgeShard& shard) noexcept {
  return kLanBaseNs + static_cast<util::SimTime>(
                          shard.rng.uniform(kLanJitterNs));
}

util::SimTime ScaleWorld::boundary_delay(util::Xoshiro256& rng) noexcept {
  return kBoundaryBaseNs +
         static_cast<util::SimTime>(rng.uniform(kBoundaryJitterNs));
}

bool ScaleWorld::offline(const EdgeShard& shard,
                         util::SimTime t) const noexcept {
  for (const ScaleCrashWindow& crash : shard.crashes) {
    if (t >= crash.begin && t < crash.end) return true;
  }
  return false;
}

std::uint64_t ScaleWorld::events_executed() const noexcept {
  std::uint64_t total = server_.sim.events_executed();
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    total += shard->sim.events_executed();
  }
  return total;
}

std::uint64_t ScaleWorld::checksum() const noexcept {
  std::uint64_t cs = 0xcbf29ce484222325ULL;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    fold(cs, shard->checksum);
  }
  fold(cs, server_.checksum);
  fold(cs, boundary_checksum_);
  return cs;
}

ScaleStats ScaleWorld::stats() const noexcept {
  ScaleStats total;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    add_stats(total, shard->stats);
  }
  add_stats(total, server_.stats);
  return total;
}

void ScaleWorld::publish_metrics(obs::Registry& registry) {
  const ScaleStats cur = stats();
  const auto bump = [&registry](const char* name, std::uint64_t now_total,
                                std::uint64_t before) {
    if (now_total > before) registry.counter(name).inc(now_total - before);
  };

  // Canonical names the default SLO rules and dashboards already read, so
  // the scale path lights up the same burn/ratio/gauge alerts per-node
  // deployments use.
  bump("cadet_edge_requests_received", cur.requests_sent,
       published_.requests_sent);
  bump("cadet_edge_refill_retries", cur.refill_reissues,
       published_.refill_reissues);
  bump("cadet_server_uploads_dropped_penalty", cur.uploads_rejected,
       published_.uploads_rejected);
  const std::uint64_t resolved = cur.fulfilled + cur.fallback + cur.expired;
  registry.gauge("cadet_fulfillment_inflight")
      .set(static_cast<std::int64_t>(cur.requests_sent) -
           static_cast<std::int64_t>(resolved));

  // Scale-world counters (request economics, uploads, boundary, faults).
  bump("cadet_scale_requests", cur.requests_sent,
       published_.requests_sent);
  bump("cadet_scale_local_serves", cur.local_serves,
       published_.local_serves);
  bump("cadet_scale_retries", cur.retried, published_.retried);
  bump("cadet_scale_fulfilled", cur.fulfilled, published_.fulfilled);
  bump("cadet_scale_fallback", cur.fallback, published_.fallback);
  bump("cadet_scale_expired", cur.expired, published_.expired);
  bump("cadet_scale_heavy_denied", cur.heavy_denied,
       published_.heavy_denied);
  bump("cadet_scale_cache_misses", cur.cache_misses,
       published_.cache_misses);
  bump("cadet_scale_uploads_sent", cur.uploads_sent,
       published_.uploads_sent);
  bump("cadet_scale_uploads_accepted", cur.uploads_accepted,
       published_.uploads_accepted);
  bump("cadet_scale_penalty_drops", cur.blacklist_drops,
       published_.blacklist_drops);
  bump("cadet_scale_refills_requested", cur.refills_requested,
       published_.refills_requested);
  bump("cadet_scale_refills_completed", cur.refills_completed,
       published_.refills_completed);
  bump("cadet_scale_upload_forwards", cur.upload_forwards,
       published_.upload_forwards);
  bump("cadet_scale_server_grants", cur.server_grants,
       published_.server_grants);
  bump("cadet_scale_wire_drops",
       cur.wire_dropped_requests + cur.wire_dropped_replies +
           cur.wire_dropped_uploads,
       published_.wire_dropped_requests + published_.wire_dropped_replies +
           published_.wire_dropped_uploads);
  bump("cadet_scale_crash_drops",
       cur.crash_dropped_requests + cur.crash_dropped_uploads +
           cur.crash_dropped_refills,
       published_.crash_dropped_requests + published_.crash_dropped_uploads +
           published_.crash_dropped_refills);
  registry.gauge("cadet_scale_blacklisted_clients")
      .set(static_cast<std::int64_t>(cur.blacklisted_clients));
  registry.gauge("cadet_server_pool_bytes").set(server_.pool_bytes);

  // Progress + boundary health. The violations counter is the satellite
  // operators alert on: non-zero means the conservative lookahead bound
  // was broken (a protocol bug, also a non-zero cadet_sim --scale exit).
  const std::uint64_t events = events_executed();
  bump("cadet_scale_events", events, published_events_);
  published_events_ = events;
  // Created even at zero so the alerting floor is a present series, not a
  // missing one.
  obs::Counter& violations =
      registry.counter("cadet_shard_lookahead_violations");
  if (merge_.violations() > published_violations_) {
    violations.inc(merge_.violations() - published_violations_);
  }
  published_violations_ = merge_.violations();
  bump("cadet_scale_trace_events_folded", plane_.events_folded(),
       published_folded_);
  published_folded_ = plane_.events_folded();
  registry.gauge("cadet_scale_watermark_ms")
      .set(static_cast<std::int64_t>(util::to_seconds(window_end_) * 1e3));
  registry.gauge("cadet_scale_boundary_pending")
      .set(static_cast<std::int64_t>(merge_.pending()));

  // Latency histograms: per-shard deltas absorbed in shard-index order
  // (integer cells commute, so the registry instrument matches a single-
  // threaded recording exactly — see obs/shard_obs.h).
  obs::HdrSnapshot latency = plane_.merged_latency();
  obs::HdrSnapshot latency_delta = latency;
  latency_delta.subtract(published_latency_);  // first publish: no-op, full
  registry.hdr("cadet_fulfillment_seconds", {},
               obs::ShardObsPlane::scale_latency())
      .absorb(latency_delta);
  published_latency_ = std::move(latency);

  obs::HdrSnapshot crossing = plane_.crossing().snapshot();
  obs::HdrSnapshot crossing_delta = crossing;
  crossing_delta.subtract(published_crossing_);
  registry.hdr("cadet_boundary_crossing_seconds", {},
               obs::ShardObsPlane::boundary_crossing())
      .absorb(crossing_delta);
  published_crossing_ = std::move(crossing);

  obs::HdrSnapshot occupancy = plane_.occupancy().snapshot();
  obs::HdrSnapshot occupancy_delta = occupancy;
  occupancy_delta.subtract(published_occupancy_);
  registry.hdr("cadet_boundary_batch_events", {},
               obs::ShardObsPlane::boundary_batch())
      .absorb(occupancy_delta);
  published_occupancy_ = std::move(occupancy);

  // Per-shard load view (the imbalance table cadet_report renders).
  published_shard_events_.resize(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t executed = shards_[s]->sim.events_executed();
    if (executed > published_shard_events_[s]) {
      registry
          .counter("cadet_shard_events",
                   {{"shard", std::to_string(s)}})
          .inc(executed - published_shard_events_[s]);
    }
    published_shard_events_[s] = executed;
  }

  published_ = cur;
}

std::size_t ScaleWorld::memory_bytes() const noexcept {
  std::size_t total = sizeof(ScaleWorld) + merge_.memory_bytes() +
                      server_.sim.memory_bytes() + plane_.memory_bytes() +
                      published_shard_events_.capacity() *
                          sizeof(std::uint64_t);
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    total += sizeof(EdgeShard) + shard->sim.memory_bytes() +
             shard->engine->memory_bytes() +
             shard->scratch.capacity() * sizeof(float) +
             shard->crashes.capacity() * sizeof(ScaleCrashWindow);
  }
  return total;
}

}  // namespace cadet::testbed
