#include "testbed/scale.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace cadet::testbed {
namespace {

// Latency model. The client<->edge wire is the testbed LAN; the
// edge<->server boundary rides a metro backbone. The window length equals
// the boundary's MINIMUM latency — that is the whole conservative
// synchronization argument: an event emitted inside window [t, t+W) is
// delivered at emit_time + W + jitter >= t + W, i.e. never inside the
// window that emitted it.
constexpr util::SimTime kLanBaseNs = 200 * util::kMicrosecond;
constexpr util::SimTime kLanJitterNs = 100 * util::kMicrosecond;
constexpr util::SimTime kBoundaryBaseNs = 8 * util::kMillisecond;
constexpr util::SimTime kBoundaryJitterNs = 2 * util::kMillisecond;

// Client retry chain: kMaxScaleRetries retransmissions, then the CSPRNG
// fallback has long since taken over and the slot expires.
constexpr util::SimTime kRequestTimeoutNs = 1'500 * util::kMillisecond;
constexpr std::uint8_t kMaxScaleRetries = 2;

// Heavy-user scans sweep each edge's population with the robust
// median + MAD threshold every couple of seconds (the per-request lazy
// decay keeps packet processing O(1); the scan is the amortized sweep).
constexpr util::SimTime kScanPeriodNs = 2 * util::kSecond;
constexpr util::SimTime kSourcePeriodNs = 500 * util::kMillisecond;

// Penalty points per processed upload: failing the sanity battery costs
// +6 (kMaxPenalty after ~6 strikes), a clean upload redeems -1 — the same
// shape as PenaltyScheme over the full engines.
constexpr float kBadUploadPoints = 6.0F;
constexpr float kGoodUploadPoints = -1.0F;

// Event-kind tags folded into the per-shard trace checksums.
enum : std::uint64_t {
  kFoldRequest = 1,
  kFoldFulfilled = 2,
  kFoldFallback = 3,
  kFoldExpired = 4,
  kFoldHeavyDeny = 5,
  kFoldCacheMiss = 6,
  kFoldUpload = 7,
  kFoldUploadBad = 8,
  kFoldRefillReq = 9,
  kFoldRefillData = 10,
  kFoldScan = 11,
  kFoldServerGrant = 12,
  kFoldServerUpload = 13,
  kFoldBoundary = 14,
};

inline void fold(std::uint64_t& cs, std::uint64_t x) noexcept {
  cs = (cs ^ x) * 0x100000001b3ULL;
}

inline void fold_event(std::uint64_t& cs, std::uint64_t kind,
                       std::uint64_t node, util::SimTime time,
                       std::uint64_t extra) noexcept {
  fold(cs, kind);
  fold(cs, node);
  fold(cs, static_cast<std::uint64_t>(time));
  fold(cs, extra);
}

inline std::uint64_t float_bits(float value) noexcept {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void add_stats(ScaleStats& into, const ScaleStats& from) noexcept {
  into.requests_sent += from.requests_sent;
  into.local_serves += from.local_serves;
  into.retried += from.retried;
  into.fulfilled += from.fulfilled;
  into.fallback += from.fallback;
  into.expired += from.expired;
  into.stale_replies += from.stale_replies;
  into.heavy_denied += from.heavy_denied;
  into.cache_misses += from.cache_misses;
  into.bytes_delivered += from.bytes_delivered;
  into.uploads_sent += from.uploads_sent;
  into.uploads_accepted += from.uploads_accepted;
  into.uploads_rejected += from.uploads_rejected;
  into.blacklist_drops += from.blacklist_drops;
  into.blacklisted_clients += from.blacklisted_clients;
  into.wire_dropped_requests += from.wire_dropped_requests;
  into.wire_dropped_replies += from.wire_dropped_replies;
  into.wire_dropped_uploads += from.wire_dropped_uploads;
  into.crash_dropped_requests += from.crash_dropped_requests;
  into.crash_dropped_uploads += from.crash_dropped_uploads;
  into.crash_dropped_refills += from.crash_dropped_refills;
  into.refills_requested += from.refills_requested;
  into.refill_reissues += from.refill_reissues;
  into.refills_completed += from.refills_completed;
  into.upload_forwards += from.upload_forwards;
  into.upload_forward_bytes += from.upload_forward_bytes;
  into.server_grants += from.server_grants;
  into.server_grant_bytes += from.server_grant_bytes;
  into.server_source_bytes += from.server_source_bytes;
  into.heavy_scan_flags += from.heavy_scan_flags;
}

}  // namespace

ScaleWorld::ScaleWorld(const ScaleConfig& config)
    : config_(config),
      num_clients_(config.num_clients),
      window_(kBoundaryBaseNs),
      horizon_(util::from_seconds(config.duration_s)),
      merge_((config.num_clients + config.clients_per_edge - 1) /
                 std::max<std::size_t>(config.clients_per_edge, 1) +
             1) {
  if (config_.num_clients == 0 || config_.clients_per_edge == 0) {
    throw std::invalid_argument("ScaleWorld: need clients and an edge size");
  }
  if (config_.duration_s <= 0.0 || config_.request_rate_hz <= 0.0) {
    throw std::invalid_argument("ScaleWorld: need a duration and a rate");
  }
  const std::size_t num_edges =
      (num_clients_ + config_.clients_per_edge - 1) / config_.clients_per_edge;

  // Auto-size the server source to ~125 % of the population's steady wire
  // demand (each tick either drains the pool locally or asks the edge for
  // 2x, so the long-run wire demand is rate * request_bits per client).
  source_rate_ = config_.source_rate_bytes_per_s > 0.0
                     ? config_.source_rate_bytes_per_s
                     : static_cast<double>(num_clients_) *
                           config_.request_rate_hz *
                           (config_.request_bits / 8.0) * 1.25;
  server_.rng = util::Xoshiro256(config_.seed ^ 0x5eedULL);
  server_.pool_bytes = static_cast<std::int64_t>(source_rate_ * 2.0);
  server_.sim.reserve(64);
  server_.sim.schedule_at(kSourcePeriodNs, [this] { server_source_tick(); });

  shards_.reserve(num_edges);
  for (std::size_t k = 0; k < num_edges; ++k) {
    auto shard = std::make_unique<EdgeShard>();
    shard->index = static_cast<std::uint32_t>(k);
    const std::size_t first = k * config_.clients_per_edge;
    shard->clients = static_cast<std::uint32_t>(
        std::min(config_.clients_per_edge, num_clients_ - first));
    ClientEngine::Config engine_config;
    // Same seed-mixing shape as the per-node World builders so shards stay
    // decorrelated without sharing any generator state.
    engine_config.seed = config_.seed * 40503ULL + 7 * k + 3;
    engine_config.first_id = static_cast<std::uint32_t>(1000 + first);
    engine_config.count = shard->clients;
    shard->engine = std::make_unique<ClientEngine>(engine_config);
    shard->rng = util::Xoshiro256(config_.seed ^ (0x9e3779b9ULL * (k + 1)));
    shard->cache_capacity_bits =
        static_cast<std::int64_t>(shard->clients) *
        static_cast<std::int64_t>(kClientBufferBits);
    shard->cache_bits = static_cast<std::int64_t>(
        static_cast<double>(shard->cache_capacity_bits) *
        std::min(std::max(config_.initial_cache_fill, 0.0), 1.0));
    for (const ScaleCrashWindow& crash : config_.crashes) {
      if (crash.edge == shard->index) shard->crashes.push_back(crash);
    }
    // Steady state holds roughly two pending events per client (the next
    // request tick plus in-flight timeout/upload machinery).
    shard->sim.reserve(2 * shard->clients + 64);

    ClientEngine& engine = *shard->engine;
    const std::uint32_t s = shard->index;
    for (std::uint32_t i = 0; i < shard->clients; ++i) {
      const double role = engine.uniform01(i);
      if (role < config_.flooder_fraction) {
        engine.set_flag(i, ClientEngine::kFlooder);
      } else if (role < config_.flooder_fraction + config_.producer_fraction) {
        engine.set_flag(i, ClientEngine::kProducer);
        if (engine.uniform01(i) < config_.bad_uploader_fraction) {
          engine.set_flag(i, ClientEngine::kBadUploader);
        }
      }
      const double request_mean =
          engine.has(i, ClientEngine::kFlooder)
              ? 1.0 / config_.flooder_rate_hz
              : 1.0 / config_.request_rate_hz;
      const util::SimTime first_tick =
          util::from_seconds(engine.next_exp(i, request_mean));
      if (first_tick <= horizon_) {
        shard->sim.schedule_at(first_tick,
                               [this, s, i] { request_tick(s, i); });
      }
      if (engine.has(i, ClientEngine::kProducer) &&
          config_.upload_rate_hz > 0.0) {
        const util::SimTime first_upload = util::from_seconds(
            engine.next_exp(i, 1.0 / config_.upload_rate_hz));
        if (first_upload <= horizon_) {
          shard->sim.schedule_at(first_upload,
                                 [this, s, i] { upload_tick(s, i); });
        }
      }
    }
    shard->sim.schedule_at(kScanPeriodNs, [this, s] { edge_scan(s); });
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t ScaleWorld::run(const Executor& executor) {
  std::vector<sim::BoundaryEvent> batch;
  const std::function<void(std::size_t)> task = [this](std::size_t s) {
    step_shard(s);
  };
  for (;;) {
    window_end_ += window_;
    if (executor) {
      executor(num_shards(), task);
    } else {
      for (std::size_t s = 0; s < num_shards(); ++s) step_shard(s);
    }
    // Single-threaded barrier: merge in {time, seq, shard} order and
    // inject into the destination shards for the next window.
    if (!merge_.drain(window_end_, batch)) {
      throw std::logic_error(
          "ScaleWorld: boundary event violates the conservative lookahead");
    }
    for (const sim::BoundaryEvent& event : batch) inject(event);
    boundary_injected_ += batch.size();
    if (window_end_ > horizon_ && batch.empty() && idle()) break;
  }
  return events_executed();
}

void ScaleWorld::step_shard(std::size_t s) {
  // Events inside [window_start, window_end) — run_until is inclusive, so
  // stop one tick short of the boundary.
  if (s < shards_.size()) {
    shards_[s]->sim.run_until(window_end_ - 1);
  } else {
    server_.sim.run_until(window_end_ - 1);
  }
}

void ScaleWorld::inject(const sim::BoundaryEvent& event) {
  fold_event(boundary_checksum_, kFoldBoundary,
             (std::uint64_t{event.src} << 32) | event.dst, event.time,
             (event.seq << 8) | event.kind);
  fold(boundary_checksum_, event.a);
  fold(boundary_checksum_, event.b);
  switch (event.kind) {
    case kRefillReq: {
      const std::uint32_t edge = static_cast<std::uint32_t>(event.a);
      const std::uint64_t bytes = event.b;
      server_.sim.schedule_at(
          event.time, [this, edge, bytes] { server_refill(edge, bytes); });
      break;
    }
    case kUploadFwd: {
      const std::uint64_t bytes = event.b;
      server_.sim.schedule_at(event.time,
                              [this, bytes] { server_upload(bytes); });
      break;
    }
    case kRefillData: {
      const std::uint32_t s = event.dst;
      const std::uint64_t bytes = event.b;
      shards_[s]->sim.schedule_at(event.time,
                                  [this, s, bytes] { edge_refill(s, bytes); });
      break;
    }
    default:
      throw std::logic_error("ScaleWorld: unknown boundary event kind");
  }
}

bool ScaleWorld::idle() const noexcept {
  if (!server_.sim.empty()) return false;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    if (!shard->sim.empty()) return false;
  }
  return true;
}

// ----------------------------------------------------------- client side

void ScaleWorld::request_tick(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  const util::SimTime now = shard.sim.now();
  const bool flooder = engine.has(i, ClientEngine::kFlooder);
  // Chain the next arrival first so whatever this tick does cannot stall
  // the process.
  const double mean = flooder ? 1.0 / config_.flooder_rate_hz
                              : 1.0 / config_.request_rate_hz;
  const util::SimTime next =
      now + util::from_seconds(engine.next_exp(i, mean));
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s, i] { request_tick(s, i); });
  }
  if (!flooder && engine.pool_consume(i, config_.request_bits)) {
    ++shard.stats.local_serves;
    return;
  }
  // One in-flight slot per client: while a request rides its retry chain,
  // further ticks lean on the fallback path implicitly (flooders included,
  // which caps a flooder at one outstanding request like a real socket).
  if (engine.request_pending(i)) return;
  const std::uint16_t wire_bits =
      static_cast<std::uint16_t>(2 * config_.request_bits);
  const std::uint16_t id = engine.issue_request(i, wire_bits);
  ++shard.stats.requests_sent;
  fold_event(shard.checksum, kFoldRequest, engine.global_id(i), now, id);
  send_request(s, i, id, false);
}

void ScaleWorld::send_request(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id, bool retransmit) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (retransmit) ++shard.stats.retried;
  if (config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob)) {
    ++shard.stats.wire_dropped_requests;
  } else {
    shard.sim.schedule_at(now + lan_delay(shard),
                          [this, s, i, id] { edge_request(s, i, id); });
  }
  shard.sim.schedule_at(now + kRequestTimeoutNs,
                        [this, s, i, id] { client_timeout(s, i, id); });
}

void ScaleWorld::edge_request(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    ++shard.stats.crash_dropped_requests;
    return;
  }
  ClientEngine& engine = *shard.engine;
  const std::uint16_t bits = engine.pending_bits(i);
  if (bits == 0 || !engine.pending_matches(i, id)) return;  // stale dup
  const std::uint32_t step = ++shard.usage_step;
  engine.usage_touch(i, step, static_cast<float>(bits));
  if (engine.has(i, ClientEngine::kHeavy)) {
    ++shard.stats.heavy_denied;
    fold_event(shard.checksum, kFoldHeavyDeny, engine.global_id(i), now, id);
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(now + lan_delay(shard),
                            [this, s, i, id] { client_reject(s, i, id); });
    }
    maybe_refill(shard);
    return;
  }
  if (shard.cache_bits >= bits) {
    shard.cache_bits -= bits;
    const std::uint32_t grant = bits;
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(
          now + lan_delay(shard),
          [this, s, i, id, grant] { client_reply(s, i, id, grant); });
    }
  } else {
    // Cache empty: the edge has nothing to serve — tell the client so it
    // degrades to its CSPRNG fallback instead of burning retries.
    ++shard.stats.cache_misses;
    fold_event(shard.checksum, kFoldCacheMiss, engine.global_id(i), now, id);
    const bool dropped =
        config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob);
    if (dropped) {
      ++shard.stats.wire_dropped_replies;
    } else {
      shard.sim.schedule_at(now + lan_delay(shard),
                            [this, s, i, id] { client_reject(s, i, id); });
    }
  }
  maybe_refill(shard);
}

void ScaleWorld::client_reply(std::uint32_t s, std::uint32_t i,
                              std::uint16_t id, std::uint32_t grant_bits) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) {
    ++shard.stats.stale_replies;
    return;
  }
  engine.complete_request(i, grant_bits);
  engine.pool_consume(i, config_.request_bits);  // the tick's original need
  ++shard.stats.fulfilled;
  shard.stats.bytes_delivered += grant_bits / 8;
  fold_event(shard.checksum, kFoldFulfilled, engine.global_id(i),
             shard.sim.now(), grant_bits);
}

void ScaleWorld::client_reject(std::uint32_t s, std::uint32_t i,
                               std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) {
    ++shard.stats.stale_replies;
    return;
  }
  // Denied or cache-missed: the client generates via its local CSPRNG
  // (the paper's degradation path) and the slot resolves as a fallback.
  engine.cancel_request(i);
  ++shard.stats.fallback;
  fold_event(shard.checksum, kFoldFallback, engine.global_id(i),
             shard.sim.now(), id);
}

void ScaleWorld::client_timeout(std::uint32_t s, std::uint32_t i,
                                std::uint16_t id) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  if (!engine.pending_matches(i, id)) return;  // resolved; stale timer
  if (engine.bump_attempts(i) <= kMaxScaleRetries) {
    send_request(s, i, id, true);
    return;
  }
  engine.cancel_request(i);
  ++shard.stats.expired;
  fold_event(shard.checksum, kFoldExpired, engine.global_id(i),
             shard.sim.now(), id);
}

// ------------------------------------------------------------ upload side

void ScaleWorld::upload_tick(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  ClientEngine& engine = *shard.engine;
  const util::SimTime now = shard.sim.now();
  const util::SimTime next =
      now + util::from_seconds(
                engine.next_exp(i, 1.0 / config_.upload_rate_hz));
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s, i] { upload_tick(s, i); });
  }
  ++shard.stats.uploads_sent;
  fold_event(shard.checksum, kFoldUpload, engine.global_id(i), now,
             config_.upload_bytes);
  if (config_.drop_prob > 0.0 && shard.rng.bernoulli(config_.drop_prob)) {
    ++shard.stats.wire_dropped_uploads;
    return;
  }
  shard.sim.schedule_at(now + lan_delay(shard),
                        [this, s, i] { edge_upload(s, i); });
}

void ScaleWorld::edge_upload(std::uint32_t s, std::uint32_t i) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    ++shard.stats.crash_dropped_uploads;
    return;
  }
  ClientEngine& engine = *shard.engine;
  if (engine.has(i, ClientEngine::kBlacklisted)) {
    ++shard.stats.blacklist_drops;
    return;
  }
  const float score = engine.penalty_score(i);
  if (score >= static_cast<float>(kDropThresh)) {
    // Probabilistic drop band between drop_thresh and max_penalty; dropped
    // packets are NOT processed, so they give no chance to redeem.
    const double drop_p = (score - kDropThresh) / (kMaxPenalty - kDropThresh);
    if (shard.rng.bernoulli(drop_p)) {
      ++shard.stats.uploads_rejected;
      return;
    }
  }
  if (engine.has(i, ClientEngine::kBadUploader)) {
    // Fails the sanity battery: penalize, reject the payload.
    ++shard.stats.uploads_rejected;
    const bool was_blacklisted = engine.has(i, ClientEngine::kBlacklisted);
    engine.penalty_add(i, kBadUploadPoints);
    if (!was_blacklisted && engine.has(i, ClientEngine::kBlacklisted)) {
      ++shard.stats.blacklisted_clients;
    }
    fold_event(shard.checksum, kFoldUploadBad, engine.global_id(i), now,
               float_bits(engine.penalty_score(i)));
    return;
  }
  engine.penalty_add(i, kGoodUploadPoints);
  ++shard.stats.uploads_accepted;
  // Accepted entropy mixes into the edge cache first, then accumulates
  // toward the next upstream forward (kUploadForwardBytes, §III-A).
  shard.cache_bits =
      std::min(shard.cache_capacity_bits,
               shard.cache_bits +
                   static_cast<std::int64_t>(config_.upload_bytes) * 8);
  shard.upload_buffer_bytes += config_.upload_bytes;
  if (shard.upload_buffer_bytes >= kUploadForwardBytes) {
    sim::BoundaryEvent event;
    event.time = now + boundary_delay(shard.rng);
    event.dst = static_cast<std::uint32_t>(shards_.size());
    event.kind = kUploadFwd;
    event.a = shard.index;
    event.b = shard.upload_buffer_bytes;
    merge_.emit(shard.index, event);
    ++shard.stats.upload_forwards;
    shard.stats.upload_forward_bytes += shard.upload_buffer_bytes;
    shard.upload_buffer_bytes = 0;
  }
}

// ------------------------------------------------------------- edge plane

void ScaleWorld::edge_scan(std::uint32_t s) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  const util::SimTime next = now + kScanPeriodNs;
  if (next <= horizon_) {
    shard.sim.schedule_at(next, [this, s] { edge_scan(s); });
  }
  if (offline(shard, now)) return;  // a crashed edge does not police
  // Absolute floor: several wire requests' worth of undecayed score — a
  // single honest double-fire cannot reach it, a flooder's steady EWMA
  // sits well above it.
  const float floor =
      4.5F * static_cast<float>(config_.request_bits);
  const ClientEngine::HeavyScan scan = shard.engine->heavy_scan(
      shard.usage_step, kUsageSigmaThreshold, kUsageHeavyMedianRatio, floor,
      shard.scratch);
  shard.stats.heavy_scan_flags += scan.heavy;
  fold_event(shard.checksum, kFoldScan, shard.index, now,
             (float_bits(scan.median) << 32) | float_bits(scan.threshold));
  fold(shard.checksum, scan.heavy);
}

void ScaleWorld::maybe_refill(EdgeShard& shard) {
  const double fill = static_cast<double>(shard.cache_bits);
  if (fill >= kCacheRefillFraction *
                  static_cast<double>(shard.cache_capacity_bits)) {
    return;
  }
  const util::SimTime now = shard.sim.now();
  if (shard.refill_pending &&
      now - shard.refill_issued_at <= kRefillTimeoutNs) {
    return;
  }
  const bool reissue = shard.refill_pending;
  const std::uint64_t want_bytes = static_cast<std::uint64_t>(
      (shard.cache_capacity_bits - shard.cache_bits) / 8);
  sim::BoundaryEvent event;
  event.time = now + boundary_delay(shard.rng);
  event.dst = static_cast<std::uint32_t>(shards_.size());
  event.kind = kRefillReq;
  event.a = shard.index;
  event.b = want_bytes;
  merge_.emit(shard.index, event);
  shard.refill_pending = true;
  shard.refill_issued_at = now;
  if (reissue) {
    ++shard.stats.refill_reissues;
  } else {
    ++shard.stats.refills_requested;
  }
  fold_event(shard.checksum, kFoldRefillReq, shard.index, now, want_bytes);
}

void ScaleWorld::edge_refill(std::uint32_t s, std::uint64_t bytes) {
  EdgeShard& shard = *shards_[s];
  const util::SimTime now = shard.sim.now();
  if (offline(shard, now)) {
    // Lost to the crash; refill_pending stays set and the timeout path
    // re-issues once the edge is back and traffic flows again.
    ++shard.stats.crash_dropped_refills;
    return;
  }
  shard.refill_pending = false;
  ++shard.stats.refills_completed;
  shard.cache_bits =
      std::min(shard.cache_capacity_bits,
               shard.cache_bits + static_cast<std::int64_t>(bytes) * 8);
  fold_event(shard.checksum, kFoldRefillData, shard.index, now, bytes);
}

// ------------------------------------------------------------ server side

void ScaleWorld::server_refill(std::uint32_t edge, std::uint64_t want_bytes) {
  const util::SimTime now = server_.sim.now();
  const std::uint64_t grant = std::min(
      want_bytes, static_cast<std::uint64_t>(
                      std::max<std::int64_t>(server_.pool_bytes, 0)));
  server_.pool_bytes -= static_cast<std::int64_t>(grant);
  ++server_.stats.server_grants;
  server_.stats.server_grant_bytes += grant;
  // Reply even when the grant is zero: the edge clears refill_pending and
  // retries on later traffic instead of waiting out the full timeout.
  sim::BoundaryEvent event;
  event.time = now + boundary_delay(server_.rng);
  event.dst = edge;
  event.kind = kRefillData;
  event.a = edge;
  event.b = grant;
  merge_.emit(static_cast<std::uint32_t>(shards_.size()), event);
  fold_event(server_.checksum, kFoldServerGrant, edge, now, grant);
}

void ScaleWorld::server_upload(std::uint64_t bytes) {
  server_.pool_bytes += static_cast<std::int64_t>(bytes);
  fold_event(server_.checksum, kFoldServerUpload, 0, server_.sim.now(),
             bytes);
}

void ScaleWorld::server_source_tick() {
  const util::SimTime now = server_.sim.now();
  const std::uint64_t added = static_cast<std::uint64_t>(
      source_rate_ * util::to_seconds(kSourcePeriodNs));
  server_.pool_bytes += static_cast<std::int64_t>(added);
  server_.stats.server_source_bytes += added;
  const util::SimTime next = now + kSourcePeriodNs;
  if (next <= horizon_) {
    server_.sim.schedule_at(next, [this] { server_source_tick(); });
  }
}

// -------------------------------------------------------------- plumbing

util::SimTime ScaleWorld::lan_delay(EdgeShard& shard) noexcept {
  return kLanBaseNs + static_cast<util::SimTime>(
                          shard.rng.uniform(kLanJitterNs));
}

util::SimTime ScaleWorld::boundary_delay(util::Xoshiro256& rng) noexcept {
  return kBoundaryBaseNs +
         static_cast<util::SimTime>(rng.uniform(kBoundaryJitterNs));
}

bool ScaleWorld::offline(const EdgeShard& shard,
                         util::SimTime t) const noexcept {
  for (const ScaleCrashWindow& crash : shard.crashes) {
    if (t >= crash.begin && t < crash.end) return true;
  }
  return false;
}

std::uint64_t ScaleWorld::events_executed() const noexcept {
  std::uint64_t total = server_.sim.events_executed();
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    total += shard->sim.events_executed();
  }
  return total;
}

std::uint64_t ScaleWorld::checksum() const noexcept {
  std::uint64_t cs = 0xcbf29ce484222325ULL;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    fold(cs, shard->checksum);
  }
  fold(cs, server_.checksum);
  fold(cs, boundary_checksum_);
  return cs;
}

ScaleStats ScaleWorld::stats() const noexcept {
  ScaleStats total;
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    add_stats(total, shard->stats);
  }
  add_stats(total, server_.stats);
  return total;
}

std::size_t ScaleWorld::memory_bytes() const noexcept {
  std::size_t total = sizeof(ScaleWorld) + merge_.memory_bytes() +
                      server_.sim.memory_bytes();
  for (const std::unique_ptr<EdgeShard>& shard : shards_) {
    total += sizeof(EdgeShard) + shard->sim.memory_bytes() +
             shard->engine->memory_bytes() +
             shard->scratch.capacity() * sizeof(float) +
             shard->crashes.capacity() * sizeof(ScaleCrashWindow);
  }
  return total;
}

}  // namespace cadet::testbed
