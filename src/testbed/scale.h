// Sharded deterministic worlds: the million-client testbed.
//
// The per-node World (topology.h) models protocol fidelity at paper scale —
// 49 nodes, full crypto, per-packet CPU costs. ScaleWorld trades the
// per-node machinery for density and parallelism so the ROADMAP's "heavy
// traffic from millions of users" actually runs:
//
//   * Partitioning rule: one sub-world (shard) per edge subtree — the edge
//     node plus every client homed on it — and one more shard for the
//     server tier. The partition is a pure function of the topology, never
//     of the worker count.
//   * Each shard owns a private 4-ary-heap Simulator and a struct-of-arrays
//     ClientEngine (cadet/client_engine.h); client<->edge traffic is
//     intra-shard, edge<->server traffic crosses through the conservative
//     MergeQueue (sim/merge_queue.h) ordered by {time, seq, shard}.
//   * Execution is windowed: every shard runs [t, t + W) to completion,
//     then a single-threaded barrier drains the merge queue and injects
//     the boundary events, with W equal to the minimum edge<->server
//     latency so no event can arrive inside the window that emitted it.
//     The window bodies may run on any executor (tools hand in
//     util::TaskPool the way cadet_sweep fans out across seeds); because
//     shards touch disjoint state inside a window and the barrier is
//     deterministic, same-seed traces are byte-identical for any -j —
//     checksum() is the witness the determinism tests pin.
//
// Faults mirror the FaultPlan idioms at shard granularity: iid datagram
// loss on the client<->edge wire and edge crash windows (an offline edge
// drops arriving traffic; clients ride their retry/fallback chains, refill
// responses lost to a crash are re-issued after kRefillTimeoutNs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cadet/client_engine.h"
#include "obs/shard_obs.h"
#include "sim/merge_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace cadet::testbed {

/// An edge that is offline (crashed) for [begin, end): arriving client
/// traffic and refill deliveries are dropped on the floor.
struct ScaleCrashWindow {
  std::uint32_t edge = 0;
  util::SimTime begin = 0;
  util::SimTime end = 0;
};

struct ScaleConfig {
  std::uint64_t seed = 42;
  std::size_t num_clients = 1'000'000;
  std::size_t clients_per_edge = 1024;
  double duration_s = 10.0;

  // Workload (per client, Poisson arrivals).
  double request_rate_hz = 0.25;
  double upload_rate_hz = 0.10;
  std::uint16_t request_bits = 512;   ///< consumed from the pool per tick
  std::uint32_t upload_bytes = 32;    ///< payload per producer upload
  double producer_fraction = 0.5;     ///< clients that also upload
  double bad_uploader_fraction = 0.0; ///< of producers: fail sanity checks
  double flooder_fraction = 0.0;      ///< hostile request floods
  double flooder_rate_hz = 8.0;

  /// Initial edge-cache fill as a fraction of capacity. Defaults just
  /// above the kCacheRefillFraction trigger so the edge<->server refill
  /// plane is exercised from early in the run instead of only after the
  /// population drains a full bootstrap cache.
  double initial_cache_fill = 0.3;

  // Faults.
  double drop_prob = 0.0;  ///< iid loss on the client<->edge wire
  std::vector<ScaleCrashWindow> crashes;

  /// Server-side true-entropy source, bytes/s. 0 = auto-size to ~125 % of
  /// the population's steady-state wire demand.
  double source_rate_bytes_per_s = 0.0;
};

/// Aggregated run counters (summed across shards; all deterministic).
struct ScaleStats {
  // Client request economics.
  std::uint64_t requests_sent = 0;   ///< wire requests (excl. retransmits)
  std::uint64_t local_serves = 0;    ///< ticks covered by the local pool
  std::uint64_t retried = 0;         ///< retransmissions
  std::uint64_t fulfilled = 0;
  std::uint64_t fallback = 0;        ///< resolved by local CSPRNG fallback
  std::uint64_t expired = 0;         ///< retries exhausted
  std::uint64_t stale_replies = 0;   ///< replies after the slot resolved
  std::uint64_t heavy_denied = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_delivered = 0;
  // Uploads.
  std::uint64_t uploads_sent = 0;
  std::uint64_t uploads_accepted = 0;
  std::uint64_t uploads_rejected = 0;  ///< penalty drop or failed sanity
  std::uint64_t blacklist_drops = 0;
  std::uint64_t blacklisted_clients = 0;
  // Faults.
  std::uint64_t wire_dropped_requests = 0;
  std::uint64_t wire_dropped_replies = 0;
  std::uint64_t wire_dropped_uploads = 0;
  std::uint64_t crash_dropped_requests = 0;
  std::uint64_t crash_dropped_uploads = 0;
  std::uint64_t crash_dropped_refills = 0;
  // Edge<->server boundary.
  std::uint64_t refills_requested = 0;
  std::uint64_t refill_reissues = 0;
  std::uint64_t refills_completed = 0;
  std::uint64_t upload_forwards = 0;
  std::uint64_t upload_forward_bytes = 0;
  std::uint64_t server_grants = 0;
  std::uint64_t server_grant_bytes = 0;
  std::uint64_t server_source_bytes = 0;
  std::uint64_t heavy_scan_flags = 0;  ///< sum of per-scan heavy counts
};

class ScaleWorld {
 public:
  /// Runs task(0), ..., task(count - 1), possibly concurrently; indices
  /// touch disjoint shards, so any schedule is valid. Empty = sequential.
  /// Deterministic tiers stay thread-free: the executor is an opaque
  /// callback, and tools pass util::TaskPool::run from outside.
  using Executor =
      std::function<void(std::size_t count,
                         const std::function<void(std::size_t)>& task)>;

  explicit ScaleWorld(const ScaleConfig& config);

  std::size_t num_edges() const noexcept { return shards_.size(); }
  std::size_t num_shards() const noexcept { return shards_.size() + 1; }
  std::size_t num_clients() const noexcept { return num_clients_; }
  util::SimTime window() const noexcept { return window_; }
  const ScaleConfig& config() const noexcept { return config_; }

  /// Run the configured duration plus drain (every in-flight request
  /// resolves). Returns the total events executed across all shards.
  /// A boundary event violating the conservative lookahead bound is a
  /// protocol bug; it is still injected (conservation holds) but counted
  /// in lookahead_violations() so operators see it as a metric and
  /// cadet_sim --scale exits non-zero.
  std::uint64_t run(const Executor& executor = {});

  /// Per-barrier progress snapshot handed to the window hook after each
  /// merge/fold. All fields are deterministic functions of the sim state.
  struct WindowReport {
    util::SimTime watermark = 0;    ///< merged sim-time watermark
    std::uint64_t batch = 0;        ///< boundary events injected here
    std::uint64_t events = 0;       ///< cumulative events executed
    std::uint64_t lookahead_violations = 0;  ///< cumulative
  };
  using WindowHook = std::function<void(const WindowReport&)>;

  /// Called single-threaded at every window barrier (after the merge
  /// drain, injection, and obs fold). Tools hang SLO ticks, metric
  /// publication, and admin progress snapshots off this.
  void set_window_hook(WindowHook hook) { window_hook_ = std::move(hook); }

  /// Destination for folded trace events (null = fold and discard).
  /// The fold happens at barriers in {ts, seq, shard} order, so a sink
  /// attached to the tracer sees a byte-identical stream at any -j.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  /// Master gates on the per-shard observability plane: enable_tracing
  /// buffers protocol trace events (compiled out under CADET_OBS=OFF),
  /// enable_obs gates the always-on instruments (latency + boundary
  /// histograms).
  void enable_tracing(bool on) noexcept { plane_.enable_tracing(on); }
  void enable_obs(bool on) noexcept { plane_.set_enabled(on); }
  obs::ShardObsPlane& obs_plane() noexcept { return plane_; }
  const obs::ShardObsPlane& obs_plane() const noexcept { return plane_; }

  /// Publish the world's observables into `registry` under the canonical
  /// cadet_* names (deltas since the last publish; counters stay
  /// monotone). Single-threaded: call from the window hook or after
  /// run(). Exports from the registry are byte-identical at any -j.
  void publish_metrics(obs::Registry& registry);

  /// Conservative-lookahead violations observed at the merge boundary
  /// (0 on a healthy run; surfaced as cadet_shard_lookahead_violations).
  std::uint64_t lookahead_violations() const noexcept {
    return merge_.violations();
  }
  /// Merged sim-time watermark (end of the last completed window).
  util::SimTime watermark() const noexcept { return window_end_; }
  std::size_t boundary_pending() const noexcept { return merge_.pending(); }
  /// Events executed by edge shard `s` so far (the load-imbalance view).
  std::uint64_t shard_events(std::size_t s) const noexcept {
    return shards_[s]->sim.events_executed();
  }
  const ScaleStats& edge_stats(std::size_t s) const noexcept {
    return shards_[s]->stats;
  }

  std::uint64_t events_executed() const noexcept;
  /// Deterministic trace witness: per-shard FNV chains over every protocol
  /// event, combined in shard-index order with the boundary-injection
  /// chain. Byte-identical across executors for the same config.
  std::uint64_t checksum() const noexcept;
  ScaleStats stats() const noexcept;

  /// Boundary conservation counters (emitted must equal injected when
  /// run() returns).
  std::uint64_t boundary_emitted() const noexcept { return merge_.emitted(); }
  std::uint64_t boundary_injected() const noexcept {
    return boundary_injected_;
  }

  /// Heap bytes held by all shards: simulators, client engines, merge
  /// queue, and shard bookkeeping. Divide by num_clients() for the
  /// bytes/client figure BENCH_7 gates.
  std::size_t memory_bytes() const noexcept;

 private:
  struct EdgeShard {
    sim::Simulator sim;
    std::unique_ptr<ClientEngine> engine;
    util::Xoshiro256 rng{0};
    std::uint32_t index = 0;
    std::uint32_t clients = 0;
    // Edge cache accounting (bits), kCacheRefillFraction refill trigger.
    std::int64_t cache_bits = 0;
    std::int64_t cache_capacity_bits = 0;
    bool refill_pending = false;
    util::SimTime refill_issued_at = 0;
    std::uint64_t upload_buffer_bytes = 0;
    std::uint32_t usage_step = 0;
    std::vector<float> scratch;  // heavy-scan workspace
    std::vector<ScaleCrashWindow> crashes;
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    std::uint64_t refill_traces = 0;   // per-edge refill span counter
    std::uint64_t forward_traces = 0;  // per-edge upload-forward counter
    ScaleStats stats;
  };
  struct ServerShard {
    sim::Simulator sim;
    util::Xoshiro256 rng{0};
    std::int64_t pool_bytes = 0;
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    ScaleStats stats;
  };

  // Boundary event kinds.
  static constexpr std::uint32_t kRefillReq = 1;
  static constexpr std::uint32_t kRefillData = 2;
  static constexpr std::uint32_t kUploadFwd = 3;

  void step_shard(std::size_t s);
  void inject(const sim::BoundaryEvent& event);
  bool idle() const noexcept;

  // Intra-shard event bodies (client<->edge); `s` is the shard index.
  void request_tick(std::uint32_t s, std::uint32_t i);
  void send_request(std::uint32_t s, std::uint32_t i, std::uint16_t id,
                    bool retransmit);
  void edge_request(std::uint32_t s, std::uint32_t i, std::uint16_t id);
  void client_reply(std::uint32_t s, std::uint32_t i, std::uint16_t id,
                    std::uint32_t grant_bits);
  void client_reject(std::uint32_t s, std::uint32_t i, std::uint16_t id);
  void client_timeout(std::uint32_t s, std::uint32_t i, std::uint16_t id);
  void upload_tick(std::uint32_t s, std::uint32_t i);
  void edge_upload(std::uint32_t s, std::uint32_t i);
  void edge_scan(std::uint32_t s);
  void maybe_refill(EdgeShard& shard);
  void edge_refill(std::uint32_t s, std::uint64_t bytes, std::uint64_t ctx);

  // Server-shard event bodies. `ctx` is the span context carried across
  // the boundary (0 = untraced).
  void server_refill(std::uint32_t edge, std::uint64_t want_bytes,
                     std::uint64_t ctx);
  void server_upload(std::uint64_t bytes, std::uint64_t ctx);
  void server_source_tick();

  util::SimTime lan_delay(EdgeShard& shard) noexcept;
  util::SimTime boundary_delay(util::Xoshiro256& rng) noexcept;
  bool offline(const EdgeShard& shard, util::SimTime t) const noexcept;

  ScaleConfig config_;
  std::size_t num_clients_ = 0;
  util::SimTime window_ = 0;
  util::SimTime horizon_ = 0;
  util::SimTime window_end_ = 0;
  double source_rate_ = 0.0;

  std::vector<std::unique_ptr<EdgeShard>> shards_;
  ServerShard server_;
  sim::MergeQueue merge_;
  std::uint64_t boundary_injected_ = 0;
  std::uint64_t boundary_checksum_ = 0xcbf29ce484222325ULL;

  // Observability plane: per-stream delta buffers + histograms, folded at
  // barriers (see obs/shard_obs.h for the determinism argument).
  obs::ShardObsPlane plane_;
  obs::Tracer* tracer_ = nullptr;
  WindowHook window_hook_;
  // Publication state: totals already pushed into a registry, so each
  // publish_metrics call emits only the monotone delta.
  ScaleStats published_;
  std::uint64_t published_events_ = 0;
  std::uint64_t published_violations_ = 0;
  std::uint64_t published_folded_ = 0;
  obs::HdrSnapshot published_latency_;
  obs::HdrSnapshot published_crossing_;
  obs::HdrSnapshot published_occupancy_;
  std::vector<std::uint64_t> published_shard_events_;
};

}  // namespace cadet::testbed
