// Client workload generation: Poisson request/upload processes per client,
// role presets matching the paper's consumer / producer / balanced networks,
// heavy-user bursts, and misbehaving uploaders for the penalty experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "testbed/topology.h"
#include "util/stats.h"

namespace cadet::testbed {

struct ClientBehavior {
  /// Poisson rate of entropy requests.
  double request_rate_hz = 0.0;
  std::uint16_t request_bits = 512;

  /// Poisson rate of entropy uploads.
  double upload_rate_hz = 0.0;
  std::size_t upload_bytes = 32;

  /// Fraction of uploads that are intentionally bad, and how bad: the
  /// Bernoulli bias of the bad bits (0.5 = indistinguishable from good).
  double bad_fraction = 0.0;
  double bad_bias = 0.80;

  static ClientBehavior consumer();
  static ClientBehavior producer();
  static ClientBehavior balanced();
  /// Heavy user for the Fig. 8b/8c experiments: sustained high request rate.
  static ClientBehavior heavy();

  static ClientBehavior for_profile(NetworkProfile profile);
};

/// One completed request, timestamped for windowed analyses (Fig. 8b).
struct ResponseEvent {
  double sent_at_s = 0.0;       // when the request left the client
  double response_time_s = 0.0; // full window, per the paper's definition
  net::NodeId client = net::kInvalidNode;
};

/// Collected per-run measurements.
struct WorkloadMetrics {
  util::Samples response_times_s;  // every completed request, in seconds
  // Ordered by client id: per-client tables land in reports and
  // traces, so traversal order must be reproducible.
  std::map<net::NodeId, util::Samples> per_client_response_s;
  std::vector<ResponseEvent> events;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t requests_failed = 0;  // expired without a delivery
  std::uint64_t uploads_sent = 0;
  std::uint64_t bad_uploads_sent = 0;
};

/// Drives clients of a World according to behaviours, accumulating metrics.
/// Fulfillment latencies additionally land in the world registry's
/// cadet_fulfillment_seconds HDR histogram, and cadet_fulfillment_inflight
/// gauges the requests awaiting a delivery — the instruments the SLO
/// engine's burn-rate and stall rules watch.
class WorkloadDriver {
 public:
  WorkloadDriver(World& world, std::uint64_t seed);

  /// Schedule `client_idx` to follow `behavior` from `start` until `until`
  /// (simulated time). Can be called multiple times per client with
  /// disjoint windows (e.g. a heavy burst in the middle of a light run).
  void drive(std::size_t client_idx, const ClientBehavior& behavior,
             util::SimTime start, util::SimTime until);

  WorkloadMetrics& metrics() noexcept { return metrics_; }

 private:
  void schedule_next_request(std::size_t client_idx, ClientBehavior behavior,
                             util::SimTime until);
  void schedule_next_upload(std::size_t client_idx, ClientBehavior behavior,
                            util::SimTime until);

  World& world_;
  util::Xoshiro256 rng_;
  WorkloadMetrics metrics_;
  obs::HdrHistogram* fulfillment_hdr_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
};

}  // namespace cadet::testbed
