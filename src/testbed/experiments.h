// Experiment drivers: one function per figure/table of the paper's
// evaluation (§VI). Bench binaries print their results; tests run
// scaled-down instances and assert the qualitative claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "testbed/topology.h"
#include "testbed/workload.h"
#include "util/stats.h"

namespace cadet::testbed::experiments {

// ----------------------------------------------------------- Fig. 8a
/// Execution time of each protocol operation, including travel time:
/// Reg(E), Reg(CI), Reg(CR), D.Req(NC), D.Req(C); testbed vs internet.
struct TimingResult {
  std::string op;
  bool internet = false;
  util::Samples seconds;
};
std::vector<TimingResult> protocol_timing(std::size_t trials,
                                          std::uint64_t seed);

// ----------------------------------------------------------- Fig. 8b
/// Edge response time during heavy use: 6 regular + 2 heavy clients;
/// heavy clients burst mid-run and the reserve cache shields the rest.
struct HeavyUseResult {
  util::Samples regular_s;          // regular clients, during the burst
  util::Samples heavy_s;            // heavy clients, during the burst
  util::Samples regular_baseline_s; // regular clients, before the burst
};
HeavyUseResult edge_heavy_use(double duration_s, std::uint64_t seed);

// ----------------------------------------------------------- Fig. 8c
/// Usage score over time for 2 heavy + 6 light users, with the mu+3sigma
/// threshold trace.
struct UsageTraceResult {
  struct Point {
    double t_s;
    std::vector<double> scores;  // per client, heavy clients first
    double threshold;
  };
  std::vector<Point> trace;
  std::size_t num_heavy = 2;
  /// Fraction of the burst window each client spent above the threshold.
  std::vector<double> frac_above_threshold;
  /// Seconds from burst end until the score falls back below threshold.
  std::vector<double> recovery_s;
};
UsageTraceResult usage_score_trace(double duration_s, std::uint64_t seed);

// ------------------------------------------------------- Fig. 10a/10b
/// Packet accounting with and without the edge tier for several upload
/// payload sizes (43 clients x N packets, as in the paper).
struct EdgeOffloadResult {
  std::size_t payload_bytes = 0;
  bool with_edge = false;
  std::uint64_t server_uploads = 0;    // Upload (S)
  std::uint64_t server_requests = 0;   // Request (S)
  std::uint64_t edge_uploads = 0;      // Upload (E)
  std::uint64_t edge_requests = 0;     // Request (E)
  std::uint64_t edge_responses = 0;    // Response (E): server->edge data
  std::uint64_t client_responses = 0;  // Response (C)
  std::uint64_t server_total() const {
    return server_uploads + server_requests;
  }
  std::uint64_t network_total = 0;  // every packet on the wire
};
std::vector<EdgeOffloadResult> edge_offload(
    const std::vector<std::size_t>& payload_sizes,
    std::size_t packets_per_client, std::size_t num_clients,
    std::uint64_t seed);

// ----------------------------------------------------------- Fig. 10c
/// User penalty over time for a client uploading a given percentage of
/// intentionally bad data (1 upload/s, Base scheme).
struct PenaltyTraceResult {
  double bad_percent = 0.0;
  std::vector<std::pair<double, double>> trace;  // (t seconds, penalty)
  double max_penalty = 0.0;
  double time_above_thresh_frac = 0.0;
  bool blacklisted = false;
};
std::vector<PenaltyTraceResult> penalty_trace(
    const std::vector<double>& bad_percents, std::size_t uploads,
    std::uint64_t seed, PenaltyConfig penalty_config = {});

// ------------------------------------------------------------ Table II
/// Sanity-check confusion matrix vs. client behaviour (percentages of all
/// packets, as the paper tabulates).
struct SanityAccuracyResult {
  double bad_percent = 0.0;
  double true_positive = 0.0;   // good data accepted
  double true_negative = 0.0;   // bad data dropped
  double false_positive = 0.0;  // bad data accepted
  double false_negative = 0.0;  // good data dropped
  double accuracy = 0.0;        // TP + TN
};
std::vector<SanityAccuracyResult> sanity_accuracy(
    const std::vector<double>& bad_percents, std::size_t packets,
    std::uint64_t seed);

// ----------------------------------------------------------- Table III
/// Quality-assurance p-values for the CADET server pool vs. the Linux PRNG
/// model. Per SP800-22's multi-run methodology the reported p-value per
/// test is the uniformity meta p-value over `reps` runs of `bits` bits.
struct QualityResult {
  std::string generator;
  std::vector<std::pair<std::string, double>> p_values;  // test -> p
  int passed = 0;
  int total = 0;
  double min_proportion = 0.0;  // lowest per-test pass proportion
};
std::vector<QualityResult> quality_pvalues(std::size_t bits, std::size_t reps,
                                           std::uint64_t seed);

}  // namespace cadet::testbed::experiments
