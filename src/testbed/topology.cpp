#include "testbed/topology.h"

#include <stdexcept>

#include "util/rng.h"

namespace cadet::testbed {

World::World(const TestbedConfig& config) : config_(config) {
  if (config_.profiles.size() < config_.num_networks) {
    throw std::invalid_argument("World: profiles.size() < num_networks");
  }
  if (config_.num_servers == 0) {
    throw std::invalid_argument("World: need at least one server");
  }
  metrics_ = std::make_shared<obs::Registry>();
  sim_.bind_metrics(*metrics_);
  transport_ = std::make_unique<net::SimTransport>(sim_, config_.seed ^ 0x7a);
  {
    const std::size_t nodes =
        config_.num_servers + config_.num_networks +
        config_.num_networks * config_.clients_per_network;
    // Link overrides: backbone edges<->servers plus the server mesh.
    const std::size_t links =
        2 * (config_.num_networks + config_.num_servers * config_.num_servers);
    transport_->reserve(nodes, links);
    sim_.reserve(16 * nodes);  // steady-state pending-event high-water mark
  }
  transport_->set_default_profile(config_.client_link);
  transport_->bind_metrics(*metrics_);
  if (config_.fault_plan) {
    faulty_ = std::make_unique<net::FaultyTransport>(*transport_, sim_,
                                                     *config_.fault_plan);
    faulty_->bind_metrics(*metrics_);
  }
  // Every node sends/binds through the fault layer when one exists.
  net::Transport& wire =
      faulty_ ? static_cast<net::Transport&>(*faulty_) : *transport_;

  // ---- server tier ----
  for (std::size_t j = 0; j < config_.num_servers; ++j) {
    ServerNode::Config server_config;
    server_config.id = server_id(j);
    server_config.seed = config_.seed * 2654435761u + 1 + 17 * j;
    server_config.penalty = config_.penalty;
    server_config.sanity_checks_enabled = config_.sanity_checks_enabled;
    server_config.sanity_alpha = config_.sanity_alpha;
    server_config.metrics = metrics_.get();
    for (std::size_t peer = 0; peer < config_.num_servers; ++peer) {
      if (peer != j) server_config.peers.push_back(server_id(peer));
    }
    auto server = std::make_unique<ServerNode>(server_config);
    auto sim_node = std::make_unique<SimNode>(
        sim_, wire, sim::kServerCpu, server_config.id, server->cost(),
        "server");
    ServerNode* raw = server.get();
    sim_node->bind([raw](net::NodeId from, util::BytesView data,
                         util::SimTime now) {
      return raw->on_packet(from, data, now);
    });
    if (config_.server_seed_bytes > 0) {
      util::Xoshiro256 seeder(config_.seed ^ 0x5eedULL ^ (j * 977));
      server->seed_pool(seeder.bytes(config_.server_seed_bytes));
    }
    // Server<->server links ride the backbone.
    for (std::size_t peer = 0; peer < j; ++peer) {
      transport_->set_link_profile(server_id(j), server_id(peer),
                                   config_.backbone_link);
      transport_->set_link_profile(server_id(peer), server_id(j),
                                   config_.backbone_link);
    }
    servers_.push_back(std::move(server));
    server_sims_.push_back(std::move(sim_node));
  }

  const std::size_t total_clients =
      config_.num_networks * config_.clients_per_network;

  // ---- edges ----
  if (config_.use_edge) {
    for (std::size_t k = 0; k < config_.num_networks; ++k) {
      const net::NodeId home_server = server_id(k % config_.num_servers);
      EdgeNode::Config edge_config;
      edge_config.id = edge_id(k);
      edge_config.server = home_server;
      edge_config.seed = config_.seed * 40503u + 7 * k + 3;
      edge_config.num_clients = config_.clients_per_network;
      edge_config.penalty = config_.penalty;
      edge_config.sanity_checks_enabled = config_.sanity_checks_enabled;
      edge_config.sanity_alpha = config_.sanity_alpha;
      edge_config.upload_forward_bytes = config_.upload_forward_bytes;
      edge_config.refill_policy = config_.refill_policy;
      edge_config.inject_timing_entropy = config_.inject_timing_entropy;
      edge_config.min_contributors = config_.min_contributors;
      edge_config.heavy_denial_enabled = config_.heavy_denial_enabled;
      edge_config.metrics = metrics_.get();
      // Timer work is routed through the node's own CPU queue so retries
      // pay processing cost like any other engine action.
      edge_config.timer = [this, k](util::SimTime delay, EngineWork work) {
        sim_.schedule(delay, [this, k, work = std::move(work)]() {
          edge_sims_[k]->post(work);
        });
      };
      auto edge = std::make_unique<EdgeNode>(edge_config);
      auto sim_node = std::make_unique<SimNode>(
          sim_, wire, sim::kEdgeCpu, edge_config.id, edge->cost(), "edge");
      EdgeNode* raw = edge.get();
      sim_node->bind([raw](net::NodeId from, util::BytesView data,
                           util::SimTime now) {
        return raw->on_packet(from, data, now);
      });
      // Edge <-> server rides the backbone profile.
      transport_->set_link_profile(edge_config.id, home_server,
                                   config_.backbone_link);
      transport_->set_link_profile(home_server, edge_config.id,
                                   config_.backbone_link);
      edges_.push_back(std::move(edge));
      edge_sims_.push_back(std::move(sim_node));
    }
  }

  // ---- clients ----
  for (std::size_t i = 0; i < total_clients; ++i) {
    const std::size_t network = i / config_.clients_per_network;
    const net::NodeId home_server =
        server_id(network % config_.num_servers);
    ClientNode::Config client_config;
    client_config.id = client_id(i);
    client_config.server = home_server;
    client_config.edge =
        config_.use_edge ? edge_id(network) : home_server;
    client_config.seed = config_.seed * 69069u + 13 * i + 5;
    client_config.metrics = metrics_.get();
    client_config.timer = [this, i](util::SimTime delay, EngineWork work) {
      sim_.schedule(delay, [this, i, work = std::move(work)]() {
        client_sims_[i]->post(work);
      });
    };
    auto client = std::make_unique<ClientNode>(client_config);
    auto sim_node = std::make_unique<SimNode>(
        sim_, wire, sim::kClientCpu, client_config.id, client->cost(),
        "client");
    ClientNode* raw = client.get();
    sim_node->bind([raw](net::NodeId from, util::BytesView data,
                         util::SimTime now) {
      return raw->on_packet(from, data, now);
    });
    // Client <-> server traffic crosses LAN + backbone whether or not a
    // CADET edge exists (registration goes direct; in no-edge mode data
    // does too — the IP gateway still forwards it).
    sim::LatencyProfile direct = config_.backbone_link;
    direct.base += config_.client_link.base;
    transport_->set_link_profile(client_config.id, home_server, direct);
    transport_->set_link_profile(home_server, client_config.id, direct);
    clients_.push_back(std::move(client));
    client_sims_.push_back(std::move(sim_node));
  }

}

void World::start_pool_exchange(double period_s, std::size_t bytes,
                                double until_s) {
  if (servers_.size() < 2) return;
  schedule_pool_exchange(period_s, bytes, until_s);
}

void World::schedule_pool_exchange(double period_s, std::size_t bytes,
                                   double until_s) {
  // Ring exchange: every period, each server ships a chunk of its oldest
  // pool bytes to the next server (Fig. 2 steps 10-11), mixing data from
  // distant client populations together.
  const util::SimTime next = sim_.now() + util::from_seconds(period_s);
  if (util::to_seconds(next) > until_s) return;
  sim_.schedule_at(next, [this, period_s, bytes, until_s]() {
    for (std::size_t j = 0; j < servers_.size(); ++j) {
      ServerNode* server = servers_[j].get();
      const net::NodeId peer = server_id((j + 1) % servers_.size());
      server_sims_[j]->post([server, peer, bytes](util::SimTime) {
        return server->begin_pool_exchange(peer, bytes);
      });
    }
    schedule_pool_exchange(period_s, bytes, until_s);
  });
}

void World::register_edges() {
  if (!config_.use_edge) return;
  for (std::size_t k = 0; k < edges_.size(); ++k) {
    EdgeNode* edge = edges_[k].get();
    edge_sims_[k]->post(
        [edge](util::SimTime now) { return edge->begin_edge_reg(now); });
  }
  sim_.run();
  for (const auto& edge : edges_) {
    if (!edge->registered()) {
      throw std::runtime_error("World: edge registration failed");
    }
  }
}

void World::register_clients() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientNode* client = clients_[i].get();
    client_sims_[i]->post(
        [client](util::SimTime now) { return client->begin_init(now); });
  }
  sim_.run();
  if (config_.use_edge) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      ClientNode* client = clients_[i].get();
      client_sims_[i]->post(
          [client](util::SimTime now) { return client->begin_rereg(now); });
    }
    sim_.run();
  }
  for (const auto& client : clients_) {
    if (!client->initialized()) {
      throw std::runtime_error("World: client initialization failed");
    }
    if (config_.use_edge && !client->reregistered()) {
      throw std::runtime_error("World: client reregistration failed");
    }
  }
}

}  // namespace cadet::testbed
