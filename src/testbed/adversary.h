// Seeded hostile-client driver for the adversarial economics suite
// (ROADMAP item 3): behavior strategies that attack the paper's §IV–§V
// defenses — the penalty table, the EWMA usage score, the edge reserve
// cache, and the registration scheme. Like FaultPlan for network faults,
// an AdversaryPlan is fully determined by its seed plus the attacker
// assignments, so a failing adversary scenario replays exactly.
//
// Attack shapes (docs/ADVERSARIES.md):
//   * free-rider        — floods entropy requests to inflate usage while
//                         periodically rotating its reregistration token
//                         (fresh init + rereg) hoping to shed the EWMA;
//   * poisoner          — colluding producer uploading low-entropy batches
//                         (Bernoulli-biased or fixed-pattern bytes) to
//                         degrade the server pool;
//   * cache inflator    — CAPnet-style phantom demand: max-size request
//                         floods that drain the edge cache and inflate the
//                         accounting without any real need;
//   * sybil             — stays unregistered until a burst time, then
//                         registers fresh and floods requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "testbed/topology.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace cadet::testbed {

enum class AttackKind { kFreeRider, kPoisoner, kCacheInflator, kSybil };

const char* attack_name(AttackKind kind) noexcept;

/// One hostile client's strategy. Presets encode the canonical mixes; every
/// knob stays tunable so scenarios can scale the pressure.
struct AttackerSpec {
  AttackKind kind = AttackKind::kFreeRider;

  /// Poisson rate of hostile entropy requests (free-rider / inflator /
  /// sybil) and their size.
  double request_rate_hz = 0.0;
  std::uint16_t request_bits = 512;

  /// Poisson rate of hostile uploads (poisoner) and their size.
  double upload_rate_hz = 0.0;
  std::size_t upload_bytes = 32;
  /// Poison payload: Bernoulli bias of the uploaded bits, or a fixed
  /// 0xaa/0x55 pattern when `patterned` (both fail the sanity battery —
  /// the point is how fast the penalty table cuts the uploader off).
  double bias = 0.95;
  bool patterned = false;

  /// Free-rider: rotate the reregistration token this often (0 = never).
  /// A rotation is a fresh client init + edge rereg under the same node id.
  double rotate_period_s = 0.0;

  /// Sybil: remain unregistered until this sim time, then register and
  /// start the request flood. Ignored for the other kinds.
  double activate_at_s = 0.0;

  static AttackerSpec free_rider();
  static AttackerSpec poisoner();
  static AttackerSpec cache_inflator();
  static AttackerSpec sybil(double activate_at_s);
};

/// Which clients misbehave and how. The map is ordered by client index so
/// scheduling order — and therefore the whole run — is deterministic.
struct AdversaryPlan {
  std::uint64_t seed = 1;
  std::map<std::size_t, AttackerSpec> attackers;

  bool is_attacker(std::size_t client_idx) const {
    return attackers.find(client_idx) != attackers.end();
  }
  bool is_sybil(std::size_t client_idx) const {
    const auto it = attackers.find(client_idx);
    return it != attackers.end() && it->second.kind == AttackKind::kSybil;
  }
  /// One-line description (seed + per-attacker kinds) printed by failing
  /// tests so a scenario can be reproduced from the log alone.
  std::string summary() const;
};

/// Everything the hostile side did, split per attacker where the defense
/// assertions need it (ordered maps: reports traverse them).
struct AdversaryStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_fulfilled = 0;
  std::uint64_t requests_denied = 0;  // expired / resolved empty
  std::uint64_t uploads_sent = 0;
  std::uint64_t token_rotations = 0;
  std::uint64_t sybil_activations = 0;
  std::map<std::size_t, std::uint64_t> requests_by_attacker;
  std::map<std::size_t, std::uint64_t> uploads_by_attacker;
};

/// Drives the hostile clients of a World according to an AdversaryPlan,
/// mirroring WorkloadDriver for the honest side. All randomness derives
/// from the plan seed.
class AdversaryDriver {
 public:
  AdversaryDriver(World& world, const AdversaryPlan& plan);

  /// Schedule every attacker in the plan on [start, until]. Sybil
  /// attackers must NOT have been registered by the caller; they register
  /// themselves at their activate_at_s.
  void drive(util::SimTime start, util::SimTime until);

  AdversaryStats& stats() noexcept { return stats_; }
  const AdversaryPlan& plan() const noexcept { return plan_; }

 private:
  void schedule_next_request(std::size_t idx, AttackerSpec spec,
                             util::SimTime until);
  void schedule_next_upload(std::size_t idx, AttackerSpec spec,
                            util::SimTime until);
  void schedule_rotation(std::size_t idx, AttackerSpec spec,
                         util::SimTime until);
  void activate_sybil(std::size_t idx, AttackerSpec spec,
                      util::SimTime until);
  util::Bytes poison_payload(const AttackerSpec& spec);

  World& world_;
  AdversaryPlan plan_;
  util::Xoshiro256 rng_;
  AdversaryStats stats_;
};

/// Register every client except the plan's sybils (which register
/// themselves mid-run). Replicates World::register_clients() for a subset;
/// throws if a non-sybil client fails to register.
void register_clients_except_sybils(World& world, const AdversaryPlan& plan);

}  // namespace cadet::testbed
