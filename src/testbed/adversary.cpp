#include "testbed/adversary.h"

#include <algorithm>
#include <stdexcept>

#include "entropy/sources.h"

namespace cadet::testbed {

const char* attack_name(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kFreeRider: return "free-rider";
    case AttackKind::kPoisoner: return "poisoner";
    case AttackKind::kCacheInflator: return "cache-inflator";
    case AttackKind::kSybil: return "sybil";
  }
  return "unknown";
}

AttackerSpec AttackerSpec::free_rider() {
  AttackerSpec s;
  s.kind = AttackKind::kFreeRider;
  s.request_rate_hz = 6.0;
  s.request_bits = 2048;
  s.rotate_period_s = 5.0;
  return s;
}

AttackerSpec AttackerSpec::poisoner() {
  AttackerSpec s;
  s.kind = AttackKind::kPoisoner;
  s.upload_rate_hz = 4.0;
  s.upload_bytes = 96;
  s.bias = 0.95;
  return s;
}

AttackerSpec AttackerSpec::cache_inflator() {
  AttackerSpec s;
  s.kind = AttackKind::kCacheInflator;
  s.request_rate_hz = 12.0;
  s.request_bits = 2048;
  return s;
}

AttackerSpec AttackerSpec::sybil(double activate_at_s) {
  AttackerSpec s;
  s.kind = AttackKind::kSybil;
  s.request_rate_hz = 4.0;
  s.request_bits = 1024;
  s.activate_at_s = activate_at_s;
  return s;
}

std::string AdversaryPlan::summary() const {
  std::string out = "adversary seed=" + std::to_string(seed) + " attackers={";
  bool first = true;
  for (const auto& [idx, spec] : attackers) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(idx);
    out += ':';
    out += attack_name(spec.kind);
  }
  out += '}';
  return out;
}

AdversaryDriver::AdversaryDriver(World& world, const AdversaryPlan& plan)
    : world_(world), plan_(plan), rng_(plan.seed ^ 0xad7e25a1ULL) {}

void AdversaryDriver::drive(util::SimTime start, util::SimTime until) {
  auto& sim = world_.simulator();
  for (const auto& [idx, spec] : plan_.attackers) {
    if (spec.kind == AttackKind::kSybil) {
      activate_sybil(idx, spec, until);
      continue;
    }
    if (spec.request_rate_hz > 0.0) {
      sim.schedule_at(start, [this, idx, spec, until]() {
        schedule_next_request(idx, spec, until);
      });
    }
    if (spec.upload_rate_hz > 0.0) {
      sim.schedule_at(start, [this, idx, spec, until]() {
        schedule_next_upload(idx, spec, until);
      });
    }
    if (spec.rotate_period_s > 0.0) {
      sim.schedule_at(start, [this, idx, spec, until]() {
        schedule_rotation(idx, spec, until);
      });
    }
  }
}

void AdversaryDriver::schedule_next_request(std::size_t idx, AttackerSpec spec,
                                            util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime next =
      sim.now() +
      util::from_seconds(rng_.exponential(1.0 / spec.request_rate_hz));
  if (next > until) return;
  sim.schedule_at(next, [this, idx, spec, until]() {
    ClientNode& client = world_.client(idx);
    SimNode& node = world_.client_sim(idx);
    ++stats_.requests_sent;
    ++stats_.requests_by_attacker[idx];
    node.post([this, &client, spec](util::SimTime t0) {
      return client.request_entropy(
          spec.request_bits, t0,
          [this](util::BytesView data, util::SimTime) {
            if (data.empty()) {
              ++stats_.requests_denied;
            } else {
              ++stats_.requests_fulfilled;
            }
          });
    });
    schedule_next_request(idx, spec, until);
  });
}

void AdversaryDriver::schedule_next_upload(std::size_t idx, AttackerSpec spec,
                                           util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime next =
      sim.now() +
      util::from_seconds(rng_.exponential(1.0 / spec.upload_rate_hz));
  if (next > until) return;
  sim.schedule_at(next, [this, idx, spec, until]() {
    ClientNode& client = world_.client(idx);
    SimNode& node = world_.client_sim(idx);
    ++stats_.uploads_sent;
    ++stats_.uploads_by_attacker[idx];
    util::Bytes payload = poison_payload(spec);
    node.post([&client, payload = std::move(payload)](util::SimTime t0) {
      return client.upload_entropy(payload, t0);
    });
    schedule_next_upload(idx, spec, until);
  });
}

void AdversaryDriver::schedule_rotation(std::size_t idx, AttackerSpec spec,
                                        util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime next =
      sim.now() + util::from_seconds(spec.rotate_period_s);
  if (next > until) return;
  sim.schedule_at(next, [this, idx, spec, until]() {
    ClientNode& client = world_.client(idx);
    SimNode& node = world_.client_sim(idx);
    ++stats_.token_rotations;
    // A rotation is a full fresh registration under the same node id: a
    // new init with the server (new csk + token), then a rereg with the
    // edge (new cek). The usage and penalty tables key on the node id, so
    // this must NOT shed any accumulated score — that is the defense the
    // harness asserts.
    node.post([this, &client, &node](util::SimTime t0) {
      return client.begin_init(t0, [&client, &node](util::SimTime) {
        node.post([&client](util::SimTime t1) {
          return client.begin_rereg(t1);
        });
      });
    });
    schedule_rotation(idx, spec, until);
  });
}

void AdversaryDriver::activate_sybil(std::size_t idx, AttackerSpec spec,
                                     util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime at = std::max(
      sim.now(), static_cast<util::SimTime>(
                     util::from_seconds(spec.activate_at_s)));
  sim.schedule_at(at, [this, idx, spec, until]() {
    ClientNode& client = world_.client(idx);
    SimNode& node = world_.client_sim(idx);
    ++stats_.sybil_activations;
    node.post([this, idx, spec, until, &client, &node](util::SimTime t0) {
      return client.begin_init(
          t0, [this, idx, spec, until, &client, &node](util::SimTime) {
            node.post([this, idx, spec, until, &client](util::SimTime t1) {
              return client.begin_rereg(
                  t1, [this, idx, spec, until](util::SimTime) {
                    schedule_next_request(idx, spec, until);
                  });
            });
          });
    });
  });
}

util::Bytes AdversaryDriver::poison_payload(const AttackerSpec& spec) {
  if (spec.patterned) {
    return entropy::synth::patterned(spec.upload_bytes);
  }
  return entropy::synth::biased(rng_, spec.upload_bytes, spec.bias);
}

void register_clients_except_sybils(World& world, const AdversaryPlan& plan) {
  auto& sim = world.simulator();
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    if (plan.is_sybil(i)) continue;
    ClientNode& client = world.client(i);
    world.client_sim(i).post(
        [&client](util::SimTime now) { return client.begin_init(now); });
  }
  sim.run();
  if (world.config().use_edge) {
    for (std::size_t i = 0; i < world.num_clients(); ++i) {
      if (plan.is_sybil(i)) continue;
      ClientNode& client = world.client(i);
      world.client_sim(i).post(
          [&client](util::SimTime now) { return client.begin_rereg(now); });
    }
    sim.run();
  }
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    if (plan.is_sybil(i)) continue;
    if (!world.client(i).initialized()) {
      throw std::runtime_error("adversary: client initialization failed");
    }
    if (world.config().use_edge && !world.client(i).reregistered()) {
      throw std::runtime_error("adversary: client reregistration failed");
    }
  }
}

}  // namespace cadet::testbed
