#include "testbed/sim_node.h"

#include <algorithm>

#include "obs/profile.h"

namespace cadet::testbed {

SimNode::SimNode(sim::Simulator& simulator, net::Transport& transport,
                 sim::CpuModel cpu, net::NodeId id, CostMeter& meter,
                 const char* profile_label)
    : simulator_(simulator),
      transport_(transport),
      cpu_(cpu),
      id_(id),
      meter_(meter),
      profile_label_(profile_label) {}

void SimNode::bind(std::function<std::vector<net::Outgoing>(
                       net::NodeId, util::BytesView, util::SimTime)>
                       handler) {
  transport_.set_handler(
      id_, [this, handler = std::move(handler)](net::NodeId from,
                                                util::BytesView data,
                                                util::SimTime) {
        // Copy the datagram: processing may start later than delivery.
        util::Bytes copy(data.begin(), data.end());
        enqueue([handler, from, payload = std::move(copy)](
                    util::SimTime start) {
          return handler(from, payload, start);
        });
      });
}

void SimNode::post(Work work) { enqueue(std::move(work)); }

void SimNode::enqueue(Work work) {
  queue_.push_back(std::move(work));
  schedule_processing();
}

void SimNode::schedule_processing() {
  if (scheduled_ || queue_.empty()) return;
  scheduled_ = true;
  const util::SimTime start =
      std::max(simulator_.now(), busy_until_);
  simulator_.schedule_at(start, [this]() { process_one(); });
}

void SimNode::process_one() {
  if (queue_.empty()) {
    scheduled_ = false;
    return;
  }
  Work work = std::move(queue_.front());
  queue_.pop_front();

  const util::SimTime start = simulator_.now();
  CADET_PROFILE_SCOPE(profile_label_);
  std::vector<net::Outgoing> out = work(start);
  const double cycles = meter_.take();
  busy_until_ = start + cpu_.time_for_cycles(cycles);
  // Charge the simulated busy window (the metered engine work) to this
  // tier's profile node, alongside the wall time the RAII scope measures.
  CADET_PROFILE_ADD_SIM(busy_until_ - start);

  // Transmissions leave when processing completes.
  simulator_.schedule_at(busy_until_, [this, out = std::move(out)]() {
    for (const auto& o : out) {
      transport_.send(id_, o.to, o.data);
    }
  });

  // scheduled_ stays true while this node drains its queue, so work
  // enqueued from inside `work` cannot jump ahead of the busy window.
  scheduled_ = false;
  schedule_processing();
}

}  // namespace cadet::testbed
