#include "testbed/workload.h"

#include "entropy/sources.h"
#include "obs/hdr.h"

namespace cadet::testbed {

ClientBehavior ClientBehavior::consumer() {
  ClientBehavior b;
  b.request_rate_hz = 0.5;
  b.request_bits = 512;
  b.upload_rate_hz = 0.05;
  b.upload_bytes = 32;
  return b;
}

ClientBehavior ClientBehavior::producer() {
  ClientBehavior b;
  b.request_rate_hz = 0.05;
  b.request_bits = 256;
  b.upload_rate_hz = 1.0;
  b.upload_bytes = 32;
  return b;
}

ClientBehavior ClientBehavior::balanced() {
  ClientBehavior b;
  b.request_rate_hz = 0.25;
  b.request_bits = 512;
  b.upload_rate_hz = 0.5;
  b.upload_bytes = 32;
  return b;
}

ClientBehavior ClientBehavior::heavy() {
  ClientBehavior b;
  b.request_rate_hz = 4.0;
  b.request_bits = 2048;
  b.upload_rate_hz = 0.0;
  return b;
}

ClientBehavior ClientBehavior::for_profile(NetworkProfile profile) {
  switch (profile) {
    case NetworkProfile::kConsumer: return consumer();
    case NetworkProfile::kProducer: return producer();
    case NetworkProfile::kBalanced: return balanced();
  }
  return balanced();
}

WorkloadDriver::WorkloadDriver(World& world, std::uint64_t seed)
    : world_(world), rng_(seed ^ 0x3017ead5ULL) {
  fulfillment_hdr_ = &world.metrics().hdr("cadet_fulfillment_seconds");
  inflight_gauge_ = &world.metrics().gauge("cadet_fulfillment_inflight");
}

void WorkloadDriver::drive(std::size_t client_idx,
                           const ClientBehavior& behavior,
                           util::SimTime start, util::SimTime until) {
  auto& sim = world_.simulator();
  if (behavior.request_rate_hz > 0.0) {
    sim.schedule_at(start, [this, client_idx, behavior, until]() {
      schedule_next_request(client_idx, behavior, until);
    });
  }
  if (behavior.upload_rate_hz > 0.0) {
    sim.schedule_at(start, [this, client_idx, behavior, until]() {
      schedule_next_upload(client_idx, behavior, until);
    });
  }
}

void WorkloadDriver::schedule_next_request(std::size_t client_idx,
                                           ClientBehavior behavior,
                                           util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime next =
      sim.now() + util::from_seconds(rng_.exponential(1.0 / behavior.request_rate_hz));
  if (next > until) return;
  sim.schedule_at(next, [this, client_idx, behavior, until]() {
    ClientNode& client = world_.client(client_idx);
    SimNode& node = world_.client_sim(client_idx);
    ++metrics_.requests_sent;
    inflight_gauge_->add(1);
    const net::NodeId cid = client.id();
    node.post([this, &client, &node, cid, behavior](util::SimTime t0) {
      return client.request_entropy(
          behavior.request_bits, t0,
          [this, &node, cid, t0](util::BytesView data, util::SimTime) {
            if (data.empty()) {
              ++metrics_.requests_failed;  // expired, not delivered
              inflight_gauge_->sub(1);
              return;
            }
            // Completion is when the client finishes processing the
            // delivery; a zero-cost follow-up item lands exactly there.
            node.post([this, cid, t0](util::SimTime done) {
              const double rt = util::to_seconds(done - t0);
              metrics_.response_times_s.add(rt);
              metrics_.per_client_response_s[cid].add(rt);
              metrics_.events.push_back(
                  ResponseEvent{util::to_seconds(t0), rt, cid});
              ++metrics_.responses_received;
              fulfillment_hdr_->record(rt);
              inflight_gauge_->sub(1);
              return std::vector<net::Outgoing>{};
            });
          });
    });
    schedule_next_request(client_idx, behavior, until);
  });
}

void WorkloadDriver::schedule_next_upload(std::size_t client_idx,
                                          ClientBehavior behavior,
                                          util::SimTime until) {
  auto& sim = world_.simulator();
  const util::SimTime next =
      sim.now() + util::from_seconds(rng_.exponential(1.0 / behavior.upload_rate_hz));
  if (next > until) return;
  sim.schedule_at(next, [this, client_idx, behavior, until]() {
    ClientNode& client = world_.client(client_idx);
    SimNode& node = world_.client_sim(client_idx);
    ++metrics_.uploads_sent;
    util::Bytes payload;
    if (behavior.bad_fraction > 0.0 && rng_.bernoulli(behavior.bad_fraction)) {
      ++metrics_.bad_uploads_sent;
      payload = entropy::synth::biased(rng_, behavior.upload_bytes,
                                       behavior.bad_bias);
    } else {
      payload = entropy::synth::good(rng_, behavior.upload_bytes);
    }
    node.post([&client, payload = std::move(payload)](util::SimTime t0) {
      return client.upload_entropy(payload, t0);
    });
    schedule_next_upload(client_idx, behavior, until);
  });
}

}  // namespace cadet::testbed
