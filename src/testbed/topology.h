// Builds the paper's 49-Pi testbed (Fig. 9) inside the simulator:
// four networks of 11 clients behind one edge each, one central server;
// clients at 20 MHz, edges at 300 MHz, the server at 600 MHz. A no-edge
// variant (clients wired straight to the server) backs the Fig. 10 "W/O"
// comparisons, and node counts are configurable so single-network
// experiments (Fig. 8) reuse the same builder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cadet/client_node.h"
#include "cadet/edge_node.h"
#include "cadet/server_node.h"
#include "net/faulty_transport.h"
#include "net/sim_transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "testbed/sim_node.h"

namespace cadet::testbed {

/// Behavioural profile of a client network (paper §VI-A): consumers mostly
/// request, producers mostly upload, balanced networks mix both.
enum class NetworkProfile { kConsumer, kProducer, kBalanced };

struct TestbedConfig {
  std::uint64_t seed = 42;
  std::size_t num_networks = 4;
  std::size_t clients_per_network = 11;
  /// Server-tier size (paper Fig. 1: "a collection of 1 to N devices").
  /// Edges and clients are assigned round-robin. Start ring pool exchange
  /// (Fig. 2 steps 10-11) with World::start_pool_exchange().
  std::size_t num_servers = 1;
  std::vector<NetworkProfile> profiles = {
      NetworkProfile::kConsumer, NetworkProfile::kBalanced,
      NetworkProfile::kBalanced, NetworkProfile::kProducer};
  /// false reproduces the Fig. 10 "W/O" runs: clients address the server
  /// directly and no aggregation or caching happens.
  bool use_edge = true;
  /// Latency between tiers; swap in internet_wan() for the paper's
  /// "real world" timing columns.
  sim::LatencyProfile client_link = sim::testbed_lan();
  sim::LatencyProfile backbone_link = sim::testbed_backbone();
  /// Server pool bootstrap (bytes of seed entropy).
  std::size_t server_seed_bytes = 1 << 16;
  PenaltyConfig penalty{};
  bool sanity_checks_enabled = true;
  double sanity_alpha = SanityChecker::kDefaultAlpha;
  std::size_t upload_forward_bytes = kUploadForwardBytes;
  RefillPolicy refill_policy = RefillPolicy::kFixedFraction;
  bool inject_timing_entropy = false;
  std::size_t min_contributors = 1;
  /// Stage-2 heavy-user policing (outright denial after sustained
  /// strikes at flooding rate). Off reproduces the paper's prototype,
  /// which only reserve-blocks (§III-C) — the Fig. 8c score-trace
  /// experiment needs the raw Eq. 1 dynamics.
  bool heavy_denial_enabled = true;
  /// When set, every datagram crosses a FaultyTransport driven by this
  /// plan (chaos experiments); engines get retry timers either way.
  std::optional<net::FaultPlan> fault_plan;
};

/// Node-id plan: servers = 1 + j, edges = 100 + k, clients = 1000 + i.
inline constexpr net::NodeId kServerId = 1;
inline net::NodeId server_id(std::size_t j) {
  return static_cast<net::NodeId>(1 + j);
}
inline net::NodeId edge_id(std::size_t k) {
  return static_cast<net::NodeId>(100 + k);
}
inline net::NodeId client_id(std::size_t i) {
  return static_cast<net::NodeId>(1000 + i);
}

class World {
 public:
  explicit World(const TestbedConfig& config);

  sim::Simulator& simulator() noexcept { return sim_; }
  net::SimTransport& transport() noexcept { return *transport_; }
  /// Fault-injection layer; null unless the config carried a fault_plan.
  net::FaultyTransport* faults() noexcept { return faulty_.get(); }
  const TestbedConfig& config() const noexcept { return config_; }

  /// World-wide metrics registry. Every node, the transport, and the
  /// simulator publish here; each World owns its own so repeated runs
  /// (benches build many Worlds) never bleed counts into each other.
  obs::Registry& metrics() noexcept { return *metrics_; }

  /// Primary server (index 0); multi-server deployments use server(j).
  ServerNode& server() noexcept { return *servers_[0]; }
  SimNode& server_sim() noexcept { return *server_sims_[0]; }
  std::size_t num_servers() const noexcept { return servers_.size(); }
  ServerNode& server(std::size_t j) noexcept { return *servers_[j]; }
  SimNode& server_sim(std::size_t j) noexcept { return *server_sims_[j]; }

  std::size_t num_edges() const noexcept { return edges_.size(); }
  EdgeNode& edge(std::size_t k) noexcept { return *edges_[k]; }
  SimNode& edge_sim(std::size_t k) noexcept { return *edge_sims_[k]; }

  std::size_t num_clients() const noexcept { return clients_.size(); }
  ClientNode& client(std::size_t i) noexcept { return *clients_[i]; }
  SimNode& client_sim(std::size_t i) noexcept { return *client_sims_[i]; }

  /// Which network a client index belongs to.
  std::size_t network_of(std::size_t i) const noexcept {
    return i / config_.clients_per_network;
  }
  NetworkProfile profile_of(std::size_t i) const noexcept {
    return config_.profiles[network_of(i)];
  }

  /// Register every edge with the server and run the exchanges to
  /// completion. No-op in no-edge mode.
  void register_edges();

  /// Run client initialization (and reregistration when edges exist) for
  /// every client, to completion.
  void register_clients();

  /// Begin periodic ring pool exchange between servers (Fig. 2 steps
  /// 10-11): every `period_s`, each server ships `bytes` of its oldest
  /// pool data to the next server, until simulated time `until_s`.
  void start_pool_exchange(double period_s, std::size_t bytes,
                           double until_s);

 private:
  void schedule_pool_exchange(double period_s, std::size_t bytes,
                              double until_s);

  TestbedConfig config_;
  // Declared before the nodes so it outlives them (nodes hold raw
  // instrument pointers into the registry).
  std::shared_ptr<obs::Registry> metrics_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimTransport> transport_;
  std::unique_ptr<net::FaultyTransport> faulty_;

  std::vector<std::unique_ptr<ServerNode>> servers_;
  std::vector<std::unique_ptr<SimNode>> server_sims_;
  std::vector<std::unique_ptr<EdgeNode>> edges_;
  std::vector<std::unique_ptr<SimNode>> edge_sims_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  std::vector<std::unique_ptr<SimNode>> client_sims_;
};

}  // namespace cadet::testbed
