#include "testbed/experiments.h"

#include <algorithm>
#include <cmath>

#include "entropy/linux_prng.h"
#include "entropy/sources.h"
#include "entropy/yarrow.h"
#include "nist/special.h"
#include "util/rng.h"

namespace cadet::testbed::experiments {

namespace {

/// Single-network world (1 edge, 11 clients) used by the Fig. 8a trials.
TestbedConfig small_world_config(bool internet, std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 1;
  config.clients_per_network = 11;
  config.profiles = {NetworkProfile::kBalanced};
  if (internet) {
    config.backbone_link = sim::internet_wan();
  }
  config.server_seed_bytes = 1 << 17;
  return config;
}

/// Measure completion time of an operation on `world`: `fire` posts the
/// work at t0 and arranges for `done` to be latched. Returns seconds.
double run_and_measure(World& world, util::SimTime t0,
                       const std::function<void(double*)>& fire) {
  double done_s = -1.0;
  (void)t0;
  fire(&done_s);
  world.simulator().run();
  return done_s;
}

}  // namespace

// ---------------------------------------------------------------- Fig. 8a

std::vector<TimingResult> protocol_timing(std::size_t trials,
                                          std::uint64_t seed) {
  std::vector<TimingResult> results;
  for (const bool internet : {false, true}) {
    TimingResult reg_e{"Reg (E)", internet, {}};
    TimingResult reg_ci{"Reg (CI)", internet, {}};
    TimingResult reg_cr{"Reg (CR)", internet, {}};
    TimingResult dreq_nc{"D.Req (NC)", internet, {}};
    TimingResult dreq_c{"D.Req (C)", internet, {}};

    for (std::size_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t trial_seed = seed + 7919 * trial + (internet ? 1 : 0);
      World world(small_world_config(internet, trial_seed));
      auto& sim = world.simulator();

      // --- Reg (E): edge registration, fresh state ---
      {
        const util::SimTime t0 = sim.now();
        const double s = run_and_measure(world, t0, [&](double* done) {
          EdgeNode* edge = &world.edge(0);
          SimNode* node = &world.edge_sim(0);
          node->post([=, &world](util::SimTime now) {
            return edge->begin_edge_reg(now, [=, &world](util::SimTime) {
              // Latch after the edge finishes processing the final ack.
              node->post([=, &world](util::SimTime t) {
                *done = util::to_seconds(t - t0);
                return std::vector<net::Outgoing>{};
              });
            });
          });
        });
        if (s >= 0) reg_e.seconds.add(s);
      }

      // --- Reg (CI): client initialization ---
      {
        const util::SimTime t0 = sim.now();
        const double s = run_and_measure(world, t0, [&](double* done) {
          ClientNode* client = &world.client(0);
          SimNode* node = &world.client_sim(0);
          node->post([=](util::SimTime now) {
            return client->begin_init(now, [=](util::SimTime) {
              node->post([=](util::SimTime t) {
                *done = util::to_seconds(t - t0);
                return std::vector<net::Outgoing>{};
              });
            });
          });
        });
        if (s >= 0) reg_ci.seconds.add(s);
      }

      // --- Reg (CR): token reregistration with the edge ---
      {
        const util::SimTime t0 = sim.now();
        const double s = run_and_measure(world, t0, [&](double* done) {
          ClientNode* client = &world.client(0);
          SimNode* node = &world.client_sim(0);
          node->post([=](util::SimTime now) {
            return client->begin_rereg(now, [=](util::SimTime) {
              node->post([=](util::SimTime t) {
                *done = util::to_seconds(t - t0);
                return std::vector<net::Outgoing>{};
              });
            });
          });
        });
        if (s >= 0) reg_cr.seconds.add(s);
      }

      // --- D.Req: first request misses the cold cache (NC), the refill it
      // triggers makes the second request a hit (C). Client 1 is used so
      // the heavy-user statistics stay clean. ---
      for (int phase = 0; phase < 2; ++phase) {
        const util::SimTime t0 = sim.now();
        const double s = run_and_measure(world, t0, [&](double* done) {
          ClientNode* client = &world.client(1);
          SimNode* node = &world.client_sim(1);
          node->post([=](util::SimTime now) {
            return client->request_entropy(
                512, now, [=](util::BytesView, util::SimTime) {
                  node->post([=](util::SimTime t) {
                    *done = util::to_seconds(t - t0);
                    return std::vector<net::Outgoing>{};
                  });
                });
          });
        });
        if (s >= 0) (phase == 0 ? dreq_nc : dreq_c).seconds.add(s);
      }
    }

    results.push_back(std::move(reg_e));
    results.push_back(std::move(reg_ci));
    results.push_back(std::move(reg_cr));
    results.push_back(std::move(dreq_nc));
    results.push_back(std::move(dreq_c));
  }
  return results;
}

// ---------------------------------------------------------------- Fig. 8b

HeavyUseResult edge_heavy_use(double duration_s, std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 1;
  config.clients_per_network = 8;
  config.profiles = {NetworkProfile::kBalanced};
  config.server_seed_bytes = 1 << 20;
  World world(config);
  world.register_edges();

  WorkloadDriver driver(world, seed);
  const util::SimTime t_end = util::from_seconds(duration_s);
  const util::SimTime burst_start = util::from_seconds(duration_s / 3.0);
  const util::SimTime burst_end = util::from_seconds(2.0 * duration_s / 3.0);

  // Clients 0..5 regular throughout; 6..7 regular, then a heavy burst.
  ClientBehavior regular;
  regular.request_rate_hz = 0.3;
  regular.request_bits = 512;
  for (std::size_t i = 0; i < 6; ++i) driver.drive(i, regular, 0, t_end);
  for (std::size_t i = 6; i < 8; ++i) {
    driver.drive(i, regular, 0, burst_start);
    driver.drive(i, ClientBehavior::heavy(), burst_start, burst_end);
    driver.drive(i, regular, burst_end, t_end);
  }

  world.simulator().run_until(t_end + util::from_seconds(5));
  world.simulator().run();

  HeavyUseResult out;
  const double burst_lo = util::to_seconds(burst_start);
  const double burst_hi = util::to_seconds(burst_end);
  for (const auto& ev : driver.metrics().events) {
    const bool heavy_client = ev.client >= client_id(6);
    if (ev.sent_at_s >= burst_lo && ev.sent_at_s < burst_hi) {
      (heavy_client ? out.heavy_s : out.regular_s).add(ev.response_time_s);
    } else if (!heavy_client && ev.sent_at_s < burst_lo) {
      out.regular_baseline_s.add(ev.response_time_s);
    }
  }
  return out;
}

// ---------------------------------------------------------------- Fig. 8c

UsageTraceResult usage_score_trace(double duration_s, std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 1;
  config.clients_per_network = 8;
  config.profiles = {NetworkProfile::kBalanced};
  config.server_seed_bytes = 1 << 20;
  // Fig. 8c traces the raw Eq. 1 score dynamics (rise during the burst,
  // slow per-packet decay back under the threshold). The stage-2 denial
  // gate would freeze the heavy clients' scores mid-burst — it is our
  // hardening on top of the paper's prototype, so it is off here.
  config.heavy_denial_enabled = false;
  World world(config);
  world.register_edges();

  WorkloadDriver driver(world, seed);
  const util::SimTime t_end = util::from_seconds(duration_s);
  const util::SimTime burst_start = util::from_seconds(duration_s * 0.25);
  const util::SimTime burst_end = util::from_seconds(duration_s * 0.60);

  // Heavy clients (0,1) run a long high-volume burst; light clients get
  // short moderate bursts at staggered times (the paper's L-lines also
  // show activity spikes).
  // Idle-period chatter sets the post-burst decay rate (scores decay per
  // processed packet): ~2 packets/s across the LAN puts heavy-user
  // recovery in the paper's 30-60 s band.
  ClientBehavior idle;
  idle.request_rate_hz = 0.25;
  idle.request_bits = 256;
  ClientBehavior light_burst;
  light_burst.request_rate_hz = 1.2;
  light_burst.request_bits = 1024;
  util::Xoshiro256 rng(seed ^ 0xfaceULL);

  for (std::size_t i = 0; i < 2; ++i) {
    driver.drive(i, idle, 0, burst_start);
    driver.drive(i, ClientBehavior::heavy(), burst_start, burst_end);
    driver.drive(i, idle, burst_end, t_end);
  }
  for (std::size_t i = 2; i < 8; ++i) {
    driver.drive(i, idle, 0, t_end);
    // One ~25 s light burst at a random point in the middle half.
    const double start_s =
        duration_s * (0.25 + 0.4 * rng.uniform01());
    driver.drive(i, light_burst, util::from_seconds(start_s),
                 util::from_seconds(start_s + 25.0));
  }

  // Sample scores once per simulated second.
  UsageTraceResult out;
  auto& sim = world.simulator();
  EdgeNode& edge = world.edge(0);
  for (double t = 1.0; t <= duration_s; t += 1.0) {
    sim.schedule_at(util::from_seconds(t), [&, t]() {
      UsageTraceResult::Point point;
      point.t_s = t;
      for (std::size_t i = 0; i < 8; ++i) {
        point.scores.push_back(edge.usage().score(client_id(i)));
      }
      point.threshold = edge.usage().heavy_threshold();
      out.trace.push_back(std::move(point));
    });
  }

  sim.run_until(t_end + util::from_seconds(10));
  sim.run();

  // Fraction of the heavy-burst window spent above threshold, per client.
  const double lo = util::to_seconds(burst_start);
  const double hi = util::to_seconds(burst_end);
  out.frac_above_threshold.assign(8, 0.0);
  std::vector<int> window_points(8, 0);
  for (const auto& point : out.trace) {
    if (point.t_s < lo || point.t_s >= hi) continue;
    for (std::size_t i = 0; i < 8; ++i) {
      ++window_points[i];
      if (point.scores[i] > point.threshold) {
        out.frac_above_threshold[i] += 1.0;
      }
    }
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (window_points[i] > 0) {
      out.frac_above_threshold[i] /= window_points[i];
    }
  }

  // Recovery: first time after each client's burst end at which its score
  // is back below threshold.
  out.recovery_s.assign(8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) {
    const double own_burst_end = (i < 2) ? hi : 0.0;  // lights vary; skip
    if (i >= 2) continue;
    for (const auto& point : out.trace) {
      if (point.t_s < own_burst_end) continue;
      if (point.scores[i] <= point.threshold) {
        out.recovery_s[i] = point.t_s - own_burst_end;
        break;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------ Fig. 10a/b

std::vector<EdgeOffloadResult> edge_offload(
    const std::vector<std::size_t>& payload_sizes,
    std::size_t packets_per_client, std::size_t num_clients,
    std::uint64_t seed) {
  std::vector<EdgeOffloadResult> results;
  for (const std::size_t payload : payload_sizes) {
    for (const bool with_edge : {false, true}) {
      TestbedConfig config;
      config.seed = seed + payload;
      config.num_networks = 4;
      config.clients_per_network = 11;
      config.use_edge = with_edge;
      config.server_seed_bytes = 1 << 21;
      // Offload accounting wants pure packet counts; disable the sanity
      // CPU cost's effect on shape by keeping checks on (they run at the
      // edge either way) but the workload honest.
      World world(config);
      if (with_edge) world.register_edges();
      world.transport().reset_counters();

      auto& sim = world.simulator();
      util::Xoshiro256 rng(seed ^ (payload * 2654435761ULL));
      std::uint64_t client_responses = 0;

      // Each client emits packets_per_client packets at a steady pace:
      // 80 % uploads of `payload` bytes, 20 % entropy requests.
      const std::size_t drive_clients =
          std::min<std::size_t>(num_clients, world.num_clients());
      for (std::size_t i = 0; i < drive_clients; ++i) {
        for (std::size_t k = 0; k < packets_per_client; ++k) {
          const util::SimTime when =
              util::from_seconds(0.5 + 2.0 * static_cast<double>(k) +
                                 2.0 * rng.uniform01());
          const bool is_upload = rng.uniform01() < 0.8;
          ClientNode* client = &world.client(i);
          SimNode* node = &world.client_sim(i);
          if (is_upload) {
            util::Bytes data = entropy::synth::good(rng, payload);
            sim.schedule_at(when, [node, client, data = std::move(data)]() {
              node->post([client, data](util::SimTime t) {
                return client->upload_entropy(data, t);
              });
            });
          } else {
            sim.schedule_at(when, [node, client, &client_responses]() {
              node->post([client, &client_responses](util::SimTime t) {
                return client->request_entropy(
                    512, t, [&client_responses](util::BytesView,
                                                util::SimTime) {
                      ++client_responses;
                    });
              });
            });
          }
        }
      }

      sim.run();

      EdgeOffloadResult r;
      r.payload_bytes = payload;
      r.with_edge = with_edge;
      const auto& server_stats = world.server().stats();
      r.server_uploads = server_stats.uploads_received;
      r.server_requests = server_stats.requests_served;
      if (with_edge) {
        for (std::size_t k = 0; k < world.num_edges(); ++k) {
          const auto& edge_stats = world.edge(k).stats();
          r.edge_uploads += edge_stats.uploads_received;
          r.edge_requests += edge_stats.requests_received;
          // Responses the edge received from the server tier:
          r.edge_responses +=
              world.transport().counters(edge_id(k)).packets_received -
              edge_stats.uploads_received - edge_stats.requests_received;
        }
      }
      r.client_responses = client_responses;
      r.network_total = world.transport().total_packets();
      results.push_back(r);
    }
  }
  return results;
}

// ---------------------------------------------------------------- Fig. 10c

std::vector<PenaltyTraceResult> penalty_trace(
    const std::vector<double>& bad_percents, std::size_t uploads,
    std::uint64_t seed, PenaltyConfig penalty_config) {
  std::vector<PenaltyTraceResult> results;
  for (const double bad_percent : bad_percents) {
    EdgeNode::Config config;
    config.id = 100;
    config.server = 1;
    config.seed = seed + static_cast<std::uint64_t>(bad_percent * 100);
    config.num_clients = 1;
    config.penalty = penalty_config;
    EdgeNode edge(config);
    util::Xoshiro256 rng(seed ^ 0xbadULL ^
                         static_cast<std::uint64_t>(bad_percent * 1000));

    PenaltyTraceResult trace;
    trace.bad_percent = bad_percent;
    const net::NodeId client = 1000;
    std::size_t above = 0;
    for (std::size_t u = 0; u < uploads; ++u) {
      util::Bytes payload =
          rng.uniform01() < bad_percent / 100.0
              ? entropy::synth::bad(rng, 32)
              : entropy::synth::good(rng, 32);
      const util::SimTime t = util::from_seconds(static_cast<double>(u));
      (void)edge.on_packet(client, encode(Packet::data_upload(
                                       std::move(payload), false)),
                           t);
      const double score = edge.penalty().score(client);
      trace.trace.emplace_back(static_cast<double>(u), score);
      trace.max_penalty = std::max(trace.max_penalty, score);
      if (score >= edge.penalty().config().drop_thresh) ++above;
      if (edge.penalty().is_blacklisted(client)) trace.blacklisted = true;
    }
    trace.time_above_thresh_frac =
        static_cast<double>(above) / static_cast<double>(uploads);
    results.push_back(std::move(trace));
  }
  return results;
}

// ----------------------------------------------------------------- Table II

std::vector<SanityAccuracyResult> sanity_accuracy(
    const std::vector<double>& bad_percents, std::size_t packets,
    std::uint64_t seed) {
  std::vector<SanityAccuracyResult> results;
  for (const double bad_percent : bad_percents) {
    EdgeNode::Config config;
    config.id = 100;
    config.server = 1;
    config.seed = seed + static_cast<std::uint64_t>(bad_percent * 100);
    config.num_clients = 1;
    EdgeNode edge(config);
    util::Xoshiro256 rng(seed ^
                         (0xacc0ULL +
                          static_cast<std::uint64_t>(bad_percent * 1000)));

    const net::NodeId client = 1000;
    std::uint64_t tp = 0, tn = 0, fp = 0, fn = 0;
    for (std::size_t k = 0; k < packets; ++k) {
      const bool is_bad = rng.uniform01() < bad_percent / 100.0;
      // Table II's adversary uploads *mildly* biased data — detectable
      // about half the time, per the paper's measured TN/FP split
      // (bias 0.57 => ~50 % caught, calibrated against the checker).
      util::Bytes payload = is_bad
                                ? entropy::synth::biased(rng, 32, 0.57)
                                : entropy::synth::good(rng, 32);
      const auto before = edge.stats();
      (void)edge.on_packet(
          client, encode(Packet::data_upload(std::move(payload), false)),
          util::from_seconds(static_cast<double>(k)));
      const auto& after = edge.stats();
      // Table II scores the *sanity classifier*: a packet counts as
      // "classified bad" only when the checks flagged it. Packets the
      // penalty gate ignores are never inspected, so they land in the
      // classified-good column — that is what makes the paper's FP column
      // jump (8.94 at 10 %) once a misbehaving client goes delinquent and
      // its (mostly bad) traffic stops being examined.
      const bool flagged_bad =
          after.uploads_rejected_sanity > before.uploads_rejected_sanity;
      if (is_bad) {
        flagged_bad ? ++tn : ++fp;
      } else {
        flagged_bad ? ++fn : ++tp;
      }
    }
    SanityAccuracyResult r;
    r.bad_percent = bad_percent;
    const double n = static_cast<double>(packets);
    r.true_positive = 100.0 * static_cast<double>(tp) / n;
    r.true_negative = 100.0 * static_cast<double>(tn) / n;
    r.false_positive = 100.0 * static_cast<double>(fp) / n;
    r.false_negative = 100.0 * static_cast<double>(fn) / n;
    r.accuracy = r.true_positive + r.true_negative;
    results.push_back(r);
  }
  return results;
}

// ---------------------------------------------------------------- Table III

std::vector<QualityResult> quality_pvalues(std::size_t bits, std::size_t reps,
                                           std::uint64_t seed) {
  const std::size_t bytes_needed = (bits + 7) / 8;
  nist::QualityBattery battery;
  std::vector<QualityResult> results;

  const auto summarize = [](const char* name,
                            const nist::MultiRunAssessment& assessment) {
    QualityResult r;
    r.generator = name;
    r.min_proportion = 1.0;
    for (const auto& a : assessment.assess()) {
      r.p_values.emplace_back(a.name, a.uniformity_p);
      r.min_proportion = std::min(r.min_proportion, a.pass_proportion);
      if (a.uniformity_ok) ++r.passed;
      ++r.total;
    }
    return r;
  };

  // ---- CADET: full upload pipeline into the server pool ----
  {
    entropy::ServerEntropyPool pool(4 * bytes_needed);
    entropy::YarrowMixer mixer(pool);
    util::Xoshiro256 rng(seed ^ 0xcade7ULL);
    nist::MultiRunAssessment assessment;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      while (pool.size() < bytes_needed) {
        mixer.add_input(entropy::synth::good(rng, 32));
      }
      assessment.add_run(battery.run(pool.pop(bytes_needed), bits));
    }
    results.push_back(summarize("CADET", assessment));
  }

  // ---- LPRNG baseline: Linux input-pool model fed timing events ----
  {
    entropy::LinuxPrngModel lprng;
    util::Xoshiro256 rng(seed ^ 0x11e0cULL);
    std::uint64_t t_ns = 0;
    nist::MultiRunAssessment assessment;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // Feed a burst of irregular event timings, then extract.
      for (int e = 0; e < 512; ++e) {
        t_ns += static_cast<std::uint64_t>(rng.exponential(1e6));
        lprng.add_timer_event(t_ns);
      }
      assessment.add_run(battery.run(lprng.extract(bytes_needed), bits));
    }
    results.push_back(summarize("LPRNG", assessment));
  }

  return results;
}

}  // namespace cadet::testbed::experiments
