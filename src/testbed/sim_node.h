// Binds a sans-IO protocol engine to the discrete-event simulator with a
// single-core CPU model: work items (incoming packets, locally initiated
// actions) are processed serially; each item's metered cycle cost extends
// the node's busy window at the tier clock rate, and the item's outgoing
// packets leave when processing completes. This reproduces the paper's
// underclocked Raspberry Pis, where a 20 MHz client takes real time to
// craft and parse packets.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "cadet/node_common.h"
#include "net/transport.h"
#include "sim/cpu.h"
#include "sim/simulator.h"

namespace cadet::testbed {

class SimNode {
 public:
  /// A unit of engine work executed at a simulated time; returns the
  /// packets to transmit when the work completes.
  using Work = std::function<std::vector<net::Outgoing>(util::SimTime)>;

  /// `profile_label` names this node's tier in the sim-time profiler call
  /// tree (e.g. "client"); it must outlive the node (string literal).
  SimNode(sim::Simulator& simulator, net::Transport& transport,
          sim::CpuModel cpu, net::NodeId id, CostMeter& meter,
          const char* profile_label = "node");

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  net::NodeId id() const noexcept { return id_; }

  /// Install `handler` as this node's packet handler on the transport;
  /// deliveries are queued through the CPU model.
  void bind(std::function<std::vector<net::Outgoing>(
                net::NodeId, util::BytesView, util::SimTime)>
                handler);

  /// Queue a locally initiated action (e.g. "send a request now").
  void post(Work work);

  util::SimTime busy_until() const noexcept { return busy_until_; }

 private:
  void enqueue(Work work);
  void schedule_processing();
  void process_one();

  sim::Simulator& simulator_;
  net::Transport& transport_;
  sim::CpuModel cpu_;
  net::NodeId id_;
  CostMeter& meter_;
  const char* profile_label_;
  std::deque<Work> queue_;
  bool scheduled_ = false;
  util::SimTime busy_until_ = 0;
};

}  // namespace cadet::testbed
