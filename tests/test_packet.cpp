#include "cadet/packet.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cadet {
namespace {

TEST(Packet, HeaderIsFiveBytesOnWire) {
  const Packet p = Packet::data_request(512, false);
  EXPECT_EQ(encode(p).size(), kHeaderBytes);
}

TEST(Packet, DataUploadRoundTrip) {
  util::Xoshiro256 rng(1);
  const auto payload = rng.bytes(48);
  const Packet p = Packet::data_upload(payload, /*edge_server=*/false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.dat);
  EXPECT_FALSE(decoded->header.reg);
  EXPECT_FALSE(decoded->header.req);
  EXPECT_FALSE(decoded->header.ack);
  EXPECT_TRUE(decoded->header.client_edge);
  EXPECT_FALSE(decoded->header.edge_server);
  EXPECT_EQ(decoded->header.argument, 48);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Packet, DataRequestCarriesBitsInArgument) {
  const Packet p = Packet::data_request(4096, /*edge_server=*/true);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.req);
  EXPECT_TRUE(decoded->header.edge_server);
  EXPECT_EQ(decoded->header.argument, 4096);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, DataAckEncryptedFlag) {
  const Packet p = Packet::data_ack({1, 2, 3}, false, /*encrypted=*/true);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.ack);
  EXPECT_TRUE(decoded->header.encrypted);
  EXPECT_EQ(decoded->header.argument, 3);
}

class RegistrationSubtypes : public ::testing::TestWithParam<RegSubtype> {};

TEST_P(RegistrationSubtypes, RoundTrips) {
  const Packet p = Packet::registration(GetParam(), {9, 8, 7}, true, false,
                                        true, false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.reg);
  EXPECT_EQ(decoded->header.subtype, GetParam());
  EXPECT_EQ(decoded->payload, (util::Bytes{9, 8, 7}));
}

INSTANTIATE_TEST_SUITE_P(
    AllSubtypes, RegistrationSubtypes,
    ::testing::Values(RegSubtype::kEdgeRegReq, RegSubtype::kEdgeRegReqAck,
                      RegSubtype::kEdgeRegAck, RegSubtype::kClientInitReq,
                      RegSubtype::kClientInitReqAck,
                      RegSubtype::kClientInitAck, RegSubtype::kReregReq,
                      RegSubtype::kReregFwd, RegSubtype::kReregAckToEdge,
                      RegSubtype::kReregAckToClient));

TEST(Packet, VersionFieldEncoded) {
  const auto wire = encode(Packet::data_request(1, false));
  EXPECT_EQ(wire[0] >> 3, kProtocolVersion);
  EXPECT_EQ(wire[0] & 0x07, 0);  // reserved bits zero
}

TEST(Packet, DecodeRejectsShortBuffer) {
  EXPECT_FALSE(decode(util::Bytes{}).has_value());
  EXPECT_FALSE(decode(util::Bytes{1, 2, 3, 4}).has_value());
}

TEST(Packet, DecodeRejectsWrongVersion) {
  auto wire = encode(Packet::data_request(1, false));
  wire[0] = static_cast<std::uint8_t>((kProtocolVersion + 1) << 3);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsReservedBitsSet) {
  auto wire = encode(Packet::data_request(1, false));
  wire[0] |= 0x01;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsRegAndDatBothSet) {
  auto wire = encode(Packet::data_request(1, false));
  wire[1] |= 0x80;  // also set REG
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsNeitherRegNorDat) {
  auto wire = encode(Packet::data_request(1, false));
  wire[1] &= 0x3f;  // clear both
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsPayloadSizeMismatch) {
  auto wire = encode(Packet::data_upload({1, 2, 3, 4}, false));
  wire.pop_back();  // truncate payload
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsUnknownSubtype) {
  auto wire = encode(Packet::registration(RegSubtype::kEdgeRegReq, {}, true,
                                          false, false, true));
  wire[4] = 200;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsSubtypeOnDataPacket) {
  auto wire = encode(Packet::data_request(1, false));
  wire[4] = static_cast<std::uint8_t>(RegSubtype::kEdgeRegReq);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, FuzzDecodeNeverCrashes) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const auto junk = rng.bytes(rng.uniform(64));
    EXPECT_NO_FATAL_FAILURE((void)decode(junk));
  }
}

TEST(Packet, UrgentFlagRoundTrips) {
  Packet p = Packet::data_request(8, false);
  p.header.urgent = true;
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.urgent);
}

TEST(Packet, MaxArgument) {
  const Packet p = Packet::data_request(0xffff, false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.argument, 0xffff);
}

}  // namespace
}  // namespace cadet
