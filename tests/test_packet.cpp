#include "cadet/packet.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cadet {
namespace {

TEST(Packet, HeaderIsSevenBytesOnWire) {
  const Packet p = Packet::data_request(512, false);
  EXPECT_EQ(encode(p).size(), kHeaderBytes);
}

TEST(Packet, SequenceNumberRoundTrips) {
  Packet p = Packet::data_upload({1, 2, 3}, false);
  p.header.seq = 0xbeef;
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.seq, 0xbeef);
}

TEST(Packet, DefaultSequenceIsUnsequencedSentinel) {
  const Packet p = Packet::data_request(64, false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.seq, 0u);
}

TEST(Packet, DataUploadRoundTrip) {
  util::Xoshiro256 rng(1);
  const auto payload = rng.bytes(48);
  const Packet p = Packet::data_upload(payload, /*edge_server=*/false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.dat);
  EXPECT_FALSE(decoded->header.reg);
  EXPECT_FALSE(decoded->header.req);
  EXPECT_FALSE(decoded->header.ack);
  EXPECT_TRUE(decoded->header.client_edge);
  EXPECT_FALSE(decoded->header.edge_server);
  EXPECT_EQ(decoded->header.argument, 48);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Packet, DataRequestCarriesBitsInArgument) {
  const Packet p = Packet::data_request(4096, /*edge_server=*/true);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.req);
  EXPECT_TRUE(decoded->header.edge_server);
  EXPECT_EQ(decoded->header.argument, 4096);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, DataAckEncryptedFlag) {
  const Packet p = Packet::data_ack({1, 2, 3}, false, /*encrypted=*/true);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.ack);
  EXPECT_TRUE(decoded->header.encrypted);
  EXPECT_EQ(decoded->header.argument, 3);
}

class RegistrationSubtypes : public ::testing::TestWithParam<RegSubtype> {};

TEST_P(RegistrationSubtypes, RoundTrips) {
  const Packet p = Packet::registration(GetParam(), {9, 8, 7}, true, false,
                                        true, false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.reg);
  EXPECT_EQ(decoded->header.subtype, GetParam());
  EXPECT_EQ(decoded->payload, (util::Bytes{9, 8, 7}));
}

INSTANTIATE_TEST_SUITE_P(
    AllSubtypes, RegistrationSubtypes,
    ::testing::Values(RegSubtype::kEdgeRegReq, RegSubtype::kEdgeRegReqAck,
                      RegSubtype::kEdgeRegAck, RegSubtype::kClientInitReq,
                      RegSubtype::kClientInitReqAck,
                      RegSubtype::kClientInitAck, RegSubtype::kReregReq,
                      RegSubtype::kReregFwd, RegSubtype::kReregAckToEdge,
                      RegSubtype::kReregAckToClient));

TEST(Packet, VersionFieldEncoded) {
  const auto wire = encode(Packet::data_request(1, false));
  EXPECT_EQ(wire[0] >> 3, kProtocolVersion);
  EXPECT_EQ(wire[0] & 0x07, 0);  // reserved bits zero
}

TEST(Packet, DecodeRejectsShortBuffer) {
  EXPECT_FALSE(decode(util::Bytes{}).has_value());
  EXPECT_FALSE(decode(util::Bytes{1, 2, 3, 4}).has_value());
}

TEST(Packet, DecodeRejectsWrongVersion) {
  auto wire = encode(Packet::data_request(1, false));
  wire[0] = static_cast<std::uint8_t>((kProtocolVersion + 1) << 3);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsReservedBitsSet) {
  auto wire = encode(Packet::data_request(1, false));
  wire[0] |= 0x01;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsRegAndDatBothSet) {
  auto wire = encode(Packet::data_request(1, false));
  wire[1] |= 0x80;  // also set REG
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsNeitherRegNorDat) {
  auto wire = encode(Packet::data_request(1, false));
  wire[1] &= 0x3f;  // clear both
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsPayloadSizeMismatch) {
  auto wire = encode(Packet::data_upload({1, 2, 3, 4}, false));
  wire.pop_back();  // truncate payload
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsUnknownSubtype) {
  auto wire = encode(Packet::registration(RegSubtype::kEdgeRegReq, {}, true,
                                          false, false, true));
  wire[4] = 200;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, DecodeRejectsSubtypeOnDataPacket) {
  auto wire = encode(Packet::data_request(1, false));
  wire[4] = static_cast<std::uint8_t>(RegSubtype::kEdgeRegReq);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, FuzzDecodeNeverCrashes) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const auto junk = rng.bytes(rng.uniform(64));
    EXPECT_NO_FATAL_FAILURE((void)decode(junk));
  }
}

// ---- fuzz-style property tests (chaos PR satellite) -----------------------
// Every structurally valid packet the codec can emit must survive the trip
// wire -> decode -> encode byte-identically, and no mutation of a valid wire
// image may crash the decoder (it either decodes to *something* valid or is
// rejected). These run under the asan preset in CI.

namespace {

/// A random valid packet drawn from the full constructor surface.
Packet random_packet(util::Xoshiro256& rng) {
  Packet p;
  switch (rng.uniform(5)) {
    case 0:
      p = Packet::data_upload(rng.bytes(rng.uniform(128)),
                              rng.bernoulli(0.5));
      break;
    case 1:
      p = Packet::data_request(
          static_cast<std::uint16_t>(rng.uniform(0x10000)),
          rng.bernoulli(0.5));
      break;
    case 2:
      p = Packet::data_ack(rng.bytes(rng.uniform(128)), rng.bernoulli(0.5),
                           rng.bernoulli(0.5));
      break;
    case 3:
      p = Packet::data_request_e2e(
          static_cast<std::uint16_t>(rng.uniform(0x10000)),
          rng.bernoulli(0.5), static_cast<std::uint32_t>(rng.uniform(5000)));
      break;
    default:
      p = Packet::registration(
          static_cast<RegSubtype>(
              rng.uniform(static_cast<std::uint64_t>(
                              RegSubtype::kReregAckToClient) +
                          1)),
          rng.bytes(rng.uniform(128)), rng.bernoulli(0.5),
          rng.bernoulli(0.5), rng.bernoulli(0.5), rng.bernoulli(0.5));
      break;
  }
  p.header.urgent = rng.bernoulli(0.2);
  p.header.seq = static_cast<std::uint16_t>(rng.uniform(0x10000));
  return p;
}

}  // namespace

TEST(PacketProperty, EncodeDecodeEncodeIsIdentity) {
  util::Xoshiro256 rng(20180601);
  for (int i = 0; i < 2000; ++i) {
    const Packet p = random_packet(rng);
    const util::Bytes first = encode(p);
    const auto decoded = decode(first);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    const util::Bytes second = encode(*decoded);
    EXPECT_EQ(first, second) << "iteration " << i;
  }
}

TEST(PacketProperty, TruncatedWireNeverCrashes) {
  util::Xoshiro256 rng(20180602);
  for (int i = 0; i < 1000; ++i) {
    const util::Bytes full = encode(random_packet(rng));
    for (std::size_t len = 0; len < full.size(); ++len) {
      const util::Bytes cut(full.begin(),
                            full.begin() + static_cast<std::ptrdiff_t>(len));
      // Truncation either strips payload bytes (rejected by the length
      // check) or cuts into the header (also rejected).
      EXPECT_FALSE(decode(cut).has_value());
    }
  }
}

TEST(PacketProperty, BitFlippedWireNeverCrashes) {
  util::Xoshiro256 rng(20180603);
  for (int i = 0; i < 2000; ++i) {
    util::Bytes mutated = encode(random_packet(rng));
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.uniform(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto decoded = decode(mutated);
    if (decoded.has_value()) {
      // If the mutation survived validation, re-encoding must reproduce
      // the mutated image exactly (the codec has no hidden state).
      EXPECT_EQ(encode(*decoded), mutated);
    }
  }
}

TEST(PacketProperty, OversizedPayloadRejected) {
  // The argument field is 16 bits; payloads larger than what it can
  // describe must never decode into a mismatched packet.
  util::Xoshiro256 rng(20180604);
  util::Bytes wire = encode(Packet::data_upload(rng.bytes(32), false));
  util::append(wire, rng.bytes(8));  // extra trailing bytes
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Packet, UrgentFlagRoundTrips) {
  Packet p = Packet::data_request(8, false);
  p.header.urgent = true;
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.urgent);
}

TEST(Packet, MaxArgument) {
  const Packet p = Packet::data_request(0xffff, false);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.argument, 0xffff);
}

}  // namespace
}  // namespace cadet
