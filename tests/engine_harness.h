// In-process message pump for engine-level tests: routes send-intents
// between client/edge/server engines synchronously (no simulator, no CPU
// model) so handshakes and data flows can be asserted step by step.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "cadet/client_node.h"
#include "cadet/edge_node.h"
#include "cadet/server_node.h"
#include "net/transport.h"
#include "util/time.h"

namespace cadet::test {

class EnginePump {
 public:
  using Handler = std::function<std::vector<net::Outgoing>(
      net::NodeId from, util::BytesView data, util::SimTime now)>;

  void attach(net::NodeId id, Handler handler) {
    handlers_[id] = std::move(handler);
  }

  void attach(ClientNode& node) {
    attach(node.id(), [&node](net::NodeId from, util::BytesView data,
                              util::SimTime now) {
      return node.on_packet(from, data, now);
    });
  }
  void attach(EdgeNode& node) {
    attach(node.id(), [&node](net::NodeId from, util::BytesView data,
                              util::SimTime now) {
      return node.on_packet(from, data, now);
    });
  }
  void attach(ServerNode& node) {
    attach(node.id(), [&node](net::NodeId from, util::BytesView data,
                              util::SimTime now) {
      return node.on_packet(from, data, now);
    });
  }

  /// Deliver pending messages breadth-first until quiescent.
  /// Messages to unattached nodes are dropped (counted).
  void pump(std::vector<net::Outgoing> initial, net::NodeId initial_from,
            util::SimTime now = 0) {
    std::deque<std::pair<net::NodeId, net::Outgoing>> queue;
    for (auto& o : initial) queue.emplace_back(initial_from, std::move(o));
    while (!queue.empty()) {
      auto [from, msg] = std::move(queue.front());
      queue.pop_front();
      const auto it = handlers_.find(msg.to);
      if (it == handlers_.end()) {
        ++dropped_;
        continue;
      }
      ++delivered_;
      auto replies = it->second(from, msg.data, now);
      for (auto& r : replies) queue.emplace_back(msg.to, std::move(r));
    }
  }

  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }

 private:
  std::unordered_map<net::NodeId, Handler> handlers_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace cadet::test
