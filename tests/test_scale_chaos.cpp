// Chaos-label run on the sharded path: 100k clients under datagram loss,
// flooders, bad uploaders, and partition-aligned edge crash windows — the
// scale-out counterpart of test_chaos.cpp's per-node fault sweeps. The
// invariants are the same shape: every wire request resolves exactly once,
// the boundary conserves every crossing event, and the same seed produces
// a byte-identical trace no matter how many workers step the shards.
#include "testbed/scale.h"

#include <gtest/gtest.h>

#include <functional>

#include "util/task_pool.h"

namespace cadet::testbed {
namespace {

TEST(ScaleChaos, HundredThousandClientsSurviveFaults) {
  ScaleConfig config;
  config.seed = 20260808;
  config.num_clients = 100'000;
  config.clients_per_edge = 1024;
  config.duration_s = 5.0;
  config.drop_prob = 0.05;
  config.flooder_fraction = 0.002;
  config.bad_uploader_fraction = 0.05;
  // Partition-aligned crash windows on a spread of edges.
  {
    ScaleConfig probe_config = config;
    probe_config.num_clients = 100;
    ScaleWorld probe(probe_config);
    const util::SimTime w = probe.window();
    for (std::uint32_t edge = 0; edge < 98; edge += 10) {
      config.crashes.push_back({edge, 100 * w, 300 * w});
    }
  }

  ScaleWorld world(config);
  const std::uint64_t events = world.run();
  const ScaleStats stats = world.stats();

  // The run actually exercised the machinery.
  EXPECT_GT(events, 400'000u);
  EXPECT_GT(stats.requests_sent, 50'000u);
  EXPECT_GT(stats.wire_dropped_requests, 0u);
  EXPECT_GT(stats.crash_dropped_requests, 0u);
  EXPECT_GT(stats.retried, 0u);
  EXPECT_GT(stats.heavy_denied, 0u);
  EXPECT_GT(stats.refills_completed, 0u);

  // Conservation under faults: every request resolves exactly once...
  EXPECT_EQ(stats.requests_sent,
            stats.fulfilled + stats.fallback + stats.expired);
  // ...the boundary loses nothing...
  EXPECT_EQ(world.boundary_emitted(), world.boundary_injected());
  EXPECT_EQ(stats.refills_requested + stats.refill_reissues,
            stats.server_grants);
  EXPECT_EQ(stats.server_grants,
            stats.refills_completed + stats.crash_dropped_refills);
  // ...and the upload ledger balances.
  EXPECT_EQ(stats.uploads_sent,
            stats.uploads_accepted + stats.uploads_rejected +
                stats.blacklist_drops + stats.wire_dropped_uploads +
                stats.crash_dropped_uploads);

  // Retries + fallback keep the honest population served through 5% loss
  // and a tenth of the edges crashing for a stretch of the run.
  EXPECT_GT(stats.fulfilled * 10, stats.requests_sent * 7);

  // Same seed, pooled execution: byte-identical trace.
  util::TaskPool pool(4);
  ScaleWorld pooled(config);
  pooled.run([&pool](std::size_t count,
                     const std::function<void(std::size_t)>& task) {
    pool.run(count, task);
  });
  EXPECT_EQ(world.checksum(), pooled.checksum());
  EXPECT_EQ(world.events_executed(), pooled.events_executed());
}

}  // namespace
}  // namespace cadet::testbed
