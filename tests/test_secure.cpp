// util/secure.h: secure_wipe must actually zero (and survive optimization
// — asserted here at the observable level), ct_equal must be
// length-honest and order-insensitive, ct_select branch-free-correct.
#include "util/secure.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace util = cadet::util;

TEST(SecureWipe, ZeroesRawPointerRange) {
  std::uint8_t buf[32];
  for (std::size_t i = 0; i < sizeof(buf); ++i) buf[i] = 0xa5;
  util::secure_wipe(buf, sizeof(buf));
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    ASSERT_EQ(buf[i], 0) << "byte " << i;
  }
}

TEST(SecureWipe, ZeroesStdArrayAndVector) {
  std::array<std::uint8_t, 16> key;
  key.fill(0xee);
  util::secure_wipe(key);
  EXPECT_EQ(key, (std::array<std::uint8_t, 16>{}));

  util::Bytes seed(64, 0x7f);
  util::secure_wipe(seed);
  EXPECT_EQ(seed, util::Bytes(64, 0));
  EXPECT_EQ(seed.size(), 64u);  // size preserved, contents zeroed
}

TEST(SecureWipe, WidensToElementSize) {
  std::array<std::uint64_t, 4> words{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  util::secure_wipe(words);
  for (const auto w : words) EXPECT_EQ(w, 0u);
}

TEST(SecureWipe, EmptyAndNullAreNoOps) {
  util::secure_wipe(nullptr, 0);
  util::Bytes empty;
  util::secure_wipe(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(CtEqual, MatchesMemcmpSemanticsOnEqualLengths) {
  const util::Bytes a = {1, 2, 3, 4};
  const util::Bytes b = {1, 2, 3, 4};
  const util::Bytes c = {1, 2, 3, 5};
  EXPECT_TRUE(util::ct_equal(a, b));
  EXPECT_FALSE(util::ct_equal(a, c));
}

TEST(CtEqual, LengthMismatchIsFalseNotUB) {
  const util::Bytes a = {1, 2, 3};
  const util::Bytes b = {1, 2, 3, 4};
  EXPECT_FALSE(util::ct_equal(a, b));
  EXPECT_FALSE(util::ct_equal(b, a));
}

TEST(CtEqual, EmptyEqualsEmpty) {
  EXPECT_TRUE(util::ct_equal(util::Bytes{}, util::Bytes{}));
}

TEST(CtEqual, DifferenceInAnyPositionDetected) {
  util::Bytes a(257, 0x42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    util::Bytes b = a;
    b[i] ^= 0x80;
    EXPECT_FALSE(util::ct_equal(a, b)) << "position " << i;
  }
}

TEST(CtSelect, PicksWithoutBranching) {
  EXPECT_EQ(util::ct_select(1, 0xaa, 0x55), 0xaa);
  EXPECT_EQ(util::ct_select(0, 0xaa, 0x55), 0x55);
}
