// Security-focused tests mirroring the paper's §VI-D threat analysis:
// eavesdropping resistance of the registration exchanges, replay
// behaviour, tampering, and the boundaries of the threat model.
#include <gtest/gtest.h>

#include "cadet/cadet.h"
#include "engine_harness.h"
#include "entropy/sources.h"
#include "util/rng.h"

namespace cadet {
namespace {

struct CapturedWire {
  std::vector<util::Bytes> packets;
};

/// Pump that also records every datagram an eavesdropper would see.
struct TappedWorld {
  ServerNode server;
  EdgeNode edge;
  ClientNode client;
  test::EnginePump pump;
  CapturedWire tap;

  explicit TappedWorld(std::uint64_t seed)
      : server(make_server(seed)),
        edge(make_edge(seed)),
        client(make_client(seed)) {
    pump.attach(server.id(), [this](net::NodeId f, util::BytesView d,
                                    util::SimTime t) {
      tap.packets.emplace_back(d.begin(), d.end());
      return server.on_packet(f, d, t);
    });
    pump.attach(edge.id(), [this](net::NodeId f, util::BytesView d,
                                  util::SimTime t) {
      tap.packets.emplace_back(d.begin(), d.end());
      return edge.on_packet(f, d, t);
    });
    pump.attach(client.id(), [this](net::NodeId f, util::BytesView d,
                                    util::SimTime t) {
      tap.packets.emplace_back(d.begin(), d.end());
      return client.on_packet(f, d, t);
    });
  }

  static ServerNode::Config make_server(std::uint64_t seed) {
    ServerNode::Config c;
    c.id = 1;
    c.seed = seed;
    return c;
  }
  static EdgeNode::Config make_edge(std::uint64_t seed) {
    EdgeNode::Config c;
    c.id = 100;
    c.server = 1;
    c.seed = seed + 1;
    c.num_clients = 2;
    return c;
  }
  static ClientNode::Config make_client(std::uint64_t seed) {
    ClientNode::Config c;
    c.id = 1000;
    c.edge = 100;
    c.server = 1;
    c.seed = seed + 2;
    return c;
  }
};

TEST(Eavesdropping, CapturedHandshakesDoNotRevealDeliveredEntropy) {
  TappedWorld w(31);
  util::Xoshiro256 rng(32);
  w.server.seed_pool(rng.bytes(4096));

  // Full registration + one sealed delivery, all captured.
  w.pump.pump(w.edge.begin_edge_reg(0), w.edge.id());
  w.pump.pump(w.client.begin_init(0), w.client.id());
  w.pump.pump(w.client.begin_rereg(0), w.client.id());
  util::Bytes delivered;
  w.pump.pump(w.client.request_entropy(
                  512, 0,
                  [&](util::BytesView data, util::SimTime) {
                    delivered.assign(data.begin(), data.end());
                  }),
              w.client.id());
  ASSERT_EQ(delivered.size(), 64u);
  ASSERT_GT(w.tap.packets.size(), 8u);

  // The delivered entropy must not appear in ANY captured datagram: every
  // hop that carried it was sealed.
  for (const auto& wire : w.tap.packets) {
    if (wire.size() < delivered.size()) continue;
    for (std::size_t off = 0; off + delivered.size() <= wire.size(); ++off) {
      EXPECT_FALSE(std::equal(delivered.begin(), delivered.end(),
                              wire.begin() + static_cast<long>(off)))
          << "delivered entropy leaked in cleartext on the wire";
    }
  }
}

TEST(Eavesdropping, CapturedTokenHashDoesNotEnableImpersonation) {
  TappedWorld w(33);
  w.pump.pump(w.edge.begin_edge_reg(0), w.edge.id());
  w.pump.pump(w.client.begin_init(0), w.client.id());

  // Capture the client's rereg request off the wire...
  auto rereg = w.client.begin_rereg(0);
  const util::Bytes captured = rereg[0].data;
  w.pump.pump(std::move(rereg), w.client.id());
  ASSERT_TRUE(w.client.reregistered());

  // ...and replay it from an attacker node. The server will mint a new cek
  // for client 1000, but both copies are sealed under esk and csk — the
  // attacker (who has neither) learns nothing and cannot decrypt
  // deliveries addressed to the client.
  ClientNode attacker(TappedWorld::make_client(999));
  test::EnginePump pump2;
  pump2.attach(w.server);
  pump2.attach(w.edge);
  pump2.attach(attacker.id(), [&](net::NodeId f, util::BytesView d,
                                  util::SimTime t) {
    return attacker.on_packet(f, d, t);
  });
  pump2.pump({{w.edge.id(), captured}}, attacker.id());
  EXPECT_FALSE(attacker.reregistered());
  EXPECT_FALSE(attacker.initialized());
}

TEST(Replay, EdgeRegAckReplayDoesNotConfuseServer) {
  TappedWorld w(34);
  w.pump.pump(w.edge.begin_edge_reg(0), w.edge.id());
  ASSERT_TRUE(w.server.edge_registered(w.edge.id()));

  // Replay every captured registration packet at the server; no crash, and
  // the edge is still registered with a working key afterwards.
  for (const auto& wire : w.tap.packets) {
    (void)w.server.on_packet(w.edge.id(), wire, util::from_seconds(5));
  }
  EXPECT_TRUE(w.server.edge_registered(w.edge.id()));

  util::Xoshiro256 rng(35);
  w.server.seed_pool(rng.bytes(1024));
  bool served = false;
  w.pump.pump(w.client.request_entropy(
                  256, util::from_seconds(6),
                  [&](util::BytesView data, util::SimTime) {
                    served = !data.empty();
                  }),
              w.client.id(), util::from_seconds(6));
  EXPECT_TRUE(served);
}

TEST(Tampering, BitFlippedRegistrationPacketsRejected) {
  TappedWorld w(36);
  // Run edge registration but flip one byte of the server's REQ+ACK before
  // the edge sees it: the nonce verification must fail, leaving the edge
  // unregistered (no downgrade to an attacker-influenced key).
  EdgeNode fresh_edge(TappedWorld::make_edge(37));
  auto req = fresh_edge.begin_edge_reg(0);
  auto server_replies =
      w.server.on_packet(fresh_edge.id(), req[0].data, 0);
  ASSERT_EQ(server_replies.size(), 1u);
  auto tampered = server_replies[0].data;
  tampered[tampered.size() / 2] ^= 0x20;
  const auto out = fresh_edge.on_packet(1, tampered, 0);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(fresh_edge.registered());
}

TEST(Tampering, CorruptedBulkUploadPenalizesTheEdgeNotTheClients) {
  // If an attacker corrupts an edge->server bulk upload in flight, the
  // server's sanity check judges (and penalizes) the *edge* as uploader —
  // the paper's per-link accountability.
  ServerNode server(TappedWorld::make_server(38));
  util::Xoshiro256 rng(39);
  auto bulk = Packet::data_upload(entropy::synth::good(rng, 256), true);
  // Corrupt: overwrite half the payload with a constant run.
  for (std::size_t i = 0; i < 128; ++i) bulk.payload[i] = 0xff;
  bulk.header.argument = static_cast<std::uint16_t>(bulk.payload.size());
  (void)server.on_packet(100, encode(bulk), 0);
  EXPECT_EQ(server.stats().uploads_rejected_sanity, 1u);
  EXPECT_GT(server.penalty().score(100), 0.0);
}

TEST(ThreatModel, PassiveCaptureOfInitDoesNotYieldCsk) {
  // The attacker records c.pub, s.pub, and both sealed blobs from a client
  // initialization. Deriving csk requires a private key; verify that the
  // sealed token cannot be opened with keys derived from the *public*
  // transcript pieces.
  TappedWorld w(40);
  w.pump.pump(w.client.begin_init(0), w.client.id());
  ASSERT_TRUE(w.client.initialized());

  // Find the ClientInitReqAck in the capture (the only 128-byte payload).
  util::Bytes ack_payload;
  crypto::X25519Key c_pub{}, s_pub{};
  for (const auto& wire : w.tap.packets) {
    const auto packet = decode(wire);
    if (!packet || !packet->header.reg) continue;
    if (packet->header.subtype == RegSubtype::kClientInitReq) {
      std::copy_n(packet->payload.begin(), 32, c_pub.begin());
    }
    if (packet->header.subtype == RegSubtype::kClientInitReqAck) {
      ack_payload = packet->payload;
      std::copy_n(packet->payload.begin(), 32, s_pub.begin());
    }
  }
  ASSERT_FALSE(ack_payload.empty());
  const util::Bytes sealed_token(ack_payload.begin() + 32 + 36,
                                 ack_payload.end());

  // Candidate "keys" a naive attacker might try from public material.
  const std::vector<SharedKey> candidates = {
      derive_key(c_pub, util::BytesView(kLabelCsk, sizeof(kLabelCsk))),
      derive_key(s_pub, util::BytesView(kLabelCsk, sizeof(kLabelCsk))),
      derive_key(crypto::x25519(c_pub, s_pub),
                 util::BytesView(kLabelCsk, sizeof(kLabelCsk))),
  };
  for (const auto& key : candidates) {
    EXPECT_FALSE(open(key, sealed_token).has_value());
  }
}

TEST(TokenRotation, ReregistrationDoesNotResetPenaltyOrEscapeBlacklist) {
  // The free-rider/poisoner evasion the adversary suite attacks head-on:
  // a device that rotated its registration token (fresh init + rereg under
  // the same node id) must carry its penalty score, delinquency band, and
  // usage score across the rotation — the tables key on the device, not
  // the token.
  TappedWorld w(41);
  util::Xoshiro256 rng(42);
  w.server.seed_pool(rng.bytes(4096));
  w.pump.pump(w.edge.begin_edge_reg(0), w.edge.id());
  w.pump.pump(w.client.begin_init(0), w.client.id());
  w.pump.pump(w.client.begin_rereg(0), w.client.id());
  ASSERT_TRUE(w.client.reregistered());

  // Build up usage (accepted requests tick the clock and accrue score)...
  util::SimTime now = util::kSecond;
  for (int i = 0; i < 4; ++i) {
    now += util::kSecond;
    w.pump.pump(w.client.request_entropy(256, now, {}), w.client.id(), now);
  }
  ASSERT_GT(w.edge.usage().score(w.client.id()), 0.0);

  // ...and a delinquent penalty score with patterned poison uploads.
  const util::Bytes poison = entropy::synth::patterned(96);
  int uploads = 0;
  while (!w.edge.penalty().is_delinquent(w.client.id()) && uploads < 40) {
    ++uploads;
    now += util::kSecond;
    w.pump.pump(w.client.upload_entropy(poison, now), w.client.id(), now);
  }
  ASSERT_TRUE(w.edge.penalty().is_delinquent(w.client.id()));
  const double penalty_before = w.edge.penalty().score(w.client.id());
  const double usage_before = w.edge.usage().score(w.client.id());
  ASSERT_GT(usage_before, 0.0);

  // Rotate the token: a full fresh registration under the same node id.
  now += util::kSecond;
  w.pump.pump(w.client.begin_init(now), w.client.id(), now);
  now += util::kSecond;
  w.pump.pump(w.client.begin_rereg(now), w.client.id(), now);
  ASSERT_TRUE(w.client.reregistered());

  // Nothing shed: penalty exactly preserved, still delinquent, and the
  // usage score untouched (registration packets do not advance the usage
  // clock, so rotation cannot even decay it).
  EXPECT_DOUBLE_EQ(w.edge.penalty().score(w.client.id()), penalty_before);
  EXPECT_TRUE(w.edge.penalty().is_delinquent(w.client.id()));
  EXPECT_DOUBLE_EQ(w.edge.usage().score(w.client.id()), usage_before);

  // Keep poisoning through the random-drop band until blacklisted.
  while (!w.edge.penalty().is_blacklisted(w.client.id()) && uploads < 100) {
    ++uploads;
    now += util::kSecond;
    w.pump.pump(w.client.upload_entropy(poison, now), w.client.id(), now);
  }
  ASSERT_TRUE(w.edge.penalty().is_blacklisted(w.client.id()))
      << "not blacklisted after " << uploads << " poison uploads";
  const double blacklist_score = w.edge.penalty().score(w.client.id());

  // Rotating again does not open the gate: still blacklisted, and a
  // post-rotation upload dies at the penalty gate without being scored.
  now += util::kSecond;
  w.pump.pump(w.client.begin_init(now), w.client.id(), now);
  now += util::kSecond;
  w.pump.pump(w.client.begin_rereg(now), w.client.id(), now);
  ASSERT_TRUE(w.client.reregistered());
  EXPECT_TRUE(w.edge.penalty().is_blacklisted(w.client.id()));
  EXPECT_DOUBLE_EQ(w.edge.penalty().score(w.client.id()), blacklist_score);

  const std::uint64_t dropped_before =
      w.edge.stats().uploads_dropped_penalty;
  now += util::kSecond;
  w.pump.pump(w.client.upload_entropy(poison, now), w.client.id(), now);
  EXPECT_EQ(w.edge.stats().uploads_dropped_penalty, dropped_before + 1);
  EXPECT_DOUBLE_EQ(w.edge.penalty().score(w.client.id()), blacklist_score);
}

}  // namespace
}  // namespace cadet
