// Unit tests for the conservative shard-boundary merge queue: the
// {time, seq, shard} order, per-source sequence stamping, conservation
// counters, and the lookahead validation that backs the windowed-execution
// determinism argument (see testbed/scale.h).
#include "sim/merge_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cadet::sim {
namespace {

BoundaryEvent make_event(util::SimTime time, std::uint32_t kind = 1,
                         std::uint64_t payload = 0) {
  BoundaryEvent event;
  event.time = time;
  event.kind = kind;
  event.b = payload;
  return event;
}

TEST(MergeQueue, OrdersByTimeFirst) {
  MergeQueue queue(3);
  queue.emit(0, make_event(300));
  queue.emit(1, make_event(100));
  queue.emit(2, make_event(200));
  std::vector<BoundaryEvent> out;
  ASSERT_TRUE(queue.drain(100, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].time, 100);
  EXPECT_EQ(out[1].time, 200);
  EXPECT_EQ(out[2].time, 300);
}

TEST(MergeQueue, EqualTimeOrdersBySeqThenShard) {
  MergeQueue queue(3);
  // Shard 2 emits twice (seq 0, 1), shards 0 and 1 once each (seq 0), all
  // at the same delivery time. Order must be seq-major, then shard index:
  // (seq 0, shard 0), (seq 0, shard 1), (seq 0, shard 2), (seq 1, shard 2).
  queue.emit(2, make_event(500, 1, 20));
  queue.emit(2, make_event(500, 1, 21));
  queue.emit(1, make_event(500, 1, 10));
  queue.emit(0, make_event(500, 1, 0));
  std::vector<BoundaryEvent> out;
  ASSERT_TRUE(queue.drain(500, out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].src, 0u);
  EXPECT_EQ(out[1].src, 1u);
  EXPECT_EQ(out[2].src, 2u);
  EXPECT_EQ(out[2].b, 20u);
  EXPECT_EQ(out[3].src, 2u);
  EXPECT_EQ(out[3].b, 21u);
  EXPECT_EQ(out[3].seq, 1u);
}

TEST(MergeQueue, EmissionOrderIsIndependentOfDrainOrder) {
  // The merged order must be a function of (time, seq, shard) only — the
  // same events emitted in a different interleaving drain identically.
  MergeQueue a(2);
  MergeQueue b(2);
  a.emit(0, make_event(100, 1, 1));
  a.emit(1, make_event(100, 1, 2));
  b.emit(1, make_event(100, 1, 2));
  b.emit(0, make_event(100, 1, 1));
  std::vector<BoundaryEvent> out_a;
  std::vector<BoundaryEvent> out_b;
  ASSERT_TRUE(a.drain(100, out_a));
  ASSERT_TRUE(b.drain(100, out_b));
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].src, out_b[i].src);
    EXPECT_EQ(out_a[i].b, out_b[i].b);
  }
}

TEST(MergeQueue, PerSourceSequencesAreIndependent) {
  MergeQueue queue(2);
  queue.emit(0, make_event(10));
  queue.emit(0, make_event(11));
  queue.emit(1, make_event(12));
  std::vector<BoundaryEvent> out;
  ASSERT_TRUE(queue.drain(10, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].src, 0u);
  EXPECT_EQ(out[0].seq, 0u);  // shard 0, first emission
  EXPECT_EQ(out[1].src, 0u);
  EXPECT_EQ(out[1].seq, 1u);  // shard 0, second emission
  EXPECT_EQ(out[2].src, 1u);
  EXPECT_EQ(out[2].seq, 0u);  // shard 1 counts from zero independently
}

TEST(MergeQueue, ConservationCounters) {
  MergeQueue queue(4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (int k = 0; k < 5; ++k) {
      queue.emit(s, make_event(1000 + k));
    }
  }
  EXPECT_EQ(queue.emitted(), 20u);
  EXPECT_EQ(queue.pending(), 20u);
  EXPECT_EQ(queue.drained(), 0u);
  std::vector<BoundaryEvent> out;
  ASSERT_TRUE(queue.drain(1000, out));
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(queue.drained(), 20u);
  EXPECT_EQ(queue.pending(), 0u);
  // Outboxes are empty now; a second drain yields nothing and counters
  // stay balanced.
  ASSERT_TRUE(queue.drain(2000, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(queue.emitted(), queue.drained());
}

TEST(MergeQueue, DetectsLookaheadViolation) {
  MergeQueue queue(2);
  queue.emit(0, make_event(99));
  queue.emit(1, make_event(150));
  std::vector<BoundaryEvent> out;
  // Window barrier at t=100: the event at t=99 should have been delivered
  // inside its own window — a conservative-lookahead bug.
  EXPECT_FALSE(queue.drain(100, out));
  // The batch is still fully populated so a caller can report it.
  EXPECT_EQ(out.size(), 2u);
}

TEST(MergeQueue, CountsViolationsCumulatively) {
  MergeQueue queue(2);
  std::vector<BoundaryEvent> out;
  EXPECT_EQ(queue.violations(), 0u);
  queue.emit(0, make_event(50));
  queue.emit(1, make_event(80));
  EXPECT_FALSE(queue.drain(100, out));  // both late
  EXPECT_EQ(queue.violations(), 2u);
  queue.emit(0, make_event(250));
  EXPECT_TRUE(queue.drain(200, out));  // healthy window
  EXPECT_EQ(queue.violations(), 2u);   // counter is cumulative, not reset
}

TEST(MergeQueue, StampsSourceShard) {
  MergeQueue queue(3);
  BoundaryEvent event = make_event(42);
  event.src = 999;  // emit() must overwrite with the real source
  queue.emit(2, event);
  std::vector<BoundaryEvent> out;
  ASSERT_TRUE(queue.drain(0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src, 2u);
}

}  // namespace
}  // namespace cadet::sim
