#include "cadet/client_node.h"

#include <gtest/gtest.h>

#include "cadet/server_node.h"
#include "engine_harness.h"
#include "util/rng.h"

namespace cadet {
namespace {

ClientNode::Config client_config() {
  ClientNode::Config config;
  config.id = 1000;
  config.edge = 100;
  config.server = 1;
  config.seed = 77;
  return config;
}

ServerNode::Config server_config() {
  ServerNode::Config config;
  config.id = 1;
  config.seed = 88;
  return config;
}

TEST(ClientNode, RequestEmitsDataRequestToEdge) {
  ClientNode client(client_config());
  const auto out = client.request_entropy(512, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 100u);
  const auto packet = decode(out[0].data);
  ASSERT_TRUE(packet.has_value());
  EXPECT_TRUE(packet->header.dat);
  EXPECT_TRUE(packet->header.req);
  EXPECT_TRUE(packet->header.client_edge);
  EXPECT_EQ(packet->header.argument, 512);
}

TEST(ClientNode, UploadEmitsDataPacket) {
  ClientNode client(client_config());
  util::Xoshiro256 rng(1);
  const auto payload = rng.bytes(32);
  const auto out = client.upload_entropy(payload, 0);
  ASSERT_EQ(out.size(), 1u);
  const auto packet = decode(out[0].data);
  ASSERT_TRUE(packet.has_value());
  EXPECT_TRUE(packet->header.dat);
  EXPECT_FALSE(packet->header.req);
  EXPECT_EQ(packet->payload, payload);
}

TEST(ClientNode, PlainDeliveryFulfillsRequestAndFeedsPool) {
  ClientNode client(client_config());
  util::Bytes delivered;
  (void)client.request_entropy(
      256, 0, [&](util::BytesView data, util::SimTime) {
        delivered.assign(data.begin(), data.end());
      });
  ASSERT_TRUE(client.pool().empty());

  util::Xoshiro256 rng(2);
  const auto payload = rng.bytes(32);
  const auto reply = Packet::data_ack(payload, false, false);
  (void)client.on_packet(100, encode(reply), util::from_seconds(1));

  EXPECT_EQ(delivered, payload);
  EXPECT_EQ(client.requests_fulfilled(), 1u);
  // Remote entropy is credited at half weight (trust haircut).
  EXPECT_EQ(client.pool().available_bits(), 32u * 4u);
}

TEST(ClientNode, RequestsFulfilledInFifoOrder) {
  ClientNode client(client_config());
  std::vector<int> order;
  (void)client.request_entropy(64, 0, [&](util::BytesView, util::SimTime) {
    order.push_back(1);
  });
  (void)client.request_entropy(64, 0, [&](util::BytesView, util::SimTime) {
    order.push_back(2);
  });
  util::Xoshiro256 rng(3);
  (void)client.on_packet(100, encode(Packet::data_ack(rng.bytes(8), false,
                                                      false)), 0);
  (void)client.on_packet(100, encode(Packet::data_ack(rng.bytes(8), false,
                                                      false)), 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ClientNode, InitHandshakeWithServer) {
  ClientNode client(client_config());
  ServerNode server(server_config());
  test::EnginePump pump;
  pump.attach(client);
  pump.attach(server);

  bool completed = false;
  auto out = client.begin_init(0, [&](util::SimTime) { completed = true; });
  pump.pump(std::move(out), client.id());

  EXPECT_TRUE(completed);
  EXPECT_TRUE(client.initialized());
  EXPECT_TRUE(server.client_known(client.id()));
}

TEST(ClientNode, ReregBeforeInitIsRejected) {
  ClientNode client(client_config());
  const auto out = client.begin_rereg(0);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(client.reregistered());
}

TEST(ClientNode, EncryptedDeliveryWithoutKeyIsIgnored) {
  ClientNode client(client_config());
  bool fulfilled = false;
  (void)client.request_entropy(64, 0, [&](util::BytesView, util::SimTime) {
    fulfilled = true;
  });
  util::Xoshiro256 rng(4);
  const auto reply = Packet::data_ack(rng.bytes(40), false, /*encrypted=*/true);
  (void)client.on_packet(100, encode(reply), 0);
  EXPECT_FALSE(fulfilled);
}

TEST(ClientNode, MalformedPacketIgnored) {
  ClientNode client(client_config());
  EXPECT_TRUE(client.on_packet(100, util::Bytes{1, 2}, 0).empty());
}

TEST(ClientNode, ForgedInitAckIgnored) {
  ClientNode client(client_config());
  (void)client.begin_init(0);
  // An attacker replies with garbage of the right shape but wrong crypto.
  util::Xoshiro256 rng(5);
  const auto forged = Packet::registration(
      RegSubtype::kClientInitReqAck, rng.bytes(32 + 36 + 60), true, true,
      false, false, true);
  const auto out = client.on_packet(1, encode(forged), 0);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(client.initialized());
}

TEST(ClientNode, StaleRequestsExpireWithEmptyCallback) {
  auto config = client_config();
  config.request_timeout = 5 * util::kSecond;
  ClientNode client(config);
  bool expired = false;
  (void)client.request_entropy(128, 0,
                               [&](util::BytesView data, util::SimTime) {
                                 expired = data.empty();
                               });
  EXPECT_EQ(client.requests_pending(), 1u);
  // A later action past the timeout sweeps the stale entry.
  (void)client.request_entropy(128, util::from_seconds(6));
  EXPECT_TRUE(expired);
  EXPECT_EQ(client.requests_expired(), 1u);
  EXPECT_EQ(client.requests_pending(), 1u);  // only the fresh one remains
}

TEST(ClientNode, LateDeliveryAfterExpiryFeedsPoolButNoCallback) {
  auto config = client_config();
  config.request_timeout = 1 * util::kSecond;
  ClientNode client(config);
  int calls = 0;
  (void)client.request_entropy(128, 0, [&](util::BytesView, util::SimTime) {
    ++calls;
  });
  util::Xoshiro256 rng(9);
  // Delivery arrives after expiry: the entry is swept first (callback with
  // empty data), then the entropy still lands in the pool.
  (void)client.on_packet(100,
                         encode(Packet::data_ack(rng.bytes(16), false, false)),
                         util::from_seconds(5));
  EXPECT_EQ(calls, 1);  // exactly the expiry call
  EXPECT_EQ(client.requests_expired(), 1u);
  EXPECT_GT(client.pool().available_bits(), 0u);
}

TEST(ClientNode, CostAccrues) {
  ClientNode client(client_config());
  (void)client.request_entropy(128, 0);
  EXPECT_GT(client.cost().pending(), 0.0);
  (void)client.cost().take();
  EXPECT_EQ(client.cost().pending(), 0.0);
}

}  // namespace
}  // namespace cadet
