// SloEngine: rule parsing, the four condition kinds against a live
// Registry, for_ticks hysteresis, firing/recovery transitions, the alert
// hook, and the /healthz JSON body.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/sharded.h"
#include "obs/slo.h"

namespace cadet::obs {
namespace {

TEST(ParseSloRule, AcceptsEveryKind) {
  const auto burn =
      parse_slo_rule("burn:slow:cadet_fulfillment_seconds:0.5:0.1:2");
  ASSERT_TRUE(burn.has_value());
  EXPECT_EQ(burn->kind, SloRule::Kind::kLatencyBurn);
  EXPECT_EQ(burn->name, "slow");
  EXPECT_EQ(burn->metric, "cadet_fulfillment_seconds");
  EXPECT_DOUBLE_EQ(burn->threshold_s, 0.5);
  EXPECT_DOUBLE_EQ(burn->limit, 0.1);
  EXPECT_EQ(burn->for_ticks, 2);

  const auto ratio = parse_slo_rule("ratio:churn:retries/requests:0:0.5");
  ASSERT_TRUE(ratio.has_value());
  EXPECT_EQ(ratio->kind, SloRule::Kind::kRatio);
  EXPECT_EQ(ratio->metric, "retries");
  EXPECT_EQ(ratio->denom, "requests");
  EXPECT_EQ(ratio->for_ticks, 1);  // default

  const auto gauge = parse_slo_rule("gauge:stall:inflight:0:1000:3");
  ASSERT_TRUE(gauge.has_value());
  EXPECT_EQ(gauge->kind, SloRule::Kind::kGaugeAbove);

  const auto rate = parse_slo_rule("rate:spike:drops:0:100:1");
  ASSERT_TRUE(rate.has_value());
  EXPECT_EQ(rate->kind, SloRule::Kind::kCounterRate);
}

TEST(ParseSloRule, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_slo_rule("").has_value());
  EXPECT_FALSE(parse_slo_rule("bogus:n:m:0:1").has_value());     // bad kind
  EXPECT_FALSE(parse_slo_rule("rate:n:m:0").has_value());        // too few
  EXPECT_FALSE(parse_slo_rule("rate:n:m:0:1:2:3").has_value());  // too many
  EXPECT_FALSE(parse_slo_rule("rate::m:0:1").has_value());       // no name
  EXPECT_FALSE(parse_slo_rule("rate:n::0:1").has_value());       // no metric
  EXPECT_FALSE(parse_slo_rule("rate:n:m:x:1").has_value());      // bad num
  EXPECT_FALSE(parse_slo_rule("rate:n:m:0:1:0").has_value());    // ticks < 1
  EXPECT_FALSE(parse_slo_rule("ratio:n:m:0:1").has_value());     // no denom
}

TEST(SloEngine, DefaultRulesParse) {
  const std::vector<SloRule> rules = default_slo_rules();
  EXPECT_EQ(rules.size(), 4u);
}

TEST(SloEngine, GaugeRuleFiresAndClears) {
  Registry registry;
  Gauge& inflight = registry.gauge("inflight");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("gauge:stall:inflight:0:10:1"));

  inflight.set(5);
  EXPECT_TRUE(engine.tick(1.0).empty());
  EXPECT_FALSE(engine.any_firing());

  inflight.set(50);
  const auto fired = engine.tick(2.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].firing);
  EXPECT_EQ(fired[0].rule, "stall");
  EXPECT_DOUBLE_EQ(fired[0].value, 50.0);
  EXPECT_DOUBLE_EQ(fired[0].limit, 10.0);
  EXPECT_TRUE(engine.any_firing());
  EXPECT_EQ(engine.total_fires(), 1u);

  inflight.set(0);
  const auto cleared = engine.tick(3.0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].firing);
  EXPECT_FALSE(engine.any_firing());
  EXPECT_EQ(engine.total_fires(), 1u);  // recovery is not a new fire
  EXPECT_EQ(engine.ticks(), 3u);
}

TEST(SloEngine, ForTicksHysteresis) {
  Registry registry;
  Gauge& g = registry.gauge("queue");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("gauge:stall:queue:0:10:3"));

  g.set(100);
  EXPECT_TRUE(engine.tick(1.0).empty());  // breach 1/3
  EXPECT_TRUE(engine.tick(2.0).empty());  // breach 2/3
  EXPECT_FALSE(engine.any_firing());
  EXPECT_EQ(engine.tick(3.0).size(), 1u);  // breach 3/3 -> fires
  EXPECT_TRUE(engine.any_firing());

  // A single good tick resets the streak.
  g.set(0);
  EXPECT_EQ(engine.tick(4.0).size(), 1u);  // clears
  g.set(100);
  EXPECT_TRUE(engine.tick(5.0).empty());
  EXPECT_TRUE(engine.tick(6.0).empty());
  EXPECT_EQ(engine.tick(7.0).size(), 1u);
  EXPECT_EQ(engine.total_fires(), 2u);
}

TEST(SloEngine, LatencyBurnUsesOnlyNewObservations) {
  Registry registry;
  HdrHistogram& lat = registry.hdr("cadet_fulfillment_seconds");
  SloEngine engine(&registry);
  engine.add_rule(
      *parse_slo_rule("burn:slow:cadet_fulfillment_seconds:0.5:0.1:1"));

  // Tick 1: 100 fast observations -> burn 0.
  for (int i = 0; i < 100; ++i) lat.record(0.01);
  EXPECT_TRUE(engine.tick(1.0).empty());

  // Tick 2: 10 new observations, 5 slow -> burn 0.5 despite the 100
  // earlier fast ones (delta-based, not lifetime ratio).
  for (int i = 0; i < 5; ++i) lat.record(0.01);
  for (int i = 0; i < 5; ++i) lat.record(2.0);
  const auto fired = engine.tick(2.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0].value, 0.5, 1e-9);

  // Tick 3: no new observations -> burn 0 -> clears.
  const auto cleared = engine.tick(3.0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].firing);
}

TEST(SloEngine, RatioRuleUsesCounterDeltas) {
  Registry registry;
  Counter& retries = registry.counter("retries");
  Counter& requests = registry.counter("requests");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("ratio:churn:retries/requests:0:0.5:1"));

  retries.inc(1);
  requests.inc(100);
  EXPECT_TRUE(engine.tick(1.0).empty());  // 1% churn

  retries.inc(80);
  requests.inc(100);
  const auto fired = engine.tick(2.0);  // delta ratio 80/100
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0].value, 0.8, 1e-9);
}

TEST(SloEngine, CounterRateIsPerSecond) {
  Registry registry;
  ShardedCounter& drops = registry.sharded_counter("drops");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("rate:spike:drops:0:100:1"));

  drops.inc(1000);
  // First tick has no baseline: rate reads 0, never fires spuriously.
  EXPECT_TRUE(engine.tick(1.0).empty());

  drops.inc(500);
  const auto fired = engine.tick(3.0);  // 500 over 2 s = 250/s
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0].value, 250.0, 1e-9);
}

TEST(SloEngine, AlertHookSeesEveryTransition) {
  Registry registry;
  Gauge& g = registry.gauge("queue");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("gauge:stall:queue:0:10:1"));
  std::vector<SloEngine::Alert> seen;
  engine.set_alert_hook(
      [&seen](const SloEngine::Alert& a) { seen.push_back(a); });

  g.set(100);
  engine.tick(1.0);
  g.set(0);
  engine.tick(2.0);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].firing);
  EXPECT_FALSE(seen[1].firing);
  EXPECT_DOUBLE_EQ(seen[0].at_s, 1.0);
}

TEST(SloEngine, HealthzJsonReflectsState) {
  Registry registry;
  Gauge& g = registry.gauge("queue");
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("gauge:stall:queue:0:10:1"));

  g.set(0);
  engine.tick(1.0);
  std::string body = engine.healthz_json();
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"stall\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(body.find("\"firing\":false"), std::string::npos);

  g.set(100);
  engine.tick(2.0);
  body = engine.healthz_json();
  EXPECT_NE(body.find("\"status\":\"alerting\""), std::string::npos);
  EXPECT_NE(body.find("\"firing\":true"), std::string::npos);
  EXPECT_NE(body.find("\"fires\":1"), std::string::npos);
}

TEST(SloEngine, MissingMetricNeverFires) {
  Registry registry;
  SloEngine engine(&registry);
  engine.add_rule(*parse_slo_rule("gauge:ghost:not_registered:0:10:1"));
  EXPECT_TRUE(engine.tick(1.0).empty());
  EXPECT_TRUE(engine.tick(2.0).empty());
  EXPECT_FALSE(engine.any_firing());
}

}  // namespace
}  // namespace cadet::obs
