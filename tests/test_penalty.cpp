#include "cadet/penalty.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cadet {
namespace {

TEST(PenaltyScheme, TableIValues) {
  const auto base = PenaltyScheme::base();
  EXPECT_EQ(base.points, (std::array<double, 7>{5, 4, 3, 2, 1, 0, -1}));
  const auto loose = PenaltyScheme::loose();
  EXPECT_EQ(loose.points, (std::array<double, 7>{4, 3, 2, 1, 0, -1, -2}));
  const auto strict = PenaltyScheme::strict();
  EXPECT_EQ(strict.points, (std::array<double, 7>{10, 6, 3, 1, 0, -1, -1}));
}

TEST(PenaltyTable, NewDeviceIsTrusted) {
  PenaltyTable table;
  EXPECT_EQ(table.score(1), 0.0);
  EXPECT_FALSE(table.is_delinquent(1));
  EXPECT_FALSE(table.is_blacklisted(1));
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(table.should_drop(1, rng));
  }
}

TEST(PenaltyTable, BadUploadsAccumulate) {
  PenaltyTable table;
  table.record_result(1, 0);  // +5
  table.record_result(1, 1);  // +4
  EXPECT_DOUBLE_EQ(table.score(1), 9.0);
  table.record_result(1, 2);  // +3 -> 12, past drop threshold 10
  EXPECT_TRUE(table.is_delinquent(1));
  EXPECT_FALSE(table.is_blacklisted(1));
}

TEST(PenaltyTable, GoodUploadsRedeem) {
  PenaltyTable table;
  table.record_result(1, 0);  // +5
  table.record_result(1, 6);  // -1
  EXPECT_DOUBLE_EQ(table.score(1), 4.0);
}

TEST(PenaltyTable, ScoreFloorsAtZero) {
  PenaltyTable table;
  table.record_result(1, 6);
  table.record_result(1, 6);
  EXPECT_DOUBLE_EQ(table.score(1), 0.0);
}

TEST(PenaltyTable, Equation2DropPercent) {
  PenaltyTable table;  // thresh 10, max 35
  EXPECT_DOUBLE_EQ(table.drop_percent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(table.drop_percent(9.99), 0.0);
  EXPECT_DOUBLE_EQ(table.drop_percent(10.0), 0.0);
  EXPECT_DOUBLE_EQ(table.drop_percent(22.5), 0.5);
  EXPECT_DOUBLE_EQ(table.drop_percent(35.0), 1.0);
  EXPECT_DOUBLE_EQ(table.drop_percent(50.0), 1.0);
}

TEST(PenaltyTable, BlacklistAlwaysIgnores) {
  PenaltyTable table;
  for (int i = 0; i < 7; ++i) table.record_result(1, 0);  // 7 x +5 = 35
  EXPECT_TRUE(table.is_blacklisted(1));
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(table.should_drop(1, rng));
  }
}

TEST(PenaltyTable, DelinquentDropsProportionally) {
  PenaltyTable table;
  // Score 22.5 -> 50 % drop.
  for (int i = 0; i < 4; ++i) table.record_result(1, 0);  // 20
  table.record_result(1, 3);                              // +2 -> 22
  util::Xoshiro256 rng(3);
  int drops = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (table.should_drop(1, rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(trials),
              table.drop_percent(22.0), 0.02);
}

TEST(PenaltyTable, SigmoidCurveShape) {
  PenaltyConfig config;
  config.curve = DropCurve::kSigmoid;
  PenaltyTable table(config);
  EXPECT_EQ(table.drop_percent(5.0), 0.0);  // below threshold: no drops
  const double mid = table.drop_percent(22.5);
  EXPECT_NEAR(mid, 0.5, 1e-9);
  // At max penalty the sigmoid stays below 1 (no permanent blacklist).
  EXPECT_LT(table.drop_percent(35.0), 1.0);
  EXPECT_GT(table.drop_percent(35.0), 0.95);
  // Monotone.
  double prev = 0.0;
  for (double p = 10.0; p <= 40.0; p += 1.0) {
    const double d = table.drop_percent(p);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(PenaltyTable, SigmoidLeavesSliverAtMaxPenalty) {
  PenaltyConfig config;
  config.curve = DropCurve::kSigmoid;
  PenaltyTable table(config);
  for (int i = 0; i < 7; ++i) table.record_result(7, 0);  // exactly 35
  ASSERT_DOUBLE_EQ(table.score(7), config.max_penalty);
  util::Xoshiro256 rng(4);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    if (!table.should_drop(7, rng)) ++accepted;
  }
  // drop_percent(35) ~ 0.993: roughly 130 of 20000 packets still inspected,
  // so a reformed device can eventually redeem itself (unlike linear).
  EXPECT_GT(accepted, 20);
  EXPECT_LT(accepted, 400);
}

TEST(PenaltyTable, LooseSchemeGentler) {
  PenaltyConfig loose_config;
  loose_config.scheme = PenaltyScheme::loose();
  PenaltyTable loose(loose_config);
  PenaltyTable base;
  for (int i = 0; i < 3; ++i) {
    loose.record_result(1, 1);
    base.record_result(1, 1);
  }
  EXPECT_LT(loose.score(1), base.score(1));
}

TEST(PenaltyTable, StrictSchemeHarsher) {
  PenaltyConfig strict_config;
  strict_config.scheme = PenaltyScheme::strict();
  PenaltyTable strict(strict_config);
  strict.record_result(1, 0);
  EXPECT_DOUBLE_EQ(strict.score(1), 10.0);
  EXPECT_TRUE(strict.is_delinquent(1));
}

TEST(PenaltyTable, DevicesAreIndependent) {
  PenaltyTable table;
  table.record_result(1, 0);
  EXPECT_GT(table.score(1), 0.0);
  EXPECT_EQ(table.score(2), 0.0);
}

TEST(PenaltyTable, RejectsInvalidChecksPassed) {
  PenaltyTable table;
  EXPECT_THROW(table.record_result(1, -1), std::out_of_range);
  EXPECT_THROW(table.record_result(1, 7), std::out_of_range);
}

TEST(PenaltyTable, RejectsInvalidConfig) {
  PenaltyConfig config;
  config.drop_thresh = 35;
  config.max_penalty = 10;
  EXPECT_THROW(PenaltyTable{config}, std::invalid_argument);
}

// ---- property tests (adversarial economics suite) -------------------------

TEST(PenaltyTableProperty, DropCurvesMonotoneAndBoundedOnAnyConfig) {
  // Both curves, several (thresh, max) geometries: drop_percent must be 0
  // below the threshold, bounded to [0, 1], and monotone nondecreasing —
  // a delinquent device can never LOWER its drop rate by getting worse.
  const double geometries[][2] = {{10, 35}, {5, 20}, {0.5, 3.5}, {10, 11}};
  for (const auto curve : {DropCurve::kLinear, DropCurve::kSigmoid}) {
    for (const auto& g : geometries) {
      PenaltyConfig config;
      config.drop_thresh = g[0];
      config.max_penalty = g[1];
      config.curve = curve;
      PenaltyTable table(config);
      SCOPED_TRACE((curve == DropCurve::kLinear ? "linear " : "sigmoid ") +
                   std::to_string(g[0]) + ".." + std::to_string(g[1]));

      double prev = 0.0;
      const double span = g[1] - g[0];
      for (int step = -20; step <= 220; ++step) {
        const double p = g[0] + span * (static_cast<double>(step) / 200.0);
        const double d = table.drop_percent(p);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
        if (p < g[0]) {
          EXPECT_EQ(d, 0.0);
        } else {
          EXPECT_GE(d, prev);
          prev = d;
        }
      }
      // Midpoint pins the two curves together; the endpoints tell them
      // apart: linear saturates at a hard 100 %, the sigmoid never does.
      EXPECT_NEAR(table.drop_percent((g[0] + g[1]) / 2.0), 0.5, 1e-9);
      if (curve == DropCurve::kLinear) {
        EXPECT_DOUBLE_EQ(table.drop_percent(g[1]), 1.0);
        EXPECT_DOUBLE_EQ(table.drop_percent(g[1] + span), 1.0);
      } else {
        // 1/(1+e^-5) regardless of geometry (scale = span/10).
        EXPECT_NEAR(table.drop_percent(g[1]), 0.99330714, 1e-6);
        EXPECT_LT(table.drop_percent(g[1] + span), 1.0);
      }
    }
  }
}

TEST(PenaltyTableProperty, ScoreInvariantsHoldUnderRandomSequences) {
  // Seeded random upload outcomes across all three Table I schemes: the
  // score can never go negative, and the delinquent/blacklist predicates
  // always agree with the score against the configured thresholds.
  util::Xoshiro256 rng(0xbadc0de5);
  for (const PenaltyScheme& scheme :
       {PenaltyScheme::base(), PenaltyScheme::loose(),
        PenaltyScheme::strict()}) {
    PenaltyConfig config;
    config.scheme = scheme;
    PenaltyTable table(config);
    SCOPED_TRACE(scheme.name);
    for (int i = 0; i < 5000; ++i) {
      const PenaltyTable::DeviceId device =
          static_cast<PenaltyTable::DeviceId>(rng.uniform(4));
      table.record_result(device, static_cast<int>(rng.uniform(7)));
      const double s = table.score(device);
      ASSERT_GE(s, 0.0);
      ASSERT_EQ(table.is_delinquent(device), s >= config.drop_thresh);
      ASSERT_EQ(table.is_blacklisted(device), s >= config.max_penalty);
    }
  }
}

TEST(PenaltyTableProperty, LinearBlacklistIsPermanentUnderProtocol) {
  // Under the protocol discipline (a packet is only scored if the
  // pre-inspection gate let it through), the linear curve's blacklist is
  // forever: every later packet is dropped before it can redeem points,
  // even a perfect one.
  PenaltyTable table;
  for (int i = 0; i < 7; ++i) table.record_result(9, 0);  // 7 x +5 = 35
  ASSERT_TRUE(table.is_blacklisted(9));
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    if (!table.should_drop(9, rng)) table.record_result(9, 6);
  }
  EXPECT_TRUE(table.is_blacklisted(9));
  EXPECT_DOUBLE_EQ(table.score(9), 35.0);
}

TEST(PenaltyTableProperty, SigmoidAllowsEventualRedemptionUnderProtocol) {
  // Same discipline under the sigmoid curve: the ~0.7 % acceptance sliver
  // at max penalty lets a genuinely reformed device claw its way back
  // below the drop threshold, which the linear curve forbids.
  PenaltyConfig config;
  config.curve = DropCurve::kSigmoid;
  PenaltyTable table(config);
  for (int i = 0; i < 7; ++i) table.record_result(9, 0);
  ASSERT_TRUE(table.is_blacklisted(9));
  util::Xoshiro256 rng(12);
  int attempts = 0;
  const int kAttemptBound = 200000;  // ~25 accepted-and-redeemed needed
  while (table.is_delinquent(9) && attempts < kAttemptBound) {
    ++attempts;
    if (!table.should_drop(9, rng)) table.record_result(9, 6);
  }
  EXPECT_FALSE(table.is_delinquent(9))
      << "still delinquent after " << attempts << " perfect uploads";
  EXPECT_LT(table.score(9), config.drop_thresh);
}

}  // namespace
}  // namespace cadet
