#include "cadet/edge_node.h"

#include <gtest/gtest.h>

#include "cadet/server_node.h"
#include "engine_harness.h"
#include "entropy/sources.h"
#include "util/rng.h"

namespace cadet {
namespace {

EdgeNode::Config edge_config(std::size_t num_clients = 4) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 55;
  config.num_clients = num_clients;
  return config;
}

util::Bytes upload_from_client(util::Xoshiro256& rng, std::size_t n = 32) {
  return encode(Packet::data_upload(entropy::synth::good(rng, n), false));
}

TEST(EdgeNode, AcceptedUploadsAccumulateUntilForwardThreshold) {
  auto config = edge_config();
  config.upload_forward_bytes = 64;
  EdgeNode edge(config);
  util::Xoshiro256 rng(1);

  // 32-byte uploads: the first should not forward, the second should.
  auto out = edge.on_packet(1000, upload_from_client(rng), 0);
  EXPECT_TRUE(out.empty());
  out = edge.on_packet(1000, upload_from_client(rng), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1u);
  const auto bulk = decode(out[0].data);
  ASSERT_TRUE(bulk.has_value());
  EXPECT_TRUE(bulk->header.dat);
  EXPECT_TRUE(bulk->header.edge_server);
  EXPECT_EQ(bulk->payload.size(), 64u);
  EXPECT_EQ(edge.stats().bulk_uploads_sent, 1u);
}

TEST(EdgeNode, BadUploadRejectedAndPenalized) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(2);
  const auto bad = encode(
      Packet::data_upload(entropy::synth::biased(rng, 32, 0.85), false));
  (void)edge.on_packet(1000, bad, 0);
  EXPECT_EQ(edge.stats().uploads_rejected_sanity, 1u);
  EXPECT_GT(edge.penalty().score(1000), 2.0);
}

TEST(EdgeNode, BlacklistedClientIgnoredBeforeInspection) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(3);
  // Drive the client to blacklist with patterned garbage (penalty-gate
  // drops along the way slow the climb, hence the generous iteration cap).
  for (int i = 0; i < 60; ++i) {
    (void)edge.on_packet(
        1000, encode(Packet::data_upload(entropy::synth::patterned(32), false)),
        0);
  }
  ASSERT_TRUE(edge.penalty().is_blacklisted(1000));
  const auto before = edge.stats().uploads_dropped_penalty;
  (void)edge.on_packet(1000, upload_from_client(rng), 0);
  EXPECT_EQ(edge.stats().uploads_dropped_penalty, before + 1);
}

TEST(EdgeNode, RequestMissOnColdCacheForwardsToServer) {
  EdgeNode edge(edge_config());
  const auto out =
      edge.on_packet(1000, encode(Packet::data_request(512, false)), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1u);
  const auto fwd = decode(out[0].data);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_TRUE(fwd->header.req);
  EXPECT_TRUE(fwd->header.edge_server);
  EXPECT_EQ(edge.stats().cache_misses, 1u);
}

TEST(EdgeNode, ServerDeliveryFillsCacheAndAnswersPending) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(4);
  (void)edge.on_packet(1000, encode(Packet::data_request(512, false)), 0);

  const auto delivery =
      Packet::data_ack(entropy::synth::good(rng, 2048), true, false);
  const auto out = edge.on_packet(1, encode(delivery), 0);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1000u);
  const auto reply = decode(out[0].data);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->header.ack);
  EXPECT_EQ(reply->payload.size(), 64u);  // 512 bits
  EXPECT_GT(edge.cache().size_bytes(), 0u);
}

TEST(EdgeNode, WarmCacheHitsLocally) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(5);
  // Warm up via a server delivery with nothing pending.
  (void)edge.on_packet(
      1, encode(Packet::data_ack(entropy::synth::good(rng, 2048), true, false)),
      0);
  const auto out =
      edge.on_packet(1000, encode(Packet::data_request(256, false)), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1000u);  // direct reply, no server round trip
  EXPECT_EQ(edge.stats().cache_hits, 1u);
}

TEST(EdgeNode, RefillRequestedBelowQuarterCapacity) {
  EdgeNode edge(edge_config(/*num_clients=*/2));  // capacity 1024
  util::Xoshiro256 rng(6);
  (void)edge.on_packet(
      1, encode(Packet::data_ack(entropy::synth::good(rng, 1024), true, false)),
      0);
  // Drain to just above threshold (256): take 256 bytes -> 768 left.
  auto out = edge.on_packet(1000, encode(Packet::data_request(2048, false)), 0);
  ASSERT_EQ(out.size(), 1u);  // reply only, no refill yet
  // Drain past the threshold: 768 - 520 = 248 < 256.
  out = edge.on_packet(1000, encode(Packet::data_request(4160, false)), 0);
  bool refill_seen = false;
  for (const auto& o : out) {
    const auto p = decode(o.data);
    if (p && p->header.req && p->header.edge_server) refill_seen = true;
  }
  EXPECT_TRUE(refill_seen);
}

TEST(EdgeNode, UsageScoreRecordedPerRequest) {
  EdgeNode edge(edge_config());
  (void)edge.on_packet(1000, encode(Packet::data_request(512, false)), 0);
  EXPECT_DOUBLE_EQ(edge.usage().score(1000), 64.0);
  (void)edge.on_packet(1001, encode(Packet::data_request(256, false)), 0);
  EXPECT_DOUBLE_EQ(edge.usage().score(1001), 32.0);
  EXPECT_NEAR(edge.usage().score(1000), 64.0 * kUsageDecay, 1e-9);
}

TEST(EdgeNode, HeavyUserBlockedFromReserve) {
  EdgeNode edge(edge_config(/*num_clients=*/2));  // cap 1024, reserve 256
  util::Xoshiro256 rng(7);
  (void)edge.on_packet(
      1, encode(Packet::data_ack(entropy::synth::good(rng, 1024), true, false)),
      0);

  // Make client 2000 heavy relative to peers: quiet history first, then a
  // sustained burst.
  for (int i = 0; i < 200; ++i) {
    edge.usage().record(1001, 8.0);
    edge.usage().record(1002, 8.0);
    edge.usage().record(2000, 8.0);
  }
  for (int i = 0; i < 50; ++i) {
    edge.usage().record(1001, 8.0);
    edge.usage().record(1002, 8.0);
    edge.usage().record(2000, 800.0);
  }
  ASSERT_TRUE(edge.usage().is_heavy(2000));

  // Drain the open portion with regular clients: 1024 -> 272 bytes.
  for (int i = 0; i < 2; ++i) {
    (void)edge.on_packet(1001, encode(Packet::data_request(3008, false)), 0);
  }
  ASSERT_LE(edge.cache().size_bytes(), 300u);

  // The heavy user's modest request would dip into the reserve: blocked
  // from it (queued for the next refill, not served locally).
  const auto before_hits = edge.stats().cache_hits;
  (void)edge.on_packet(2000, encode(Packet::data_request(512, false)), 0);
  EXPECT_EQ(edge.stats().cache_hits, before_hits);
  EXPECT_GE(edge.stats().heavy_rejections, 1u);
  EXPECT_EQ(edge.heavy_denials(2000), 0u);

  // Sustained over-line requests at flooding rate escalate from
  // reserve-blocking to full denial: once the strike limit and the
  // arrival-rate window (all these arrivals share one instant — a burst)
  // are both satisfied, requests are refused outright, no longer queued.
  const int flood = static_cast<int>(kUsageHeavyDenyWindow) +
                    kUsageHeavyStrikeLimit;
  for (int i = 0; i < flood && edge.heavy_denials(2000) == 0; ++i) {
    (void)edge.on_packet(2000, encode(Packet::data_request(512, false)), 0);
  }
  ASSERT_GE(edge.heavy_denials(2000), 1u);
  const auto before_pending = edge.pending_requests();
  (void)edge.on_packet(2000, encode(Packet::data_request(512, false)), 0);
  EXPECT_EQ(edge.stats().cache_hits, before_hits);
  EXPECT_EQ(edge.pending_requests(), before_pending);

  // A regular user still gets served from the reserve.
  const auto out =
      edge.on_packet(1002, encode(Packet::data_request(512, false)), 0);
  bool served = false;
  for (const auto& o : out) {
    if (o.to == 1002) served = true;
  }
  EXPECT_TRUE(served);
}

TEST(EdgeNode, EdgeRegistrationHandshake) {
  EdgeNode edge(edge_config());
  ServerNode::Config sc;
  sc.id = 1;
  sc.seed = 9;
  ServerNode server(sc);
  test::EnginePump pump;
  pump.attach(edge);
  pump.attach(server);

  bool complete = false;
  auto out = edge.begin_edge_reg(0, [&](util::SimTime) { complete = true; });
  pump.pump(std::move(out), edge.id());
  EXPECT_TRUE(complete);
  EXPECT_TRUE(edge.registered());
  EXPECT_TRUE(server.edge_registered(edge.id()));
}

TEST(EdgeNode, ReregForwardRequiresRegistration) {
  EdgeNode edge(edge_config());
  util::Bytes payload(36, 0xab);
  const auto out = edge.on_packet(
      1000,
      encode(Packet::registration(RegSubtype::kReregReq, payload, true, false,
                                  true, false)),
      0);
  EXPECT_TRUE(out.empty());  // no esk yet -> dropped
}

TEST(EdgeNode, SanityChecksCanBeDisabled) {
  auto config = edge_config();
  config.sanity_checks_enabled = false;
  EdgeNode edge(config);
  (void)edge.on_packet(
      1000, encode(Packet::data_upload(entropy::synth::patterned(32), false)),
      0);
  EXPECT_EQ(edge.stats().uploads_rejected_sanity, 0u);
  EXPECT_EQ(edge.stats().uploads_accepted, 1u);
}

// Adversary-harness finding (decay-clock attack): any attacker-reachable
// gate that ticked the usage clock let a garbage or retransmit flood
// compress every honest score toward zero until honest double-fires
// crossed the shrunken heavy threshold. Gated packets are "not
// processed" — they must not advance the clock.
TEST(EdgeNode, GatedPacketsDoNotAdvanceUsageClock) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(11);
  // Malformed bytes die at the decode gate.
  auto steps = edge.usage().steps();
  (void)edge.on_packet(1000, util::Bytes{0xff, 0xff}, 0);
  EXPECT_EQ(edge.usage().steps(), steps);
  // A duplicated packet (sequenced retransmission) dies at the replay
  // gate. seq 0 would bypass dedup, so stamp one explicitly.
  Packet req = Packet::data_request(512, false);
  req.header.seq = 7;
  const auto wire_req = encode(req);
  (void)edge.on_packet(1000, wire_req, 0);
  steps = edge.usage().steps();
  (void)edge.on_packet(1000, wire_req, 0);
  EXPECT_EQ(edge.usage().steps(), steps);
  EXPECT_EQ(edge.stats().dupes_dropped, 1u);
  // A sanity-rejected upload dies at the sanity gate.
  const auto bad =
      encode(Packet::data_upload(entropy::synth::biased(rng, 32, 0.85), false));
  steps = edge.usage().steps();
  (void)edge.on_packet(1001, bad, 0);
  ASSERT_EQ(edge.stats().uploads_rejected_sanity, 1u);
  EXPECT_EQ(edge.usage().steps(), steps);
}

// The flip side: accepted work does advance the clock, so scores still
// decay at the edge's organic packet rate.
TEST(EdgeNode, AcceptedUploadAdvancesUsageClock) {
  EdgeNode edge(edge_config());
  util::Xoshiro256 rng(12);
  const auto steps = edge.usage().steps();
  (void)edge.on_packet(1000, upload_from_client(rng), 0);
  EXPECT_EQ(edge.usage().steps(), steps + 1);
}

}  // namespace
}  // namespace cadet
