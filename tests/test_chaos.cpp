// Chaos suite: deterministic fault injection over the full testbed.
//
// A seeded sweep of fault mixes (loss, duplication, reordering, corruption,
// partitions, crashes) drives the protocol's retry/timeout/backoff machinery
// and asserts the invariants that must survive any network weather:
//   1. every client converges — each request resolves as a delivery, an
//      explicit CSPRNG fallback, or an expiry; none is left pending;
//   2. accounting stays consistent — no duplicated entropy delivery, so the
//      bytes clients credit never exceed the bytes edges shipped;
//   3. honest clients are never blacklisted by fault-induced loss alone;
//   4. the same seed replays to a byte-identical JSONL trace.
//
// To reproduce a failing seed locally, see docs/FAULT_INJECTION.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chaos_harness.h"
#include "obs/trace.h"

namespace cadet::testbed::chaos {
namespace {

std::uint64_t sweep_seeds() {
  const char* env = std::getenv("CADET_CHAOS_SEEDS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 20;
}

void check_invariants(const ScenarioConfig& cfg, const ScenarioResult& r) {
  SCOPED_TRACE("seed " + std::to_string(cfg.seed));

  // (1) convergence: every request resolved exactly one way, none stuck.
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.requests_sent, r.fulfilled + r.fallback + r.expired);
  EXPECT_GT(r.requests_sent, 0u);

  // (2) no duplicated delivery: what clients credited is bounded by what
  // the edge tier shipped (duplicates must die in the replay filters).
  EXPECT_LE(r.client_bytes_received, r.edge_bytes_delivered);

  // (3) loss/duplication/reordering alone must never blacklist an honest
  // client (corruption can, legitimately: flipped upload bits fail the
  // sanity battery, which is the penalty system doing its job).
  if (cfg.corrupt == 0.0) {
    EXPECT_FALSE(r.honest_client_blacklisted);
  }

  // Harness sanity: the fault layer actually fired for active fault knobs.
  if (cfg.drop > 0.0) {
    EXPECT_GT(r.faults.dropped, 0u);
  }
  if (cfg.duplicate > 0.0) {
    EXPECT_GT(r.faults.duplicated, 0u);
  }
  if (cfg.reorder > 0.0) {
    EXPECT_GT(r.faults.reordered, 0u);
  }
  if (!cfg.partitions.empty()) {
    EXPECT_GT(r.faults.partitioned, 0u);
  }
  if (!cfg.crashes.empty()) {
    EXPECT_GT(r.faults.crashed, 0u);
  }
  // Injected duplicates must be visible to (and absorbed by) the dedup
  // windows somewhere in the system.
  if (cfg.duplicate > 0.05) {
    EXPECT_GT(r.client_dupes_dropped + r.edge_dupes_dropped +
                  r.server_dupes_dropped,
              0u);
  }
}

TEST(Chaos, SeededSweepHoldsInvariants) {
  const std::uint64_t seeds = sweep_seeds();
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const ScenarioConfig cfg = mix_for_seed(s);
    check_invariants(cfg, run_scenario(cfg));
  }
}

TEST(Chaos, TenPercentDropEveryClientConverges) {
  // ISSUE acceptance: at 10 % packet loss every client still converges
  // within the sim horizon — retransmissions recover most requests and the
  // CSPRNG fallback explicitly resolves the rest.
  ScenarioConfig cfg;
  cfg.seed = 20180711;
  cfg.drop = 0.10;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.clients_served, r.num_clients);
  EXPECT_GT(r.retried, 0u);  // the loss actually exercised retransmission
  // Retries recover far more than they abandon: deliveries dominate.
  EXPECT_GT(r.fulfilled, 4 * (r.fallback + r.expired));
}

TEST(Chaos, RetriesAreAbsorbedNotDoubleServed) {
  // Duplication-heavy mix: the replay filters must absorb both network
  // duplicates and retransmissions whose first copy arrived.
  ScenarioConfig cfg;
  cfg.seed = 20180722;
  cfg.drop = 0.08;
  cfg.duplicate = 0.20;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.pending, 0u);
  EXPECT_GT(r.client_dupes_dropped + r.edge_dupes_dropped +
                r.server_dupes_dropped,
            0u);
  EXPECT_LE(r.client_bytes_received, r.edge_bytes_delivered);
}

TEST(Chaos, PartitionHealsAndServiceRecovers) {
  ScenarioConfig cfg;
  cfg.seed = 20180733;
  cfg.partitions.push_back({edge_id(0), kServerId, util::from_seconds(10),
                            util::from_seconds(20)});
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.pending, 0u);
  EXPECT_GT(r.faults.partitioned, 0u);
  // After the partition heals the edge must refill and keep serving; with
  // the cache in front of it, most requests still succeed.
  EXPECT_EQ(r.clients_served, r.num_clients);
  EXPECT_GT(r.fulfilled, r.fallback + r.expired);
}

#if CADET_OBS_ENABLED
TEST(Chaos, SameSeedReplaysByteIdentical) {
  // Determinism regression (and tentpole invariant 4): one seed, two runs,
  // byte-identical JSONL trace output. Any hidden nondeterminism — wall
  // clock, unordered-container iteration, uninitialized reads — breaks
  // this, which is exactly what makes failing chaos seeds reproducible.
  ScenarioConfig cfg = mix_for_seed(3);  // the everything-on mix
  cfg.horizon_s = 30.0;

  auto traced_run = [&cfg]() {
    obs::MemorySink sink;
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_sink(&sink);
    tracer.enable(true);
    (void)run_scenario(cfg);
    tracer.flush();
    tracer.enable(false);
    tracer.set_sink(nullptr);
    std::string jsonl;
    for (const auto& event : sink.events()) {
      jsonl += obs::to_json(event);
      jsonl += '\n';
    }
    return jsonl;
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}
#endif  // CADET_OBS_ENABLED

// ---- FaultyTransport unit coverage ----------------------------------------

TEST(FaultyTransport, CertainDropDeliversNothing) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 1);
  net::FaultPlan plan;
  plan.default_rule.drop = 1.0;
  net::FaultyTransport faulty(inner, simulator, plan);
  int delivered = 0;
  faulty.set_handler(2, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  for (int i = 0; i < 10; ++i) faulty.send(1, 2, {1, 2, 3});
  simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(faulty.counts().dropped, 10u);
}

TEST(FaultyTransport, CertainDuplicationDeliversTwice) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 2);
  net::FaultPlan plan;
  plan.default_rule.duplicate = 1.0;
  net::FaultyTransport faulty(inner, simulator, plan);
  int delivered = 0;
  faulty.set_handler(2, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.send(1, 2, {9});
  simulator.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(faulty.counts().duplicated, 1u);
}

TEST(FaultyTransport, PartitionWindowBlocksBothDirections) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 3);
  net::FaultPlan plan;
  plan.partitions.push_back({1, 2, 0, util::from_seconds(5)});
  net::FaultyTransport faulty(inner, simulator, plan);
  int delivered = 0;
  faulty.set_handler(1, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.set_handler(2, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.send(1, 2, {1});  // inside the window, either direction
  faulty.send(2, 1, {2});
  simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(faulty.counts().partitioned, 2u);
  // After the window both directions flow again.
  simulator.schedule_at(util::from_seconds(6), [&]() {
    faulty.send(1, 2, {3});
    faulty.send(2, 1, {4});
  });
  simulator.run();
  EXPECT_EQ(delivered, 2);
}

TEST(FaultyTransport, CrashedNodeNeitherSendsNorReceives) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 4);
  net::FaultPlan plan;
  plan.crashes.push_back({2, 0, util::from_seconds(5)});
  net::FaultyTransport faulty(inner, simulator, plan);
  int delivered = 0;
  faulty.set_handler(1, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.set_handler(2, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.send(2, 1, {1});  // crashed sender
  faulty.send(1, 2, {2});  // crashed receiver
  simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(faulty.counts().crashed, 2u);
  // Restarted: traffic flows again.
  simulator.schedule_at(util::from_seconds(6), [&]() {
    faulty.send(2, 1, {3});
  });
  simulator.run();
  EXPECT_EQ(delivered, 1);
}

TEST(FaultyTransport, CorruptionFlipsBitsButKeepsSize) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 5);
  net::FaultPlan plan;
  plan.default_rule.corrupt = 1.0;
  net::FaultyTransport faulty(inner, simulator, plan);
  const util::Bytes original(64, 0xaa);
  util::Bytes got;
  faulty.set_handler(2, [&](net::NodeId, util::BytesView data, util::SimTime) {
    got.assign(data.begin(), data.end());
  });
  faulty.send(1, 2, original);
  simulator.run();
  ASSERT_EQ(got.size(), original.size());
  EXPECT_NE(got, original);
  EXPECT_EQ(faulty.counts().corrupted, 1u);
}

TEST(FaultyTransport, DisabledPassesThroughUntouched) {
  sim::Simulator simulator;
  net::SimTransport inner(simulator, 6);
  net::FaultPlan plan;
  plan.default_rule.drop = 1.0;
  net::FaultyTransport faulty(inner, simulator, plan);
  faulty.set_enabled(false);
  int delivered = 0;
  faulty.set_handler(2, [&](net::NodeId, util::BytesView, util::SimTime) {
    ++delivered;
  });
  faulty.send(1, 2, {1});
  simulator.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(faulty.counts().dropped, 0u);
}

TEST(FaultyTransport, SameSeedSameFaultSequence) {
  // Two transports built from the same plan make identical decisions.
  for (int round = 0; round < 2; ++round) {
    sim::Simulator simulator;
    net::SimTransport inner(simulator, 7);
    net::FaultPlan plan;
    plan.seed = 42;
    plan.default_rule.drop = 0.5;
    net::FaultyTransport faulty(inner, simulator, plan);
    faulty.set_handler(2,
                       [](net::NodeId, util::BytesView, util::SimTime) {});
    for (int i = 0; i < 100; ++i) faulty.send(1, 2, {1});
    simulator.run();
    static std::uint64_t first_round_drops = 0;
    if (round == 0) {
      first_round_drops = faulty.counts().dropped;
      EXPECT_GT(first_round_drops, 0u);
      EXPECT_LT(first_round_drops, 100u);
    } else {
      EXPECT_EQ(faulty.counts().dropped, first_round_drops);
    }
  }
}

}  // namespace
}  // namespace cadet::testbed::chaos
