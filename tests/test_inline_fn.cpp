#include "sim/inline_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace cadet::sim {
namespace {

// Counts construction/destruction/invocation of a capture so the tests can
// observe exactly what InlineFn does with its payload.
struct Probe {
  int* invoked;
  int* destroyed;
  int* moved;

  Probe(int* i, int* d, int* m) : invoked(i), destroyed(d), moved(m) {}
  Probe(Probe&& other) noexcept
      : invoked(other.invoked),
        destroyed(other.destroyed),
        moved(other.moved) {
    ++*moved;
    other.invoked = nullptr;
    other.destroyed = nullptr;
  }
  Probe(const Probe&) = delete;
  ~Probe() {
    if (destroyed != nullptr) ++*destroyed;
  }
  void operator()() { ++*invoked; }
};

// Padding pushes the callable past kInlineSize so it takes the heap path.
template <std::size_t Pad>
struct PaddedProbe : Probe {
  std::array<unsigned char, Pad> pad{};
  using Probe::Probe;
  PaddedProbe(PaddedProbe&&) noexcept = default;
};

using SmallProbe = PaddedProbe<1>;
using LargeProbe = PaddedProbe<InlineFn::kInlineSize + 1>;

static_assert(InlineFn::fits_inline<SmallProbe>(),
              "small capture must take the inline path");
static_assert(!InlineFn::fits_inline<LargeProbe>(),
              "oversized capture must take the heap path");

template <typename P>
void exercise_invoke_and_destroy() {
  int invoked = 0, destroyed = 0, moved = 0;
  {
    InlineFn fn(P(&invoked, &destroyed, &moved));
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(invoked, 2);
    EXPECT_EQ(destroyed, 0);
  }
  // Moved-from temporaries register destructions too; exactly one live
  // payload must have died with the InlineFn.
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(invoked, 2);
}

TEST(InlineFn, InlineInvokeAndDestroy) {
  exercise_invoke_and_destroy<SmallProbe>();
}

TEST(InlineFn, HeapFallbackInvokeAndDestroy) {
  exercise_invoke_and_destroy<LargeProbe>();
}

TEST(InlineFn, DefaultAndNullptrAreEmpty) {
  InlineFn a;
  InlineFn b(nullptr);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(InlineFn, MoveTransfersOwnership) {
  int invoked = 0, destroyed = 0, moved = 0;
  InlineFn a(SmallProbe(&invoked, &destroyed, &moved));
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(invoked, 1);

  // Move-assign over an occupied target destroys the target's payload.
  int invoked2 = 0, destroyed2 = 0, moved2 = 0;
  InlineFn c(SmallProbe(&invoked2, &destroyed2, &moved2));
  const int destroyed_before = destroyed;
  c = std::move(b);
  EXPECT_EQ(destroyed2, 1);
  EXPECT_FALSE(static_cast<bool>(b));
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(invoked, 2);
  EXPECT_EQ(destroyed, destroyed_before);
}

template <typename P>
void exercise_consume() {
  int invoked = 0, destroyed = 0, moved = 0;
  InlineFn fn(P(&invoked, &destroyed, &moved));
  const int live_deaths_before = destroyed;
  fn.consume();
  EXPECT_EQ(invoked, 1);
  EXPECT_EQ(destroyed, live_deaths_before + 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, ConsumeInvokesOnceAndEmpties) {
  exercise_consume<SmallProbe>();
}

TEST(InlineFn, ConsumeHeapFallback) { exercise_consume<LargeProbe>(); }

template <typename P>
void exercise_consume_throwing() {
  int destroyed = 0;
  struct Thrower {
    P probe;
    void operator()() { throw std::runtime_error("boom"); }
  };
  int invoked = 0, moved = 0;
  InlineFn fn(Thrower{P(&invoked, &destroyed, &moved)});
  const int live_deaths_before = destroyed;
  EXPECT_THROW(fn.consume(), std::runtime_error);
  // The payload must be destroyed even though the callable threw, and the
  // InlineFn must be left empty (no double destruction at scope exit).
  EXPECT_EQ(destroyed, live_deaths_before + 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, ConsumeDestroysOnThrow) {
  exercise_consume_throwing<SmallProbe>();
}

TEST(InlineFn, ConsumeDestroysOnThrowHeapFallback) {
  exercise_consume_throwing<LargeProbe>();
}

TEST(InlineFn, EmplaceReplacesPayload) {
  int invoked1 = 0, destroyed1 = 0, moved1 = 0;
  int invoked2 = 0, destroyed2 = 0, moved2 = 0;
  InlineFn fn(SmallProbe(&invoked1, &destroyed1, &moved1));
  fn.emplace(SmallProbe(&invoked2, &destroyed2, &moved2));
  EXPECT_EQ(destroyed1, 1);  // the replaced live payload
  fn();
  EXPECT_EQ(invoked1, 0);
  EXPECT_EQ(invoked2, 1);
}

// A callback that grows the slab mid-execution: the simulator invokes
// callbacks in place, so slab growth (new chunks) while one runs must not
// invalidate the executing cell.
TEST(InlineFn, SimulatorSurvivesSlabGrowthDuringCallback) {
  Simulator sim;
  int fanout_ran = 0;
  sim.schedule(1, [&sim, &fanout_ran] {
    // Far more events than one slab chunk holds, scheduled while this
    // closure's own cell is live.
    for (int i = 0; i < 4096; ++i) {
      sim.schedule(1 + i, [&fanout_ran] { ++fanout_ran; });
    }
  });
  EXPECT_EQ(sim.run(), 4097u);
  EXPECT_EQ(fanout_ran, 4096);
}

// Equal-time events must fire in scheduling order (the determinism
// contract the testbed relies on).
TEST(InlineFn, SimulatorKeepsFifoOrderAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 300; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace cadet::sim
