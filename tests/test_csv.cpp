#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/csv.h"

namespace cadet::obs {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsThatNeedIt) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRoundTrip, SplitUndoesJoin) {
  const std::vector<std::vector<std::string>> cases = {
      {"a", "b", "c"},
      {"plain", "with,comma", "with \"quotes\"", ""},
      {"", "", ""},
      {"tier=edge;node=100", "42"},
  };
  for (const auto& cells : cases) {
    EXPECT_EQ(csv_split(csv_join(cells)), cells);
  }
}

TEST(CsvFile, WritesEscapedRows) {
  const std::string path = testing::TempDir() + "/cadet_csv_test.csv";
  {
    CsvFile f(path);
    ASSERT_TRUE(f.ok());
    f.row({"name", "value"});
    f.row({"with,comma", "7"});
    f.rowf("%d,%.2f", 3, 1.5);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",7");
  EXPECT_EQ(csv_split(line), (std::vector<std::string>{"with,comma", "7"}));
  std::getline(in, line);
  EXPECT_EQ(line, "3,1.50");
  std::remove(path.c_str());
}

TEST(CsvFile, DirAndNameConstructorMatchesBenchUsage) {
  const std::string dir = testing::TempDir();
  {
    CsvFile f(dir, "cadet_csv_dir_test.csv");
    ASSERT_TRUE(f.ok());
    f.row({"x", "y"});
  }
  std::ifstream in(dir + "/cadet_csv_dir_test.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove((dir + "/cadet_csv_dir_test.csv").c_str());
}

}  // namespace
}  // namespace cadet::obs
