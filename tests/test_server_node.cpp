#include "cadet/server_node.h"

#include <gtest/gtest.h>

#include "cadet/client_node.h"
#include "cadet/edge_node.h"
#include "cadet/seal.h"
#include "engine_harness.h"
#include "entropy/sources.h"
#include "util/rng.h"

namespace cadet {
namespace {

ServerNode::Config server_config() {
  ServerNode::Config config;
  config.id = 1;
  config.seed = 99;
  return config;
}

TEST(ServerNode, UploadIsMixedIntoPool) {
  ServerNode server(server_config());
  util::Xoshiro256 rng(1);
  const auto upload =
      Packet::data_upload(entropy::synth::good(rng, 256), true);
  (void)server.on_packet(100, encode(upload), 0);
  EXPECT_EQ(server.stats().uploads_received, 1u);
  EXPECT_EQ(server.stats().bytes_mixed, 256u);
  EXPECT_GT(server.pool().size(), 0u);
}

TEST(ServerNode, BadBulkUploadRejected) {
  ServerNode server(server_config());
  util::Xoshiro256 rng(2);
  const auto upload =
      Packet::data_upload(entropy::synth::biased(rng, 256, 0.8), true);
  (void)server.on_packet(100, encode(upload), 0);
  EXPECT_EQ(server.stats().uploads_rejected_sanity, 1u);
  EXPECT_EQ(server.pool().size(), 0u);
  EXPECT_GT(server.penalty().score(100), 0.0);
}

TEST(ServerNode, RequestServedFromPool) {
  ServerNode server(server_config());
  util::Xoshiro256 rng(3);
  server.seed_pool(rng.bytes(1024));
  const auto out =
      server.on_packet(100, encode(Packet::data_request(512, true)), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 100u);
  const auto reply = decode(out[0].data);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->header.ack);
  EXPECT_FALSE(reply->header.encrypted);  // edge not registered
  EXPECT_EQ(reply->payload.size(), 64u);
  EXPECT_EQ(server.pool().size(), 1024u - 64u);
}

TEST(ServerNode, ShortPoolServesPartial) {
  ServerNode server(server_config());
  util::Xoshiro256 rng(4);
  server.seed_pool(rng.bytes(10));
  const auto out =
      server.on_packet(100, encode(Packet::data_request(512, true)), 0);
  ASSERT_EQ(out.size(), 1u);
  const auto reply = decode(out[0].data);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload.size(), 10u);
  EXPECT_EQ(server.stats().requests_short, 1u);
}

TEST(ServerNode, RegisteredEdgeGetsSealedDelivery) {
  ServerNode server(server_config());
  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 5;
  EdgeNode edge(ec);
  test::EnginePump pump;
  pump.attach(server);
  pump.attach(edge);
  pump.pump(edge.begin_edge_reg(0), edge.id());
  ASSERT_TRUE(edge.registered());

  util::Xoshiro256 rng(6);
  server.seed_pool(rng.bytes(1024));
  const auto out =
      server.on_packet(100, encode(Packet::data_request(512, true)), 0);
  ASSERT_EQ(out.size(), 1u);
  const auto reply = decode(out[0].data);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->header.encrypted);
  EXPECT_EQ(reply->payload.size(), 64u + kSealOverhead);

  // The edge can open it and fill its cache.
  (void)edge.on_packet(1, out[0].data, 0);
  EXPECT_EQ(edge.cache().size_bytes(), 64u);
}

TEST(ServerNode, FullReregistrationFlow) {
  ServerNode server(server_config());
  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 7;
  EdgeNode edge(ec);
  ClientNode::Config cc;
  cc.id = 1000;
  cc.edge = 100;
  cc.server = 1;
  cc.seed = 8;
  ClientNode client(cc);

  test::EnginePump pump;
  pump.attach(server);
  pump.attach(edge);
  pump.attach(client);

  pump.pump(edge.begin_edge_reg(0), edge.id());
  pump.pump(client.begin_init(0), client.id());
  ASSERT_TRUE(client.initialized());

  bool rereg_done = false;
  pump.pump(client.begin_rereg(util::from_seconds(10),
                               [&](util::SimTime) { rereg_done = true; }),
            client.id(), util::from_seconds(10));
  EXPECT_TRUE(rereg_done);
  EXPECT_TRUE(client.reregistered());
}

TEST(ServerNode, ReregWithBogusTokenRejected) {
  ServerNode server(server_config());
  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 9;
  EdgeNode edge(ec);
  ClientNode::Config cc;
  cc.id = 1000;
  cc.edge = 100;
  cc.server = 1;
  cc.seed = 10;
  ClientNode client(cc);

  test::EnginePump pump;
  pump.attach(server);
  pump.attach(edge);
  pump.attach(client);
  pump.pump(edge.begin_edge_reg(0), edge.id());
  pump.pump(client.begin_init(0), client.id());

  // Forge a rereg with a wrong token hash via the edge.
  util::Bytes payload(4);
  util::put_u32_be(payload.data(), 1000);
  payload.insert(payload.end(), 32, 0xee);
  bool done = false;
  (void)done;
  pump.pump({{100, encode(Packet::registration(RegSubtype::kReregReq,
                                               payload, true, false, true,
                                               false))}},
            client.id());
  EXPECT_FALSE(client.reregistered());
}

TEST(ServerNode, ReregForUnknownClientRejected) {
  ServerNode server(server_config());
  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 11;
  EdgeNode edge(ec);
  test::EnginePump pump;
  pump.attach(server);
  pump.attach(edge);
  pump.pump(edge.begin_edge_reg(0), edge.id());

  util::Bytes payload(4);
  util::put_u32_be(payload.data(), 4242);  // never initialized
  payload.insert(payload.end(), 32, 0x11);
  pump.pump({{100, encode(Packet::registration(RegSubtype::kReregReq,
                                               payload, true, false, true,
                                               false))}},
            4242);
  // Server must not mint a key for the unknown client.
  EXPECT_FALSE(server.client_known(4242));
}

TEST(ServerNode, PoolExchangeMovesDataBetweenServers) {
  ServerNode::Config ca = server_config();
  ServerNode::Config cb = server_config();
  cb.id = 2;
  cb.seed = 123;
  ServerNode a(ca), b(cb);
  util::Xoshiro256 rng(12);
  a.seed_pool(rng.bytes(1024));

  test::EnginePump pump;
  pump.attach(a);
  pump.attach(b);
  pump.pump(a.begin_pool_exchange(2, 256), a.id());
  EXPECT_EQ(a.pool().size(), 1024u - 256u);
  EXPECT_GT(b.pool().size(), 0u);
  EXPECT_EQ(a.stats().pool_exchanges, 1u);
}

TEST(ServerNode, QualityCheckRunsAndPasses) {
  ServerNode::Config config = server_config();
  config.quality_check_interval_bytes = 0;  // manual only
  config.quality_check_bits = 20000;
  ServerNode server(config);
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 200; ++i) {
    (void)server.on_packet(
        100, encode(Packet::data_upload(entropy::synth::good(rng, 64), true)),
        0);
  }
  const auto result = server.run_quality_check();
  EXPECT_EQ(server.stats().quality_checks_run, 1u);
  EXPECT_GE(result.passed(), 6);
  EXPECT_EQ(server.stats().quality_checks_failed, 0u);
}

TEST(ServerNode, PeriodicQualityCheckTriggers) {
  ServerNode::Config config = server_config();
  config.quality_check_interval_bytes = 4096;
  config.quality_check_bits = 8192;
  ServerNode server(config);
  util::Xoshiro256 rng(14);
  for (int i = 0; i < 100; ++i) {
    (void)server.on_packet(
        100, encode(Packet::data_upload(entropy::synth::good(rng, 64), true)),
        0);
  }
  EXPECT_GE(server.stats().quality_checks_run, 1u);
}

TEST(ServerNode, MalformedPacketIgnored) {
  ServerNode server(server_config());
  EXPECT_TRUE(server.on_packet(100, util::Bytes{9}, 0).empty());
}

TEST(ServerNode, ForgedRegistrationConfirmRejected) {
  ServerNode server(server_config());
  util::Xoshiro256 rng(15);
  crypto::Csprng csprng(std::uint64_t{16});
  const auto kp = make_keypair(csprng);
  const Nonce n = csprng.array<8>();
  (void)server.on_packet(
      100,
      encode(Packet::registration(RegSubtype::kEdgeRegReq,
                                  encode_reg_request(kp.public_key, n), true,
                                  false, false, true)),
      0);
  // Confirm with garbage instead of E(n+2, esk).
  (void)server.on_packet(
      100,
      encode(Packet::registration(RegSubtype::kEdgeRegAck, rng.bytes(36),
                                  false, true, false, true, true)),
      0);
  EXPECT_FALSE(server.edge_registered(100));
}

}  // namespace
}  // namespace cadet
