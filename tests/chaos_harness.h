// Seeded chaos-scenario runner for the fault-injection tests: builds a
// small testbed behind a FaultyTransport, registers it over a clean network,
// flips the faults on, drives a mixed workload, and snapshots every counter
// the invariant checks need. One ScenarioConfig seed fully determines the
// run — workload arrivals, link faults, retry jitter — so a failing seed
// reported by test_chaos reproduces exactly (docs/FAULT_INJECTION.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/faulty_transport.h"
#include "obs/metrics.h"
#include "testbed/topology.h"
#include "testbed/workload.h"

namespace cadet::testbed::chaos {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  /// Link-fault probabilities applied to every link.
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  /// Timed partitions / crash windows (absolute sim time; registration
  /// finishes within the first ~5 simulated seconds, so windows at >= 10 s
  /// land mid-workload).
  std::vector<net::Partition> partitions;
  std::vector<net::Crash> crashes;
  /// Workload horizon (starts when registration completes) and the drain
  /// window afterwards in which retry/fallback chains must resolve.
  double horizon_s = 60.0;
  double drain_s = 20.0;
  std::size_t num_networks = 2;
  std::size_t clients_per_network = 4;
  double request_rate_hz = 0.5;
  double upload_rate_hz = 0.5;
};

/// Everything the invariant checks look at, snapshotted after the drain.
struct ScenarioResult {
  // Per-run totals across all clients.
  std::uint64_t requests_sent = 0;
  std::uint64_t fulfilled = 0;
  std::uint64_t fallback = 0;
  std::uint64_t expired = 0;
  std::uint64_t retried = 0;
  std::uint64_t pending = 0;  // stuck requests (must be 0 after drain)
  std::uint64_t client_bytes_received = 0;
  std::uint64_t client_dupes_dropped = 0;
  /// Clients that resolved at least one request (delivery or fallback).
  std::size_t clients_served = 0;
  std::size_t num_clients = 0;

  // Edge tier totals.
  std::uint64_t edge_bytes_delivered = 0;
  std::uint64_t edge_dupes_dropped = 0;
  std::uint64_t edge_refill_retries = 0;
  bool honest_client_blacklisted = false;

  // Server tier.
  std::uint64_t server_dupes_dropped = 0;

  net::FaultyTransport::FaultCounts faults;
  WorkloadMetrics workload;
};

inline net::FaultPlan make_plan(const ScenarioConfig& cfg) {
  net::FaultPlan plan;
  plan.seed = cfg.seed * 7919 + 17;
  plan.default_rule.drop = cfg.drop;
  plan.default_rule.duplicate = cfg.duplicate;
  plan.default_rule.reorder = cfg.reorder;
  plan.default_rule.corrupt = cfg.corrupt;
  plan.partitions = cfg.partitions;
  plan.crashes = cfg.crashes;
  return plan;
}

inline ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  TestbedConfig tc;
  tc.seed = cfg.seed;
  tc.num_networks = cfg.num_networks;
  tc.clients_per_network = cfg.clients_per_network;
  tc.profiles.assign(cfg.num_networks, NetworkProfile::kBalanced);
  tc.fault_plan = make_plan(cfg);
  World world(tc);

  // Registration runs over a clean network (the scenarios probe data-path
  // robustness; registration under loss is covered by the retry unit
  // tests), then the faults switch on for the whole workload + drain.
  world.faults()->set_enabled(false);
  world.register_edges();
  world.register_clients();
  world.faults()->set_enabled(true);

  WorkloadDriver driver(world, cfg.seed ^ 0x5ce7a210ULL);
  ClientBehavior behavior;
  behavior.request_rate_hz = cfg.request_rate_hz;
  behavior.upload_rate_hz = cfg.upload_rate_hz;
  const util::SimTime t0 = world.simulator().now();
  const util::SimTime t_end = t0 + util::from_seconds(cfg.horizon_s);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, behavior, t0, t_end);
  }
  world.simulator().run_until(t_end + util::from_seconds(cfg.drain_s));

  ScenarioResult r;
  r.num_clients = world.num_clients();
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    ClientNode& c = world.client(i);
    r.requests_sent +=
        world.metrics()
            .counter("cadet_client_requests_sent",
                     obs::tier_labels("client", c.id()))
            .value();
    r.fulfilled += c.requests_fulfilled();
    r.fallback += c.requests_fallback();
    r.expired += c.requests_expired();
    r.retried += c.requests_retried();
    r.pending += c.requests_pending();
    r.client_dupes_dropped += c.dupes_dropped();
    r.client_bytes_received +=
        world.metrics()
            .counter("cadet_client_bytes_received",
                     obs::tier_labels("client", c.id()))
            .value();
    if (c.requests_fulfilled() + c.requests_fallback() > 0) {
      ++r.clients_served;
    }
  }
  for (std::size_t k = 0; k < world.num_edges(); ++k) {
    EdgeNode& e = world.edge(k);
    const auto stats = e.stats();
    r.edge_bytes_delivered += stats.bytes_delivered;
    r.edge_dupes_dropped += stats.dupes_dropped;
    r.edge_refill_retries += stats.refill_retries;
    for (std::size_t i = 0; i < cfg.clients_per_network; ++i) {
      const net::NodeId client =
          client_id(k * cfg.clients_per_network + i);
      if (e.penalty().is_blacklisted(client)) {
        r.honest_client_blacklisted = true;
      }
    }
  }
  for (std::size_t j = 0; j < world.num_servers(); ++j) {
    r.server_dupes_dropped += world.server(j).stats().dupes_dropped;
  }
  r.faults = world.faults()->counts();
  r.workload = driver.metrics();
  return r;
}

/// The fault mixes the seed sweep rotates through.
inline ScenarioConfig mix_for_seed(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = 20180000 + seed;
  switch (seed % 5) {
    case 0:  // loss only
      cfg.drop = 0.10;
      break;
    case 1:  // loss + duplication
      cfg.drop = 0.05;
      cfg.duplicate = 0.10;
      break;
    case 2:  // loss + duplication + reordering
      cfg.drop = 0.05;
      cfg.duplicate = 0.05;
      cfg.reorder = 0.10;
      break;
    case 3:  // everything, including corruption
      cfg.drop = 0.05;
      cfg.duplicate = 0.05;
      cfg.reorder = 0.05;
      cfg.corrupt = 0.02;
      break;
    default:  // partition + crash windows on top of light loss
      cfg.drop = 0.02;
      cfg.partitions.push_back(
          {edge_id(0), kServerId, util::from_seconds(15),
           util::from_seconds(25)});
      cfg.crashes.push_back(
          {edge_id(1), util::from_seconds(30), util::from_seconds(36)});
      break;
  }
  return cfg;
}

}  // namespace cadet::testbed::chaos
