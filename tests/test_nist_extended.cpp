// The extended-battery tests: binary matrix rank (GF(2) algebra) and
// linear complexity (Berlekamp-Massey), plus the extended QualityBattery
// wiring. The paper's quality check says "more tests can be included"
// depending on server power — these are those tests.
#include <gtest/gtest.h>

#include <utility>

#include "entropy/sources.h"
#include "entropy/yarrow.h"
#include "nist/battery.h"
#include "nist/tests.h"
#include "util/bitview.h"
#include "util/rng.h"

namespace cadet::nist {
namespace {

// ------------------------------------------------------------- GF(2) rank

TEST(Gf2Rank, IdentityIsFullRank) {
  std::vector<std::uint64_t> rows;
  for (int i = 0; i < 8; ++i) rows.push_back(std::uint64_t{1} << (7 - i));
  EXPECT_EQ(gf2_rank(rows, 8), 8u);
}

TEST(Gf2Rank, DuplicateRowsReduceRank) {
  std::vector<std::uint64_t> rows = {0b1100, 0b1100, 0b0011, 0b1111};
  // row2 = row0, row3 = row0 ^ row2(=0b0011): {1100, 0011} independent,
  // 1111 = 1100^0011 dependent -> rank 2.
  EXPECT_EQ(gf2_rank(rows, 4), 2u);
}

TEST(Gf2Rank, ZeroMatrixHasRankZero) {
  EXPECT_EQ(gf2_rank(std::vector<std::uint64_t>(5, 0), 8), 0u);
}

TEST(Gf2Rank, SingleRow) {
  EXPECT_EQ(gf2_rank({0b0100}, 4), 1u);
  EXPECT_EQ(gf2_rank({0}, 4), 0u);
}

TEST(Gf2Rank, RandomMatricesMatchTheory) {
  // Asymptotic rank distribution for random 32x32 GF(2) matrices:
  // P(32) ~ 0.2888, P(31) ~ 0.5776, P(<=30) ~ 0.1336.
  util::Xoshiro256 rng(1);
  int full = 0, minus1 = 0, rest = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint64_t> rows(32);
    for (auto& row : rows) row = rng() & 0xffffffffull;
    const std::size_t rank = gf2_rank(std::move(rows), 32);
    if (rank == 32) {
      ++full;
    } else if (rank == 31) {
      ++minus1;
    } else {
      ++rest;
    }
  }
  EXPECT_NEAR(full / static_cast<double>(trials), 0.2888, 0.03);
  EXPECT_NEAR(minus1 / static_cast<double>(trials), 0.5776, 0.03);
  EXPECT_NEAR(rest / static_cast<double>(trials), 0.1336, 0.03);
}

TEST(Gf2RankProbability, MatchesKnownConstants) {
  EXPECT_NEAR(gf2_rank_probability(32, 32, 32), 0.2888, 1e-3);
  EXPECT_NEAR(gf2_rank_probability(31, 32, 32), 0.5776, 1e-3);
  const double rest = 1.0 - gf2_rank_probability(32, 32, 32) -
                      gf2_rank_probability(31, 32, 32);
  EXPECT_NEAR(rest, 0.1336, 1e-3);
}

TEST(Gf2RankProbability, SumsToOne) {
  double sum = 0.0;
  for (std::size_t r = 0; r <= 8; ++r) {
    sum += gf2_rank_probability(r, 8, 8);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RankTest, RandomDataPasses) {
  util::Xoshiro256 rng(2);
  const auto data = rng.bytes(8192);  // 64 matrices of 32x32
  EXPECT_TRUE(rank_test(util::BitView(data)).pass);
}

TEST(RankTest, LowRankStructureFails) {
  // Repeating each 32-bit row pattern makes every matrix rank <= 1.
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); i += 4) {
    data[i] = 0xde;
    data[i + 1] = 0xad;
    data[i + 2] = 0xbe;
    data[i + 3] = 0xef;
  }
  EXPECT_FALSE(rank_test(util::BitView(data)).pass);
}

TEST(RankTest, RejectsTooShort) {
  const std::vector<std::uint8_t> data(64, 0);
  EXPECT_THROW(rank_test(util::BitView(data)), std::invalid_argument);
}

// ---------------------------------------------------- Berlekamp-Massey

TEST(BerlekampMassey, KnownSmallCases) {
  EXPECT_EQ(berlekamp_massey({0, 0, 0, 0}), 0u);
  EXPECT_EQ(berlekamp_massey({1, 1, 1, 1, 1, 1}), 1u);
  EXPECT_EQ(berlekamp_massey({0, 1}), 2u);
  EXPECT_EQ(berlekamp_massey({0, 1, 0, 1, 0, 1, 0, 1}), 2u);
}

TEST(BerlekampMassey, RecoversLfsrLength) {
  // x^4 + x + 1 (maximal, period 15): s[n] = s[n-3] ^ s[n-4].
  std::vector<int> s = {1, 0, 0, 0};
  for (int i = 4; i < 45; ++i) {
    s.push_back(s[i - 3] ^ s[i - 4]);
  }
  EXPECT_EQ(berlekamp_massey(s), 4u);
}

TEST(BerlekampMassey, RecoversLongerLfsr) {
  // x^7 + x^6 + 1: s[n] = s[n-1] ^ s[n-7] (maximal, period 127).
  std::vector<int> s = {1, 0, 0, 1, 1, 0, 1};
  for (int i = 7; i < 260; ++i) {
    s.push_back(s[i - 1] ^ s[i - 7]);
  }
  EXPECT_EQ(berlekamp_massey(s), 7u);
}

TEST(BerlekampMassey, RandomSequenceNearHalfLength) {
  util::Xoshiro256 rng(3);
  std::vector<int> s(200);
  for (auto& bit : s) bit = static_cast<int>(rng() & 1);
  const std::size_t l = berlekamp_massey(s);
  EXPECT_GE(l, 95u);
  EXPECT_LE(l, 105u);
}

TEST(LinearComplexityTest, RandomDataPasses) {
  util::Xoshiro256 rng(4);
  int passes = 0;
  for (int t = 0; t < 5; ++t) {
    const auto data = rng.bytes(6250);  // 100 blocks of 500 bits
    if (linear_complexity_test(util::BitView(data), 500).pass) ++passes;
  }
  EXPECT_GE(passes, 4);
}

TEST(LinearComplexityTest, LfsrStreamFails) {
  // A short-LFSR keystream has tiny linear complexity in every block.
  std::vector<int> s = {1, 0, 0, 0};
  for (int i = 4; i < 50000; ++i) s.push_back(s[i - 3] ^ s[i - 4]);
  std::vector<std::uint8_t> data(s.size() / 8);
  for (std::size_t i = 0; i < data.size() * 8; ++i) {
    if (s[i]) data[i / 8] |= static_cast<std::uint8_t>(0x80 >> (i % 8));
  }
  EXPECT_FALSE(linear_complexity_test(util::BitView(data), 500).pass);
}

TEST(LinearComplexityTest, RejectsBadParameters) {
  const std::vector<std::uint8_t> data(4, 0);
  EXPECT_THROW(linear_complexity_test(util::BitView(data), 2),
               std::invalid_argument);
  EXPECT_THROW(linear_complexity_test(util::BitView(data), 64),
               std::invalid_argument);
}

// ------------------------------------------- template matching tests

TEST(NonOverlappingTemplate, RandomDataPasses) {
  util::Xoshiro256 rng(30);
  int passes = 0;
  for (int t = 0; t < 10; ++t) {
    const auto data = rng.bytes(4096);
    if (non_overlapping_template_test(util::BitView(data)).pass) ++passes;
  }
  EXPECT_GE(passes, 9);
}

TEST(NonOverlappingTemplate, PlantedTemplateDetected) {
  // Saturate the data with the default template B = 000000001.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 2048; ++i) {
    data.push_back(0x00);
    data.push_back(0x80);  // together: 000000001 0000000 pattern-rich
  }
  EXPECT_FALSE(non_overlapping_template_test(util::BitView(data)).pass);
}

TEST(NonOverlappingTemplate, CustomTemplate) {
  util::Xoshiro256 rng(31);
  const auto data = rng.bytes(4096);
  const std::vector<int> templ = {1, 0, 1, 1, 0, 1, 0, 0, 1};
  EXPECT_NO_THROW(
      non_overlapping_template_test(util::BitView(data), templ));
}

TEST(NonOverlappingTemplate, RejectsBadParameters) {
  const std::vector<std::uint8_t> data(8, 0xaa);
  EXPECT_THROW(
      non_overlapping_template_test(util::BitView(data), {1}, 8),
      std::invalid_argument);
  EXPECT_THROW(
      non_overlapping_template_test(util::BitView(data), {1, 0, 1}, 1000),
      std::invalid_argument);
}

TEST(OverlappingTemplate, RandomDataPasses) {
  util::Xoshiro256 rng(32);
  int passes = 0;
  for (int t = 0; t < 8; ++t) {
    const auto data = rng.bytes(32768);
    if (overlapping_template_test(util::BitView(data)).pass) ++passes;
  }
  EXPECT_GE(passes, 7);
}

TEST(OverlappingTemplate, OnesRichDataFails) {
  util::Xoshiro256 rng(33);
  const auto data = entropy::synth::biased(rng, 32768, 0.8);
  EXPECT_FALSE(overlapping_template_test(util::BitView(data)).pass);
}

TEST(OverlappingTemplate, RejectsTooShort) {
  const std::vector<std::uint8_t> data(64, 0);
  EXPECT_THROW(overlapping_template_test(util::BitView(data)),
               std::invalid_argument);
}

// --------------------------------------------------- Maurer's universal

TEST(Universal, RandomDataPasses) {
  util::Xoshiro256 rng(34);
  int passes = 0;
  for (int t = 0; t < 8; ++t) {
    const auto data = rng.bytes(6250);  // 50 000 bits -> L = 3 regime
    if (universal_test(util::BitView(data)).pass) ++passes;
  }
  EXPECT_GE(passes, 7);
}

TEST(Universal, CompressibleDataFails) {
  // Highly repetitive data: block recurrence distances collapse.
  const std::vector<std::uint8_t> data(6250, 0x42);
  EXPECT_FALSE(universal_test(util::BitView(data)).pass);
}

TEST(Universal, StatisticNearExpectedValue) {
  util::Xoshiro256 rng(35);
  const auto data = rng.bytes(6250);
  const auto result = universal_test(util::BitView(data));
  // L = 3 regime: expected value 2.4016068.
  EXPECT_NEAR(result.statistic, 2.4016068, 0.05);
}

TEST(Universal, RejectsTooShort) {
  const std::vector<std::uint8_t> data(16, 0xaa);
  EXPECT_THROW(universal_test(util::BitView(data)), std::invalid_argument);
}

// -------------------------------------------- parameterized sweeps

class RankMatrixSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(RankMatrixSizes, RandomDataPassesAtEverySize) {
  const auto [rows, cols] = GetParam();
  util::Xoshiro256 rng(rows * 131 + cols);
  // Enough bits for ~64 matrices.
  const auto data = rng.bytes((rows * cols * 64 + 7) / 8);
  const auto result = rank_test(util::BitView(data), rows, cols);
  EXPECT_TRUE(result.pass) << rows << "x" << cols << " p=" << result.p_value;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RankMatrixSizes,
    ::testing::Values(std::make_pair(8u, 8u), std::make_pair(16u, 16u),
                      std::make_pair(32u, 32u), std::make_pair(16u, 32u),
                      std::make_pair(32u, 16u)));

class UniversalRegimes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UniversalRegimes, RandomDataPassesInEveryLRegime) {
  // One representative input size per block-length regime.
  util::Xoshiro256 rng(GetParam());
  const auto data = rng.bytes(GetParam());
  const auto result = universal_test(util::BitView(data));
  EXPECT_GE(result.p_value, 0.001) << "n=" << GetParam() * 8;
}

INSTANTIATE_TEST_SUITE_P(InputBytes, UniversalRegimes,
                         ::testing::Values(300u,    // L=2
                                           2600u,   // L=3
                                           8100u,   // L=4
                                           20200u,  // L=5
                                           48480u   // L=6
                                           ));

// ------------------------------------------------ random excursions

TEST(RandomExcursions, RandomDataPasses) {
  util::Xoshiro256 rng(36);
  const auto data = rng.bytes(125000);  // 10^6 bits
  const auto results = random_excursions_test(util::BitView(data));
  ASSERT_EQ(results.size(), 8u);
  int passes = 0;
  for (const auto& r : results) {
    if (r.pass) ++passes;
  }
  EXPECT_GE(passes, 7);
}

TEST(RandomExcursions, ThrowsWhenInapplicable) {
  util::Xoshiro256 rng(37);
  const auto data = rng.bytes(256);  // far too few cycles
  EXPECT_THROW(random_excursions_test(util::BitView(data)),
               std::invalid_argument);
}

TEST(RandomExcursions, BiasedWalkFails) {
  // A drifting walk rarely returns to zero; when it *barely* qualifies the
  // state-visit distribution is warped. Build a walk with mild bias but
  // forced returns: alternate biased stretches with corrections.
  util::Xoshiro256 rng(38);
  std::vector<std::uint8_t> data;
  // 0101 pairs pin the walk near zero with degenerate state visits.
  for (int i = 0; i < 125000; ++i) data.push_back(0x66);  // 01100110
  const auto results = random_excursions_test(util::BitView(data));
  int fails = 0;
  for (const auto& r : results) {
    if (!r.pass) ++fails;
  }
  EXPECT_GE(fails, 4);
}

TEST(RandomExcursionsVariant, RandomDataPasses) {
  // About a third of million-bit sequences have < 500 zero crossings and
  // are legitimately inapplicable (SP800-22's own caveat); sample seeds
  // until enough applicable sequences are found.
  int applicable = 0, well_passing = 0;
  for (std::uint64_t seed = 39; applicable < 3 && seed < 60; ++seed) {
    util::Xoshiro256 rng(seed);
    const auto data = rng.bytes(125000);
    std::vector<TestResult> results;
    try {
      results = random_excursions_variant_test(util::BitView(data));
    } catch (const std::invalid_argument&) {
      continue;  // inapplicable sequence
    }
    ++applicable;
    ASSERT_EQ(results.size(), 18u);
    int passes = 0;
    for (const auto& r : results) {
      if (r.pass) ++passes;
    }
    if (passes >= 17) ++well_passing;
  }
  ASSERT_EQ(applicable, 3);
  EXPECT_GE(well_passing, 2);
}

TEST(RandomExcursionsVariant, DegenerateWalkFails) {
  std::vector<std::uint8_t> data(125000, 0x66);
  const auto results =
      random_excursions_variant_test(util::BitView(data));
  int fails = 0;
  for (const auto& r : results) {
    if (!r.pass) ++fails;
  }
  EXPECT_GE(fails, 10);
}

// ------------------------------------------------------ extended battery

TEST(ExtendedBattery, RunsTwelveChecksOnPoolSnapshots) {
  util::Xoshiro256 rng(5);
  const auto pool = rng.bytes(6250);  // 50 000 bits
  QualityBattery battery;
  battery.extended = true;
  const auto result = battery.run(pool, 50000);
  EXPECT_EQ(result.total(), QualityBattery::kNumChecksExtended);
  EXPECT_GE(result.passed(), result.total() - 1);
}

TEST(ExtendedBattery, SmallInputSkipsLargeSampleTests) {
  util::Xoshiro256 rng(6);
  const auto data = rng.bytes(1024);  // 8192 bits: no rank, no LC
  QualityBattery battery;
  battery.extended = true;
  const auto result = battery.run(data);
  // 7 base + serial x2 + spectral + non-overlapping template.
  EXPECT_EQ(result.total(), 11);
}

TEST(ExtendedBattery, CadetPoolPassesExtendedSuite) {
  entropy::ServerEntropyPool pool(1 << 20);
  entropy::YarrowMixer mixer(pool);
  util::Xoshiro256 rng(7);
  while (pool.size() < 6250) mixer.add_input(entropy::synth::good(rng, 32));
  QualityBattery battery;
  battery.extended = true;
  const auto result = battery.run(pool.peek(6250), 50000);
  EXPECT_GE(result.passed(), result.total() - 1);
}

}  // namespace
}  // namespace cadet::nist
