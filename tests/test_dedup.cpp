#include "cadet/dedup.h"

#include <gtest/gtest.h>

#include "cadet/edge_node.h"
#include "cadet/packet.h"
#include "entropy/sources.h"
#include "util/rng.h"

namespace cadet {
namespace {

TEST(ReplayFilter, FreshSequencesAccepted) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 1));
  EXPECT_TRUE(filter.accept(7, 2));
  EXPECT_TRUE(filter.accept(7, 3));
}

TEST(ReplayFilter, ExactDuplicateRejected) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 10));
  EXPECT_FALSE(filter.accept(7, 10));
  // Still rejected after newer traffic, as long as it is inside the window.
  EXPECT_TRUE(filter.accept(7, 11));
  EXPECT_FALSE(filter.accept(7, 10));
  EXPECT_FALSE(filter.accept(7, 11));
}

TEST(ReplayFilter, ReorderedDeliveryWithinWindowAccepted) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 20));
  EXPECT_TRUE(filter.accept(7, 25));
  // 21-24 arrive late: each accepted exactly once.
  for (std::uint16_t s = 21; s <= 24; ++s) {
    EXPECT_TRUE(filter.accept(7, s)) << s;
    EXPECT_FALSE(filter.accept(7, s)) << s;
  }
}

TEST(ReplayFilter, UnsequencedSentinelAlwaysAccepted) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 0));
  EXPECT_TRUE(filter.accept(7, 0));
}

TEST(ReplayFilter, SendersHaveIndependentWindows) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 5));
  EXPECT_TRUE(filter.accept(8, 5));
  EXPECT_FALSE(filter.accept(7, 5));
  EXPECT_FALSE(filter.accept(8, 5));
}

TEST(ReplayFilter, SixteenBitWrapHandled) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 0xfffe));
  EXPECT_TRUE(filter.accept(7, 0xffff));
  // Engines skip 0 (the sentinel); the next stamped value is 1, numerically
  // smaller but serially *ahead*.
  EXPECT_TRUE(filter.accept(7, 1));
  EXPECT_FALSE(filter.accept(7, 0xffff));
  EXPECT_FALSE(filter.accept(7, 1));
}

TEST(ReplayFilter, FarBehindSequenceReanchorsAsPeerRestart) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 1000));
  // > 64 behind: a rebooted peer restarting its counter must not be locked
  // out by its pre-crash numbering.
  EXPECT_TRUE(filter.accept(7, 1));
  EXPECT_FALSE(filter.accept(7, 1));
  EXPECT_TRUE(filter.accept(7, 2));
}

TEST(ReplayFilter, ForgetDropsTheWindow) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(7, 42));
  filter.forget(7);
  EXPECT_TRUE(filter.accept(7, 42));
}

// The engine-level guarantee the wire seq exists for: a retransmitted (or
// network-duplicated) upload datagram must not credit the client twice.
TEST(ReplayFilter, DuplicatedUploadNotDoubleCreditedByEdge) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 55;
  config.num_clients = 4;
  EdgeNode edge(config);
  util::Xoshiro256 rng(4);

  Packet upload = Packet::data_upload(entropy::synth::good(rng, 32), false);
  upload.header.seq = 9;  // engine-stamped traffic carries a nonzero seq
  const util::Bytes wire = encode(upload);

  (void)edge.on_packet(1000, wire, 0);
  EXPECT_EQ(edge.stats().uploads_accepted, 1u);
  EXPECT_EQ(edge.stats().dupes_dropped, 0u);

  (void)edge.on_packet(1000, wire, 0);  // exact same datagram again
  EXPECT_EQ(edge.stats().uploads_accepted, 1u);
  EXPECT_EQ(edge.stats().dupes_dropped, 1u);
}

}  // namespace
}  // namespace cadet
