#include "entropy/yarrow.h"

#include <gtest/gtest.h>

#include "entropy/sources.h"
#include "nist/battery.h"
#include "util/bitview.h"
#include "util/rng.h"

namespace cadet::entropy {
namespace {

TEST(ServerEntropyPool, FifoSemantics) {
  ServerEntropyPool pool(100);
  pool.push(util::Bytes{1, 2, 3});
  pool.push(util::Bytes{4, 5});
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_EQ(pool.pop(2), (util::Bytes{1, 2}));
  EXPECT_EQ(pool.pop(10), (util::Bytes{3, 4, 5}));
  EXPECT_TRUE(pool.empty());
}

TEST(ServerEntropyPool, PeekDoesNotConsume) {
  ServerEntropyPool pool(100);
  pool.push(util::Bytes{7, 8, 9});
  EXPECT_EQ(pool.peek(2), (util::Bytes{7, 8}));
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ServerEntropyPool, CapacityEvictsOldest) {
  ServerEntropyPool pool(4);
  pool.push(util::Bytes{1, 2, 3, 4});
  pool.push(util::Bytes{5, 6});
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.pop(4), (util::Bytes{3, 4, 5, 6}));
}

TEST(ServerEntropyPool, PopMoreThanAvailable) {
  ServerEntropyPool pool(10);
  pool.push(util::Bytes{1});
  EXPECT_EQ(pool.pop(100).size(), 1u);
}

TEST(YarrowMixer, FoldsWhenFastPoolFills) {
  ServerEntropyPool pool(1 << 16);
  YarrowConfig config;
  config.fast_pool_threshold = 64;
  YarrowMixer mixer(pool, config);
  util::Xoshiro256 rng(1);
  EXPECT_EQ(mixer.folds_performed(), 0u);
  mixer.add_input(rng.bytes(64));
  EXPECT_GE(mixer.folds_performed(), 1u);
  EXPECT_GT(pool.size(), 0u);
}

TEST(YarrowMixer, SlowPoolDivertsEveryKth) {
  ServerEntropyPool pool(1 << 16);
  YarrowConfig config;
  config.fast_pool_threshold = 1 << 20;  // never fold fast
  config.slow_pool_threshold = 64;
  config.slow_divert_every = 4;
  YarrowMixer mixer(pool, config);
  util::Xoshiro256 rng(2);
  // 15 inputs of 32 bytes: inputs 4, 8, 12 go slow (96 bytes > 64) so the
  // slow pool must have folded at least once.
  for (int i = 0; i < 15; ++i) mixer.add_input(rng.bytes(32));
  EXPECT_GE(mixer.folds_performed(), 1u);
}

TEST(YarrowMixer, FlushDrainsPartialPools) {
  ServerEntropyPool pool(1 << 16);
  YarrowMixer mixer(pool);
  util::Xoshiro256 rng(3);
  mixer.add_input(rng.bytes(8));  // below both thresholds
  EXPECT_EQ(pool.size(), 0u);
  mixer.flush();
  EXPECT_GT(pool.size(), 0u);
}

TEST(YarrowMixer, OutputVolumeTracksInput) {
  // The counter-extended fold emits roughly as many bytes as consumed, so
  // the pool fill rate matches the contribution rate.
  ServerEntropyPool pool(1 << 20);
  YarrowMixer mixer(pool);
  util::Xoshiro256 rng(4);
  const std::size_t input_bytes = 64 * 100;
  for (int i = 0; i < 100; ++i) mixer.add_input(rng.bytes(64));
  mixer.flush();
  EXPECT_GT(pool.size(), input_bytes / 2);
}

TEST(YarrowMixer, PoolContentPassesQualityChecks) {
  ServerEntropyPool pool(1 << 20);
  YarrowMixer mixer(pool);
  util::Xoshiro256 rng(5);
  while (pool.size() < 6250) mixer.add_input(rng.bytes(32));
  const auto snapshot = pool.peek(6250);
  nist::QualityBattery battery;
  EXPECT_GE(battery.run(snapshot, 50000).passed(), 6);
}

TEST(YarrowMixer, MasksPoorInput) {
  // Known/poor data mixed through the two-pool design still yields
  // statistically random pool contents (randomness-degradation defense,
  // paper (VI-D3).
  ServerEntropyPool pool(1 << 20);
  YarrowMixer mixer(pool);
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 200; ++i) {
    // 80 % attacker-known constant data, 20 % honest.
    if (i % 5 == 0) {
      mixer.add_input(rng.bytes(32));
    } else {
      mixer.add_input(util::Bytes(32, 0x41));
    }
  }
  mixer.flush();
  const auto snapshot = pool.peek(4096);
  const util::BitView bits(snapshot);
  EXPECT_TRUE(nist::frequency_test(bits).pass);
  EXPECT_TRUE(nist::runs_test(bits).pass);
}

TEST(YarrowMixer, DeterministicForSameInputs) {
  auto run = [] {
    ServerEntropyPool pool(1 << 16);
    YarrowMixer mixer(pool);
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 50; ++i) mixer.add_input(rng.bytes(32));
    mixer.flush();
    return pool.pop(pool.size());
  };
  EXPECT_EQ(run(), run());
}

TEST(YarrowMixer, CountsHashOperations) {
  ServerEntropyPool pool(1 << 16);
  YarrowMixer mixer(pool);
  util::Xoshiro256 rng(8);
  mixer.add_input(rng.bytes(64));
  EXPECT_GT(mixer.hash_operations(), 0u);
}

}  // namespace
}  // namespace cadet::entropy
