#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cadet::util {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro, UniformCoversRange) {
  Xoshiro256 rng(9);
  std::array<int, 8> counts{};
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // expected 1000, allow wide slack
    EXPECT_LT(c, 1200);
  }
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Xoshiro, BernoulliRate) {
  Xoshiro256 rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Xoshiro, FillAllLengths) {
  Xoshiro256 rng(23);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 33u}) {
    const Bytes b = rng.bytes(n);
    EXPECT_EQ(b.size(), n);
  }
}

TEST(Xoshiro, FillIsBalanced) {
  Xoshiro256 rng(29);
  const Bytes b = rng.bytes(65536);
  std::size_t ones = 0;
  for (const auto byte : b) ones += std::popcount(byte);
  const double frac = static_cast<double>(ones) / (65536.0 * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace cadet::util
