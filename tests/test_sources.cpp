#include "entropy/sources.h"

#include <gtest/gtest.h>

#include "nist/tests.h"
#include "util/bitview.h"

namespace cadet::entropy {
namespace {

TEST(TimerJitterSource, IntervalMatchesRate) {
  TimerJitterSource source(10.0);  // 10 events/s
  util::Xoshiro256 rng(1);
  double total_s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total_s += util::to_seconds(source.next_interval(rng));
  }
  EXPECT_NEAR(total_s / n, 0.1, 0.005);
}

TEST(TimerJitterSource, HarvestSize) {
  TimerJitterSource source(8.0, 4, 4.0);
  util::Xoshiro256 rng(2);
  EXPECT_EQ(source.harvest(rng).size(), 4u);
  EXPECT_DOUBLE_EQ(source.entropy_per_byte(), 4.0);
}

TEST(SensorNoiseSource, HarvestHasCorrelatedHighBits) {
  SensorNoiseSource source(1.0, 256, 2.0);
  util::Xoshiro256 rng(3);
  const auto data = source.harvest(rng);
  ASSERT_EQ(data.size(), 256u);
  // The full bytes should NOT look uniformly random (high nibble walks).
  const util::BitView bits(data);
  const bool all_pass = nist::frequency_test(bits).pass &&
                        nist::runs_test(bits).pass &&
                        nist::approximate_entropy_test(bits, 2).pass;
  EXPECT_FALSE(all_pass);
}

TEST(DevUrandomSource, ProducesBytes) {
  DevUrandomSource source(16);
  util::Xoshiro256 rng(4);
  const auto data = source.harvest(rng);
  EXPECT_EQ(data.size(), 16u);
  EXPECT_DOUBLE_EQ(source.entropy_per_byte(), 8.0);
}

TEST(Synth, GoodDataPassesChecks) {
  util::Xoshiro256 rng(5);
  const auto data = synth::good(rng, 64);
  const util::BitView bits(data);
  EXPECT_TRUE(nist::frequency_test(bits).pass);
}

TEST(Synth, BiasedBiasIsAccurate) {
  util::Xoshiro256 rng(6);
  const auto data = synth::biased(rng, 4096, 0.7);
  const util::BitView bits(data);
  const double frac =
      static_cast<double>(bits.popcount()) / static_cast<double>(bits.size());
  EXPECT_NEAR(frac, 0.7, 0.02);
}

TEST(Synth, HalfBiasLooksGood) {
  util::Xoshiro256 rng(7);
  const auto data = synth::biased(rng, 256, 0.5);
  EXPECT_TRUE(nist::frequency_test(util::BitView(data)).pass);
}

TEST(Synth, PatternedAlternates) {
  const auto data = synth::patterned(8, 0xaa, 0x55);
  EXPECT_EQ(data[0], 0xaa);
  EXPECT_EQ(data[1], 0x55);
  EXPECT_EQ(data[6], 0xaa);
  EXPECT_FALSE(nist::runs_test(util::BitView(data)).pass);
}

TEST(Synth, BadDataFailsSanityStyleChecks) {
  util::Xoshiro256 rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto data = synth::bad(rng, 32);
    const util::BitView bits(data);
    int failures = 0;
    if (!nist::frequency_test(bits).pass) ++failures;
    if (!nist::runs_test(bits).pass) ++failures;
    if (!nist::approximate_entropy_test(bits, 2).pass) ++failures;
    if (!nist::cusum_test(bits, nist::CusumMode::Forward).pass) ++failures;
    EXPECT_GE(failures, 2) << "bad sample " << i << " looked too good";
  }
}

}  // namespace
}  // namespace cadet::entropy
