#include <gtest/gtest.h>

#include "util/log.h"
#include "util/time.h"

namespace cadet::util {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_millis(250), 250'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.125)), 0.125);
}

TEST(Time, UnitRelations) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
}

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold macros must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  CADET_LOG_DEBUG << count();
  CADET_LOG_INFO << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Off);
  CADET_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

TEST(Log, EmitsAtOrAboveLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "y";
  };
  CADET_LOG_DEBUG << count();  // goes to stderr; we only check evaluation
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, WallClockPrefixByDefault) {
  set_log_clock(nullptr);
  const std::string line = format_log_line(LogLevel::Warn, "hello");
  EXPECT_EQ(line.rfind("[WARN] wall=", 0), 0u);
  EXPECT_NE(line.find(" hello"), std::string::npos);
}

TEST(Log, SimTimePrefixWithRegisteredClock) {
  SimTime now = from_seconds(1.25);
  set_log_clock([](void* ctx) { return *static_cast<SimTime*>(ctx); }, &now);
  const std::string line = format_log_line(LogLevel::Error, "boom");
  EXPECT_EQ(line, "[ERROR] sim_time=1.250000 boom");

  now = from_seconds(2.5);
  EXPECT_EQ(format_log_line(LogLevel::Info, "x"),
            "[INFO] sim_time=2.500000 x");
  set_log_clock(nullptr);
  EXPECT_EQ(format_log_line(LogLevel::Info, "x").rfind("[INFO] wall=", 0), 0u);
}

}  // namespace
}  // namespace cadet::util
