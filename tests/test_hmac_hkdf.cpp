#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace cadet::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

util::BytesView view(const std::string& s) {
  return util::BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size());
}

std::string hmac_hex(util::BytesView key, util::BytesView data) {
  const auto mac = hmac_sha256(key, data);
  return to_hex(util::BytesView(mac.data(), mac.size()));
}

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(key, view("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_hex(view("Jefe"), view("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hmac_hex(key, view("Test Using Larger Than Block-Size Key - Hash Key "
                         "First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeyAffectsOutput) {
  const Bytes a(32, 0x01), b(32, 0x02);
  EXPECT_NE(hmac_hex(a, view("msg")), hmac_hex(b, view("msg")));
}

// RFC 5869 test cases.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExtractMatchesHmac) {
  const Bytes salt = {1, 2, 3};
  const Bytes ikm = {4, 5, 6};
  EXPECT_EQ(hkdf_extract(salt, ikm), hmac_sha256(salt, ikm));
}

TEST(Hkdf, ExpandLengths) {
  const auto prk = hkdf_extract(Bytes{1}, Bytes{2});
  for (const std::size_t len : {1u, 31u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(hkdf_expand(prk, {}, len).size(), len);
  }
}

TEST(Hkdf, ExpandPrefixConsistency) {
  // Shorter outputs are prefixes of longer ones (per the RFC construction).
  const auto prk = hkdf_extract(Bytes{9}, Bytes{8});
  const Bytes long_okm = hkdf_expand(prk, Bytes{7}, 64);
  const Bytes short_okm = hkdf_expand(prk, Bytes{7}, 16);
  EXPECT_TRUE(std::equal(short_okm.begin(), short_okm.end(),
                         long_okm.begin()));
}

TEST(Hkdf, ExpandRejectsOversize) {
  const auto prk = hkdf_extract(Bytes{1}, Bytes{2});
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, InfoSeparatesOutputs) {
  const Bytes ikm = {1, 2, 3, 4};
  EXPECT_NE(to_hex(hkdf({}, ikm, Bytes{'a'}, 32)),
            to_hex(hkdf({}, ikm, Bytes{'b'}, 32)));
}

}  // namespace
}  // namespace cadet::crypto
