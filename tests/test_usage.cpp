#include "cadet/usage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cadet {
namespace {

TEST(UsageTracker, Equation1SingleStep) {
  UsageTracker tracker(0.96);
  tracker.record(1, 100.0);
  EXPECT_DOUBLE_EQ(tracker.score(1), 100.0);
  tracker.record(1, 50.0);
  // US_t = usage_t + decay * US_{t-1}
  EXPECT_DOUBLE_EQ(tracker.score(1), 50.0 + 0.96 * 100.0);
}

TEST(UsageTracker, TickDecaysWithoutUsage) {
  UsageTracker tracker(0.5);
  tracker.record(1, 64.0);
  tracker.tick();
  tracker.tick();
  EXPECT_DOUBLE_EQ(tracker.score(1), 16.0);
}

TEST(UsageTracker, EveryPacketAdvancesAllScores) {
  UsageTracker tracker(0.96);
  tracker.record(1, 100.0);
  tracker.record(2, 10.0);  // this step also decays client 1
  EXPECT_DOUBLE_EQ(tracker.score(1), 96.0);
  EXPECT_DOUBLE_EQ(tracker.score(2), 10.0);
}

TEST(UsageTracker, SteadyStateConverges) {
  UsageTracker tracker(0.96);
  for (int i = 0; i < 2000; ++i) tracker.record(1, 10.0);
  // Geometric series limit: u / (1 - decay) = 250.
  EXPECT_NEAR(tracker.score(1), 250.0, 0.5);
}

TEST(UsageTracker, UnknownDeviceScoresZero) {
  UsageTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.score(42), 0.0);
  EXPECT_FALSE(tracker.is_heavy(42));
}

TEST(UsageTracker, HeavyDetection) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 7; ++c) tracker.track(c);
  // Mixed traffic: device 7 requests 80x more than the rest. The robust
  // threshold tracks the normal cohort, so the outlier is flagged even
  // though it would be within 3 *classical* sigmas of a cohort whose
  // sigma it inflates itself.
  for (int round = 0; round < 400; ++round) {
    for (std::uint32_t c = 1; c <= 6; ++c) tracker.record(c, 8.0);
    tracker.record(7, 640.0);
  }
  EXPECT_TRUE(tracker.is_heavy(7));
  for (std::uint32_t c = 1; c <= 6; ++c) {
    EXPECT_FALSE(tracker.is_heavy(c)) << "client " << c;
  }
}

TEST(UsageTracker, ThresholdIsRobustToOutliers) {
  UsageTracker tracker(1.0, 3.0);  // no decay for a clean hand computation
  // Normal cohort 10..15, one outlier at 500.
  double v = 10.0;
  for (std::uint32_t c = 1; c <= 6; ++c) {
    tracker.record(c, v);
    v += 1.0;
  }
  tracker.record(7, 500.0);
  // Threshold derived from the median cohort, far below the outlier.
  const double threshold = tracker.heavy_threshold();
  EXPECT_GT(threshold, 15.0);
  EXPECT_LT(threshold, 100.0);
  EXPECT_TRUE(tracker.is_heavy(7));
}

TEST(UsageTracker, IdleNetworkSpikesJudgedByStddevFallback) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.track(c);
  // All idle: MAD degenerates; with every score zero the threshold is zero
  // and the threshold > 0 guard keeps everyone regular.
  for (int i = 0; i < 50; ++i) tracker.tick();
  EXPECT_DOUBLE_EQ(tracker.heavy_threshold(), 0.0);
  for (std::uint32_t c = 1; c <= 8; ++c) EXPECT_FALSE(tracker.is_heavy(c));
  // The sole active client among sleepers IS the heavy one relative to its
  // cohort (stddev fallback, since MAD is still zero)...
  tracker.record(1, 64.0);
  EXPECT_GT(tracker.heavy_threshold(), 0.0);
  EXPECT_TRUE(tracker.is_heavy(1));
  // ...but once peers are comparably active the flag clears.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 64.0);
  }
  EXPECT_FALSE(tracker.is_heavy(1));
}

TEST(UsageTracker, UniformLoadHasNoHeavyUsers) {
  UsageTracker tracker;
  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 64.0);
  }
  for (std::uint32_t c = 1; c <= 8; ++c) {
    EXPECT_FALSE(tracker.is_heavy(c));
  }
}

TEST(UsageTracker, HeavyUserRecoversAfterBurst) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.track(c);
  for (int round = 0; round < 300; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 8.0);
  }
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t c = 1; c <= 7; ++c) tracker.record(c, 8.0);
    tracker.record(8, 512.0);
  }
  ASSERT_TRUE(tracker.is_heavy(8));
  // Burst ends; device 8 goes quiet while others continue.
  int steps_to_recover = 0;
  while (tracker.is_heavy(8) && steps_to_recover < 10000) {
    for (std::uint32_t c = 1; c <= 7; ++c) tracker.record(c, 8.0);
    tracker.tick();
    steps_to_recover += 8;
  }
  EXPECT_FALSE(tracker.is_heavy(8));
  EXPECT_GT(steps_to_recover, 0);
}

TEST(UsageTracker, StepsCounted) {
  UsageTracker tracker;
  tracker.record(1, 1.0);
  tracker.tick();
  tracker.record(2, 1.0);
  EXPECT_EQ(tracker.steps(), 3u);
}

TEST(UsageTracker, TrackIsIdempotent) {
  UsageTracker tracker;
  tracker.record(1, 50.0);
  tracker.track(1);  // must not reset the score
  EXPECT_DOUBLE_EQ(tracker.score(1), 50.0);
  EXPECT_EQ(tracker.tracked_count(), 1u);
}

}  // namespace
}  // namespace cadet
