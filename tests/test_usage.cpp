#include "cadet/usage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cadet {
namespace {

TEST(UsageTracker, Equation1SingleStep) {
  UsageTracker tracker(0.96);
  tracker.record(1, 100.0);
  EXPECT_DOUBLE_EQ(tracker.score(1), 100.0);
  tracker.record(1, 50.0);
  // US_t = usage_t + decay * US_{t-1}
  EXPECT_DOUBLE_EQ(tracker.score(1), 50.0 + 0.96 * 100.0);
}

TEST(UsageTracker, TickDecaysWithoutUsage) {
  UsageTracker tracker(0.5);
  tracker.record(1, 64.0);
  tracker.tick();
  tracker.tick();
  EXPECT_DOUBLE_EQ(tracker.score(1), 16.0);
}

TEST(UsageTracker, EveryPacketAdvancesAllScores) {
  UsageTracker tracker(0.96);
  tracker.record(1, 100.0);
  tracker.record(2, 10.0);  // this step also decays client 1
  EXPECT_DOUBLE_EQ(tracker.score(1), 96.0);
  EXPECT_DOUBLE_EQ(tracker.score(2), 10.0);
}

TEST(UsageTracker, SteadyStateConverges) {
  UsageTracker tracker(0.96);
  for (int i = 0; i < 2000; ++i) tracker.record(1, 10.0);
  // Geometric series limit: u / (1 - decay) = 250.
  EXPECT_NEAR(tracker.score(1), 250.0, 0.5);
}

TEST(UsageTracker, UnknownDeviceScoresZero) {
  UsageTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.score(42), 0.0);
  EXPECT_FALSE(tracker.is_heavy(42));
}

TEST(UsageTracker, HeavyDetection) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 7; ++c) tracker.track(c);
  // Mixed traffic: device 7 requests 80x more than the rest. The robust
  // threshold tracks the normal cohort, so the outlier is flagged even
  // though it would be within 3 *classical* sigmas of a cohort whose
  // sigma it inflates itself.
  for (int round = 0; round < 400; ++round) {
    for (std::uint32_t c = 1; c <= 6; ++c) tracker.record(c, 8.0);
    tracker.record(7, 640.0);
  }
  EXPECT_TRUE(tracker.is_heavy(7));
  for (std::uint32_t c = 1; c <= 6; ++c) {
    EXPECT_FALSE(tracker.is_heavy(c)) << "client " << c;
  }
}

TEST(UsageTracker, ThresholdIsRobustToOutliers) {
  UsageTracker tracker(1.0, 3.0);  // no decay for a clean hand computation
  // Normal cohort 10..15, one outlier at 500.
  double v = 10.0;
  for (std::uint32_t c = 1; c <= 6; ++c) {
    tracker.record(c, v);
    v += 1.0;
  }
  tracker.record(7, 500.0);
  // Threshold derived from the median cohort, far below the outlier.
  const double threshold = tracker.heavy_threshold();
  EXPECT_GT(threshold, 15.0);
  EXPECT_LT(threshold, 100.0);
  EXPECT_TRUE(tracker.is_heavy(7));
}

TEST(UsageTracker, IdleNetworkSpikesJudgedByStddevFallback) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.track(c);
  // All idle: MAD degenerates; with every score zero the threshold is zero
  // and the threshold > 0 guard keeps everyone regular.
  for (int i = 0; i < 50; ++i) tracker.tick();
  EXPECT_DOUBLE_EQ(tracker.heavy_threshold(), 0.0);
  for (std::uint32_t c = 1; c <= 8; ++c) EXPECT_FALSE(tracker.is_heavy(c));
  // The sole active client among sleepers IS the heavy one relative to its
  // cohort (stddev fallback, since MAD is still zero)...
  tracker.record(1, 64.0);
  EXPECT_GT(tracker.heavy_threshold(), 0.0);
  EXPECT_TRUE(tracker.is_heavy(1));
  // ...but once peers are comparably active the flag clears.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 64.0);
  }
  EXPECT_FALSE(tracker.is_heavy(1));
}

TEST(UsageTracker, UniformLoadHasNoHeavyUsers) {
  UsageTracker tracker;
  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 64.0);
  }
  for (std::uint32_t c = 1; c <= 8; ++c) {
    EXPECT_FALSE(tracker.is_heavy(c));
  }
}

TEST(UsageTracker, HeavyUserRecoversAfterBurst) {
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.track(c);
  for (int round = 0; round < 300; ++round) {
    for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 8.0);
  }
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t c = 1; c <= 7; ++c) tracker.record(c, 8.0);
    tracker.record(8, 512.0);
  }
  ASSERT_TRUE(tracker.is_heavy(8));
  // Burst ends; device 8 goes quiet while others continue.
  int steps_to_recover = 0;
  while (tracker.is_heavy(8) && steps_to_recover < 10000) {
    for (std::uint32_t c = 1; c <= 7; ++c) tracker.record(c, 8.0);
    tracker.tick();
    steps_to_recover += 8;
  }
  EXPECT_FALSE(tracker.is_heavy(8));
  EXPECT_GT(steps_to_recover, 0);
}

TEST(UsageTracker, StepsCounted) {
  UsageTracker tracker;
  tracker.record(1, 1.0);
  tracker.tick();
  tracker.record(2, 1.0);
  EXPECT_EQ(tracker.steps(), 3u);
}

TEST(UsageTracker, TrackIsIdempotent) {
  UsageTracker tracker;
  tracker.record(1, 50.0);
  tracker.track(1);  // must not reset the score
  EXPECT_DOUBLE_EQ(tracker.score(1), 50.0);
  EXPECT_EQ(tracker.tracked_count(), 1u);
}

// ---- edge cases (adversarial economics suite) -----------------------------

TEST(UsageTracker, AllEqualNonzeroScoresNobodyHeavy) {
  // MAD degenerates to 0 when every score is identical but NONZERO. The
  // stddev fallback is also 0, so threshold == median — and with the
  // strict > comparison plus the median-ratio floor, a perfectly uniform
  // cohort can never flag anyone, no matter the load level.
  UsageTracker tracker(1.0, 3.0);  // no decay: scores stay exactly equal
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.track(c);
  for (std::uint32_t c = 1; c <= 8; ++c) {
    // One batch per device on a decay-free tracker: all end equal.
    tracker.record(c, 64.0);
  }
  for (std::uint32_t c = 1; c <= 8; ++c) {
    ASSERT_DOUBLE_EQ(tracker.score(c), 64.0);
  }
  EXPECT_DOUBLE_EQ(tracker.median(), 64.0);
  for (std::uint32_t c = 1; c <= 8; ++c) {
    EXPECT_FALSE(tracker.is_heavy(c)) << "client " << c;
  }
}

TEST(UsageTracker, SingleDeviceIsItsOwnCohort) {
  // With one tracked device, median == score and MAD == 0: the device can
  // never exceed a threshold derived from itself. A lone client on an
  // edge must not be flagged heavy for merely being the only one active.
  UsageTracker tracker(0.96, 3.0);
  for (int i = 0; i < 500; ++i) tracker.record(1, 2048.0);
  EXPECT_GT(tracker.score(1), 0.0);
  EXPECT_DOUBLE_EQ(tracker.median(), tracker.score(1));
  EXPECT_FALSE(tracker.is_heavy(1));
}

TEST(UsageTracker, ScoreExactlyAtThresholdIsNotHeavy) {
  // is_heavy demands score STRICTLY above the threshold (and above the
  // median-ratio floor); a score sitting exactly on the line stays
  // regular. Decay-free tracker so the hand-built distribution holds.
  UsageTracker tracker(1.0, 3.0);
  // Cohort {10, 10, 10, 10, 10}: median 10, MAD 0, stddev 0 -> threshold
  // exactly 10, and a device at exactly 10 is not heavy.
  for (std::uint32_t c = 1; c <= 5; ++c) tracker.record(c, 10.0);
  // record() decays nothing at decay=1.0, so all five scores are 10.
  ASSERT_DOUBLE_EQ(tracker.heavy_threshold(), 10.0);
  for (std::uint32_t c = 1; c <= 5; ++c) {
    EXPECT_DOUBLE_EQ(tracker.score(c), 10.0);
    EXPECT_FALSE(tracker.is_heavy(c)) << "client " << c;
  }
}

TEST(UsageTracker, LongTickOnlyGapDecaysEverybodyToEpsilon) {
  // A long stretch of usage-free steps (infrastructure packets only) must
  // drain every score toward zero without ever creating a heavy flag —
  // the regime an attacker tried to force by flooding no-usage packets
  // before the usage clock was gated to accepted work.
  UsageTracker tracker(0.96, 3.0);
  for (std::uint32_t c = 1; c <= 8; ++c) tracker.record(c, 64.0);
  const double before = tracker.score(1);
  for (int i = 0; i < 2000; ++i) {
    tracker.tick();
    for (std::uint32_t c = 1; c <= 8; ++c) {
      ASSERT_FALSE(tracker.is_heavy(c)) << "step " << i << " client " << c;
    }
  }
  EXPECT_LT(tracker.score(1), before * 1e-9);
  EXPECT_LT(tracker.heavy_threshold(), 1e-6);
  // A single fresh request in the drained cohort is the stddev-fallback
  // regime again; the median-ratio floor alone decides, and one 64-byte
  // request against an epsilon cohort IS an outlier — but the scores all
  // being epsilon, enforcement elsewhere (the rate floor) is what keeps
  // this from denying honest clients. Here we only pin the decay math.
  EXPECT_EQ(tracker.steps(), 2008u);
}

TEST(UsageTracker, MedianRatioFloorStopsCompressedCohortFlags) {
  // A device 3 MAD-sigmas out but within kUsageHeavyMedianRatio x median
  // must NOT be heavy: tight cohorts (tiny MAD) would otherwise flag
  // ordinary fluctuation. Cohort {100 x7, 130}: median 100, threshold
  // 100 + 3*1.4826*0 (MAD 0) -> stddev fallback; either way 130 < 400 so
  // the ratio floor keeps it regular.
  UsageTracker tracker(1.0, 3.0);
  for (std::uint32_t c = 1; c <= 7; ++c) tracker.record(c, 100.0);
  tracker.record(8, 130.0);
  EXPECT_FALSE(tracker.is_heavy(8));
  // Push it past 4x the median: now both the MAD test and the ratio floor
  // agree and the flag fires.
  tracker.record(8, 300.0);  // score 430 > 4 * 100
  EXPECT_TRUE(tracker.is_heavy(8));
}

}  // namespace
}  // namespace cadet
