// Property-style sweeps (parameterized gtest) over the core invariants:
// codec round-trips at every size, seal/open inverses, pool conservation,
// penalty monotonicity for every scheme x curve, cache accounting for any
// client count, and statistical-test sanity across input scales.
#include <gtest/gtest.h>

#include "cadet/cadet.h"
#include "entropy/pool.h"
#include "entropy/sources.h"
#include "nist/tests.h"
#include "util/bitview.h"
#include "util/rng.h"

namespace cadet {
namespace {

// ------------------------------------------------------------ wire codec

class PacketPayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketPayloadSizes, UploadRoundTripsAtEverySize) {
  util::Xoshiro256 rng(GetParam() + 1);
  const auto payload = rng.bytes(GetParam());
  for (const bool edge_server : {false, true}) {
    const auto decoded =
        decode(encode(Packet::data_upload(payload, edge_server)));
    ASSERT_TRUE(decoded.has_value()) << GetParam();
    EXPECT_EQ(decoded->payload, payload);
    EXPECT_EQ(decoded->header.argument, GetParam());
    EXPECT_EQ(decoded->header.edge_server, edge_server);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketPayloadSizes,
                         ::testing::Values(0u, 1u, 4u, 32u, 64u, 255u, 256u,
                                           1024u, 65535u));

// ----------------------------------------------------------------- seal

class SealSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SealSizes, OpenInvertsSeal) {
  crypto::Csprng rng(GetParam() + 99);
  util::Xoshiro256 data_rng(GetParam() + 7);
  const util::Bytes key = data_rng.bytes(32);
  const auto plaintext = data_rng.bytes(GetParam());
  const auto sealed = seal(key, plaintext, rng);
  EXPECT_EQ(sealed.size(), GetParam() + kSealOverhead);
  const auto opened = open(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST_P(SealSizes, SingleBitFlipAlwaysDetected) {
  crypto::Csprng rng(GetParam() + 5);
  util::Xoshiro256 data_rng(GetParam() + 3);
  const util::Bytes key = data_rng.bytes(32);
  auto sealed = seal(key, data_rng.bytes(GetParam()), rng);
  // Flip one bit at a handful of positions across the buffer.
  for (const std::size_t pos :
       {std::size_t{0}, sealed.size() / 3, sealed.size() / 2,
        sealed.size() - 1}) {
    auto tampered = sealed;
    tampered[pos] ^= 0x40;
    EXPECT_FALSE(open(key, tampered).has_value()) << "pos " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SealSizes,
                         ::testing::Values(0u, 1u, 8u, 64u, 512u, 4096u));

// ----------------------------------------------------------------- pool

class PoolCapacities : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolCapacities, CreditNeverExceedsCapacity) {
  entropy::EntropyPool pool(GetParam());
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    pool.add(rng.bytes(rng.uniform(64) + 1), rng.uniform(4096));
    ASSERT_LE(pool.available_bits(), GetParam());
  }
}

TEST_P(PoolCapacities, ExtractionConservesCredit) {
  entropy::EntropyPool pool(GetParam());
  util::Xoshiro256 rng(GetParam() + 1);
  pool.add(rng.bytes(64), GetParam());
  std::size_t total_out = 0;
  while (pool.available_bits() >= 8) {
    const std::size_t before = pool.available_bits();
    const auto chunk = pool.extract(rng.uniform(16) + 1);
    total_out += chunk.size();
    ASSERT_EQ(pool.available_bits(), before - chunk.size() * 8);
  }
  EXPECT_EQ(total_out, GetParam() / 8);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PoolCapacities,
                         ::testing::Values(256u, 1024u, 4096u, 65536u));

// -------------------------------------------------------------- penalty

struct PenaltyCase {
  PenaltyScheme scheme;
  DropCurve curve;
};

class PenaltySweep : public ::testing::TestWithParam<PenaltyCase> {};

TEST_P(PenaltySweep, DropPercentIsMonotoneAndBounded) {
  PenaltyConfig config;
  config.scheme = GetParam().scheme;
  config.curve = GetParam().curve;
  PenaltyTable table(config);
  double prev = -1.0;
  for (double p = 0.0; p <= 60.0; p += 0.5) {
    const double d = table.drop_percent(p);
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 1.0);
    ASSERT_GE(d, prev - 1e-12) << "not monotone at " << p;
    prev = d;
  }
  EXPECT_DOUBLE_EQ(table.drop_percent(0.0), 0.0);
}

TEST_P(PenaltySweep, ScoreNeverNegative) {
  PenaltyConfig config;
  config.scheme = GetParam().scheme;
  config.curve = GetParam().curve;
  PenaltyTable table(config);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    table.record_result(1, static_cast<int>(rng.uniform(7)));
    ASSERT_GE(table.score(1), 0.0);
  }
}

TEST_P(PenaltySweep, WorseUploadsNeverScoreBetter) {
  // Table I rows are non-increasing in checks passed for every scheme.
  const auto& points = GetParam().scheme.points;
  for (std::size_t k = 1; k < points.size(); ++k) {
    EXPECT_LE(points[k], points[k - 1]) << GetParam().scheme.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndCurves, PenaltySweep,
    ::testing::Values(PenaltyCase{PenaltyScheme::base(), DropCurve::kLinear},
                      PenaltyCase{PenaltyScheme::loose(), DropCurve::kLinear},
                      PenaltyCase{PenaltyScheme::strict(), DropCurve::kLinear},
                      PenaltyCase{PenaltyScheme::base(), DropCurve::kSigmoid},
                      PenaltyCase{PenaltyScheme::strict(),
                                  DropCurve::kSigmoid}));

// ----------------------------------------------------------------- cache

class CacheClientCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheClientCounts, AccountingInvariants) {
  EdgeCache cache(GetParam());
  EXPECT_EQ(cache.capacity_bytes(), GetParam() * kClientBufferBits / 8);
  EXPECT_LE(cache.reserve_bytes(), cache.capacity_bytes());
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    cache.insert(rng.bytes(rng.uniform(512) + 1));
    ASSERT_LE(cache.size_bytes(), cache.capacity_bytes());
    const std::size_t want = rng.uniform(256) + 1;
    const bool heavy = rng.bernoulli(0.3);
    const std::size_t before = cache.size_bytes();
    const auto taken = cache.take(want, heavy);
    if (taken.empty()) {
      ASSERT_EQ(cache.size_bytes(), before);  // failed take leaves intact
    } else {
      ASSERT_EQ(taken.size(), want);
      ASSERT_EQ(cache.size_bytes(), before - want);
      if (heavy) {
        ASSERT_GE(cache.size_bytes(), cache.reserve_bytes());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, CacheClientCounts,
                         ::testing::Values(1u, 2u, 4u, 11u, 32u));

// -------------------------------------------------------------- usage

class UsageDecays : public ::testing::TestWithParam<double> {};

TEST_P(UsageDecays, SteadyStateMatchesGeometricSeries) {
  UsageTracker tracker(GetParam(), 3.0);
  for (int i = 0; i < 5000; ++i) tracker.record(1, 10.0);
  EXPECT_NEAR(tracker.score(1), 10.0 / (1.0 - GetParam()),
              0.01 * 10.0 / (1.0 - GetParam()));
}

TEST_P(UsageDecays, ScoreIsNonNegativeAndDecaysToZero) {
  UsageTracker tracker(GetParam(), 3.0);
  tracker.record(1, 100.0);
  for (int i = 0; i < 2000; ++i) {
    tracker.tick();
    ASSERT_GE(tracker.score(1), 0.0);
  }
  EXPECT_LT(tracker.score(1), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Decays, UsageDecays,
                         ::testing::Values(0.5, 0.9, 0.96, 0.99));

// ---------------------------------------------------------- NIST sweeps

struct BiasCase {
  double bias;
  bool should_pass_frequency;
};

class FrequencyBias : public ::testing::TestWithParam<BiasCase> {};

TEST_P(FrequencyBias, DetectsBiasAboveResolution) {
  // At 4096 bits the frequency test resolves biases of a few percent.
  util::Xoshiro256 rng(77);
  int passes = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto data = entropy::synth::biased(rng, 512, GetParam().bias);
    if (nist::frequency_test(util::BitView(data)).pass) ++passes;
  }
  if (GetParam().should_pass_frequency) {
    EXPECT_GE(passes, trials - 3);
  } else {
    EXPECT_LE(passes, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Biases, FrequencyBias,
                         ::testing::Values(BiasCase{0.50, true},
                                           BiasCase{0.51, true},
                                           BiasCase{0.60, false},
                                           BiasCase{0.70, false},
                                           BiasCase{0.30, false}));

class NistInputSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NistInputSizes, PValuesAlwaysInUnitInterval) {
  util::Xoshiro256 rng(GetParam());
  const auto data = rng.bytes(GetParam());
  const util::BitView bits(data);
  std::vector<nist::TestResult> results;
  results.push_back(nist::frequency_test(bits));
  results.push_back(nist::runs_test(bits));
  results.push_back(nist::cusum_test(bits, nist::CusumMode::Forward));
  results.push_back(nist::cusum_test(bits, nist::CusumMode::Reverse));
  if (GetParam() * 8 >= 128) {
    results.push_back(nist::longest_run_test(bits));
  }
  results.push_back(nist::approximate_entropy_test(bits, 2));
  for (const auto& r : results) {
    EXPECT_GE(r.p_value, 0.0) << r.name;
    EXPECT_LE(r.p_value, 1.0) << r.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NistInputSizes,
                         ::testing::Values(4u, 16u, 32u, 64u, 256u, 1024u,
                                           6250u));

// ----------------------------------------------------------- x25519

class X25519Seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(X25519Seeds, DiffieHellmanCommutes) {
  crypto::Csprng rng(GetParam());
  const auto a = make_keypair(rng);
  const auto b = make_keypair(rng);
  const auto ab = a.shared_secret(b.public_key);
  const auto ba = b.shared_secret(a.public_key);
  EXPECT_EQ(ab, ba);
  // The shared secret is not either public key, and not all-zero.
  EXPECT_NE(ab, a.public_key);
  EXPECT_NE(ab, b.public_key);
  crypto::X25519Key zero{};
  EXPECT_NE(ab, zero);
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Seeds,
                         ::testing::Values(1u, 2u, 3u, 10u, 100u, 1000u,
                                           0xdeadbeefu));

}  // namespace
}  // namespace cadet
