#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace cadet::util {
namespace {

TEST(BufferPool, FreshAcquireAllocates) {
  BufferPool pool;
  const Bytes buf = pool.acquire(128);
  EXPECT_EQ(buf.size(), 128u);
  EXPECT_EQ(pool.acquired(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, ReleaseThenAcquireReuses) {
  BufferPool pool;
  Bytes buf = pool.acquire(256);
  const std::uint8_t* storage = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);

  const Bytes again = pool.acquire(100);
  EXPECT_EQ(again.size(), 100u);
  EXPECT_EQ(again.data(), storage);  // same storage came back
  EXPECT_EQ(pool.acquired(), 2u);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, RecycledBufferIsZeroed) {
  BufferPool pool;
  Bytes buf = pool.acquire(64);
  for (auto& b : buf) b = 0xff;
  pool.release(std::move(buf));
  // acquire() must be deterministic: recycled contents are value-initialized
  // exactly like a fresh allocation.
  const Bytes again = pool.acquire(64);
  for (const auto b : again) EXPECT_EQ(b, 0u);
}

TEST(BufferPool, OversizedBuffersAreNotPooled) {
  BufferPool pool;
  Bytes jumbo = pool.acquire(BufferPool::kMaxBufferCapacity + 1);
  pool.release(std::move(jumbo));
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, PoolIsBounded) {
  BufferPool pool;
  std::vector<Bytes> bufs;
  for (std::size_t i = 0; i < BufferPool::kMaxPooled + 10; ++i) {
    bufs.push_back(pool.acquire(32));
  }
  for (auto& buf : bufs) pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), BufferPool::kMaxPooled);
}

TEST(BufferPool, EmptyBuffersAreDropped) {
  BufferPool pool;
  pool.release(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, CopyMatchesSource) {
  BufferPool pool;
  Bytes src(16);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 3);
  }
  const Bytes dup = pool.copy(BytesView(src.data(), src.size()));
  EXPECT_EQ(dup, src);
}

TEST(BufferPool, LocalIsPerThread) {
  BufferPool* const mine = &BufferPool::local();
  EXPECT_EQ(mine, &BufferPool::local());  // stable within a thread

  BufferPool* other = nullptr;
  std::thread t([&other] { other = &BufferPool::local(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, mine);  // each thread gets its own free list
}

}  // namespace
}  // namespace cadet::util
