#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace cadet::crypto {
namespace {

using util::from_hex;
using util::to_hex;

util::BytesView view(const std::string& s) {
  return util::BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size());
}

std::string hash_hex(const std::string& msg) {
  const auto digest = Sha256::hash(view(msg));
  return to_hex(util::BytesView(digest.data(), digest.size()));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
struct ShaVector {
  std::string message;
  std::string digest_hex;
};

class Sha256Vectors : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256Vectors, MatchesKnownDigest) {
  EXPECT_EQ(hash_hex(GetParam().message), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256Vectors,
    ::testing::Values(
        ShaVector{"",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
                  "7852b855"},
        ShaVector{"abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
                  "f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
                  "19db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
                  "37c9e592"},
        // FIPS 180-4 four-block message: the 896-bit vector, which keeps
        // the multi-block compress path honest past two blocks.
        ShaVector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                  "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                  "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
                  "7afee9d1"}));

// Feed a long message through update() in 997-byte chunks: each call
// carries buffered tail bytes plus a multi-block middle, so the streamed
// compress loop runs with every misalignment. Known answer is the
// million-'a' vector.
TEST(Sha256, MultiBlockOddChunks) {
  Sha256 h;
  const std::string chunk(997, 'a');
  for (int i = 0; i < 1003; ++i) h.update(view(chunk));
  h.update(view(std::string(1000000 - 1003 * 997, 'a')));
  const auto digest = h.finish();
  EXPECT_EQ(to_hex(util::BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(view(chunk));
  const auto digest = h.finish();
  EXPECT_EQ(to_hex(util::BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "a moderately long message that crosses several block boundaries to "
      "exercise the buffering logic in update(), including a tail.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(view(msg.substr(0, split)));
    h.update(view(msg.substr(split)));
    const auto digest = h.finish();
    EXPECT_EQ(to_hex(util::BytesView(digest.data(), digest.size())),
              hash_hex(msg))
        << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(view("garbage"));
  (void)h.finish();
  h.reset();
  h.update(view("abc"));
  const auto digest = h.finish();
  EXPECT_EQ(to_hex(util::BytesView(digest.data(), digest.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55, 56, 64 bytes hit the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(view(msg));
    const auto one = a.finish();
    Sha256 b;
    for (const char c : msg) {
      b.update(util::BytesView(reinterpret_cast<const std::uint8_t*>(&c), 1));
    }
    const auto two = b.finish();
    EXPECT_EQ(one, two) << "length " << len;
  }
}

}  // namespace
}  // namespace cadet::crypto
