#include "net/sim_transport.h"

#include <gtest/gtest.h>

#include <vector>

namespace cadet::net {
namespace {

TEST(SimTransport, DeliversToHandler) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 1);
  NodeId got_from = kInvalidNode;
  util::Bytes got_data;
  transport.set_handler(2, [&](NodeId from, util::BytesView data,
                               util::SimTime) {
    got_from = from;
    got_data.assign(data.begin(), data.end());
  });
  transport.send(1, 2, {0xca, 0xfe});
  simulator.run();
  EXPECT_EQ(got_from, 1u);
  EXPECT_EQ(got_data, (util::Bytes{0xca, 0xfe}));
}

TEST(SimTransport, DeliveryIsDelayed) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 2);
  util::SimTime delivered_at = -1;
  transport.set_handler(2, [&](NodeId, util::BytesView, util::SimTime now) {
    delivered_at = now;
  });
  transport.send(1, 2, {1});
  simulator.run();
  EXPECT_GT(delivered_at, 0);
}

TEST(SimTransport, UnboundNodeCountsAsDrop) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 3);
  obs::Registry registry;
  transport.bind_metrics(registry);
  transport.send(1, 99, {1, 2, 3});
  EXPECT_NO_FATAL_FAILURE(simulator.run());
  // A datagram to a node with no handler is a drop, never a delivery.
  EXPECT_EQ(transport.counters(99).packets_received, 0u);
  EXPECT_EQ(transport.counters(99).bytes_received, 0u);
  EXPECT_EQ(transport.dropped_packets(), 1u);
  const obs::Labels labels{{"tier", "net"}, {"transport", "sim"}};
  EXPECT_EQ(registry.counter("cadet_net_dropped", labels).value(), 1u);
}

TEST(SimTransport, CountersTrackTraffic) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 4);
  transport.set_handler(2, [](NodeId, util::BytesView, util::SimTime) {});
  transport.send(1, 2, util::Bytes(10, 0));
  transport.send(1, 2, util::Bytes(20, 0));
  simulator.run();
  EXPECT_EQ(transport.counters(1).packets_sent, 2u);
  EXPECT_EQ(transport.counters(1).bytes_sent, 30u);
  EXPECT_EQ(transport.counters(2).packets_received, 2u);
  EXPECT_EQ(transport.counters(2).bytes_received, 30u);
  EXPECT_EQ(transport.total_packets(), 2u);
}

TEST(SimTransport, ResetCountersClears) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 5);
  transport.set_handler(2, [](NodeId, util::BytesView, util::SimTime) {});
  transport.send(1, 2, {1});
  simulator.run();
  transport.reset_counters();
  EXPECT_EQ(transport.total_packets(), 0u);
  EXPECT_EQ(transport.counters(1).packets_sent, 0u);
}

TEST(SimTransport, PerLinkProfileOverride) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 6);
  sim::LatencyProfile slow;
  slow.base = util::from_millis(100);
  transport.set_link_profile(1, 2, slow);

  util::SimTime slow_delivery = -1, fast_delivery = -1;
  transport.set_handler(2, [&](NodeId, util::BytesView, util::SimTime now) {
    slow_delivery = now;
  });
  transport.set_handler(3, [&](NodeId, util::BytesView, util::SimTime now) {
    fast_delivery = now;
  });
  transport.send(1, 2, {1});
  transport.send(1, 3, {1});
  simulator.run();
  EXPECT_GT(slow_delivery, util::from_millis(99));
  EXPECT_LT(fast_delivery, util::from_millis(10));
}

TEST(SimTransport, LossyLinkDropsSome) {
  sim::Simulator simulator;
  SimTransport transport(simulator, 7);
  sim::LatencyProfile lossy;
  lossy.loss_prob = 0.5;
  transport.set_default_profile(lossy);
  int received = 0;
  transport.set_handler(2, [&](NodeId, util::BytesView, util::SimTime) {
    ++received;
  });
  for (int i = 0; i < 1000; ++i) transport.send(1, 2, {1});
  simulator.run();
  EXPECT_GT(transport.dropped_packets(), 350u);
  EXPECT_LT(transport.dropped_packets(), 650u);
  EXPECT_EQ(received + transport.dropped_packets(), 1000u);
}

TEST(SimTransport, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator simulator;
    SimTransport transport(simulator, seed);
    std::vector<util::SimTime> deliveries;
    transport.set_handler(2, [&](NodeId, util::BytesView, util::SimTime now) {
      deliveries.push_back(now);
    });
    for (int i = 0; i < 20; ++i) transport.send(1, 2, {1});
    simulator.run();
    return deliveries;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace cadet::net
