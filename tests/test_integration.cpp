// End-to-end tests over the simulated testbed: full registration flows,
// request/response timing behaviour, upload aggregation, and encrypted
// delivery — the protocol running whole, not module by module.
#include <gtest/gtest.h>

#include "testbed/topology.h"
#include "testbed/workload.h"

namespace cadet::testbed {
namespace {

TestbedConfig tiny_config(std::uint64_t seed = 1) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 1;
  config.clients_per_network = 4;
  config.profiles = {NetworkProfile::kBalanced};
  config.server_seed_bytes = 1 << 16;
  return config;
}

TEST(Integration, EdgeAndClientRegistrationComplete) {
  World world(tiny_config());
  world.register_edges();
  EXPECT_TRUE(world.edge(0).registered());
  EXPECT_TRUE(world.server().edge_registered(edge_id(0)));

  world.register_clients();
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    EXPECT_TRUE(world.client(i).initialized()) << "client " << i;
    EXPECT_TRUE(world.client(i).reregistered()) << "client " << i;
    EXPECT_TRUE(world.server().client_known(client_id(i)));
  }
}

TEST(Integration, RequestResolvesEndToEnd) {
  World world(tiny_config(2));
  world.register_edges();

  bool fulfilled = false;
  util::Bytes received;
  ClientNode* client = &world.client(0);
  SimNode* node = &world.client_sim(0);
  node->post([&, client](util::SimTime now) {
    return client->request_entropy(
        512, now, [&](util::BytesView data, util::SimTime) {
          fulfilled = true;
          received.assign(data.begin(), data.end());
        });
  });
  world.simulator().run();
  EXPECT_TRUE(fulfilled);
  EXPECT_EQ(received.size(), 64u);
  EXPECT_GT(client->pool().available_bits(), 0u);
}

TEST(Integration, EncryptedDeliveryAfterRegistration) {
  World world(tiny_config(3));
  world.register_edges();
  world.register_clients();

  bool fulfilled = false;
  ClientNode* client = &world.client(1);
  SimNode* node = &world.client_sim(1);
  node->post([&, client](util::SimTime now) {
    return client->request_entropy(
        256, now,
        [&](util::BytesView data, util::SimTime) {
          fulfilled = data.size() == 32;
        });
  });
  world.simulator().run();
  EXPECT_TRUE(fulfilled);
}

TEST(Integration, SecondRequestIsFasterThanFirst) {
  // Cold cache -> miss (server round trip + edge mixing); warm cache ->
  // local hit. This is the Fig. 8a cache effect end to end.
  World world(tiny_config(4));
  world.register_edges();
  auto& sim = world.simulator();

  auto timed_request = [&](std::size_t client_idx) {
    const util::SimTime t0 = sim.now();
    double elapsed = -1.0;
    ClientNode* client = &world.client(client_idx);
    SimNode* node = &world.client_sim(client_idx);
    node->post([&, client, node, t0](util::SimTime now) {
      return client->request_entropy(
          512, now, [&, node, t0](util::BytesView, util::SimTime) {
            node->post([&, t0](util::SimTime done) {
              elapsed = util::to_seconds(done - t0);
              return std::vector<net::Outgoing>{};
            });
          });
    });
    sim.run();
    return elapsed;
  };

  const double cold = timed_request(0);
  const double warm = timed_request(0);
  ASSERT_GT(cold, 0.0);
  ASSERT_GT(warm, 0.0);
  EXPECT_GT(cold, warm * 1.5) << "cold=" << cold << " warm=" << warm;
  // Paper ballpark: ~0.25 s uncached, ~0.12 s cached on the testbed.
  EXPECT_LT(warm, 0.2);
  EXPECT_LT(cold, 0.5);
}

TEST(Integration, UploadsAggregateBeforeReachingServer) {
  TestbedConfig config = tiny_config(5);
  config.upload_forward_bytes = 128;
  World world(config);
  world.register_edges();
  world.transport().reset_counters();

  auto& sim = world.simulator();
  util::Xoshiro256 rng(6);
  // 8 uploads of 32 bytes -> 256 payload bytes -> exactly 2 bulk packets.
  for (int i = 0; i < 8; ++i) {
    ClientNode* client = &world.client(static_cast<std::size_t>(i % 4));
    SimNode* node = &world.client_sim(static_cast<std::size_t>(i % 4));
    const auto payload = rng.bytes(32);
    sim.schedule_at(util::from_seconds(1 + i), [node, client, payload]() {
      node->post([client, payload](util::SimTime t) {
        return client->upload_entropy(payload, t);
      });
    });
  }
  sim.run();
  EXPECT_EQ(world.server().stats().uploads_received, 2u);
  EXPECT_EQ(world.server().stats().bytes_mixed, 256u);
  EXPECT_GT(world.server().pool().size(), 0u);
}

TEST(Integration, NoEdgeModeTalksDirectlyToServer) {
  TestbedConfig config = tiny_config(7);
  config.use_edge = false;
  World world(config);

  bool fulfilled = false;
  ClientNode* client = &world.client(0);
  SimNode* node = &world.client_sim(0);
  node->post([&, client](util::SimTime now) {
    return client->request_entropy(
        512, now,
        [&](util::BytesView data, util::SimTime) {
          fulfilled = data.size() == 64;
        });
  });
  world.simulator().run();
  EXPECT_TRUE(fulfilled);
  EXPECT_EQ(world.server().stats().requests_served, 1u);
}

TEST(Integration, WorkloadDriverCollectsMetrics) {
  World world(tiny_config(8));
  world.register_edges();
  WorkloadDriver driver(world, 9);
  ClientBehavior behavior;
  behavior.request_rate_hz = 1.0;
  behavior.request_bits = 256;
  behavior.upload_rate_hz = 1.0;
  behavior.upload_bytes = 32;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, behavior, 0, util::from_seconds(30));
  }
  world.simulator().run();
  const auto& metrics = driver.metrics();
  EXPECT_GT(metrics.requests_sent, 50u);
  EXPECT_EQ(metrics.responses_received, metrics.requests_sent);
  EXPECT_GT(metrics.uploads_sent, 50u);
  EXPECT_GT(metrics.response_times_s.count(), 0u);
  EXPECT_LT(metrics.response_times_s.mean(), 1.0);
  EXPECT_EQ(metrics.events.size(), metrics.responses_received);
}

TEST(Integration, MaliciousUploaderGetsPenalized) {
  World world(tiny_config(10));
  world.register_edges();
  WorkloadDriver driver(world, 11);
  ClientBehavior honest;
  honest.upload_rate_hz = 2.0;
  honest.upload_bytes = 32;
  ClientBehavior malicious = honest;
  malicious.bad_fraction = 0.5;
  malicious.bad_bias = 0.85;
  driver.drive(0, honest, 0, util::from_seconds(120));
  driver.drive(1, malicious, 0, util::from_seconds(120));
  world.simulator().run();

  EdgeNode& edge = world.edge(0);
  EXPECT_GT(edge.penalty().score(client_id(1)),
            edge.penalty().score(client_id(0)));
  EXPECT_TRUE(edge.penalty().is_delinquent(client_id(1)));
  EXPECT_FALSE(edge.penalty().is_delinquent(client_id(0)));
}

TEST(Integration, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    World world(tiny_config(seed));
    world.register_edges();
    WorkloadDriver driver(world, seed);
    ClientBehavior behavior;
    behavior.request_rate_hz = 2.0;
    for (std::size_t i = 0; i < world.num_clients(); ++i) {
      driver.drive(i, behavior, 0, util::from_seconds(20));
    }
    world.simulator().run();
    return driver.metrics().response_times_s.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Integration, ServerPoolGrowsUnderProducerWorkload) {
  World world(tiny_config(12));
  world.register_edges();
  const auto initial_pool = world.server().pool().size();
  WorkloadDriver driver(world, 13);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, ClientBehavior::producer(), 0, util::from_seconds(120));
  }
  world.simulator().run();
  EXPECT_GT(world.server().stats().bytes_mixed, 0u);
  EXPECT_GE(world.server().pool().size(), initial_pool);
}

}  // namespace
}  // namespace cadet::testbed
