// Sharded-world tests: struct-of-arrays client engine semantics, the
// windowed conservative execution's determinism across executors, the
// protocol conservation invariants, and the bytes/client budget that
// justifies the SoA refactor (docs/PERFORMANCE.md "Sharded worlds").
#include "testbed/scale.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "cadet/client_engine.h"
#include "util/task_pool.h"

namespace cadet::testbed {
namespace {

ScaleWorld::Executor pool_executor(util::TaskPool& pool) {
  return [&pool](std::size_t count,
                 const std::function<void(std::size_t)>& task) {
    pool.run(count, task);
  };
}

void expect_stats_eq(const ScaleStats& a, const ScaleStats& b) {
  EXPECT_EQ(a.requests_sent, b.requests_sent);
  EXPECT_EQ(a.local_serves, b.local_serves);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.fulfilled, b.fulfilled);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.heavy_denied, b.heavy_denied);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.uploads_accepted, b.uploads_accepted);
  EXPECT_EQ(a.uploads_rejected, b.uploads_rejected);
  EXPECT_EQ(a.blacklisted_clients, b.blacklisted_clients);
  EXPECT_EQ(a.refills_requested, b.refills_requested);
  EXPECT_EQ(a.refills_completed, b.refills_completed);
  EXPECT_EQ(a.server_grant_bytes, b.server_grant_bytes);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
}

/// The terminal request invariant: every wire request resolves exactly
/// once, and the boundary conserves every crossing event.
void expect_conservation(const ScaleWorld& world) {
  const ScaleStats stats = world.stats();
  EXPECT_EQ(stats.requests_sent,
            stats.fulfilled + stats.fallback + stats.expired);
  EXPECT_EQ(world.boundary_emitted(), world.boundary_injected());
  // Refill protocol: every request reaches the server (the boundary is
  // reliable), every grant lands or dies in a crash window.
  EXPECT_EQ(stats.refills_requested + stats.refill_reissues,
            stats.server_grants);
  EXPECT_EQ(stats.server_grants,
            stats.refills_completed + stats.crash_dropped_refills);
  // Upload ledger.
  EXPECT_EQ(stats.uploads_sent,
            stats.uploads_accepted + stats.uploads_rejected +
                stats.blacklist_drops + stats.wire_dropped_uploads +
                stats.crash_dropped_uploads);
}

// ------------------------------------------------------------ ClientEngine

TEST(ClientEngine, LazyUsageDecayMatchesExplicit) {
  ClientEngine::Config config;
  config.seed = 7;
  config.count = 4;
  ClientEngine engine(config);
  engine.usage_touch(0, 10, 100.0F);
  // 25 steps later the score must equal 100 * decay^25 exactly (same pow
  // call the eager implementation would make).
  const float expected =
      100.0F * static_cast<float>(std::pow(kUsageDecay, 25.0));
  EXPECT_FLOAT_EQ(engine.usage_score(0, 35), expected);
  // Touching folds the decay in and resets the step anchor.
  const float touched = engine.usage_touch(0, 35, 50.0F);
  EXPECT_FLOAT_EQ(touched, expected + 50.0F);
  EXPECT_FLOAT_EQ(engine.usage_score(0, 35), touched);
}

TEST(ClientEngine, PoolCursorAndPendingSlot) {
  ClientEngine::Config config;
  config.seed = 3;
  config.count = 2;
  config.pool_capacity_bits = 1024;
  ClientEngine engine(config);
  EXPECT_FALSE(engine.pool_consume(0, 512));  // starts empty
  engine.pool_credit(0, 4096);                // clamps to capacity
  EXPECT_EQ(engine.pool_bits(0), 1024u);
  EXPECT_TRUE(engine.pool_consume(0, 512));
  EXPECT_EQ(engine.pool_bits(0), 512u);

  const std::uint16_t id = engine.issue_request(0, 256);
  EXPECT_TRUE(engine.request_pending(0));
  EXPECT_TRUE(engine.pending_matches(0, id));
  EXPECT_FALSE(engine.pending_matches(0, static_cast<std::uint16_t>(id + 1)));
  EXPECT_FALSE(engine.request_pending(1));  // neighbours unaffected
  engine.complete_request(0, 256);
  EXPECT_FALSE(engine.request_pending(0));
  EXPECT_EQ(engine.pool_bits(0), 768u);
}

TEST(ClientEngine, PenaltyClampsAndBlacklists) {
  ClientEngine::Config config;
  config.seed = 9;
  config.count = 1;
  ClientEngine engine(config);
  engine.penalty_add(0, 8.0F);
  engine.penalty_add(0, -20.0F);  // floors at zero
  EXPECT_FLOAT_EQ(engine.penalty_score(0), 0.0F);
  EXPECT_FALSE(engine.has(0, ClientEngine::kBlacklisted));
  for (int i = 0; i < 6; ++i) engine.penalty_add(0, 6.0F);
  EXPECT_FLOAT_EQ(engine.penalty_score(0),
                  static_cast<float>(kMaxPenalty));
  EXPECT_TRUE(engine.has(0, ClientEngine::kBlacklisted));
}

TEST(ClientEngine, HeavyScanFlagsTheOutlier) {
  ClientEngine::Config config;
  config.seed = 11;
  config.count = 64;
  ClientEngine engine(config);
  // Population hums at ~10; client 7 runs 100x that.
  for (std::uint32_t i = 0; i < 64; ++i) {
    engine.usage_touch(i, 100, i == 7 ? 1000.0F : 10.0F);
  }
  std::vector<float> scratch;
  const ClientEngine::HeavyScan scan =
      engine.heavy_scan(100, kUsageSigmaThreshold, kUsageHeavyMedianRatio,
                        50.0F, scratch);
  EXPECT_EQ(scan.heavy, 1u);
  EXPECT_TRUE(engine.has(7, ClientEngine::kHeavy));
  EXPECT_FALSE(engine.has(6, ClientEngine::kHeavy));
  // Decayed back under the threshold, the next scan clears the flag.
  const ClientEngine::HeavyScan later =
      engine.heavy_scan(1000, kUsageSigmaThreshold, kUsageHeavyMedianRatio,
                        50.0F, scratch);
  EXPECT_EQ(later.heavy, 0u);
  EXPECT_FALSE(engine.has(7, ClientEngine::kHeavy));
}

TEST(ClientEngine, ColdStateIsDeterministicPerSeed) {
  ClientEngine::Config config;
  config.seed = 1234;
  config.count = 8;
  ClientEngine a(config);
  ClientEngine b(config);
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::size_t k = 0; k < ClientEngine::kColdBytes; ++k) {
      ASSERT_EQ(a.cold(i)[k], b.cold(i)[k]);
    }
  }
  config.seed = 1235;
  ClientEngine c(config);
  bool differs = false;
  for (std::size_t k = 0; k < ClientEngine::kColdBytes; ++k) {
    differs = differs || a.cold(0)[k] != c.cold(0)[k];
  }
  EXPECT_TRUE(differs);
}

// -------------------------------------------------------------- ScaleWorld

ScaleConfig small_config() {
  ScaleConfig config;
  config.seed = 42;
  config.num_clients = 4000;
  config.clients_per_edge = 500;  // 8 edge shards + the server shard
  config.duration_s = 3.0;
  config.drop_prob = 0.02;
  config.flooder_fraction = 0.005;
  config.bad_uploader_fraction = 0.1;
  return config;
}

TEST(ScaleWorld, SameSeedTracesAreExecutorIndependent) {
  const ScaleConfig config = small_config();
  ScaleWorld sequential(config);
  sequential.run();

  util::TaskPool pool4(4);
  ScaleWorld pooled(config);
  pooled.run(pool_executor(pool4));

  util::TaskPool pool2(2);
  ScaleWorld pooled2(config);
  pooled2.run(pool_executor(pool2));

  EXPECT_EQ(sequential.checksum(), pooled.checksum());
  EXPECT_EQ(sequential.checksum(), pooled2.checksum());
  EXPECT_EQ(sequential.events_executed(), pooled.events_executed());
  EXPECT_EQ(sequential.events_executed(), pooled2.events_executed());
  expect_stats_eq(sequential.stats(), pooled.stats());
  expect_stats_eq(sequential.stats(), pooled2.stats());
}

TEST(ScaleWorld, DifferentSeedsDiverge) {
  ScaleConfig config = small_config();
  ScaleWorld a(config);
  a.run();
  config.seed = 43;
  ScaleWorld b(config);
  b.run();
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(ScaleWorld, RequestAndBoundaryConservation) {
  const ScaleConfig config = small_config();
  ScaleWorld world(config);
  world.run();
  const ScaleStats stats = world.stats();
  EXPECT_GT(stats.requests_sent, 0u);
  EXPECT_GT(stats.fulfilled, 0u);
  EXPECT_GT(stats.local_serves, 0u);
  EXPECT_GT(stats.wire_dropped_requests, 0u);  // drop_prob did something
  expect_conservation(world);
}

TEST(ScaleWorld, FloodersGetHeavyDenied) {
  ScaleConfig config = small_config();
  config.drop_prob = 0.0;
  config.flooder_fraction = 0.01;
  config.duration_s = 6.0;  // past several scan periods
  ScaleWorld world(config);
  world.run();
  const ScaleStats stats = world.stats();
  EXPECT_GT(stats.heavy_scan_flags, 0u);
  EXPECT_GT(stats.heavy_denied, 0u);
  // Policing must not collapse honest service: wire requests still mostly
  // fulfill (denials land on the flooders' requests).
  EXPECT_GT(stats.fulfilled * 10, stats.requests_sent * 8);
  expect_conservation(world);
}

TEST(ScaleWorld, BadUploadersAreBlacklisted) {
  ScaleConfig config = small_config();
  config.drop_prob = 0.0;
  config.flooder_fraction = 0.0;
  config.producer_fraction = 1.0;
  config.bad_uploader_fraction = 0.25;
  config.upload_rate_hz = 2.0;  // enough strikes inside the run
  config.duration_s = 6.0;
  ScaleWorld world(config);
  world.run();
  const ScaleStats stats = world.stats();
  EXPECT_GT(stats.blacklisted_clients, 0u);
  EXPECT_GT(stats.blacklist_drops, 0u);
  EXPECT_GT(stats.uploads_accepted, 0u);  // honest producers unharmed
  expect_conservation(world);
}

TEST(ScaleWorld, CrashWindowsLoseNoAccountedEvents) {
  ScaleConfig config = small_config();
  config.drop_prob = 0.0;
  // Partition-aligned crash windows: multiples of the boundary window so
  // a crash edge never splits a window (the alignment the merge queue's
  // conservation argument assumes).
  ScaleWorld probe(config);
  const util::SimTime w = probe.window();
  config.crashes.push_back({0, 50 * w, 150 * w});
  config.crashes.push_back({3, 100 * w, 250 * w});
  ScaleWorld world(config);
  world.run();
  const ScaleStats stats = world.stats();
  EXPECT_GT(stats.crash_dropped_requests, 0u);
  expect_conservation(world);
}

TEST(ScaleWorld, SoAFootprintStaysUnderBudget) {
  ScaleConfig config;
  config.seed = 7;
  config.num_clients = 50'000;
  config.clients_per_edge = 1024;
  config.duration_s = 2.0;
  ScaleWorld world(config);
  world.run();
  const double per_client = static_cast<double>(world.memory_bytes()) /
                            static_cast<double>(world.num_clients());
  // The committed BENCH_7 gate is 512 B/client; the order-of-magnitude
  // claim vs the per-node ClientNode graph (multiple KB) rides on it.
  EXPECT_LT(per_client, 512.0);
  EXPECT_GT(world.events_executed(), 0u);
}

TEST(ScaleWorld, PartitionIsTopologyNotWorkerCount) {
  ScaleConfig config = small_config();
  ScaleWorld world(config);
  EXPECT_EQ(world.num_edges(), 8u);
  EXPECT_EQ(world.num_shards(), 9u);  // + the server shard
  EXPECT_EQ(world.num_clients(), 4000u);
  EXPECT_GT(world.window(), 0);
}

}  // namespace
}  // namespace cadet::testbed
