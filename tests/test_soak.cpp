// Paper-scale soak: the full Fig. 9 testbed (44 clients in four networks,
// four edges, one server) under its mixed workload for 10 simulated
// minutes, asserting global health invariants at the end — the closest
// thing to "running the paper's testbed" in one test.
#include <gtest/gtest.h>

#include "testbed/topology.h"
#include "testbed/workload.h"

namespace cadet::testbed {
namespace {

TEST(Soak, FullTestbedTenMinutes) {
  TestbedConfig config;
  config.seed = 20180711;
  // Defaults are the paper's topology: 4 networks x 11 clients,
  // consumer / balanced / balanced / producer.
  config.server_seed_bytes = 1 << 20;
  World world(config);
  world.register_edges();
  world.register_clients();

  WorkloadDriver driver(world, 1);
  const util::SimTime t_end = util::from_seconds(600);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, ClientBehavior::for_profile(world.profile_of(i)), 0,
                 t_end);
  }
  world.simulator().run_until(t_end + util::from_seconds(30));
  world.simulator().run();

  const auto& metrics = driver.metrics();

  // Service: essentially every request answered, at testbed latencies.
  ASSERT_GT(metrics.requests_sent, 1000u);
  EXPECT_GT(static_cast<double>(metrics.responses_received),
            0.995 * static_cast<double>(metrics.requests_sent));
  EXPECT_LT(metrics.response_times_s.mean(), 0.3);
  EXPECT_LT(metrics.response_times_s.quantile(0.95), 0.5);

  // Edge tier: caches sized right, hits dominate, honest traffic not
  // penalized.
  std::uint64_t hits = 0, misses = 0;
  for (std::size_t k = 0; k < world.num_edges(); ++k) {
    EdgeNode& edge = world.edge(k);
    EXPECT_EQ(edge.cache().capacity_bytes(),
              config.clients_per_network * kClientBufferBits / 8);
    hits += edge.stats().cache_hits;
    misses += edge.stats().cache_misses;
    for (std::size_t i = 0; i < config.clients_per_network; ++i) {
      const net::NodeId client =
          client_id(k * config.clients_per_network + i);
      EXPECT_FALSE(edge.penalty().is_blacklisted(client))
          << "honest client " << client << " blacklisted";
    }
  }
  EXPECT_GT(static_cast<double>(hits),
            5.0 * static_cast<double>(misses));

  // Server tier: pool alive and statistically healthy.
  EXPECT_GT(world.server().stats().bytes_mixed, 10000u);
  const auto quality = world.server().run_quality_check();
  EXPECT_GE(quality.passed(), quality.total() - 1);

  // Conservation: entropy delivered to clients entered their pools.
  std::size_t clients_with_credit = 0;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    if (world.client(i).pool().available_bits() > 0) ++clients_with_credit;
    EXPECT_EQ(world.client(i).requests_pending(), 0u)
        << "client " << i << " left with stuck requests";
  }
  EXPECT_GT(clients_with_credit, world.num_clients() / 2);
}

TEST(Soak, LossyNetworkTenMinutes) {
  // The full testbed again, but every datagram crosses a 5 %-loss,
  // 5 %-reorder FaultyTransport for the whole 10-minute run. The
  // retry/timeout/backoff machinery must keep the deployment healthy: no
  // client ends up stuck, every request resolves (delivery, explicit
  // fallback, or expiry), and deliveries still dominate by a wide margin.
  TestbedConfig config;
  config.seed = 20180713;
  config.server_seed_bytes = 1 << 20;
  net::FaultPlan plan;
  plan.seed = 20180713u * 7919 + 17;
  plan.default_rule.drop = 0.05;
  plan.default_rule.reorder = 0.05;
  config.fault_plan = plan;
  World world(config);

  world.faults()->set_enabled(false);
  world.register_edges();
  world.register_clients();
  world.faults()->set_enabled(true);

  WorkloadDriver driver(world, 3);
  const util::SimTime t_end = util::from_seconds(600);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, ClientBehavior::for_profile(world.profile_of(i)), 0,
                 t_end);
  }
  world.simulator().run_until(t_end + util::from_seconds(30));
  world.simulator().run();

  const auto& metrics = driver.metrics();
  ASSERT_GT(metrics.requests_sent, 1000u);

  // The loss actually happened, and retransmission actually ran.
  EXPECT_GT(world.faults()->counts().dropped, 100u);
  EXPECT_GT(world.faults()->counts().reordered, 100u);

  std::uint64_t fulfilled = 0, fallback = 0, expired = 0, retried = 0;
  std::size_t starved_clients = 0;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    ClientNode& c = world.client(i);
    // No stuck clients: every request resolved one way or another.
    EXPECT_EQ(c.requests_pending(), 0u)
        << "client " << i << " left with stuck requests";
    fulfilled += c.requests_fulfilled();
    fallback += c.requests_fallback();
    expired += c.requests_expired();
    retried += c.requests_retried();
    if (c.requests_fulfilled() == 0) ++starved_clients;
  }
  EXPECT_GT(retried, 0u);
  EXPECT_EQ(starved_clients, 0u);

  // Delivery stays monotone and healthy: genuine deliveries dwarf the
  // degraded outcomes even at 5 % loss (retransmission recovers most
  // losses before the fallback deadline; the residue is mostly requests
  // that land in an edge refill gap widened by lost refill rounds).
  EXPECT_GT(fulfilled, 8 * (fallback + expired));
  EXPECT_GT(static_cast<double>(fulfilled),
            0.9 * static_cast<double>(metrics.requests_sent));

  // Loss alone must never look like misbehaviour to the penalty system.
  for (std::size_t k = 0; k < world.num_edges(); ++k) {
    for (std::size_t i = 0; i < config.clients_per_network; ++i) {
      const net::NodeId client =
          client_id(k * config.clients_per_network + i);
      EXPECT_FALSE(world.edge(k).penalty().is_blacklisted(client))
          << "honest client " << client << " blacklisted under loss";
    }
  }
}

TEST(Soak, NoEdgeBaselineTenMinutes) {
  // The same world without the edge tier still serves (slower, heavier on
  // the server) — the Fig. 10 "W/O" configuration end to end.
  TestbedConfig config;
  config.seed = 20180712;
  config.use_edge = false;
  config.server_seed_bytes = 1 << 21;
  World world(config);

  WorkloadDriver driver(world, 2);
  const util::SimTime t_end = util::from_seconds(600);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, ClientBehavior::for_profile(world.profile_of(i)), 0,
                 t_end);
  }
  world.simulator().run_until(t_end + util::from_seconds(30));
  world.simulator().run();

  const auto& metrics = driver.metrics();
  ASSERT_GT(metrics.requests_sent, 1000u);
  EXPECT_GT(static_cast<double>(metrics.responses_received),
            0.99 * static_cast<double>(metrics.requests_sent));
  // Without the cache every request pays the server round trip: server
  // request count tracks client request count instead of collapsing.
  EXPECT_GT(world.server().stats().requests_served,
            metrics.requests_sent / 2);
}

}  // namespace
}  // namespace cadet::testbed
