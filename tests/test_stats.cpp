#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cadet::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Samples, QuantileClampsRange) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 2.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(Samples, AddAfterQuantileKeepsCorrectness) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // added after a sorted read
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, StdDev) {
  Samples s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, SummaryNonEmpty) {
  Samples s;
  s.add(1.0);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cadet::util
