// SimNode: the CPU-charging bridge between sans-IO engines and the
// simulator. These tests pin down the busy-window semantics the protocol
// timings (Fig. 8a) and the edge-saturation behaviour depend on.
#include "testbed/sim_node.h"

#include <gtest/gtest.h>

#include "net/sim_transport.h"

namespace cadet::testbed {
namespace {

struct Fixture {
  sim::Simulator simulator;
  net::SimTransport transport{simulator, 1};
  CostMeter meter;
};

TEST(SimNode, ChargesCyclesAsBusyTime) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  util::SimTime ran_at = -1;
  node.post([&](util::SimTime now) {
    ran_at = now;
    f.meter.add(1e6);  // 1 second at 1 MHz
    return std::vector<net::Outgoing>{};
  });
  f.simulator.run();
  EXPECT_EQ(ran_at, 0);
  EXPECT_EQ(node.busy_until(), util::kSecond);
}

TEST(SimNode, SerializesWorkItems) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  std::vector<util::SimTime> starts;
  for (int i = 0; i < 3; ++i) {
    node.post([&](util::SimTime now) {
      starts.push_back(now);
      f.meter.add(1e6);
      return std::vector<net::Outgoing>{};
    });
  }
  f.simulator.run();
  // Each item starts only when the previous one's busy window ends.
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], util::kSecond);
  EXPECT_EQ(starts[2], 2 * util::kSecond);
}

TEST(SimNode, TransmissionsLeaveAtCompletion) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  util::SimTime received_at = -1;
  f.transport.set_handler(20, [&](net::NodeId, util::BytesView,
                                  util::SimTime now) { received_at = now; });
  node.post([&](util::SimTime) {
    f.meter.add(2e6);  // 2 s of processing before the packet leaves
    return std::vector<net::Outgoing>{{20, util::Bytes{1}}};
  });
  f.simulator.run();
  EXPECT_GE(received_at, 2 * util::kSecond);
}

TEST(SimNode, IncomingPacketsQueueBehindBusyCpu) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  std::vector<util::SimTime> handled;
  node.bind([&](net::NodeId, util::BytesView, util::SimTime now) {
    handled.push_back(now);
    f.meter.add(5e6);  // 5 s each
    return std::vector<net::Outgoing>{};
  });
  // Two packets arrive ~instantly; the second must wait out the first's
  // processing window.
  f.transport.send(99, 10, {1});
  f.transport.send(99, 10, {2});
  f.simulator.run();
  ASSERT_EQ(handled.size(), 2u);
  EXPECT_GE(handled[1] - handled[0], 5 * util::kSecond);
}

TEST(SimNode, WorkPostedDuringProcessingWaitsForBusyWindow) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  util::SimTime follow_up_at = -1;
  node.post([&](util::SimTime) {
    f.meter.add(3e6);
    node.post([&](util::SimTime now) {
      follow_up_at = now;
      return std::vector<net::Outgoing>{};
    });
    return std::vector<net::Outgoing>{};
  });
  f.simulator.run();
  // The nested item runs exactly when the first completes — this is the
  // mechanism the Fig. 8a measurements use to latch "processing resolved".
  EXPECT_EQ(follow_up_at, 3 * util::kSecond);
}

TEST(SimNode, ZeroCostWorkDoesNotAdvanceClock) {
  Fixture f;
  SimNode node(f.simulator, f.transport, sim::CpuModel(1e6), 10, f.meter);
  node.post([&](util::SimTime) { return std::vector<net::Outgoing>{}; });
  f.simulator.run();
  EXPECT_EQ(node.busy_until(), 0);
}

TEST(SimNode, FasterCpuFinishesSooner) {
  Fixture f;
  SimNode slow(f.simulator, f.transport, sim::kClientCpu, 10, f.meter);
  CostMeter meter2;
  SimNode fast(f.simulator, f.transport, sim::kServerCpu, 11, meter2);
  slow.post([&](util::SimTime) {
    f.meter.add(6e6);
    return std::vector<net::Outgoing>{};
  });
  fast.post([&](util::SimTime) {
    meter2.add(6e6);
    return std::vector<net::Outgoing>{};
  });
  f.simulator.run();
  EXPECT_GT(slow.busy_until(), 20 * fast.busy_until());
}

}  // namespace
}  // namespace cadet::testbed
