// Seeded adversary-scenario runner for the adversarial economics suite:
// builds the paper's testbed, registers it, then drives honest clients
// (WorkloadDriver) alongside hostile ones (AdversaryDriver) and snapshots
// everything the defense assertions need — honest-vs-hostile service
// split, per-attacker penalty/usage state, edge policing totals, and a
// probe stream of actually-delivered entropy for the NIST battery. One
// ScenarioConfig seed fully determines the run (workload arrivals, attack
// arrivals, poison payloads, backoff jitter), so a failing seed reported
// by test_adversary reproduces exactly (docs/ADVERSARIES.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nist/battery.h"
#include "obs/metrics.h"
#include "testbed/adversary.h"
#include "testbed/topology.h"
#include "testbed/workload.h"

namespace cadet::testbed::adversary {

/// The four attack shapes the sweep rotates through (ROADMAP item 3).
enum class AttackMix { kFreeRiders, kPoisoners, kCacheInflation, kSybilBurst };

inline const char* mix_name(AttackMix mix) noexcept {
  switch (mix) {
    case AttackMix::kFreeRiders: return "free-riders";
    case AttackMix::kPoisoners: return "poisoners";
    case AttackMix::kCacheInflation: return "cache-inflation";
    case AttackMix::kSybilBurst: return "sybil-burst";
  }
  return "unknown";
}

struct ScenarioConfig {
  std::uint64_t seed = 1;
  AttackMix mix = AttackMix::kPoisoners;
  /// The paper's 49-node world: 4 networks x 11 clients + 1 server.
  std::size_t num_networks = 4;
  std::size_t clients_per_network = 11;
  /// Hostile clients per network, assigned to the highest client indices
  /// of each network so probes/honest occupy the low ones.
  std::size_t attackers_per_network = 2;
  double horizon_s = 40.0;
  double drain_s = 20.0;
  /// Honest behaviour (balanced-ish mix).
  double honest_request_rate_hz = 0.5;
  double honest_upload_rate_hz = 0.5;
  /// Sybil mix: attackers stay unregistered until this sim time.
  double sybil_burst_at_s = 15.0;
  /// §VI-D3 mitigation armed: bulk uploads need this many distinct
  /// contributors, diluting colluding producers.
  std::size_t min_contributors = 2;
  /// Probe stream: the first client of each network additionally issues a
  /// fixed-cadence request whose delivered bytes are collected for the
  /// quality battery (entropy that actually reached a consumer).
  double probe_period_s = 2.0;
  std::uint16_t probe_bits = 1024;
};

/// Everything the invariant checks look at, snapshotted after the drain.
struct ScenarioResult {
  // Honest side (excludes attackers; includes the probe clients).
  std::uint64_t honest_requests_sent = 0;
  std::uint64_t honest_fulfilled = 0;
  std::uint64_t honest_fallback = 0;
  std::uint64_t honest_expired = 0;
  std::uint64_t honest_pending = 0;
  /// fulfilled / sent over the honest population (0 when nothing sent).
  double honest_fulfillment_ratio = 0.0;
  double honest_p50_s = 0.0;
  double honest_p95_s = 0.0;
  bool honest_blacklisted = false;
  /// Honest clients whose penalty score sits above drop_thresh at run
  /// end. The sanity battery on 32-byte uploads has a real false-positive
  /// rate and the penalty table never decays, so across dozens of honest
  /// clients a few transient delinquency brushes are the battery's own
  /// base rate, not an attack artifact — the suite bounds the count
  /// instead of requiring zero (blacklisting stays strictly zero).
  std::size_t honest_delinquent = 0;
  /// Any non-probe honest client ever ENFORCED as heavy (a request
  /// refused outright after sustained strikes). The instantaneous
  /// UsageTracker::is_heavy flag is noisy by design — honest Poisson
  /// double-fires cross it for a packet or two — so the invariant the
  /// suite pins is that enforcement never touched an honest client.
  /// Probes run hotter than the honest baseline and are tracked
  /// separately.
  bool honest_heavy = false;
  bool probe_heavy = false;
  std::size_t honest_clients = 0;
  std::size_t hostile_clients = 0;

  // Hostile side (client-engine counters for the attacker indices).
  std::uint64_t hostile_requests_sent = 0;
  std::uint64_t hostile_fulfilled = 0;
  std::uint64_t hostile_fallback = 0;
  std::uint64_t hostile_expired = 0;
  std::uint64_t hostile_pending = 0;

  // Per-attacker defense state, keyed by client index. attacker_heavy is
  // true when the edge either flags the attacker heavy at run end or
  // denied it outright at least once during the run (the flag cycles as
  // denied packets stop advancing the usage clock; the denial count is
  // monotone).
  std::map<std::size_t, double> attacker_penalty;
  std::map<std::size_t, bool> attacker_blacklisted;
  std::map<std::size_t, bool> attacker_heavy;

  // Edge-tier policing totals.
  std::uint64_t heavy_rejections = 0;
  std::uint64_t uploads_dropped_penalty = 0;
  std::uint64_t uploads_rejected_sanity = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Server tier.
  std::uint64_t server_uploads_rejected = 0;
  std::uint64_t quality_checks_run = 0;
  std::uint64_t quality_checks_failed = 0;
  /// Quality battery over the server pool head, run at scenario end.
  std::size_t pool_quality_passed = 0;
  std::size_t pool_quality_total = 0;

  /// Entropy bytes actually delivered to the probe clients.
  util::Bytes probe_bytes;

  AdversaryStats adversary;
  WorkloadMetrics workload;
};

/// Deterministic attacker assignment: the top `attackers_per_network`
/// indices of every network.
inline AdversaryPlan make_plan(const ScenarioConfig& cfg) {
  AdversaryPlan plan;
  plan.seed = cfg.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t net = 0; net < cfg.num_networks; ++net) {
    for (std::size_t a = 0; a < cfg.attackers_per_network; ++a) {
      const std::size_t idx =
          net * cfg.clients_per_network + (cfg.clients_per_network - 1 - a);
      switch (cfg.mix) {
        case AttackMix::kFreeRiders:
          plan.attackers[idx] = AttackerSpec::free_rider();
          break;
        case AttackMix::kPoisoners: {
          AttackerSpec spec = AttackerSpec::poisoner();
          // Colluders alternate payload styles: Bernoulli-biased bits and
          // fixed 0xaa/0x55 patterns.
          spec.patterned = (a % 2 == 1);
          plan.attackers[idx] = spec;
          break;
        }
        case AttackMix::kCacheInflation:
          plan.attackers[idx] = AttackerSpec::cache_inflator();
          break;
        case AttackMix::kSybilBurst:
          plan.attackers[idx] = AttackerSpec::sybil(cfg.sybil_burst_at_s);
          break;
      }
    }
  }
  return plan;
}

inline std::size_t probe_index(const ScenarioConfig& cfg, std::size_t net) {
  return net * cfg.clients_per_network;
}

/// Run the scenario. With `attacked == false` the same world, seed, and
/// honest workload run with every attacker idle — the all-honest baseline
/// the service-level bounds compare against.
inline ScenarioResult run_scenario(const ScenarioConfig& cfg,
                                   bool attacked = true) {
  const AdversaryPlan plan = make_plan(cfg);

  TestbedConfig tc;
  tc.seed = cfg.seed;
  tc.num_networks = cfg.num_networks;
  tc.clients_per_network = cfg.clients_per_network;
  tc.profiles.assign(cfg.num_networks, NetworkProfile::kBalanced);
  tc.min_contributors = cfg.min_contributors;
  // Paper-testbed provisioning (experiments.cpp uses 2^17..2^21): enough
  // headroom to absorb an attack's pre-detection transient — the EWMA
  // cannot flag a flood before its behaviour is distinguishable — while
  // still small enough that an unpoliced flood (~12 kB/s) would drain it
  // dry mid-run, which is exactly what the regression pins against.
  tc.server_seed_bytes = 1 << 17;
  World world(tc);

  world.register_edges();
  if (attacked) {
    // Sybils stay unregistered until their burst fires mid-run.
    register_clients_except_sybils(world, plan);
  } else {
    world.register_clients();
  }

  WorkloadDriver driver(world, cfg.seed ^ 0x5ce7a210ULL);
  AdversaryDriver adversary(world, plan);

  ClientBehavior honest;
  honest.request_rate_hz = cfg.honest_request_rate_hz;
  honest.upload_rate_hz = cfg.honest_upload_rate_hz;

  const util::SimTime t0 = world.simulator().now();
  const util::SimTime t_end = t0 + util::from_seconds(cfg.horizon_s);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    if (plan.is_attacker(i)) continue;  // attackers idle in the baseline
    driver.drive(i, honest, t0, t_end);
  }
  if (attacked) {
    adversary.drive(t0, t_end);
  }

  // Probe stream: fixed-cadence requests whose delivered plaintext is
  // accumulated for the quality battery. Scheduled up front so the count
  // is identical in baseline and attacked runs.
  util::Bytes probe_bytes;
  const std::size_t probes_per_client =
      static_cast<std::size_t>(cfg.horizon_s / cfg.probe_period_s);
  for (std::size_t net = 0; net < cfg.num_networks; ++net) {
    const std::size_t idx = probe_index(cfg, net);
    ClientNode& client = world.client(idx);
    SimNode& node = world.client_sim(idx);
    for (std::size_t k = 0; k < probes_per_client; ++k) {
      const util::SimTime at =
          t0 + util::from_seconds((static_cast<double>(k) + 0.5) *
                                  cfg.probe_period_s);
      world.simulator().schedule_at(at, [&client, &node, &probe_bytes,
                                         &cfg]() {
        node.post([&client, &probe_bytes, &cfg](util::SimTime t) {
          return client.request_entropy(
              cfg.probe_bits, t,
              [&probe_bytes](util::BytesView data, util::SimTime) {
                probe_bytes.insert(probe_bytes.end(), data.begin(),
                                   data.end());
              });
        });
      });
    }
  }

  world.simulator().run_until(t_end + util::from_seconds(cfg.drain_s));
  // Drain every remaining chain (retry timers, queued CPU work) so the
  // convergence assertions see a settled world: under a denial-heavy mix
  // the attackers' retry/fallback chains outlive the wall-clock drain.
  world.simulator().run();

  ScenarioResult r;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    ClientNode& c = world.client(i);
    const std::uint64_t sent =
        world.metrics()
            .counter("cadet_client_requests_sent",
                     obs::tier_labels("client", c.id()))
            .value();
    if (plan.is_attacker(i) && attacked) {
      r.hostile_requests_sent += sent;
      r.hostile_fulfilled += c.requests_fulfilled();
      r.hostile_fallback += c.requests_fallback();
      r.hostile_expired += c.requests_expired();
      r.hostile_pending += c.requests_pending();
      ++r.hostile_clients;
    } else if (!plan.is_attacker(i)) {
      r.honest_requests_sent += sent;
      r.honest_fulfilled += c.requests_fulfilled();
      r.honest_fallback += c.requests_fallback();
      r.honest_expired += c.requests_expired();
      r.honest_pending += c.requests_pending();
      ++r.honest_clients;
    }
  }
  if (r.honest_requests_sent > 0) {
    r.honest_fulfillment_ratio =
        static_cast<double>(r.honest_fulfilled) /
        static_cast<double>(r.honest_requests_sent);
  }
  const WorkloadMetrics& wm = driver.metrics();
  if (wm.response_times_s.count() > 0) {
    r.honest_p50_s = wm.response_times_s.quantile(0.50);
    r.honest_p95_s = wm.response_times_s.quantile(0.95);
  }

  for (std::size_t k = 0; k < world.num_edges(); ++k) {
    EdgeNode& e = world.edge(k);
    const auto stats = e.stats();
    r.heavy_rejections += stats.heavy_rejections;
    r.uploads_dropped_penalty += stats.uploads_dropped_penalty;
    r.uploads_rejected_sanity += stats.uploads_rejected_sanity;
    r.cache_hits += stats.cache_hits;
    r.cache_misses += stats.cache_misses;
    for (std::size_t i = 0; i < cfg.clients_per_network; ++i) {
      const std::size_t idx = k * cfg.clients_per_network + i;
      const net::NodeId cid = client_id(idx);
      if (plan.is_attacker(idx) && attacked) {
        r.attacker_penalty[idx] = e.penalty().score(cid);
        r.attacker_blacklisted[idx] = e.penalty().is_blacklisted(cid);
        r.attacker_heavy[idx] =
            e.usage().is_heavy(cid) || e.heavy_denials(cid) > 0;
      } else if (!plan.is_attacker(idx)) {
        if (e.penalty().is_blacklisted(cid)) r.honest_blacklisted = true;
        if (e.penalty().is_delinquent(cid)) ++r.honest_delinquent;
        if (e.heavy_denials(cid) > 0) {
          if (idx == probe_index(cfg, k)) {
            r.probe_heavy = true;
          } else {
            r.honest_heavy = true;
          }
        }
      }
    }
  }

  for (std::size_t j = 0; j < world.num_servers(); ++j) {
    const auto stats = world.server(j).stats();
    r.server_uploads_rejected += stats.uploads_rejected_sanity;
    r.quality_checks_run += stats.quality_checks_run;
    r.quality_checks_failed += stats.quality_checks_failed;
  }
  const nist::BatteryResult pool_check = world.server().run_quality_check();
  r.pool_quality_passed = static_cast<std::size_t>(pool_check.passed());
  r.pool_quality_total = static_cast<std::size_t>(pool_check.total());

  r.probe_bytes = std::move(probe_bytes);
  r.adversary = adversary.stats();
  r.workload = driver.metrics();
  return r;
}

/// The attack mixes the seed sweep rotates through.
inline ScenarioConfig mix_for_seed(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = 20250800 + seed;
  switch (seed % 4) {
    case 0: cfg.mix = AttackMix::kFreeRiders; break;
    case 1: cfg.mix = AttackMix::kPoisoners; break;
    case 2: cfg.mix = AttackMix::kCacheInflation; break;
    default: cfg.mix = AttackMix::kSybilBurst; break;
  }
  return cfg;
}

}  // namespace cadet::testbed::adversary
