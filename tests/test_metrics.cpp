#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cadet::obs {
namespace {

TEST(Counter, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Registry, FindOrCreateReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("cadet_test_hits", {{"tier", "edge"}});
  Counter& b = reg.counter("cadet_test_hits", {{"tier", "edge"}});
  EXPECT_EQ(&a, &b);
  // Different labels are a different series.
  Counter& c = reg.counter("cadet_test_hits", {{"tier", "server"}});
  EXPECT_NE(&a, &c);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, InstrumentAddressesStableAcrossGrowth) {
  Registry reg;
  Counter& first = reg.counter("cadet_test_first");
  for (int i = 0; i < 200; ++i) {
    reg.counter("cadet_test_filler_" + std::to_string(i));
  }
  first.inc(7);
  EXPECT_EQ(reg.counter("cadet_test_first").value(), 7u);
  EXPECT_EQ(&reg.counter("cadet_test_first"), &first);
}

// The cross-thread exactness guarantees only hold in instrumented builds;
// with CADET_OBS=OFF the instruments are plain integers and concurrent
// use is out of contract.
#if CADET_OBS_ENABLED
TEST(Registry, TwoThreadsIncrementingYieldExactTotals) {
  Registry reg;
  Counter& counter = reg.counter("cadet_test_concurrent");
  Gauge& gauge = reg.gauge("cadet_test_concurrent_gauge");
  constexpr int kIters = 200000;
  auto worker = [&]() {
    for (int i = 0; i < kIters; ++i) {
      counter.inc();
      gauge.add(1);
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(counter.value(), 2u * kIters);
  EXPECT_EQ(gauge.value(), 2 * kIters);
}
#endif  // CADET_OBS_ENABLED

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0});
  ASSERT_EQ(h.bucket_count(), 3u);  // two finite bounds + the +Inf bucket
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // le is inclusive: still bucket 0
  h.observe(1.5);   // <= 2.0
  h.observe(2.0);   // inclusive again
  h.observe(2.5);   // +Inf
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 7.5, 1e-9);
  EXPECT_EQ(h.upper_bound(0), 1.0);
  EXPECT_EQ(h.upper_bound(1), 2.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(2)));
}

#if CADET_OBS_ENABLED
TEST(Histogram, ConcurrentObservesKeepExactCount) {
  Registry reg;
  Histogram& h = reg.histogram("cadet_test_latency", {}, {0.25, 0.5, 1.0});
  constexpr int kIters = 100000;
  auto worker = [&](double v) {
    for (int i = 0; i < kIters; ++i) h.observe(v);
  };
  std::thread t1(worker, 0.1);
  std::thread t2(worker, 0.7);
  t1.join();
  t2.join();
  EXPECT_EQ(h.count(), 2u * kIters);
  EXPECT_EQ(h.bucket(0), static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(h.bucket(2), static_cast<std::uint64_t>(kIters));
}
#endif  // CADET_OBS_ENABLED

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);
  // All mass in the first bucket: the median lands inside (0, 1.0].
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
}

// Regression: quantiles that land in the +Inf bucket must clamp to the
// highest finite bound instead of extrapolating to infinity/NaN. Pins the
// exact readouts so a refactor of the interpolation can't silently
// reintroduce unbounded estimates.
TEST(Histogram, QuantileInInfBucketClampsToHighestFiniteBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 90; ++i) h.observe(0.5);  // bucket (0, 1]
  for (int i = 0; i < 10; ++i) h.observe(50.0);  // +Inf bucket
  // p99 falls among the overflow observations: clamp, don't extrapolate.
  const double p99 = h.quantile(0.99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_DOUBLE_EQ(p99, 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
  // p50 is untouched by the overflow mass.
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(Histogram, QuantileAllMassInInfBucketStaysFinite) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1000.0);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_DOUBLE_EQ(v, 4.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileEmptyAndDegenerateInputs) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // no observations
  h.observe(0.5);
  // Out-of-range q clamps into [0, 1] instead of misbehaving.
  EXPECT_TRUE(std::isfinite(h.quantile(-1.0)));
  EXPECT_TRUE(std::isfinite(h.quantile(2.0)));
  EXPECT_LE(h.quantile(2.0), 1.0);
}

TEST(Histogram, DefaultLatencyBoundsAscend) {
  const auto bounds = Histogram::latency_seconds_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Labels, TierLabelsSortedForDeterministicExport) {
  const Labels labels = tier_labels("edge", 100);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, "node");
  EXPECT_EQ(labels[0].second, "100");
  EXPECT_EQ(labels[1].first, "tier");
  EXPECT_EQ(labels[1].second, "edge");
}

TEST(Export, PrometheusTextContainsAllSeries) {
  Registry reg;
  reg.counter("cadet_test_uploads", tier_labels("edge", 100)).inc(3);
  reg.gauge("cadet_test_pool_bits", tier_labels("server", 1)).set(512);
  reg.histogram("cadet_test_latency_seconds", {}, {0.5, 1.0}).observe(0.75);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE cadet_test_uploads counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("cadet_test_uploads_total{node=\"100\",tier=\"edge\"} 3"),
      std::string::npos);
  EXPECT_NE(
      text.find("cadet_test_pool_bits{node=\"1\",tier=\"server\"} 512"),
      std::string::npos);
  // Histogram series are cumulative and end with the +Inf bucket.
  EXPECT_NE(text.find("cadet_test_latency_seconds_bucket{le=\"0.5\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("cadet_test_latency_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cadet_test_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cadet_test_latency_seconds_count 1"),
            std::string::npos);
}

TEST(Export, JsonAndCsvSnapshots) {
  Registry reg;
  reg.counter("cadet_test_hits", tier_labels("edge", 100)).inc(9);

  const std::string json = to_json(reg);
  EXPECT_NE(json.find("\"name\":\"cadet_test_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);

  std::ostringstream csv;
  write_csv(reg, csv);
  EXPECT_NE(csv.str().find("name,labels,kind,value"), std::string::npos);
  EXPECT_NE(csv.str().find("cadet_test_hits"), std::string::npos);
}

}  // namespace
}  // namespace cadet::obs
