// Same-seed runs must be byte-identical: the chaos suite, the sweep tool,
// and every experiment in the paper reproduction lean on the simulator
// being a pure function of its seed. This drives two independently
// constructed Worlds through the same workload and compares their JSONL
// protocol traces byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cadet/usage.h"
#include "obs/trace.h"
#include "testbed/topology.h"
#include "testbed/workload.h"
#include "util/time.h"

namespace cadet::testbed {
namespace {

std::string run_trace(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 2;
  config.clients_per_network = 3;
  World world(config);

  obs::MemorySink sink;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_sink(&sink);
  tracer.enable();

  world.register_edges();
  WorkloadDriver driver(world, seed + 1);
  const util::SimTime t_end = util::from_seconds(20.0);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, ClientBehavior::for_profile(world.profile_of(i)), 0,
                 t_end);
  }
  world.simulator().run_until(t_end);

  tracer.flush();
  tracer.enable(false);
  tracer.set_sink(nullptr);

  std::string jsonl;
  for (const obs::TraceEvent& event : sink.events()) {
    jsonl += obs::to_json(event);
    jsonl += '\n';
  }
  return jsonl;
}

TEST(Determinism, SameSeedProducesByteIdenticalTrace) {
  const std::string first = run_trace(20180301);
  const std::string second = run_trace(20180301);
#if CADET_OBS_ENABLED
  // The run must actually have traced protocol activity, or this test
  // would pass vacuously.
  EXPECT_FALSE(first.empty());
#endif
  EXPECT_EQ(first, second);
}

#if CADET_OBS_ENABLED
TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_trace(20180301), run_trace(20180302));
}
#endif

// The usage tracker traverses every score on every step (decay) and sums
// them in the heavy-threshold fallback. With a hash map, the traversal —
// and therefore the floating-point accumulation order — depended on
// insertion history; scores_ is an ordered map precisely so two trackers
// that saw the same events in different discovery order are bit-identical.
TEST(Determinism, UsageTrackerIndependentOfInsertionOrder) {
  UsageTracker ascending;
  UsageTracker shuffled;
  for (std::uint32_t id = 0; id < 8; ++id) ascending.track(id);
  for (const std::uint32_t id : {5u, 2u, 7u, 0u, 3u, 6u, 1u, 4u}) {
    shuffled.track(id);
  }
  // Identical event sequence against both; values chosen so float
  // accumulation order matters if traversal order ever regresses.
  for (int step = 0; step < 64; ++step) {
    const std::uint32_t device = static_cast<std::uint32_t>((step * 5) % 8);
    const double usage = 0.1 * static_cast<double>(step) + 1.0 / 3.0;
    ascending.record(device, usage);
    shuffled.record(device, usage);
  }
  for (std::uint32_t id = 0; id < 8; ++id) {
    EXPECT_EQ(ascending.score(id), shuffled.score(id)) << "device " << id;
    EXPECT_EQ(ascending.is_heavy(id), shuffled.is_heavy(id));
  }
  EXPECT_EQ(ascending.heavy_threshold(), shuffled.heavy_threshold());
}

}  // namespace
}  // namespace cadet::testbed
