#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/time.h"

namespace cadet::obs {
namespace {

TraceEvent make_event(double ts_s, const char* name, std::uint64_t node) {
  TraceEvent event;
  event.ts = util::from_seconds(ts_s);
  event.name = name;
  event.tier = "edge";
  event.node = node;
  return event;
}

TEST(Tracer, DisabledByDefaultAndRecordsWhenEnabled) {
  Tracer tracer(8);
  tracer.record(make_event(1.0, "request", 100));
  EXPECT_EQ(tracer.buffered_count(), 0u);
  tracer.enable();
  tracer.record(make_event(1.0, "request", 100));
  EXPECT_EQ(tracer.buffered_count(), 1u);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, RingWraparoundKeepsNewestWithoutSink) {
  Tracer tracer(4);
  tracer.enable();
  for (int i = 0; i < 7; ++i) {
    tracer.record(make_event(static_cast<double>(i), "request",
                             static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(tracer.buffered_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(tracer.recorded(), 7u);
  const auto buffered = tracer.buffered();
  ASSERT_EQ(buffered.size(), 4u);
  // Oldest-first: events 3,4,5,6 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buffered[i].node, i + 3);
  }
}

TEST(Tracer, FullRingFlushesThroughSinkLosslessly) {
  Tracer tracer(2);
  MemorySink sink;
  tracer.set_sink(&sink);
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    tracer.record(make_event(static_cast<double>(i), "upload",
                             static_cast<std::uint64_t>(i)));
  }
  tracer.flush();
  EXPECT_EQ(tracer.dropped(), 0u);
  ASSERT_EQ(sink.events().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.events()[i].node, i);  // order preserved
  }
}

TEST(TraceJson, RoundTripsThroughParser) {
  TraceEvent event;
  event.ts = util::from_seconds(1.25);
  event.name = "cache_hit";
  event.tier = "edge";
  event.node = 100;
  event.attrs[0] = {"bytes", 64.0};
  event.attrs[1] = {"client", 1003.0};
  event.num_attrs = 2;

  const std::string line = to_json(event);
  const auto parsed = parse_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->ts_s, 1.25);
  EXPECT_EQ(parsed->name, "cache_hit");
  EXPECT_EQ(parsed->tier, "edge");
  EXPECT_EQ(parsed->node, 100u);
  ASSERT_EQ(parsed->attrs.size(), 2u);
  EXPECT_EQ(parsed->attrs[0].first, "bytes");
  EXPECT_DOUBLE_EQ(parsed->attrs[0].second, 64.0);
  EXPECT_EQ(parsed->attrs[1].first, "client");
  EXPECT_DOUBLE_EQ(parsed->attrs[1].second, 1003.0);
}

TEST(TraceJson, ParserRejectsMalformedLines) {
  EXPECT_FALSE(parse_json_line("").has_value());
  EXPECT_FALSE(parse_json_line("not json").has_value());
  EXPECT_FALSE(parse_json_line("{\"ts\":1.0}").has_value());  // no "ev"
}

TEST(FileSink, WritesOneValidJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "/cadet_trace_test.jsonl";
  {
    FileSink sink(path);
    ASSERT_TRUE(sink.ok());
    Tracer tracer(4);
    tracer.set_sink(&sink);
    tracer.enable();
    for (int i = 0; i < 10; ++i) {
      TraceEvent event = make_event(0.5 * i, i % 2 ? "reply" : "request",
                                    1000 + static_cast<std::uint64_t>(i));
      event.attrs[0] = {"bytes", 16.0 * i};
      event.num_attrs = 1;
      tracer.record(event);
    }
    tracer.flush();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const auto parsed = parse_json_line(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable line: " << line;
    EXPECT_EQ(parsed->tier, "edge");
    ++lines;
  }
  EXPECT_EQ(lines, 10);
  std::remove(path.c_str());
}

// obs::emit compiles to nothing with CADET_OBS=OFF.
#if CADET_OBS_ENABLED
TEST(Emit, GlobalTracerCapturesEngineEvents) {
  Tracer& tracer = Tracer::global();
  MemorySink sink;
  tracer.clear();
  tracer.set_sink(&sink);
  tracer.enable();

  emit(util::from_seconds(2.0), "penalty_drop", "edge", 100,
       {{"client", 1003.0}});
  tracer.flush();

  tracer.enable(false);
  tracer.set_sink(nullptr);
  tracer.clear();

  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(std::string(sink.events()[0].name), "penalty_drop");
  EXPECT_EQ(sink.events()[0].node, 100u);
}
#endif  // CADET_OBS_ENABLED

}  // namespace
}  // namespace cadet::obs
