#include "util/bytes.h"

#include <gtest/gtest.h>

namespace cadet::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff, 0xde, 0xad};
  EXPECT_EQ(to_hex(data), "00017f80ffdead");
  EXPECT_EQ(from_hex("00017f80ffdead"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("DEADBEEF"), from_hex("deadbeef"));
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, U16BigEndian) {
  std::uint8_t buf[2];
  put_u16_be(buf, 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(get_u16_be(buf), 0xbeef);
}

TEST(Bytes, U32BigEndian) {
  std::uint8_t buf[4];
  put_u32_be(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(get_u32_be(buf), 0x01020304u);
}

TEST(Bytes, U64BigEndian) {
  std::uint8_t buf[8];
  put_u64_be(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(get_u64_be(buf), 0x0102030405060708ull);
}

TEST(Bytes, U64RoundTripExtremes) {
  std::uint8_t buf[8];
  for (const std::uint64_t v : {0ull, 1ull, ~0ull, 0x8000000000000000ull}) {
    put_u64_be(buf, v);
    EXPECT_EQ(get_u64_be(buf), v);
  }
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, Append) {
  Bytes dst = {1, 2};
  append(dst, Bytes{3, 4});
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
  append(dst, Bytes{});
  EXPECT_EQ(dst.size(), 4u);
}

TEST(Bytes, XorInto) {
  Bytes dst = {0xff, 0x0f, 0x00};
  xor_into(dst, Bytes{0x0f, 0x0f});
  EXPECT_EQ(dst, (Bytes{0xf0, 0x00, 0x00}));
}

}  // namespace
}  // namespace cadet::util
