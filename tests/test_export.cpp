// Exporter round trips: the Prometheus text exposition must survive
// parse_prometheus (names, label escaping, +Inf buckets), and the CSV/JSON
// snapshots of a fixed registry are pinned against goldens so format drift
// is a deliberate act, not an accident.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cadet::obs {
namespace {

// A small registry exercising every instrument kind; entries() exports
// sorted by (name, labels), which the goldens below depend on.
void fill(Registry& reg) {
  reg.counter("cadet_test_requests", tier_labels("edge", 100)).inc(7);
  reg.counter("cadet_test_requests", tier_labels("edge", 101)).inc(2);
  reg.gauge("cadet_test_depth").set(-3);
  reg.histogram("cadet_test_latency_seconds", {}, {0.5, 1.0}).observe(0.75);
}

TEST(PromRoundTrip, SamplesAndTypesSurvive) {
  Registry reg;
  fill(reg);
  const PromParse parsed = parse_prometheus(to_prometheus(reg));
  EXPECT_TRUE(parsed.errors.empty());

  ASSERT_EQ(parsed.types.size(), 3u);
  EXPECT_EQ(parsed.types[0],
            (std::pair<std::string, std::string>{"cadet_test_depth",
                                                 "gauge"}));
  EXPECT_EQ(parsed.types[1].second, "histogram");
  EXPECT_EQ(parsed.types[2].second, "counter");

  // 1 gauge + (3 buckets + sum + count) + 2 counters = 8 samples.
  ASSERT_EQ(parsed.samples.size(), 8u);
  EXPECT_EQ(parsed.samples[0].name, "cadet_test_depth");
  EXPECT_EQ(parsed.samples[0].value, -3.0);
  EXPECT_EQ(parsed.samples[6].name, "cadet_test_requests_total");
  EXPECT_EQ(parsed.samples[6].labels, tier_labels("edge", 100));
  EXPECT_EQ(parsed.samples[6].value, 7.0);
  EXPECT_EQ(parsed.samples[7].value, 2.0);

  // The +Inf bucket parses back to an actual infinity.
  const PromSample& inf_bucket = parsed.samples[3];
  EXPECT_EQ(inf_bucket.name, "cadet_test_latency_seconds_bucket");
  ASSERT_EQ(inf_bucket.labels.size(), 1u);
  EXPECT_EQ(inf_bucket.labels[0].first, "le");
  EXPECT_EQ(inf_bucket.labels[0].second, "+Inf");
  EXPECT_EQ(inf_bucket.value, 1.0);
}

TEST(PromRoundTrip, LabelEscapingIsInvertible) {
  Registry reg;
  reg.counter("cadet_test_nasty",
              {{"path", "a\\b"}, {"quote", "say \"hi\""}, {"nl", "x\ny"}})
      .inc(1);
  const std::string text = to_prometheus(reg);
  // The exposition itself stays one line per sample.
  EXPECT_EQ(text.find("\ny\""), std::string::npos);
  EXPECT_NE(text.find("a\\\\b"), std::string::npos);
  EXPECT_NE(text.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(text.find("x\\ny"), std::string::npos);

  const PromParse parsed = parse_prometheus(text);
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.samples.size(), 1u);
  // Labels come back exactly as they went in, in the same order.
  EXPECT_EQ(parsed.samples[0].labels,
            (Labels{{"path", "a\\b"}, {"quote", "say \"hi\""},
                    {"nl", "x\ny"}}));
}

TEST(PromParse, MalformedLinesAreCollectedNotDropped) {
  const PromParse parsed = parse_prometheus(
      "cadet_good 1\n"
      "no_value_here\n"
      "cadet_bad{unterminated=\"oops 3\n"
      "cadet_notnum 12abc\n"
      "# TYPE incomplete\n"
      "\n"
      "cadet_also_good{a=\"b\"} 2.5\n");
  ASSERT_EQ(parsed.samples.size(), 2u);
  EXPECT_EQ(parsed.samples[0].name, "cadet_good");
  EXPECT_EQ(parsed.samples[1].value, 2.5);
  EXPECT_EQ(parsed.errors.size(), 4u);
}

TEST(ExportGolden, CsvSnapshotIsPinned) {
  Registry reg;
  fill(reg);
  std::ostringstream csv;
  write_csv(reg, csv);
  EXPECT_EQ(csv.str(),
            "name,labels,kind,value\n"
            "cadet_test_depth,,gauge,-3\n"
            "cadet_test_latency_seconds,,histogram,\"1 obs, sum 0.75\"\n"
            "cadet_test_requests,node=100;tier=edge,counter,7\n"
            "cadet_test_requests,node=101;tier=edge,counter,2\n");
}

TEST(ExportGolden, JsonSnapshotIsPinned) {
  Registry reg;
  reg.counter("cadet_test_hits", {{"tier", "edge"}}).inc(9);
  reg.histogram("cadet_test_lat", {}, {0.5}).observe(0.25);
  EXPECT_EQ(
      to_json(reg),
      "{\"metrics\":["
      "{\"name\":\"cadet_test_hits\",\"kind\":\"counter\","
      "\"labels\":{\"tier\":\"edge\"},\"value\":9},"
      "{\"name\":\"cadet_test_lat\",\"kind\":\"histogram\",\"labels\":{},"
      "\"count\":1,\"sum\":0.25,\"buckets\":["
      "{\"le\":0.5,\"count\":1},{\"le\":null,\"count\":0}]}"
      "]}");
}

}  // namespace
}  // namespace cadet::obs
