# Helper for the plot_figures_pipeline test: generate CSVs, render SVGs,
# verify the outputs exist and look like SVG.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(COMMAND ${BENCH_DIR}/bench_fig8b_heavy_use --csv ${WORK_DIR}
                RESULT_VARIABLE rc1 OUTPUT_QUIET ERROR_QUIET)
execute_process(COMMAND ${BENCH_DIR}/bench_fig10c_penalty --csv ${WORK_DIR}
                RESULT_VARIABLE rc2 OUTPUT_QUIET ERROR_QUIET)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "figure bench failed: ${rc1} ${rc2}")
endif()
execute_process(COMMAND python3 ${SRC_DIR}/scripts/plot_figures.py ${WORK_DIR}
                RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "plot_figures.py failed: ${rc3}")
endif()
foreach(name fig8b fig10c)
  if(NOT EXISTS ${WORK_DIR}/${name}.svg)
    message(FATAL_ERROR "missing ${name}.svg")
  endif()
  file(READ ${WORK_DIR}/${name}.svg head LIMIT 64)
  string(FIND "${head}" "<svg" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${name}.svg does not look like SVG")
  endif()
endforeach()
