# Helper for the report_pipeline test: a traced cadet_sim run feeds every
# new consumer in this PR — cadet_trace --spans must validate the span
# trees, cadet_report --check must join the trace against the metrics
# snapshot without disagreement, and the folded profile and HTML report
# must materialize with the expected shape.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${TOOL_DIR}/cadet_sim --networks 2 --clients 4 --duration 120
          --seed 7 --metrics-out ${WORK_DIR}/m.txt
          --trace-out ${WORK_DIR}/t.jsonl
          --profile-out ${WORK_DIR}/p.folded
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cadet_sim failed: ${rc}")
endif()

# Span trees must be structurally valid (exit 0 + the well-formed line).
execute_process(
  COMMAND ${TOOL_DIR}/cadet_trace ${WORK_DIR}/t.jsonl --spans
  RESULT_VARIABLE rc OUTPUT_VARIABLE spans ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cadet_trace --spans reported problems:\n${spans}")
endif()
string(FIND "${spans}" "all span trees well-formed" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "span validation line missing:\n${spans}")
endif()

# --spans exits non-zero on a structurally broken trace: fabricate one with
# an unclosed root span and make sure the tool objects.
file(WRITE ${WORK_DIR}/broken.jsonl
  "{\"ts\":1.000000,\"ev\":\"request\",\"tier\":\"client\",\"node\":1000,"
  "\"trace\":1,\"span\":1,\"ph\":\"B\"}\n")
execute_process(
  COMMAND ${TOOL_DIR}/cadet_trace ${WORK_DIR}/broken.jsonl --spans
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "cadet_trace --spans accepted an unclosed span")
endif()

# cadet_report must reproduce the metrics-side counters from the trace
# alone; --check turns any disagreement into a non-zero exit.
execute_process(
  COMMAND ${TOOL_DIR}/cadet_report ${WORK_DIR}/t.jsonl
          --metrics ${WORK_DIR}/m.txt --check
          --html ${WORK_DIR}/report.html --out ${WORK_DIR}/report.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE report ERROR_VARIABLE report_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "cadet_report --check failed (${rc}):\n${report}${report_err}")
endif()

file(READ ${WORK_DIR}/report.txt text)
foreach(needle
    "request funnel"
    "fulfillment latency"
    "hit ratio"
    "entropy provenance"
    "trace vs metrics"
    "trace and metrics agree")
  string(FIND "${text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "text report missing \"${needle}\":\n${text}")
  endif()
endforeach()

file(READ ${WORK_DIR}/report.html html)
string(FIND "${html}" "</html>" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "HTML report is truncated")
endif()

# The folded profile must carry nested testbed stacks with sim time.
file(READ ${WORK_DIR}/p.folded folded)
string(FIND "${folded}" "sim.run;" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "folded profile has no sim.run stacks:\n${folded}")
endif()

# Interrupted run: --self-sigint raises SIGINT at a deterministic sim time
# mid-run. The tool must still flush every artifact (metrics snapshot,
# trace, flight-recorder dump) and exit with the conventional 130.
execute_process(
  COMMAND ${TOOL_DIR}/cadet_sim --networks 2 --clients 4 --duration 120
          --seed 7 --self-sigint 30
          --metrics-out ${WORK_DIR}/int_m.txt
          --trace-out ${WORK_DIR}/int_t.jsonl
          --flight-out ${WORK_DIR}/int_f.jsonl
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 130)
  message(FATAL_ERROR
    "interrupted cadet_sim should exit 130, got: ${rc}")
endif()
foreach(artifact int_m.txt int_t.jsonl int_f.jsonl)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "interrupted run did not flush ${artifact}")
  endif()
endforeach()
# The partial metrics snapshot must still be a parseable exposition with
# tier counters, and the flight dump must be JSONL trace records.
file(READ ${WORK_DIR}/int_m.txt int_metrics)
string(FIND "${int_metrics}" "# TYPE" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "interrupted metrics snapshot is not an exposition:\n${int_metrics}")
endif()
file(READ ${WORK_DIR}/int_f.jsonl int_flight)
string(FIND "${int_flight}" "\"ev\":" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "interrupted flight dump carries no trace records:\n${int_flight}")
endif()
# The truncated trace must still parse end-to-end (no torn final line).
execute_process(
  COMMAND ${TOOL_DIR}/cadet_trace ${WORK_DIR}/int_t.jsonl
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "interrupted trace does not parse: ${rc}")
endif()
