// End-to-end (untrusted-edge) delivery mode: the paper's §VIII scenario
// where the edge (e.g. coffee-shop Wi-Fi) cannot be trusted, so entropy is
// sealed under the client-server key and merely relayed by the edge.
#include <gtest/gtest.h>

#include "cadet/client_node.h"
#include "cadet/edge_node.h"
#include "cadet/seal.h"
#include "cadet/server_node.h"
#include "engine_harness.h"
#include "util/rng.h"

namespace cadet {
namespace {

struct E2eWorld {
  ServerNode server;
  EdgeNode edge;
  ClientNode client;
  test::EnginePump pump;

  E2eWorld()
      : server(make_server()), edge(make_edge()), client(make_client()) {
    pump.attach(server);
    pump.attach(edge);
    pump.attach(client);
    util::Xoshiro256 rng(7);
    server.seed_pool(rng.bytes(4096));
    pump.pump(edge.begin_edge_reg(0), edge.id());
    pump.pump(client.begin_init(0), client.id());
  }

  static ServerNode::Config make_server() {
    ServerNode::Config c;
    c.id = 1;
    c.seed = 1001;
    return c;
  }
  static EdgeNode::Config make_edge() {
    EdgeNode::Config c;
    c.id = 100;
    c.server = 1;
    c.seed = 1002;
    c.num_clients = 2;
    return c;
  }
  static ClientNode::Config make_client() {
    ClientNode::Config c;
    c.id = 1000;
    c.edge = 100;
    c.server = 1;
    c.seed = 1003;
    return c;
  }
};

TEST(EndToEnd, PacketCodecRoundTrip) {
  const Packet req = Packet::data_request_e2e(512, false, 1000);
  const auto decoded = decode(encode(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.end_to_end);
  EXPECT_TRUE(decoded->header.encrypted);
  EXPECT_EQ(util::get_u32_be(decoded->payload.data()), 1000u);

  const Packet ack = Packet::data_ack_e2e({1, 2, 3}, true);
  const auto decoded_ack = decode(encode(ack));
  ASSERT_TRUE(decoded_ack.has_value());
  EXPECT_TRUE(decoded_ack->header.end_to_end);
  EXPECT_TRUE(decoded_ack->header.ack);
}

TEST(EndToEnd, CodecRejectsMalformed) {
  // e2e flag without ENC is invalid.
  auto wire = encode(Packet::data_request_e2e(512, false, 1000));
  wire[1] &= static_cast<std::uint8_t>(~0x02);  // clear ENC
  EXPECT_FALSE(decode(wire).has_value());
  // e2e request without the client id payload is invalid.
  auto req = Packet::data_request_e2e(512, false, 1000);
  req.payload.clear();
  EXPECT_FALSE(decode(encode(req)).has_value());
  // variable-arguments byte above 1 on a DAT packet is invalid.
  auto wire2 = encode(Packet::data_request(512, false));
  wire2[4] = 2;
  EXPECT_FALSE(decode(wire2).has_value());
}

TEST(EndToEnd, FullRoundTripDeliversSealedEntropy) {
  E2eWorld world;
  util::Bytes delivered;
  auto out = world.client.request_entropy(
      512, 0,
      [&](util::BytesView data, util::SimTime) {
        delivered.assign(data.begin(), data.end());
      },
      /*end_to_end=*/true);
  world.pump.pump(std::move(out), world.client.id());
  EXPECT_EQ(delivered.size(), 64u);
  EXPECT_EQ(world.edge.stats().e2e_forwarded, 1u);
  // The edge cache was never touched.
  EXPECT_EQ(world.edge.stats().cache_hits, 0u);
  EXPECT_EQ(world.edge.cache().size_bytes(), 0u);
}

TEST(EndToEnd, RequiresInitialization) {
  ClientNode client(E2eWorld::make_client());
  const auto out = client.request_entropy(512, 0, {}, /*end_to_end=*/true);
  EXPECT_TRUE(out.empty());
}

TEST(EndToEnd, EdgeCannotReadDelivery) {
  E2eWorld world;
  // Capture what the server sends for an e2e request.
  const auto replies = world.server.on_packet(
      world.edge.id(),
      encode(Packet::data_request_e2e(512, true, world.client.id())), 0);
  ASSERT_EQ(replies.size(), 1u);
  const auto packet = decode(replies[0].data);
  ASSERT_TRUE(packet.has_value());
  ASSERT_TRUE(packet->header.end_to_end);
  // Strip the routing id; what remains is sealed. The edge's only secret is
  // esk — opening with it must fail.
  const util::Bytes sealed(packet->payload.begin() + 4,
                           packet->payload.end());
  // Probe with a few hundred guessed keys, standing in for anything the
  // edge could derive.
  for (std::uint64_t guess = 0; guess < 200; ++guess) {
    crypto::Csprng rng(guess);
    const auto key = rng.array<32>();
    EXPECT_FALSE(open(key, sealed).has_value());
  }
}

TEST(EndToEnd, UnknownClientGetsNothing) {
  E2eWorld world;
  const auto replies = world.server.on_packet(
      world.edge.id(), encode(Packet::data_request_e2e(512, true, 4242)), 0);
  EXPECT_TRUE(replies.empty());
}

TEST(EndToEnd, MixedModeRequestsMatchCorrectly) {
  E2eWorld world;
  // Warm the cache so standard requests hit locally.
  util::Xoshiro256 rng(9);
  (void)world.edge.on_packet(
      1, encode(Packet::data_ack(rng.bytes(1024), true, false)), 0);

  int standard_done = 0, e2e_done = 0;
  auto out1 = world.client.request_entropy(
      256, 0,
      [&](util::BytesView, util::SimTime) { ++standard_done; }, false);
  auto out2 = world.client.request_entropy(
      256, 0, [&](util::BytesView, util::SimTime) { ++e2e_done; }, true);
  world.pump.pump(std::move(out1), world.client.id());
  world.pump.pump(std::move(out2), world.client.id());
  EXPECT_EQ(standard_done, 1);
  EXPECT_EQ(e2e_done, 1);
}

TEST(EndToEnd, UsageScoreStillTracksE2eRequests) {
  E2eWorld world;
  auto out = world.client.request_entropy(2048, 0, {}, true);
  world.pump.pump(std::move(out), world.client.id());
  // 256 bytes recorded at the request, decayed once when the edge relayed
  // the server's reply (every processed packet is a decay step).
  EXPECT_DOUBLE_EQ(world.edge.usage().score(world.client.id()),
                   256.0 * kUsageDecay);
}

}  // namespace
}  // namespace cadet
