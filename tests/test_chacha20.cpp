#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace cadet::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

// RFC 8439 §2.4.2: full encryption test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes pt(plaintext.begin(), plaintext.end());
  const Bytes ct = ChaCha20::crypt(key, nonce, pt, 1);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  // §2.3.2: first keystream block with counter 1.
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 cipher(key, nonce, 1);
  Bytes stream(64);
  cipher.keystream(stream);
  EXPECT_EQ(to_hex(stream),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x24);
  const Bytes plaintext = from_hex("00112233445566778899aabbccddeeff0102");
  const Bytes ct = ChaCha20::crypt(key, nonce, plaintext);
  EXPECT_NE(ct, plaintext);
  EXPECT_EQ(ChaCha20::crypt(key, nonce, ct), plaintext);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const Bytes expected = ChaCha20::crypt(key, nonce, data);

  Bytes incremental = data;
  ChaCha20 cipher(key, nonce);
  // Odd-sized chunks exercise the intra-block position tracking.
  std::size_t offset = 0;
  for (const std::size_t chunk : {1u, 63u, 64u, 65u, 7u}) {
    cipher.crypt(std::span<std::uint8_t>(incremental.data() + offset, chunk));
    offset += chunk;
  }
  ASSERT_EQ(offset, incremental.size());
  EXPECT_EQ(incremental, expected);
}

TEST(ChaCha20, CounterOffsetsKeystream) {
  const Bytes key(32, 0x01);
  const Bytes nonce(12, 0x02);
  ChaCha20 a(key, nonce, 0);
  Bytes two_blocks(128);
  a.keystream(two_blocks);

  ChaCha20 b(key, nonce, 1);
  Bytes second_block(64);
  b.keystream(second_block);
  EXPECT_TRUE(std::equal(second_block.begin(), second_block.end(),
                         two_blocks.begin() + 64));
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  const Bytes key(32, 0), short_key(16, 0);
  const Bytes nonce(12, 0), short_nonce(8, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(ChaCha20, DifferentNoncesDiffer) {
  const Bytes key(32, 0x07);
  Bytes n1(12, 0), n2(12, 0);
  n2[0] = 1;
  const Bytes pt(64, 0);
  EXPECT_NE(ChaCha20::crypt(key, n1, pt), ChaCha20::crypt(key, n2, pt));
}

// Independent per-byte reference, straight from the RFC 8439 pseudocode.
// The production implementation generates keystream in bulk (multiple
// blocks per pass on the vectorized path); this pins it byte-for-byte to
// the obviously-correct formulation.
std::array<std::uint8_t, 64> reference_block(const Bytes& key,
                                             const Bytes& nonce,
                                             std::uint32_t counter) {
  const auto rotl = [](std::uint32_t x, int n) {
    return (x << n) | (x >> (32 - n));
  };
  const auto le32 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  };
  std::uint32_t s[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i) s[4 + i] = le32(key.data() + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) w[i] = s[i];
  const auto qr = [&](int a, int b, int c, int d) {
    w[a] += w[b]; w[d] ^= w[a]; w[d] = rotl(w[d], 16);
    w[c] += w[d]; w[b] ^= w[c]; w[b] = rotl(w[b], 12);
    w[a] += w[b]; w[d] ^= w[a]; w[d] = rotl(w[d], 8);
    w[c] += w[d]; w[b] ^= w[c]; w[b] = rotl(w[b], 7);
  };
  for (int round = 0; round < 10; ++round) {
    qr(0, 4, 8, 12); qr(1, 5, 9, 13); qr(2, 6, 10, 14); qr(3, 7, 11, 15);
    qr(0, 5, 10, 15); qr(1, 6, 11, 12); qr(2, 7, 8, 13); qr(3, 4, 9, 14);
  }
  std::array<std::uint8_t, 64> out{};
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = w[i] + s[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(word);
    out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  return out;
}

Bytes reference_keystream(const Bytes& key, const Bytes& nonce,
                          std::uint32_t counter, std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const auto block = reference_block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, n - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  return out;
}

// One continuous stream crossing every interesting boundary: sub-block,
// exact block, block+1, and the >=256-byte lengths that take the
// multi-block bulk path. Every byte must match the per-byte reference.
TEST(ChaCha20, MatchesPerByteReferenceAcrossBlockBoundaries) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000090000004a00000000");
  const std::size_t chunks[] = {1,   63,  64,  65,   255, 256,
                                257, 511, 513, 1027, 4099};
  std::size_t total = 0;
  for (const std::size_t c : chunks) total += c;
  const Bytes expected = reference_keystream(key, nonce, 7, total);

  ChaCha20 cipher(key, nonce, 7);
  Bytes stream(total);
  std::size_t offset = 0;
  for (const std::size_t c : chunks) {
    cipher.keystream(std::span<std::uint8_t>(stream.data() + offset, c));
    offset += c;
  }
  ASSERT_EQ(offset, total);
  EXPECT_EQ(stream, expected);
}

// Same check through crypt(): XORing in place over chunk sizes that enter
// and leave the bulk path at misaligned stream positions.
TEST(ChaCha20, BulkCryptMatchesReferenceAtMisalignedOffsets) {
  const Bytes key(32, 0xa5);
  const Bytes nonce(12, 0x5a);
  Bytes data(1027);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const Bytes ks = reference_keystream(key, nonce, 0, data.size());
  Bytes expected = data;
  for (std::size_t i = 0; i < data.size(); ++i) expected[i] ^= ks[i];

  Bytes chunked = data;
  ChaCha20 cipher(key, nonce);
  std::size_t offset = 0;
  for (const std::size_t c : {300u, 5u, 256u, 466u}) {
    cipher.crypt(std::span<std::uint8_t>(chunked.data() + offset, c));
    offset += c;
  }
  ASSERT_EQ(offset, chunked.size());
  EXPECT_EQ(chunked, expected);

  EXPECT_EQ(ChaCha20::crypt(key, nonce, data), expected);
}

// RFC 8439 2.4.2 vector again, but split across chunk boundaries that
// straddle blocks — streaming counter handling must reproduce the
// one-shot ciphertext exactly.
TEST(ChaCha20, Rfc8439EncryptionChunked) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  Bytes buf(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key, nonce, 1);
  std::size_t offset = 0;
  for (const std::size_t c : {63u, 1u, 50u}) {
    cipher.crypt(std::span<std::uint8_t>(buf.data() + offset, c));
    offset += c;
  }
  ASSERT_EQ(offset, buf.size());
  EXPECT_EQ(to_hex(buf),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

}  // namespace
}  // namespace cadet::crypto
