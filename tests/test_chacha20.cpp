#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace cadet::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

// RFC 8439 §2.4.2: full encryption test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes pt(plaintext.begin(), plaintext.end());
  const Bytes ct = ChaCha20::crypt(key, nonce, pt, 1);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  // §2.3.2: first keystream block with counter 1.
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 cipher(key, nonce, 1);
  Bytes stream(64);
  cipher.keystream(stream);
  EXPECT_EQ(to_hex(stream),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x24);
  const Bytes plaintext = from_hex("00112233445566778899aabbccddeeff0102");
  const Bytes ct = ChaCha20::crypt(key, nonce, plaintext);
  EXPECT_NE(ct, plaintext);
  EXPECT_EQ(ChaCha20::crypt(key, nonce, ct), plaintext);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const Bytes expected = ChaCha20::crypt(key, nonce, data);

  Bytes incremental = data;
  ChaCha20 cipher(key, nonce);
  // Odd-sized chunks exercise the intra-block position tracking.
  std::size_t offset = 0;
  for (const std::size_t chunk : {1u, 63u, 64u, 65u, 7u}) {
    cipher.crypt(std::span<std::uint8_t>(incremental.data() + offset, chunk));
    offset += chunk;
  }
  ASSERT_EQ(offset, incremental.size());
  EXPECT_EQ(incremental, expected);
}

TEST(ChaCha20, CounterOffsetsKeystream) {
  const Bytes key(32, 0x01);
  const Bytes nonce(12, 0x02);
  ChaCha20 a(key, nonce, 0);
  Bytes two_blocks(128);
  a.keystream(two_blocks);

  ChaCha20 b(key, nonce, 1);
  Bytes second_block(64);
  b.keystream(second_block);
  EXPECT_TRUE(std::equal(second_block.begin(), second_block.end(),
                         two_blocks.begin() + 64));
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  const Bytes key(32, 0), short_key(16, 0);
  const Bytes nonce(12, 0), short_nonce(8, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(ChaCha20, DifferentNoncesDiffer) {
  const Bytes key(32, 0x07);
  Bytes n1(12, 0), n2(12, 0);
  n2[0] = 1;
  const Bytes pt(64, 0);
  EXPECT_NE(ChaCha20::crypt(key, n1, pt), ChaCha20::crypt(key, n2, pt));
}

}  // namespace
}  // namespace cadet::crypto
