#include "testbed/workload.h"

#include <gtest/gtest.h>

#include "testbed/topology.h"

namespace cadet::testbed {
namespace {

World make_world(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.num_networks = 1;
  config.clients_per_network = 4;
  config.profiles = {NetworkProfile::kBalanced};
  return World(config);
}

TEST(ClientBehavior, PresetsMatchTheirRoles) {
  const auto consumer = ClientBehavior::consumer();
  const auto producer = ClientBehavior::producer();
  const auto balanced = ClientBehavior::balanced();
  const auto heavy = ClientBehavior::heavy();

  EXPECT_GT(consumer.request_rate_hz, consumer.upload_rate_hz);
  EXPECT_GT(producer.upload_rate_hz, producer.request_rate_hz);
  EXPECT_GT(balanced.request_rate_hz, 0.0);
  EXPECT_GT(balanced.upload_rate_hz, 0.0);
  EXPECT_GT(heavy.request_rate_hz, 3.0 * consumer.request_rate_hz);
  EXPECT_DOUBLE_EQ(heavy.upload_rate_hz, 0.0);
}

TEST(ClientBehavior, ForProfileDispatch) {
  EXPECT_GT(ClientBehavior::for_profile(NetworkProfile::kProducer)
                .upload_rate_hz,
            ClientBehavior::for_profile(NetworkProfile::kConsumer)
                .upload_rate_hz);
}

TEST(WorkloadDriver, RespectsTimeWindow) {
  World world = make_world(51);
  world.register_edges();
  WorkloadDriver driver(world, 52);
  ClientBehavior behavior;
  behavior.request_rate_hz = 2.0;
  driver.drive(0, behavior, util::from_seconds(10), util::from_seconds(20));
  world.simulator().run();
  for (const auto& ev : driver.metrics().events) {
    EXPECT_GE(ev.sent_at_s, 10.0);
    EXPECT_LT(ev.sent_at_s, 20.0 + 0.001);
  }
  EXPECT_GT(driver.metrics().requests_sent, 5u);
}

TEST(WorkloadDriver, BadFractionApproximatelyHonored) {
  World world = make_world(53);
  world.register_edges();
  WorkloadDriver driver(world, 54);
  ClientBehavior behavior;
  behavior.upload_rate_hz = 10.0;
  behavior.bad_fraction = 0.3;
  driver.drive(0, behavior, 0, util::from_seconds(100));
  world.simulator().run();
  const auto& metrics = driver.metrics();
  ASSERT_GT(metrics.uploads_sent, 500u);
  const double frac = static_cast<double>(metrics.bad_uploads_sent) /
                      static_cast<double>(metrics.uploads_sent);
  EXPECT_NEAR(frac, 0.3, 0.06);
}

TEST(WorkloadDriver, ZeroRatesGenerateNothing) {
  World world = make_world(55);
  WorkloadDriver driver(world, 56);
  driver.drive(0, ClientBehavior{}, 0, util::from_seconds(60));
  world.simulator().run();
  EXPECT_EQ(driver.metrics().requests_sent, 0u);
  EXPECT_EQ(driver.metrics().uploads_sent, 0u);
}

TEST(WorkloadDriver, MultipleWindowsPerClientCompose) {
  World world = make_world(57);
  world.register_edges();
  WorkloadDriver driver(world, 58);
  ClientBehavior slow;
  slow.request_rate_hz = 0.5;
  ClientBehavior fast;
  fast.request_rate_hz = 5.0;
  driver.drive(0, slow, 0, util::from_seconds(50));
  driver.drive(0, fast, util::from_seconds(50), util::from_seconds(100));
  world.simulator().run();

  std::size_t early = 0, late = 0;
  for (const auto& ev : driver.metrics().events) {
    (ev.sent_at_s < 50.0 ? early : late) += 1;
  }
  EXPECT_GT(late, 3 * early);
}

}  // namespace
}  // namespace cadet::testbed
