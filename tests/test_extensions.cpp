// Extension features beyond the paper's prototype: adaptive cache refill
// (§VIII flow control), edge timing-entropy injection and multi-client
// aggregation (§VI-D3 mitigations), multi-server pool exchange (Fig. 2
// steps 10-11), and failure injection against the refill timeout.
#include <gtest/gtest.h>

#include "entropy/sources.h"
#include "testbed/topology.h"
#include "testbed/workload.h"

namespace cadet::testbed {
namespace {

// ------------------------------------------------------- adaptive refill

TEST(AdaptiveRefill, LearnsDemandRate) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 1;
  config.num_clients = 4;
  config.refill_policy = RefillPolicy::kAdaptive;
  EdgeNode edge(config);

  // 64-byte requests every second for a minute: ~64 B/s demand.
  for (int t = 0; t < 60; ++t) {
    (void)edge.on_packet(1000, encode(Packet::data_request(512, false)),
                         util::from_seconds(t));
  }
  EXPECT_NEAR(edge.demand_rate_bps() / 8.0, 64.0, 25.0);
}

TEST(AdaptiveRefill, QuietEdgeStopsRefilling) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 2;
  config.num_clients = 4;
  config.refill_policy = RefillPolicy::kAdaptive;
  EdgeNode edge(config);
  util::Xoshiro256 rng(3);

  // Fill the cache once.
  (void)edge.on_packet(1, encode(Packet::data_ack(rng.bytes(1024), true,
                                                  false)),
                       0);
  // A single small request long after traffic stopped: demand estimate is
  // near zero, so no refill should accompany the reply even though the
  // fixed-fraction policy would see 1024 < 25 % of 2048 and refill.
  const auto out = edge.on_packet(
      1000, encode(Packet::data_request(256, false)),
      util::from_seconds(600));
  for (const auto& o : out) {
    const auto p = decode(o.data);
    ASSERT_TRUE(p.has_value());
    EXPECT_FALSE(p->header.req && p->header.edge_server)
        << "unexpected refill from a quiet adaptive edge";
  }
}

TEST(AdaptiveRefill, RefillsAheadOfSustainedDemand) {
  TestbedConfig config;
  config.seed = 4;
  config.num_networks = 1;
  config.clients_per_network = 6;
  config.profiles = {NetworkProfile::kConsumer};
  config.refill_policy = RefillPolicy::kAdaptive;
  config.server_seed_bytes = 1 << 20;
  World world(config);
  world.register_edges();

  WorkloadDriver driver(world, 5);
  ClientBehavior consumer;
  consumer.request_rate_hz = 0.5;
  consumer.request_bits = 1024;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, consumer, 0, util::from_seconds(300));
  }
  world.simulator().run();

  const auto& stats = world.edge(0).stats();
  const auto& metrics = driver.metrics();
  EXPECT_EQ(metrics.responses_received, metrics.requests_sent);
  // After warmup, nearly all requests should be cache hits.
  EXPECT_GT(static_cast<double>(stats.cache_hits),
            0.9 * static_cast<double>(stats.requests_received));
}

// ------------------------------------------- timing-entropy injection

TEST(TimingInjection, InjectsBytesBetweenContributions) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 6;
  config.num_clients = 2;
  config.inject_timing_entropy = true;
  config.upload_forward_bytes = 128;
  EdgeNode edge(config);
  util::Xoshiro256 rng(7);

  std::vector<net::Outgoing> bulk;
  for (int i = 0; i < 4; ++i) {
    auto out = edge.on_packet(
        1000 + (i % 2),
        encode(Packet::data_upload(entropy::synth::good(rng, 32), false)),
        util::from_millis(137 * i + 13));
    for (auto& o : out) bulk.push_back(std::move(o));
  }
  ASSERT_EQ(bulk.size(), 1u);
  const auto packet = decode(bulk[0].data);
  ASSERT_TRUE(packet.has_value());
  // 4 x 32 payload + 4 x 2 injected jitter bytes.
  EXPECT_EQ(packet->payload.size(), 4u * 32u + 4u * 2u);
  EXPECT_EQ(edge.stats().timing_bytes_injected, 8u);
}

TEST(TimingInjection, DisabledByDefault) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 8;
  config.num_clients = 2;
  config.upload_forward_bytes = 64;
  EdgeNode edge(config);
  util::Xoshiro256 rng(9);
  auto out1 = edge.on_packet(
      1000, encode(Packet::data_upload(entropy::synth::good(rng, 32), false)),
      0);
  auto out2 = edge.on_packet(
      1000, encode(Packet::data_upload(entropy::synth::good(rng, 32), false)),
      util::from_seconds(1));
  ASSERT_EQ(out2.size(), 1u);
  const auto packet = decode(out2[0].data);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->payload.size(), 64u);
  EXPECT_EQ(edge.stats().timing_bytes_injected, 0u);
}

TEST(TimingInjection, JitterBytesVary) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 10;
  config.num_clients = 2;
  config.inject_timing_entropy = true;
  config.upload_forward_bytes = 32;  // forward after every upload
  EdgeNode edge(config);
  util::Xoshiro256 rng(11);

  util::Bytes first_jitter, second_jitter;
  for (int i = 0; i < 2; ++i) {
    auto out = edge.on_packet(
        1000,
        encode(Packet::data_upload(entropy::synth::good(rng, 32), false)),
        util::from_millis(97 * (i + 1)));
    ASSERT_EQ(out.size(), 1u);
    const auto packet = decode(out[0].data);
    ASSERT_TRUE(packet.has_value());
    util::Bytes jitter(packet->payload.end() - 2, packet->payload.end());
    (i == 0 ? first_jitter : second_jitter) = jitter;
  }
  EXPECT_NE(first_jitter, second_jitter);
}

// -------------------------------------------------- multi-client batches

TEST(MinContributors, HoldsAggregateUntilEnoughClients) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 12;
  config.num_clients = 4;
  config.min_contributors = 2;
  config.upload_forward_bytes = 32;
  EdgeNode edge(config);
  util::Xoshiro256 rng(13);

  // One client filling the buffer alone: held back.
  auto out = edge.on_packet(
      1000, encode(Packet::data_upload(entropy::synth::good(rng, 64), false)),
      0);
  EXPECT_TRUE(out.empty());
  // A second contributor releases it.
  out = edge.on_packet(
      1001, encode(Packet::data_upload(entropy::synth::good(rng, 32), false)),
      util::from_seconds(1));
  ASSERT_EQ(out.size(), 1u);
  const auto packet = decode(out[0].data);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->payload.size(), 96u);
  EXPECT_EQ(edge.stats().bulk_uploads_sent, 1u);
}

// -------------------------------------------------- multi-server tier

TEST(MultiServer, EdgesSpreadAcrossServers) {
  TestbedConfig config;
  config.seed = 14;
  config.num_networks = 4;
  config.clients_per_network = 2;
  config.num_servers = 2;
  World world(config);
  world.register_edges();
  // Edges 0,2 -> server 0; edges 1,3 -> server 1.
  EXPECT_TRUE(world.server(0).edge_registered(edge_id(0)));
  EXPECT_TRUE(world.server(0).edge_registered(edge_id(2)));
  EXPECT_TRUE(world.server(1).edge_registered(edge_id(1)));
  EXPECT_TRUE(world.server(1).edge_registered(edge_id(3)));
  EXPECT_FALSE(world.server(0).edge_registered(edge_id(1)));
}

TEST(MultiServer, PoolExchangeMovesBytesAroundTheRing) {
  TestbedConfig config;
  config.seed = 15;
  config.num_networks = 2;
  config.clients_per_network = 2;
  config.num_servers = 2;
  config.server_seed_bytes = 1 << 16;
  World world(config);

  const std::size_t before0 = world.server(0).pool().size();
  world.start_pool_exchange(/*period_s=*/5.0, /*bytes=*/512,
                            /*until_s=*/60.0);
  world.simulator().run_until(util::from_seconds(120));
  world.simulator().run();

  EXPECT_GE(world.server(0).stats().pool_exchanges, 10u);
  EXPECT_GE(world.server(1).stats().pool_exchanges, 10u);
  // Exchanged data is mixed, not dropped: pools stay near their size.
  EXPECT_GT(world.server(0).pool().size(), before0 / 2);
}

TEST(MultiServer, RegistrationWorksOnBothServers) {
  TestbedConfig config;
  config.seed = 16;
  config.num_networks = 2;
  config.clients_per_network = 2;
  config.num_servers = 2;
  World world(config);
  world.register_edges();
  world.register_clients();
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    EXPECT_TRUE(world.client(i).reregistered()) << "client " << i;
  }
}

// ------------------------------------------------- failure injection

TEST(FailureInjection, RefillTimeoutRecoversFromLostResponse) {
  EdgeNode::Config config;
  config.id = 100;
  config.server = 1;
  config.seed = 17;
  config.num_clients = 2;
  EdgeNode edge(config);
  util::Xoshiro256 rng(18);

  // A request on a cold cache triggers a refill (which we "lose").
  auto out = edge.on_packet(1000, encode(Packet::data_request(512, false)),
                            util::from_seconds(0));
  ASSERT_EQ(out.size(), 1u);  // the refill request
  // Within the timeout, further requests don't re-ask the server.
  out = edge.on_packet(1000, encode(Packet::data_request(512, false)),
                       util::from_seconds(1));
  EXPECT_TRUE(out.empty());
  // After the timeout the edge declares the refill lost and re-issues.
  out = edge.on_packet(1000, encode(Packet::data_request(512, false)),
                       util::from_seconds(4));
  ASSERT_EQ(out.size(), 1u);
  const auto p = decode(out[0].data);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->header.req);
  EXPECT_TRUE(p->header.edge_server);
}

TEST(FailureInjection, EdgeReregistersAfterServerRestart) {
  // Build server + edge, register, then "restart" the server (fresh
  // instance, same id): the edge's sealed refills now fail and it must
  // recover by re-registering.
  ServerNode::Config sc;
  sc.id = 1;
  sc.seed = 501;
  auto server = std::make_unique<ServerNode>(sc);
  util::Xoshiro256 rng(502);
  server->seed_pool(rng.bytes(8192));

  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 503;
  ec.num_clients = 2;
  EdgeNode edge(ec);

  // Message pump that always routes to the *current* server instance.
  using Inflight = std::pair<net::NodeId, net::Outgoing>;  // (sender, msg)
  auto deliver_round = [&](std::vector<net::Outgoing> initial,
                           net::NodeId initial_from, util::SimTime now) {
    std::vector<Inflight> queue;
    for (auto& m : initial) queue.emplace_back(initial_from, std::move(m));
    while (!queue.empty()) {
      std::vector<Inflight> next;
      for (auto& [sender, m] : queue) {
        if (m.to == 1) {
          for (auto& r : server->on_packet(sender, m.data, now)) {
            next.emplace_back(1, std::move(r));
          }
        } else if (m.to == 100) {
          for (auto& r : edge.on_packet(sender, m.data, now)) {
            next.emplace_back(100, std::move(r));
          }
        }
      }
      queue = std::move(next);
    }
  };

  deliver_round(edge.begin_edge_reg(0), 100, 0);
  ASSERT_TRUE(edge.registered());

  // Server restarts: all registration state is gone.
  server = std::make_unique<ServerNode>(sc);
  server->seed_pool(rng.bytes(8192));

  // The edge's refill requests now draw plaintext replies (the reborn
  // server has no esk). After the failure threshold, the edge re-registers
  // and service resumes sealed.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const util::SimTime t = util::from_seconds(10 + attempt * 3);
    deliver_round(edge.on_packet(
                      1000, encode(Packet::data_request(512, false)), t),
                  /*initial_from=*/100, t);
    if (edge.stats().reregistrations > 0) break;
  }
  EXPECT_GE(edge.stats().reregistrations, 1u);
  EXPECT_TRUE(edge.registered());
  EXPECT_TRUE(server->edge_registered(100));
}

TEST(FailureInjection, LossyBackboneStillConverges) {
  TestbedConfig config;
  config.seed = 19;
  config.num_networks = 1;
  config.clients_per_network = 4;
  config.profiles = {NetworkProfile::kBalanced};
  config.server_seed_bytes = 1 << 20;
  // 10 % packet loss between edge and server.
  config.backbone_link.loss_prob = 0.10;
  World world(config);

  WorkloadDriver driver(world, 20);
  ClientBehavior consumer;
  consumer.request_rate_hz = 0.5;
  consumer.request_bits = 512;
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i, consumer, 0, util::from_seconds(600));
  }
  world.simulator().run();

  const auto& metrics = driver.metrics();
  // Refill retries keep the service alive: the vast majority of requests
  // complete despite the lossy backbone.
  EXPECT_GT(static_cast<double>(metrics.responses_received),
            0.9 * static_cast<double>(metrics.requests_sent));
}

TEST(FailureInjection, AdversarialGarbageDoesNotCrashEngines) {
  TestbedConfig config;
  config.seed = 21;
  config.num_networks = 1;
  config.clients_per_network = 2;
  World world(config);
  world.register_edges();

  util::Xoshiro256 rng(22);
  auto& transport = world.transport();
  for (int i = 0; i < 500; ++i) {
    // Random garbage of random sizes to every tier from a rogue node.
    transport.send(31337, kServerId, rng.bytes(rng.uniform(128)));
    transport.send(31337, edge_id(0), rng.bytes(rng.uniform(128)));
    transport.send(31337, client_id(0), rng.bytes(rng.uniform(128)));
  }
  EXPECT_NO_FATAL_FAILURE(world.simulator().run());
  // The system still works afterwards.
  bool fulfilled = false;
  ClientNode* client = &world.client(0);
  world.client_sim(0).post([&, client](util::SimTime now) {
    return client->request_entropy(
        256, now, [&](util::BytesView, util::SimTime) { fulfilled = true; });
  });
  world.simulator().run();
  EXPECT_TRUE(fulfilled);
}

}  // namespace
}  // namespace cadet::testbed
