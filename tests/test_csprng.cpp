#include "crypto/csprng.h"

#include <gtest/gtest.h>

#include <bit>

#include "util/bytes.h"

namespace cadet::crypto {
namespace {

TEST(Csprng, DeterministicFromSeed) {
  Csprng a(std::uint64_t{42}), b(std::uint64_t{42});
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(Csprng, DifferentSeedsDiffer) {
  Csprng a(std::uint64_t{1}), b(std::uint64_t{2});
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Csprng, SuccessiveCallsDiffer) {
  Csprng rng(std::uint64_t{7});
  EXPECT_NE(rng.bytes(32), rng.bytes(32));
}

TEST(Csprng, ByteSeedMatchesItself) {
  const util::Bytes seed = {1, 2, 3, 4};
  Csprng a{util::BytesView(seed)};
  Csprng b{util::BytesView(seed)};
  EXPECT_EQ(a.bytes(16), b.bytes(16));
}

TEST(Csprng, ReseedChangesStream) {
  Csprng a(std::uint64_t{9}), b(std::uint64_t{9});
  const util::Bytes extra = {0xde, 0xad};
  a.reseed(extra);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Csprng, ReseedIsDeterministic) {
  Csprng a(std::uint64_t{9}), b(std::uint64_t{9});
  const util::Bytes extra = {0xbe, 0xef};
  a.reseed(extra);
  b.reseed(extra);
  EXPECT_EQ(a.bytes(32), b.bytes(32));
}

TEST(Csprng, OutputIsBalanced) {
  Csprng rng(std::uint64_t{1234});
  const util::Bytes data = rng.bytes(1 << 16);
  std::size_t ones = 0;
  for (const auto b : data) ones += std::popcount(b);
  EXPECT_NEAR(static_cast<double>(ones) / (65536.0 * 8), 0.5, 0.01);
}

TEST(Csprng, ArrayHelper) {
  Csprng rng(std::uint64_t{5});
  const auto a = rng.array<32>();
  const auto b = rng.array<32>();
  EXPECT_NE(a, b);
}

TEST(Csprng, TracksBytesGenerated) {
  Csprng rng(std::uint64_t{5});
  EXPECT_EQ(rng.bytes_generated(), 0u);
  (void)rng.bytes(100);
  EXPECT_EQ(rng.bytes_generated(), 100u);
  (void)rng.array<16>();
  EXPECT_EQ(rng.bytes_generated(), 116u);
}

TEST(Csprng, EmptyGenerateIsHarmless) {
  Csprng rng(std::uint64_t{5});
  EXPECT_TRUE(rng.bytes(0).empty());
  EXPECT_FALSE(rng.bytes(8).empty());
}

}  // namespace
}  // namespace cadet::crypto
