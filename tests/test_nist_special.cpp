#include "nist/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cadet::nist {
namespace {

TEST(Igamc, KnownValues) {
  // Q(1, x) = e^{-x}.
  EXPECT_NEAR(igamc(1.0, 2.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(igamc(1.0, 0.5), std::exp(-0.5), 1e-12);
  // Q(1.5, 0.5) — the SP800-22 block-frequency example value.
  EXPECT_NEAR(igamc(1.5, 0.5), 0.801252, 1e-6);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(igamc(0.5, 1.0), std::erfc(1.0), 1e-12);
  EXPECT_NEAR(igamc(0.5, 4.0), std::erfc(2.0), 1e-12);
}

TEST(Igamc, Boundaries) {
  EXPECT_DOUBLE_EQ(igamc(3.0, 0.0), 1.0);
  EXPECT_NEAR(igamc(3.0, 1e6), 0.0, 1e-12);
}

TEST(Igamc, ComplementsIgam) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (const double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Igamc, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double q = igamc(4.0, x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(Igamc, LargeDegreesOfFreedom) {
  // Chi-square with many dof: Q(k/2, k/2) ~ 0.5 for large k.
  EXPECT_NEAR(igamc(100.0, 100.0), 0.5, 0.03);
}

TEST(Igamc, RejectsBadDomain) {
  EXPECT_THROW(igamc(0.0, 1.0), std::domain_error);
  EXPECT_THROW(igamc(-1.0, 1.0), std::domain_error);
  EXPECT_THROW(igamc(1.0, -1.0), std::domain_error);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.99865, 1e-5);
  EXPECT_NEAR(normal_cdf(-6.0), 0.0, 1e-8);
}

TEST(NormalCdf, Symmetry) {
  for (const double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace cadet::nist
