// UdpRunner: the live-socket counterpart of SimNode. Runs the actual
// protocol over loopback UDP inside the test.
#include "net/udp_runner.h"

#include <gtest/gtest.h>

#include "cadet/cadet.h"
#include "util/rng.h"

namespace cadet::net {
namespace {

TEST(UdpRunner, RoutesBetweenHandlers) {
  UdpRunner runner;
  util::Bytes received;
  runner.add_node(1, [&](NodeId from, util::BytesView data, util::SimTime) {
    received.assign(data.begin(), data.end());
    EXPECT_EQ(from, 2u);
    return std::vector<Outgoing>{};
  });
  runner.add_node(2, [&](NodeId, util::BytesView, util::SimTime) {
    return std::vector<Outgoing>{};
  });
  runner.send_all(2, {{1, util::Bytes{0xab, 0xcd}}});
  ASSERT_TRUE(runner.pump_until([&] { return !received.empty(); }, 2000));
  EXPECT_EQ(received, (util::Bytes{0xab, 0xcd}));
}

TEST(UdpRunner, RepliesFlowBack) {
  UdpRunner runner;
  bool echoed = false;
  runner.add_node(1, [&](NodeId from, util::BytesView data, util::SimTime) {
    // Echo server.
    return std::vector<Outgoing>{{from, util::Bytes(data.begin(),
                                                    data.end())}};
  });
  runner.add_node(2, [&](NodeId, util::BytesView data, util::SimTime) {
    echoed = data.size() == 3;
    return std::vector<Outgoing>{};
  });
  runner.send_all(2, {{1, util::Bytes{1, 2, 3}}});
  EXPECT_TRUE(runner.pump_until([&] { return echoed; }, 2000));
}

TEST(UdpRunner, UnknownDestinationCounted) {
  UdpRunner runner;
  runner.add_node(1, [](NodeId, util::BytesView, util::SimTime) {
    return std::vector<Outgoing>{};
  });
  runner.send_all(1, {{99, util::Bytes{1}}});
  EXPECT_EQ(runner.dropped_sends(), 1u);
}

TEST(UdpRunner, FullProtocolOverRealSockets) {
  ServerNode::Config sc;
  sc.id = 1;
  sc.seed = 777;
  ServerNode server(sc);
  util::Xoshiro256 rng(7);
  server.seed_pool(rng.bytes(4096));

  EdgeNode::Config ec;
  ec.id = 100;
  ec.server = 1;
  ec.seed = 778;
  ec.num_clients = 1;
  EdgeNode edge(ec);

  ClientNode::Config cc;
  cc.id = 1000;
  cc.edge = 100;
  cc.server = 1;
  cc.seed = 779;
  ClientNode client(cc);

  UdpRunner runner;
  runner.add_node(1, [&](NodeId f, util::BytesView d, util::SimTime t) {
    return server.on_packet(f, d, t);
  });
  runner.add_node(100, [&](NodeId f, util::BytesView d, util::SimTime t) {
    return edge.on_packet(f, d, t);
  });
  runner.add_node(1000, [&](NodeId f, util::BytesView d, util::SimTime t) {
    return client.on_packet(f, d, t);
  });

  // Registration chain over real sockets.
  runner.send_all(100, edge.begin_edge_reg(wall_clock_ns()));
  ASSERT_TRUE(runner.pump_until([&] { return edge.registered(); }, 3000));
  runner.send_all(1000, client.begin_init(wall_clock_ns()));
  ASSERT_TRUE(runner.pump_until([&] { return client.initialized(); }, 3000));
  runner.send_all(1000, client.begin_rereg(wall_clock_ns()));
  ASSERT_TRUE(runner.pump_until([&] { return client.reregistered(); }, 3000));

  // Sealed delivery.
  bool delivered = false;
  runner.send_all(1000,
                  client.request_entropy(
                      256, wall_clock_ns(),
                      [&](util::BytesView data, util::SimTime) {
                        delivered = data.size() == 32;
                      }));
  EXPECT_TRUE(runner.pump_until([&] { return delivered; }, 3000));

  // End-to-end mode over real sockets too.
  bool e2e_delivered = false;
  runner.send_all(1000,
                  client.request_entropy(
                      256, wall_clock_ns(),
                      [&](util::BytesView data, util::SimTime) {
                        e2e_delivered = data.size() == 32;
                      },
                      /*end_to_end=*/true));
  EXPECT_TRUE(runner.pump_until([&] { return e2e_delivered; }, 3000));
  EXPECT_GE(edge.stats().e2e_forwarded, 1u);
}

}  // namespace
}  // namespace cadet::net
