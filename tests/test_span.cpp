// Span tracker unit tests plus the PR's acceptance check at World level:
// with spans enabled, every client request maps to exactly one span tree
// whose root closes as reply / fallback / request_expired, every child
// record's timestamp nests inside its root's interval, and the same seed
// reproduces a byte-identical span trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/span.h"
#include "obs/trace.h"
#include "testbed/topology.h"
#include "testbed/workload.h"
#include "util/time.h"

namespace cadet::obs {
namespace {

TEST(SpanTracker, DisabledAllocatorHandsOutInvalidContexts) {
  SpanTracker tracker;
  EXPECT_FALSE(tracker.enabled());
  const SpanContext ctx = tracker.start_trace();
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(ctx.trace, 0u);
  EXPECT_EQ(tracker.new_span(), 0u);
  tracker.bind_seq(7, 1, {42, 43});
  EXPECT_FALSE(tracker.lookup_seq(7, 1).valid());
}

#if CADET_OBS_ENABLED
TEST(SpanTracker, SequentialIdsAndSeqBinding) {
  SpanTracker tracker;
  tracker.enable();
  const SpanContext a = tracker.start_trace();
  const SpanContext b = tracker.start_trace();
  EXPECT_EQ(a.trace, 1u);
  EXPECT_EQ(a.span, 1u);
  EXPECT_EQ(b.trace, 2u);
  EXPECT_EQ(b.span, 2u);
  EXPECT_EQ(tracker.new_span(), 3u);

  tracker.bind_seq(100, 5, a);
  const SpanContext found = tracker.lookup_seq(100, 5);
  EXPECT_EQ(found.trace, a.trace);
  EXPECT_EQ(found.span, a.span);
  // A different sender with the same seq is a different key.
  EXPECT_FALSE(tracker.lookup_seq(101, 5).valid());
  // Rebinding the same (sender, seq) overwrites: the u16 seq wraps and the
  // newest in-flight binding is the only one a receiver can observe.
  tracker.bind_seq(100, 5, b);
  EXPECT_EQ(tracker.lookup_seq(100, 5).trace, b.trace);
}

TEST(SpanTracker, ResetReproducesTheSameIdSequence) {
  SpanTracker tracker;
  tracker.enable();
  tracker.bind_seq(1, 1, tracker.start_trace());
  tracker.start_trace();
  tracker.reset();
  EXPECT_FALSE(tracker.lookup_seq(1, 1).valid());
  const SpanContext again = tracker.start_trace();
  EXPECT_EQ(again.trace, 1u);
  EXPECT_EQ(again.span, 1u);
}

TEST(SpanEmit, InvalidContextDegradesToPlainEvent) {
  Tracer& tracer = Tracer::global();
  MemorySink sink;
  tracer.clear();
  tracer.set_sink(&sink);
  tracer.enable();

  span_begin(util::from_seconds(1.0), "request", "client", 1000, {}, 0,
             {{"bytes", 32.0}});
  span_complete(util::from_seconds(1.0), "cache_hit", "edge", 100,
                {5, 6}, 5);

  tracer.flush();
  tracer.enable(false);
  tracer.set_sink(nullptr);

  ASSERT_EQ(sink.events().size(), 2u);
  // No context: the record is exactly the untagged PR-1 event.
  EXPECT_EQ(sink.events()[0].trace, 0u);
  EXPECT_EQ(sink.events()[0].phase, '\0');
  EXPECT_EQ(sink.events()[0].num_attrs, 1u);
  // Valid context: ids and phase ride along.
  EXPECT_EQ(sink.events()[1].trace, 5u);
  EXPECT_EQ(sink.events()[1].span, 6u);
  EXPECT_EQ(sink.events()[1].parent, 5u);
  EXPECT_EQ(sink.events()[1].phase, 'X');
}

// ---------------------------------------------------------------------------
// World-level acceptance.

std::vector<TraceEvent> run_traced_world(std::uint64_t seed) {
  testbed::TestbedConfig config;
  config.seed = seed;
  config.num_networks = 2;
  config.clients_per_network = 3;
  testbed::World world(config);

  MemorySink sink;
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_sink(&sink);
  tracer.enable();
  SpanTracker::global().reset();
  SpanTracker::global().enable();

  world.register_edges();
  testbed::WorkloadDriver driver(world, seed + 1);
  const util::SimTime t_end = util::from_seconds(20.0);
  for (std::size_t i = 0; i < world.num_clients(); ++i) {
    driver.drive(i,
                 testbed::ClientBehavior::for_profile(world.profile_of(i)),
                 0, t_end);
  }
  world.simulator().run_until(t_end);

  tracer.flush();
  tracer.enable(false);
  tracer.set_sink(nullptr);
  SpanTracker::global().enable(false);

  return sink.events();
}

TEST(SpanAcceptance, EveryRequestIsOneWellFormedSpanTree) {
  const std::vector<TraceEvent> events = run_traced_world(20180301);

  // Group span records by trace id, preserving file (= timestamp) order.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> traces;
  for (const TraceEvent& e : events) {
    if (e.trace != 0) traces[e.trace].push_back(&e);
  }
  ASSERT_FALSE(traces.empty());

  std::uint64_t request_roots = 0;
  for (const auto& [trace_id, records] : traces) {
    std::set<std::uint64_t> defined;
    for (const TraceEvent* e : records) {
      if (e->phase == 'B' || e->phase == 'X') defined.insert(e->span);
    }

    const TraceEvent* root_open = nullptr;
    const TraceEvent* root_close = nullptr;
    for (const TraceEvent* e : records) {
      // Parent links only point at spans that exist in the same trace.
      if ((e->phase == 'B' || e->phase == 'X') && e->parent != 0) {
        EXPECT_TRUE(defined.contains(e->parent))
            << "trace " << trace_id << ": orphan parent " << e->parent;
      }
      if (e->phase == 'B' && e->parent == 0) {
        EXPECT_EQ(root_open, nullptr)
            << "trace " << trace_id << " has two duration roots";
        root_open = e;
      }
      if (e->phase == 'E' && root_open != nullptr &&
          e->span == root_open->span) {
        root_close = e;
      }
    }
    if (root_open == nullptr) continue;  // zero-length root (e.g. upload)

    ASSERT_NE(root_close, nullptr)
        << "trace " << trace_id << ": root span never closed";
    if (std::string(root_open->name) != "request" ||
        std::string(root_open->tier) != "client") {
      continue;  // edge refill root — validated structurally above
    }
    ++request_roots;

    // Exactly one terminal outcome, from the fixed vocabulary.
    const std::string outcome = root_close->name;
    EXPECT_TRUE(outcome == "reply" || outcome == "fallback" ||
                outcome == "request_expired")
        << "trace " << trace_id << " ended as " << outcome;

    // Child sim-timestamps nest inside the root interval.
    for (const TraceEvent* e : records) {
      EXPECT_GE(e->ts, root_open->ts) << "trace " << trace_id;
      EXPECT_LE(e->ts, root_close->ts) << "trace " << trace_id;
    }
  }
  // The run must actually have produced request trees, or this test is
  // vacuous.
  EXPECT_GT(request_roots, 0u);
}

TEST(SpanAcceptance, SameSeedSpanTraceIsByteIdentical) {
  auto to_jsonl = [](const std::vector<TraceEvent>& events) {
    std::string out;
    for (const TraceEvent& e : events) {
      out += to_json(e);
      out += '\n';
    }
    return out;
  };
  const std::string first = to_jsonl(run_traced_world(20180301));
  const std::string second = to_jsonl(run_traced_world(20180301));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}
#endif  // CADET_OBS_ENABLED

}  // namespace
}  // namespace cadet::obs
