// Fixture: hash-order traversal in a deterministic tier, plus a mutex that
// guards nothing.
#include <mutex>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, double> scores_;
std::mutex mu_;

double fixture_sum() {
  double sum = 0.0;
  for (const auto& [id, score] : scores_) {
    sum += score + id;
  }
  return sum;
}

}  // namespace fixture
