// Fixture: closes the include cycle back into sim.
#pragma once
#include "sim/fixture_cycle_a.h"

inline int fixture_b() { return 41; }
