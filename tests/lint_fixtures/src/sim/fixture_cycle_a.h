// Fixture: sim reaching up into net (layering) and completing a cycle.
#pragma once
#include "net/fixture_cycle_b.h"

inline int fixture_a() { return fixture_b() + 1; }
