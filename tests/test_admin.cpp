// AdminServer: ephemeral bind, the three endpoints (status codes + body
// shape), 404/405 handling, null-wiring behavior, and clean stop().
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/admin.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/sharded.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace cadet::obs {
namespace {

// Blocking one-shot HTTP exchange against 127.0.0.1:port. Returns the full
// response (headers + body); empty string on connect failure.
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

struct AdminFixture {
  Registry registry;
  SloEngine slo{&registry};
  FlightRecorder flight{256};
  AdminServer server{&registry, &slo, &flight};

  bool start() { return server.start(AdminServer::Options{}); }
};

TEST(AdminServer, BindsEphemeralPort) {
  AdminFixture f;
  ASSERT_TRUE(f.start());
  EXPECT_TRUE(f.server.running());
  EXPECT_GT(f.server.port(), 0);
  f.server.stop();
  EXPECT_FALSE(f.server.running());
}

TEST(AdminServer, ServesPrometheusMetrics) {
  AdminFixture f;
  f.registry.counter("cadet_demo_hits").inc(3);
  f.registry.sharded_counter("cadet_demo_packets").inc(7);
  ASSERT_TRUE(f.start());
  const std::string response = http_get(f.server.port(), "/metrics");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("cadet_demo_hits_total 3"), std::string::npos);
  EXPECT_NE(response.find("cadet_demo_packets_total 7"), std::string::npos);
  EXPECT_GE(f.server.requests_served(), 1u);
  f.server.stop();
}

TEST(AdminServer, HealthzFlips503WhileFiring) {
  AdminFixture f;
  Gauge& g = f.registry.gauge("queue");
  f.slo.add_rule(*parse_slo_rule("gauge:stall:queue:0:10:1"));
  ASSERT_TRUE(f.start());

  g.set(0);
  f.slo.tick(1.0);
  std::string response = http_get(f.server.port(), "/healthz");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  g.set(100);
  f.slo.tick(2.0);
  response = http_get(f.server.port(), "/healthz");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"alerting\""), std::string::npos);
  f.server.stop();
}

#if CADET_OBS_ENABLED  // the no-obs flight stub records nothing to serve
TEST(AdminServer, FlightEndpointReturnsJsonl) {
  AdminFixture f;
  TraceEvent e;
  e.ts = 1000;
  e.name = "boot";
  e.tier = "test";
  e.node = 9;
  f.flight.append(e);
  ASSERT_TRUE(f.start());
  const std::string response = http_get(f.server.port(), "/flight");
  EXPECT_NE(response.find("200"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  const std::size_t eol = body.find('\n');
  const auto parsed =
      parse_json_line(eol == std::string::npos ? body : body.substr(0, eol));
  ASSERT_TRUE(parsed.has_value()) << body;
  EXPECT_EQ(parsed->name, "boot");
  EXPECT_EQ(parsed->node, 9u);
  f.server.stop();
}
#endif  // CADET_OBS_ENABLED

TEST(AdminServer, UnknownPathIs404AndNonGetIs405) {
  AdminFixture f;
  ASSERT_TRUE(f.start());
  EXPECT_NE(http_get(f.server.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_request(f.server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  f.server.stop();
}

TEST(AdminServer, NullWiringReports404) {
  Registry registry;
  AdminServer server(&registry, nullptr, nullptr);
  ASSERT_TRUE(server.start(AdminServer::Options{}));
  EXPECT_NE(http_get(server.port(), "/healthz").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/flight").find("404"),
            std::string::npos);
  // /metrics still works: the Registry is wired.
  EXPECT_NE(http_get(server.port(), "/metrics").find("200"),
            std::string::npos);
  server.stop();
}

TEST(AdminServer, CustomSourceServesRenderedContent) {
  AdminFixture f;
  int calls = 0;
  f.server.add_source("/shards", "application/json", [&calls] {
    ++calls;
    return std::string("{\"shards\":[1,2,3]}");
  });
  ASSERT_TRUE(f.start());
  const std::string response = http_get(f.server.port(), "/shards");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("{\"shards\":[1,2,3]}"), std::string::npos);
  EXPECT_EQ(calls, 1);
  // The 404 listing advertises the registered path.
  EXPECT_NE(http_get(f.server.port(), "/nope").find("/shards"),
            std::string::npos);
  f.server.stop();
}

TEST(AdminServer, StopIsIdempotentAndRestartable) {
  AdminFixture f;
  ASSERT_TRUE(f.start());
  const int first_port = f.server.port();
  f.server.stop();
  f.server.stop();  // no-op
  ASSERT_TRUE(f.start());
  EXPECT_GT(f.server.port(), 0);
  (void)first_port;
  f.server.stop();
}

}  // namespace
}  // namespace cadet::obs
