#include "cadet/registration.h"

#include <gtest/gtest.h>

namespace cadet {
namespace {

TEST(Registration, DeriveKeyIsDeterministic) {
  crypto::X25519Key shared{};
  shared.fill(0x42);
  const auto a = derive_key(shared, util::BytesView(kLabelEsk, sizeof(kLabelEsk)));
  const auto b = derive_key(shared, util::BytesView(kLabelEsk, sizeof(kLabelEsk)));
  EXPECT_EQ(a, b);
}

TEST(Registration, LabelsSeparateKeys) {
  crypto::X25519Key shared{};
  shared.fill(0x42);
  const auto esk = derive_key(shared, util::BytesView(kLabelEsk, sizeof(kLabelEsk)));
  const auto csk = derive_key(shared, util::BytesView(kLabelCsk, sizeof(kLabelCsk)));
  EXPECT_NE(esk, csk);
}

TEST(Registration, SharedSecretsSeparateKeys) {
  crypto::X25519Key a{}, b{};
  a.fill(0x01);
  b.fill(0x02);
  EXPECT_NE(derive_key(a, util::BytesView(kLabelEsk, sizeof(kLabelEsk))),
            derive_key(b, util::BytesView(kLabelEsk, sizeof(kLabelEsk))));
}

TEST(Registration, NonceAddBigEndianCounter) {
  Nonce n{};
  util::put_u64_be(n.data(), 41);
  const Nonce n1 = nonce_add(n, 1);
  EXPECT_EQ(util::get_u64_be(n1.data()), 42u);
  const Nonce n2 = nonce_add(n, 2);
  EXPECT_EQ(util::get_u64_be(n2.data()), 43u);
}

TEST(Registration, NonceAddWraps) {
  Nonce n{};
  util::put_u64_be(n.data(), ~0ull);
  EXPECT_EQ(util::get_u64_be(nonce_add(n, 1).data()), 0u);
}

TEST(Registration, TokenWindowQuantizesTime) {
  EXPECT_EQ(token_window(0), 0);
  EXPECT_EQ(token_window(kTokenWindow - 1), 0);
  EXPECT_EQ(token_window(kTokenWindow), 1);
  EXPECT_EQ(token_window(10 * kTokenWindow + 5), 10);
}

TEST(Registration, TokenHashBindsWindow) {
  Token token{};
  token.fill(0x33);
  EXPECT_EQ(token_hash(token, 5), token_hash(token, 5));
  EXPECT_NE(token_hash(token, 5), token_hash(token, 6));
}

TEST(Registration, TokenHashBindsToken) {
  Token a{}, b{};
  a.fill(0x01);
  b.fill(0x02);
  EXPECT_NE(token_hash(a, 5), token_hash(b, 5));
}

TEST(Registration, MakeTokenIsFresh) {
  crypto::Csprng rng(std::uint64_t{1});
  EXPECT_NE(make_token(rng), make_token(rng));
}

TEST(Registration, MakeKeypairIsValid) {
  crypto::Csprng rng(std::uint64_t{2});
  const auto a = make_keypair(rng);
  const auto b = make_keypair(rng);
  EXPECT_EQ(a.shared_secret(b.public_key), b.shared_secret(a.public_key));
}

TEST(Registration, RegRequestRoundTrip) {
  crypto::Csprng rng(std::uint64_t{3});
  const auto kp = make_keypair(rng);
  const Nonce n = rng.array<8>();
  const auto payload = encode_reg_request(kp.public_key, n);
  EXPECT_EQ(payload.size(), 40u);
  const auto decoded = decode_reg_request(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pub, kp.public_key);
  EXPECT_EQ(decoded->nonce, n);
}

TEST(Registration, RegRequestRejectsBadLength) {
  EXPECT_FALSE(decode_reg_request(util::Bytes(39, 0)).has_value());
  EXPECT_FALSE(decode_reg_request(util::Bytes(41, 0)).has_value());
  EXPECT_FALSE(decode_reg_request({}).has_value());
}

}  // namespace
}  // namespace cadet
